"""Cross-module integration tests.

These exercise the end-to-end claims of the reproduction at small scale:
the parking-lot backpressure chain, the ARI win ordering, determinism of
the whole stack, and the CLI-to-simulator path.
"""

import pytest

from repro import GPGPUSystem, GPUConfig, benchmark, scheme
from repro.noc.flit import PacketType


def sim(scheme_name, bm="bfs", cycles=500, warmup=120, mesh=4, warps=8, seed=2):
    cfg = GPUConfig.scaled(mesh, warps_per_core=warps)
    system = GPGPUSystem(cfg, scheme(scheme_name), benchmark(bm), seed=seed)
    return system, system.simulate(cycles=cycles, warmup=warmup)


class TestParkingLotEffect:
    """Sec. 3: congestion in the *reply* network inflates *request* latency."""

    def test_request_latency_tracks_reply_bottleneck(self):
        _, base = sim("ada-baseline")
        _, ari = sim("ada-ari")
        # ARI touches only the reply side, yet request latency drops too.
        assert ari.request_latency < base.request_latency

    def test_backpressure_reaches_request_network(self):
        system, _ = sim("xy-baseline")
        # Under load, the MC ejection buffers of the request network are
        # occupied (bounded sinks), i.e. backpressure is engaged.
        occ = [
            system.request_net.ejectors[n].flit_occupancy
            for n in system.mc_nodes
        ]
        assert sum(occ) > 0


class TestARIOrdering:
    """The paper's headline ordering across the five schemes."""

    def test_scheme_ordering_on_noc_bound_workload(self):
        results = {}
        for sch in ("xy-baseline", "ada-baseline", "ada-multiport",
                    "xy-ari", "ada-ari"):
            _, results[sch] = sim(sch, cycles=600)
        assert results["ada-ari"].ipc > results["ada-baseline"].ipc
        assert results["xy-ari"].ipc > results["xy-baseline"].ipc
        assert results["ada-ari"].ipc >= results["ada-multiport"].ipc

    def test_supply_alone_does_not_win(self):
        _, supply = sim("acc-supply", cycles=600)
        _, both = sim("acc-both", cycles=600)
        assert both.ipc > supply.ipc


class TestDeterminism:
    def test_full_stack_reproducible(self):
        _, a = sim("ada-ari", cycles=400)
        _, b = sim("ada-ari", cycles=400)
        assert a.instructions == b.instructions
        assert a.mc_stall_time == b.mc_stall_time
        assert a.request_latency == b.request_latency

    def test_schemes_share_workload_stream(self):
        """Same seed => the cores issue the same instruction mix, so IPC
        differences come from the NoC, not from workload noise."""
        sa, _ = sim("xy-baseline", cycles=300)
        sb, _ = sim("xy-ari", cycles=300)
        mix_a = sa.cores[0].streams[0].rng.random()
        mix_b = sb.cores[0].streams[0].rng.random()
        assert mix_a == mix_b  # identical RNG state progression


class TestTrafficInvariants:
    def test_request_reply_pairing(self):
        """Every read reply corresponds to a read request that reached an
        MC; reply counts never exceed request counts."""
        system, _ = sim("xy-baseline", cycles=500)
        reads_requested = sum(m.stats.reads for m in system.mcs)
        read_replies = system.reply_net.stats.latency[PacketType.READ_REPLY].count
        assert read_replies <= reads_requested

    def test_request_network_carries_no_replies(self):
        system, _ = sim("xy-baseline", cycles=300)
        stats = system.request_net.stats
        assert stats.flits_delivered[PacketType.READ_REPLY] == 0
        assert stats.flits_delivered[PacketType.WRITE_REPLY] == 0

    def test_reply_network_carries_no_requests(self):
        system, _ = sim("xy-baseline", cycles=300)
        stats = system.reply_net.stats
        assert stats.flits_delivered[PacketType.READ_REQUEST] == 0
        assert stats.flits_delivered[PacketType.WRITE_REQUEST] == 0

    def test_no_traffic_without_memory_instructions(self):
        from dataclasses import replace

        prof = replace(benchmark("bfs"), name="compute-only", mem_rate=0.0)
        cfg = GPUConfig.scaled(4, warps_per_core=8)
        system = GPGPUSystem(cfg, scheme("xy-baseline"), prof, seed=2)
        res = system.simulate(cycles=300, warmup=0)
        assert system.request_net.stats.packets_offered == 0
        assert res.ipc == pytest.approx(1.0 * len(system.cores), rel=0.01)


class TestNaiveBaseline:
    def test_narrow_ni_used(self):
        from repro.noc.ni import BaselineNI

        system, _ = sim("xy-naive-baseline", cycles=200)
        for node in system.mc_nodes:
            assert isinstance(system.reply_net.nis[node], BaselineNI)


class TestFullSystemInvariants:
    """Run the invariant checker against both networks while the GPU
    drives them — the strongest end-to-end consistency check."""

    def test_networks_stay_consistent_under_gpu_load(self):
        from repro.noc.validation import InvariantChecker

        system, _ = sim("ada-ari", cycles=0, warmup=0)
        system.prewarm_caches()
        req = InvariantChecker(system.request_net)
        rep = InvariantChecker(system.reply_net)
        for i in range(250):
            system.step()
            if i % 10 == 0:
                req.audit()
                rep.audit()
        assert req.audits > 0 and rep.audits > 0

    def test_multiport_network_consistent(self):
        from repro.noc.validation import InvariantChecker

        system, _ = sim("ada-multiport", cycles=0, warmup=0)
        system.prewarm_caches()
        rep = InvariantChecker(system.reply_net)
        for i in range(200):
            system.step()
            if i % 10 == 0:
                rep.audit()
