"""Diagnostic / CheckReport data-model tests."""

import json

import pytest

from repro.staticcheck.diagnostics import (
    CheckReport,
    Diagnostic,
    Severity,
    StaticCheckError,
)


class TestSeverity:
    def test_ordering(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO

    def test_labels(self):
        assert Severity.ERROR.label == "error"
        assert Severity.INFO.label == "info"


class TestDiagnostic:
    def test_format_with_hint(self):
        d = Diagnostic(
            "eq2-bound", Severity.ERROR, "scheme=x mesh=6", "too big",
            hint="shrink it",
        )
        text = d.format()
        assert text == (
            "error: eq2-bound [scheme=x mesh=6]: too big (hint: shrink it)"
        )

    def test_format_without_location_or_hint(self):
        d = Diagnostic("cdg-cycle", Severity.WARNING, "", "loop")
        assert d.format() == "warning: cdg-cycle: loop"

    def test_to_dict_round_trips_through_json(self):
        d = Diagnostic("r", Severity.INFO, "loc", "msg", "hint")
        payload = json.loads(json.dumps(d.to_dict()))
        assert payload == {
            "rule": "r",
            "severity": "info",
            "location": "loc",
            "message": "msg",
            "hint": "hint",
        }


class TestCheckReport:
    def _sample(self):
        report = CheckReport()
        report.add("a-rule", Severity.ERROR, "l1", "bad")
        report.add("b-rule", Severity.WARNING, "l2", "iffy")
        report.add("b-rule", Severity.INFO, "l3", "fyi")
        return report

    def test_views(self):
        report = self._sample()
        assert len(report) == 3
        assert len(report.errors) == 1
        assert len(report.warnings) == 1
        assert not report.ok
        assert report.rules_hit() == ["a-rule", "b-rule"]

    def test_failed_strictness(self):
        warn_only = CheckReport()
        warn_only.add("r", Severity.WARNING, "", "w")
        assert warn_only.ok
        assert not warn_only.failed(strict=False)
        assert warn_only.failed(strict=True)

    def test_filter_by_rule(self):
        report = self._sample()
        only_b = report.filter(["b-rule"])
        assert len(only_b) == 2
        assert only_b.ok
        assert report.filter(None) is report

    def test_render_min_severity(self):
        report = self._sample()
        text = report.render(Severity.WARNING)
        assert "bad" in text and "iffy" in text and "fyi" not in text
        assert "1 error(s)" in text

    def test_to_json(self):
        payload = json.loads(self._sample().to_json())
        assert payload["counts"] == {"error": 1, "warning": 1, "info": 1}
        assert payload["ok"] is False
        assert len(payload["diagnostics"]) == 3

    def test_extend(self):
        a, b = self._sample(), self._sample()
        a.extend(b)
        assert len(a) == 6


class TestStaticCheckError:
    def test_is_value_error_and_carries_diagnostics(self):
        diags = [Diagnostic("r", Severity.ERROR, "loc", "broken")]
        err = StaticCheckError(diags)
        assert isinstance(err, ValueError)
        assert err.diagnostics == diags
        assert "broken" in str(err)
        with pytest.raises(ValueError):
            raise StaticCheckError(diags)
