"""CheckRunner API, mode ladder, and the experiments.api gate."""

import warnings

import pytest

from repro.experiments.runner import RunSpec
from repro.staticcheck import (
    RULES,
    STATICCHECK_ENV,
    CheckRunner,
    ModelInputs,
    StaticCheckError,
    StaticCheckWarning,
    clear_validation_cache,
    resolve_mode,
    rule_ids,
    validate_spec,
)


@pytest.fixture(autouse=True)
def _fresh_gate(monkeypatch):
    monkeypatch.delenv(STATICCHECK_ENV, raising=False)
    clear_validation_cache()
    yield
    clear_validation_cache()


BAD_SPEC = RunSpec(
    benchmark="bfs", scheme="ada-ari", num_vcs=2, injection_speedup=4
)
WARN_SPEC = RunSpec(benchmark="bfs", scheme="ada-ari", num_vcs=2)
CLEAN_SPEC = RunSpec(benchmark="bfs", scheme="ada-ari")


class TestRuleCatalog:
    def test_families_partition_the_catalog(self):
        model, code = rule_ids("model"), rule_ids("code")
        assert set(model) | set(code) == set(RULES)
        assert not set(model) & set(code)
        assert all(
            r.startswith(
                ("det-", "unit-", "proto-", "pool-", "kernel-",
                 "cachekey-", "overhead-")
            )
            for r in code
        )

    def test_dataflow_rules_registered(self):
        code = set(rule_ids("code"))
        assert {
            "unit-mix",
            "proto-credit-return",
            "proto-push-guard",
            "pool-global-write",
            "pool-capture",
        } <= code

    def test_kernel_rules_registered(self):
        code = set(rule_ids("code"))
        assert {
            "kernel-skip-unsound",
            "kernel-wake-unscheduled",
            "kernel-state-untracked",
        } <= code

    def test_rule_ids_default_is_everything(self):
        assert rule_ids() == list(RULES)


class TestCheckRunner:
    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown rule id"):
            CheckRunner(rules=["cdg-cycle", "no-such-rule"])

    def test_rule_filter_applies_to_reports(self):
        runner = CheckRunner(rules=["eq2-bound"])
        report = runner.check_scheme(
            "ada-ari", num_vcs=2, injection_speedup=4
        )
        assert report.rules_hit() == ["eq2-bound"]

    def test_filter_hides_other_findings(self):
        runner = CheckRunner(rules=["cdg-cycle"])
        report = runner.check_scheme(
            "ada-ari", num_vcs=2, injection_speedup=4
        )
        assert len(report) == 0
        assert not runner.failed(report)

    def test_strict_escalates_warnings(self):
        lax, strict = CheckRunner(), CheckRunner(strict=True)
        report = lax.check_scheme("ada-ari", num_vcs=2)  # clamp warning
        assert not lax.failed(report)
        assert strict.failed(report)

    def test_check_all_schemes_error_free_at_defaults(self):
        report = CheckRunner().check_all_schemes()
        assert report.ok, report.render()
        assert not report.warnings, report.render()

    def test_check_spec_matches_check_inputs(self):
        runner = CheckRunner()
        via_spec = runner.check_spec(BAD_SPEC)
        via_inputs = runner.check_inputs(ModelInputs.from_spec(BAD_SPEC))
        assert via_spec.rules_hit() == via_inputs.rules_hit()
        assert not via_spec.ok

    def test_check_source_routes_through_detlint(self):
        report = CheckRunner().check_source(
            "import time\nt = time.time()\n", path="x.py"
        )
        assert report.rules_hit() == ["det-wallclock"]

    def test_check_source_runs_every_code_pass(self):
        source = (
            "import time\n"
            "CACHE = {}\n"
            "t = time.time()\n"                        # det-wallclock
            "def f(now, payload_flits):\n"
            "    return now + payload_flits\n"         # unit-mix
            "def _work(x):\n"
            "    CACHE[x] = x\n"                       # pool-global-write
            "def run(pool, items):\n"
            "    pool.map(_work, items)\n"
        )
        report = CheckRunner().check_source(source, path="x.py")
        assert {"det-wallclock", "unit-mix", "pool-global-write"} <= set(
            report.rules_hit()
        )

    def test_rule_filter_applies_to_code_passes(self):
        source = (
            "import time\n"
            "t = time.time()\n"
            "def f(now, payload_flits):\n"
            "    return now + payload_flits\n"
        )
        report = CheckRunner(rules=["unit-mix"]).check_source(
            source, path="x.py"
        )
        assert report.rules_hit() == ["unit-mix"]


class TestResolveMode:
    @pytest.mark.parametrize("raw", ["", "warn", "1", "true", "on"])
    def test_warn_spellings(self, raw):
        assert resolve_mode(raw) == "warn"

    @pytest.mark.parametrize("raw", ["off", "0", "false", "none"])
    def test_off_spellings(self, raw):
        assert resolve_mode(raw) == "off"

    @pytest.mark.parametrize("raw", ["strict", "error", "2"])
    def test_strict_spellings(self, raw):
        assert resolve_mode(raw) == "strict"

    def test_env_consulted_when_no_argument(self, monkeypatch):
        monkeypatch.setenv(STATICCHECK_ENV, "strict")
        assert resolve_mode() == "strict"
        assert resolve_mode("off") == "off"  # argument wins over env

    def test_bad_mode_raises(self):
        with pytest.raises(ValueError, match="bad static-check mode"):
            resolve_mode("loud")


class TestValidateSpec:
    def test_clean_spec_passes_silently(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            report = validate_spec(CLEAN_SPEC)
        assert report.ok

    def test_error_spec_raises(self):
        with pytest.raises(StaticCheckError) as exc:
            validate_spec(BAD_SPEC)
        assert any(d.rule == "eq2-bound" for d in exc.value.diagnostics)

    def test_warn_spec_warns_but_passes(self):
        with pytest.warns(StaticCheckWarning, match="eq2-bound"):
            report = validate_spec(WARN_SPEC)
        assert report.ok

    def test_strict_mode_raises_on_warnings(self):
        with pytest.raises(StaticCheckError):
            validate_spec(WARN_SPEC, mode="strict")

    def test_off_mode_skips_everything(self):
        report = validate_spec(BAD_SPEC, mode="off")
        assert len(report) == 0

    def test_env_off_skips_everything(self, monkeypatch):
        monkeypatch.setenv(STATICCHECK_ENV, "off")
        assert len(validate_spec(BAD_SPEC)) == 0

    def test_memoized_per_model_signature(self):
        validate_spec(CLEAN_SPEC)
        from repro.staticcheck.runner import _cached_model_report

        before = _cached_model_report.cache_info().hits
        # Same model signature, different benchmark/seed: cache hit.
        validate_spec(RunSpec(benchmark="pr", scheme="ada-ari", seed=7))
        assert _cached_model_report.cache_info().hits == before + 1


class TestApiGate:
    @pytest.fixture
    def store(self, tmp_path):
        from repro.experiments.store import ResultStore

        return ResultStore(str(tmp_path / "store"))

    def test_run_rejects_bad_spec_before_simulating(self, store):
        from repro.experiments import api

        with pytest.raises(StaticCheckError):
            api.run(BAD_SPEC, store=store)

    def test_run_many_rejects_any_bad_spec(self, store):
        from repro.experiments import api

        with pytest.raises(StaticCheckError):
            api.run_many([CLEAN_SPEC, BAD_SPEC], store=store)

    def test_strict_flag_escalates_warn_spec(self, store):
        from repro.experiments import api

        with pytest.raises(StaticCheckError):
            api.run(WARN_SPEC, store=store, strict=True)

    def test_env_off_lets_bad_spec_through_to_simulation(
        self, monkeypatch, store
    ):
        from repro.experiments import api

        monkeypatch.setenv(STATICCHECK_ENV, "off")
        spec = RunSpec(
            benchmark="bfs", scheme="ada-ari", num_vcs=2,
            injection_speedup=4, cycles=60, warmup=20,
        )
        result = api.run(spec, store=store)
        assert result.cycles == 60  # the builder clamps and runs anyway
