"""Interprocedural effect-summary tests — writes, aliasing, fixpoints."""

import textwrap

from repro.staticcheck.callgraph import build_call_graph
from repro.staticcheck.effects import EffectEngine


def engine_of(src, path="m.py"):
    graph = build_call_graph([(path, textwrap.dedent(src))])
    return EffectEngine(graph)


class TestDirect:
    def test_attribute_assignment_recorded_with_owner(self):
        eng = engine_of("""
            class Router:
                def drain(self):
                    self.credits = 0
        """)
        summary = eng.direct("m.Router.drain")
        assert summary.write_attrs == {"credits"}
        assert summary.writes[0].owner == "Router"

    def test_init_self_writes_are_construction_not_mutation(self):
        eng = engine_of("""
            class Flit:
                def __init__(self):
                    self.hops = 0
        """)
        assert eng.direct("m.Flit.__init__").pure

    def test_mutator_call_on_self_attribute(self):
        eng = engine_of("""
            class Queue:
                def push(self, item):
                    self.items.append(item)
        """)
        summary = eng.direct("m.Queue.push")
        assert "items" in summary.write_attrs

    def test_fresh_local_container_writes_dropped(self):
        eng = engine_of("""
            def tally(records):
                out = []
                for r in records:
                    out.append(r)
                return out
        """)
        assert eng.direct("m.tally").pure

    def test_alias_through_local_tracks_full_chain(self):
        eng = engine_of("""
            class Net:
                def reset(self):
                    r = self.routers[0]
                    r.credits = 0
        """)
        summary = eng.direct("m.Net.reset")
        paths = {w.path for w in summary.writes}
        assert "self.routers[].credits" in paths

    def test_pure_helper_is_pure(self):
        eng = engine_of("""
            def clamp(x, lo, hi):
                return max(lo, min(x, hi))
        """)
        assert eng.direct("m.clamp").pure


class TestTransitive:
    def test_caller_absorbs_callee_writes(self):
        eng = engine_of("""
            class Router:
                def cycle(self):
                    self._advance()

                def _advance(self):
                    self.stalled = True
        """)
        summary = eng.transitive("m.Router.cycle")
        assert "stalled" in summary.write_attrs

    def test_recursive_scc_reaches_fixpoint(self):
        eng = engine_of("""
            class Walker:
                def descend(self, n):
                    if n:
                        self.depth = n
                        self.ascend(n - 1)

                def ascend(self, n):
                    if n:
                        self.height = n
                        self.descend(n - 1)
        """)
        down = eng.transitive("m.Walker.descend")
        up = eng.transitive("m.Walker.ascend")
        # mutual recursion: both summaries carry both writes
        assert {"depth", "height"} <= down.write_attrs
        assert {"depth", "height"} <= up.write_attrs

    def test_resolved_mutator_call_uses_callee_summary(self):
        eng = engine_of("""
            class Buffer:
                def append(self, flit):
                    self.slots = flit

            class Port:
                def accept(self, flit):
                    b = Buffer()
                    b.append(flit)
        """)
        summary = eng.transitive("m.Port.accept")
        # The call resolved to Buffer.append, so the container-mutator
        # heuristic must not also invent a write to a local name.
        assert "slots" in summary.write_attrs
        assert all(w.attr != "b" for w in summary.writes)


class TestCollect:
    def test_collect_reports_provenance_chain(self):
        eng = engine_of("""
            class Sim:
                def run(self):
                    self.tick()

                def tick(self):
                    self.clock = 1
        """)
        writes, chains = eng.collect(["m.Sim.run"])
        assert any(w.attr == "clock" for w in writes)
        assert chains["m.Sim.tick"] == ["m.Sim.run", "m.Sim.tick"]

    def test_collect_skip_excludes_edges(self):
        eng = engine_of("""
            class Sim:
                def run(self):
                    self.fallback()

                def fallback(self):
                    self.slow = 1
        """)
        writes, _chains = eng.collect(
            ["m.Sim.run"],
            skip=lambda caller, site: site.attr == "fallback",
        )
        assert all(w.attr != "slow" for w in writes)


class TestContainerWrites:
    def test_aug_subscript_write_on_self_container(self):
        eng = engine_of("""
            class Queue:
                def bump(self, i):
                    self.buf[i] += 1
        """)
        summary = eng.direct("m.Queue.bump")
        assert "buf" in summary.write_attrs
        assert not summary.pure

    def test_setdefault_is_a_mutation_of_the_receiver(self):
        eng = engine_of("""
            class Table:
                def add(self, k):
                    self.rows.setdefault(k, 0)
        """)
        summary = eng.direct("m.Table.add")
        assert "rows" in summary.write_attrs

    def test_append_through_setdefault_element(self):
        eng = engine_of("""
            class Table:
                def add(self, k, v):
                    bucket = self.rows.setdefault(k, [])
                    bucket.append(v)
        """)
        summary = eng.direct("m.Table.add")
        paths = {w.path for w in summary.writes}
        assert "self.rows[]" in paths or "self.rows" in paths

    def test_walrus_bound_fresh_container_stays_pure(self):
        eng = engine_of("""
            def collect(records):
                if (out := []) is not None:
                    for r in records:
                        out.append(r)
                return out
        """)
        assert eng.direct("m.collect").pure
