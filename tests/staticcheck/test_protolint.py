"""Credit-conservation conformance tests (proto-credit-return /
proto-push-guard)."""

import textwrap

from repro.staticcheck.protolint import lint_source


def lint(code):
    return lint_source(textwrap.dedent(code), path="mod.py")


def rules_of(report):
    return set(report.rules_hit())


class TestCreditReturn:
    def test_unpaired_pop_flagged(self):
        report = lint("""
            class LeakyRouter:
                def __init__(self):
                    self.credits = {}
                    self.fifo = []

                def has_credit(self, port):
                    return self.credits[port] > 0

                def drain(self):
                    flit = self.fifo.popleft()
                    return flit
        """)
        assert "proto-credit-return" in rules_of(report)
        assert "drain" in report.diagnostics[0].message

    def test_pop_with_refund_accepted(self):
        report = lint("""
            class Router:
                def __init__(self, ni):
                    self.credits = {}
                    self.fifo = []
                    self.ni = ni

                def has_credit(self, port):
                    return self.credits[port] > 0

                def drain(self):
                    flit = self.fifo.popleft()
                    self.ni.on_credit(flit.vc)
                    return flit
        """)
        assert "proto-credit-return" not in rules_of(report)

    def test_refund_later_in_suite_accepted(self):
        report = lint("""
            class Router:
                def __init__(self):
                    self.credits = {}
                    self.fifo = []
                    self.credit_out = {}

                def has_credit(self, port):
                    return self.credits[port] > 0

                def drain(self, in_port):
                    flit = self.fifo.popleft()
                    if flit is None:
                        return None
                    ch = self.credit_out[in_port]
                    ch.send(1)
                    return flit
        """)
        assert "proto-credit-return" not in rules_of(report)

    def test_refund_via_helper_accepted(self):
        report = lint("""
            class Router:
                def __init__(self):
                    self.credits = {}
                    self.fifo = []

                def has_credit(self, port):
                    return self.credits[port] > 0

                def _refund(self, vc):
                    self.credits[vc] += 1

                def drain(self, vc):
                    flit = self.fifo.popleft()
                    self._refund(vc)
                    return flit
        """)
        assert "proto-credit-return" not in rules_of(report)

    def test_suppression_comment_honored(self):
        report = lint("""
            class Router:
                def __init__(self):
                    self.credits = {}
                    self.fifo = []

                def has_credit(self, port):
                    return self.credits[port] > 0

                def drain(self):
                    # refund happens on the far side of the wire
                    flit = self.fifo.popleft()  # proto: allow(proto-credit-return)
                    return flit
        """)
        assert "proto-credit-return" not in rules_of(report)


class TestPushGuard:
    def test_unguarded_push_flagged(self):
        report = lint("""
            class Injector:
                def __init__(self):
                    self.credits = {}
                    self.fifo = []

                def has_credit(self, port):
                    return self.credits[port] > 0

                def inject(self, flit):
                    self.fifo.append(flit)
        """)
        assert "proto-push-guard" in rules_of(report)

    def test_guarded_push_accepted(self):
        report = lint("""
            class Injector:
                def __init__(self):
                    self.credits = {}
                    self.fifo = []

                def has_credit(self, port):
                    return self.credits[port] > 0

                def inject(self, flit, port):
                    if self.has_credit(port):
                        self.fifo.append(flit)
        """)
        assert "proto-push-guard" not in rules_of(report)

    def test_early_exit_guard_accepted(self):
        report = lint("""
            class Injector:
                def __init__(self):
                    self.credits = {}
                    self.fifo = []

                def has_credit(self, port):
                    return self.credits[port] > 0

                def inject(self, flit, port):
                    if not self.has_credit(port):
                        return False
                    self.fifo.append(flit)
                    return True
        """)
        assert "proto-push-guard" not in rules_of(report)

    def test_caller_side_guard_accepted(self):
        report = lint("""
            class Injector:
                def __init__(self):
                    self.credits = {}
                    self.fifo = []

                def has_credit(self, port):
                    return self.credits[port] > 0

                def _enqueue(self, flit):
                    self.fifo.append(flit)

                def offer(self, flit, port):
                    if not self.has_credit(port):
                        return False
                    self._enqueue(flit)
                    return True
        """)
        assert "proto-push-guard" not in rules_of(report)

    def test_inherited_guard_seen_through_subclass(self):
        report = lint("""
            class BaseNI:
                def __init__(self):
                    self.credits = {}
                    self.fifo = []

                def has_credit(self, port):
                    return self.credits[port] > 0

                def _enqueue(self, flit):
                    self.fifo.append(flit)

            class SplitNI(BaseNI):
                def offer(self, flit, port):
                    if not self.has_credit(port):
                        return False
                    self._enqueue(flit)
                    return True
        """)
        assert "proto-push-guard" not in rules_of(report)


class TestScoping:
    def test_class_without_credit_machinery_ignored(self):
        # a plain collection class pops without credits — not its contract
        report = lint("""
            class WorkQueue:
                def __init__(self):
                    self.fifo = []

                def drain(self):
                    return self.fifo.popleft()

                def add(self, item):
                    self.fifo.append(item)
        """)
        assert len(report) == 0

    def test_diagnostic_includes_path_trail(self):
        report = lint("""
            class LeakyRouter:
                def __init__(self):
                    self.credits = {}
                    self.fifo = []

                def has_credit(self, port):
                    return self.credits[port] > 0

                def drain(self):
                    flit = self.fifo.popleft()
                    return flit
        """)
        finding = next(
            d for d in report.diagnostics if d.rule == "proto-credit-return"
        )
        assert "path:" in finding.message
