"""Model-level rule tests: Eq. 1/2 sizing, clamps, fault epochs."""

import pytest

from repro.core.schemes import scheme_names
from repro.staticcheck.modelcheck import (
    ModelInputs,
    check_model,
    dram_injection_rate,
    fault_epochs,
)


def rules_of(report):
    return set(report.rules_hit())


class TestRegisteredSchemes:
    @pytest.mark.parametrize("name", scheme_names())
    def test_every_scheme_error_free_at_defaults(self, name):
        report = check_model(ModelInputs(scheme=name))
        assert report.ok, report.render()
        assert not report.warnings, report.render()

    @pytest.mark.parametrize("mesh", [4, 6, 8])
    def test_default_geometry_scales(self, mesh):
        report = check_model(ModelInputs(scheme="ada-ari", mesh=mesh))
        assert report.ok, report.render()


class TestEq2Bound:
    def test_explicit_overflow_is_error(self):
        """Acceptance: S > min(N_out, N_VC) requested explicitly fails."""
        report = check_model(
            ModelInputs(scheme="ada-ari", num_vcs=2, injection_speedup=4)
        )
        assert not report.ok
        assert any(
            d.rule == "eq2-bound" and d.severity.label == "error"
            for d in report
        )

    def test_scheme_default_overflow_only_warns(self):
        """The builder clamps scheme defaults silently; mirror that."""
        report = check_model(ModelInputs(scheme="ada-ari", num_vcs=2))
        assert report.ok
        assert any(
            d.rule == "eq2-bound" and d.severity.label == "warning"
            for d in report
        )

    def test_within_bound_is_silent(self):
        report = check_model(
            ModelInputs(scheme="ada-ari", num_vcs=2, injection_speedup=2,
                        num_split_queues=2)
        )
        assert "eq2-bound" not in rules_of(report)


class TestEq1Speedup:
    def test_dram_rate_estimate(self):
        from repro.gpu.config import GPUConfig

        rate = dram_injection_rate(GPUConfig())
        assert rate == pytest.approx(16 * 1.75 / 128)

    def test_undersized_speedup_warns(self):
        report = check_model(
            ModelInputs(scheme="ada-ari", injection_speedup=1)
        )
        assert any(d.rule == "eq1-speedup" for d in report)

    def test_consume_off_scheme_skips_eq1(self):
        report = check_model(ModelInputs(scheme="xy-baseline"))
        assert "eq1-speedup" not in rules_of(report)


class TestSplitQueues:
    def test_explicit_overflow_is_error(self):
        report = check_model(
            ModelInputs(scheme="acc-supply", num_vcs=2, num_split_queues=4)
        )
        diags = [d for d in report if d.rule == "split-queues"]
        assert diags and diags[0].severity.label == "error"

    def test_underuse_is_info(self):
        report = check_model(
            ModelInputs(scheme="acc-supply", num_split_queues=2)
        )
        diags = [d for d in report if d.rule == "split-queues"]
        assert diags and diags[0].severity.label == "info"


class TestVcClassAndResolve:
    def test_adaptive_single_vc_is_error(self):
        report = check_model(ModelInputs(scheme="ada-baseline", num_vcs=1))
        assert any(
            d.rule == "vc-class" and d.severity.label == "error"
            for d in report
        )

    def test_xy_single_vc_is_fine(self):
        report = check_model(ModelInputs(scheme="xy-baseline", num_vcs=1))
        assert "vc-class" not in rules_of(report)

    def test_unsupported_mesh_is_config_resolve(self):
        report = check_model(ModelInputs(scheme="xy-baseline", mesh=5))
        assert not report.ok
        assert rules_of(report) == {"config-resolve"}

    def test_bad_override_is_config_resolve(self):
        report = check_model(
            ModelInputs(scheme="ada-ari", injection_speedup=0)
        )
        assert not report.ok
        assert rules_of(report) == {"config-resolve"}

    def test_unknown_scheme_raises_key_error(self):
        with pytest.raises(KeyError):
            check_model(ModelInputs(scheme="warp-drive"))


class TestStarvationAndInertKnobs:
    def test_tiny_threshold_warns(self):
        report = check_model(
            ModelInputs(scheme="ada-ari", starvation_threshold=5)
        )
        assert any(
            d.rule == "starvation" and d.severity.label == "warning"
            for d in report
        )

    def test_unreachable_threshold_is_info(self):
        report = check_model(
            ModelInputs(
                scheme="ada-ari", cycles=100, warmup=400,
                starvation_threshold=100000,
            )
        )
        assert any(
            d.rule == "starvation" and d.severity.label == "info"
            for d in report
        )

    def test_inert_overrides_flagged(self):
        report = check_model(
            ModelInputs(
                scheme="xy-baseline",
                injection_speedup=4,
                num_split_queues=4,
                starvation_threshold=500,
            )
        )
        inert = [d for d in report if d.rule == "inert-knob"]
        assert len(inert) == 3
        assert all(d.severity.label == "info" for d in inert)


class TestCreditRtt:
    def test_deep_pipeline_warns(self):
        report = check_model(
            ModelInputs(scheme="xy-baseline", noc_hop_latency=8)
        )
        assert any(d.rule == "credit-rtt" for d in report)

    def test_default_latency_silent(self):
        report = check_model(ModelInputs(scheme="xy-baseline"))
        assert "credit-rtt" not in rules_of(report)


class TestMcDegree:
    def test_edge_mcs_flagged_as_info(self):
        """The 6x6 diamond band has two degree-3 edge MCs."""
        report = check_model(ModelInputs(scheme="ada-ari"))
        diags = [d for d in report if d.rule == "mc-degree"]
        assert len(diags) == 2
        assert all(d.severity.label == "info" for d in diags)
        assert all("@(" in d.message for d in diags)


class TestFaultEpochs:
    def test_epochs_dedupe_and_map_kinds(self):
        from repro.faults.model import FaultPlan
        from repro.noc.routing import EAST, SOUTH, WEST
        from repro.noc.topology import MeshTopology

        topo = MeshTopology(6, 6)
        plan = FaultPlan.parse(
            "link:r7.E@100+50;port:r7.W@100+50;vc:r7.S.0@200;vc:r7.N.1@200"
        )
        epochs = fault_epochs(plan.events, topo)
        # 100: link + port active; 150: both repaired (skipped, empty at
        # that instant until 200); 200: vc fault only.
        assert [start for start, _l, _v in epochs] == [100, 200]
        links_100 = epochs[0][1]
        # port:r7.W kills the upstream neighbour's East output (r6->r7).
        assert links_100 == frozenset({(7, EAST), (6, EAST)})
        assert epochs[0][2] == frozenset()
        # Only the VC-0 fault enters the escape set; VC 1 does not.
        assert epochs[1][1] == frozenset()
        assert epochs[1][2] == frozenset({(7, SOUTH)})
        assert (7, WEST) not in epochs[1][2]

    def test_detoured_cut_stays_clean(self):
        report = check_model(
            ModelInputs(scheme="ada-ari", faults="link:r7.E@100+50")
        )
        assert report.ok
        assert not report.warnings, report.render()

    def test_undetoured_cut_warns_not_errors(self):
        report = check_model(
            ModelInputs(
                scheme="ada-ari", faults="link:r7.E@100",
                fault_detour=False,
            )
        )
        assert report.ok  # degradation is graceful at runtime
        assert any(d.rule == "cdg-reach" for d in report.warnings)
        assert all("cycle=100" in d.location for d in report.warnings)

    def test_bad_plan_is_config_resolve_error(self):
        # r5 sits on the East edge of a 6x6 mesh: no East output link.
        report = check_model(
            ModelInputs(scheme="ada-ari", faults="link:r5.E@0")
        )
        assert not report.ok
        assert any(d.rule == "config-resolve" for d in report.errors)

    def test_request_net_fault_scopes_to_request_net(self):
        report = check_model(
            ModelInputs(
                scheme="ada-ari", faults="req:link:r7.E@0",
                fault_detour=False,
            )
        )
        assert all("net=req" in d.location for d in report.warnings)
