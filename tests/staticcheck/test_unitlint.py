"""Unit-inference lint tests (rule ``unit-mix``)."""

import textwrap

from repro.staticcheck.unitlint import lint_source, name_dim, parse_unit_comment


def lint(code):
    return lint_source(textwrap.dedent(code), path="mod.py")


def rules_of(report):
    return set(report.rules_hit())


class TestVocabulary:
    def test_name_dims(self):
        assert name_dim("link_latency_cycles") == "cycles"
        assert name_dim("now") == "cycles"
        assert name_dim("retired_at") == "cycles"
        assert name_dim("payload_flits") == "flits"
        assert name_dim("flits_sent") == "flits"
        assert name_dim("reply_packets") == "packets"
        assert name_dim("width_bits") == "bits"
        assert name_dim("payload") is None

    def test_unit_comment_parsing(self):
        assert parse_unit_comment("x = 1  # unit: cycles") == "cycles"
        assert parse_unit_comment("x = 1  # unit: flits") == "flits"
        assert parse_unit_comment("x = 1  # unit: ignore") == "ignore"
        assert parse_unit_comment("x = 1  # just a comment") is None


class TestTruePositives:
    def test_add_flits_to_cycles_flagged(self):
        report = lint("""
            def deadline(now, payload_flits):
                return now + payload_flits
        """)
        assert rules_of(report) == {"unit-mix"}
        assert "cycles" in report.diagnostics[0].message
        assert "flits" in report.diagnostics[0].message

    def test_bits_meet_flits_flagged(self):
        report = lint("""
            def width_check(link_bits, packet_flits):
                return link_bits - packet_flits
        """)
        assert rules_of(report) == {"unit-mix"}

    def test_mixed_comparison_flagged(self):
        report = lint("""
            def stalled(occupancy, horizon):
                return occupancy > horizon
        """)
        assert rules_of(report) == {"unit-mix"}
        assert "comparison" in report.diagnostics[0].message

    def test_mix_through_assignment_propagation(self):
        report = lint("""
            def f(packet_flits, budget_cycles):
                n = packet_flits
                m = n
                return m + budget_cycles
        """)
        assert rules_of(report) == {"unit-mix"}

    def test_augmented_mix_flagged(self):
        report = lint("""
            def f(total_cycles, payload_flits):
                total_cycles += payload_flits
                return total_cycles
        """)
        assert rules_of(report) == {"unit-mix"}


class TestAcceptedPatterns:
    def test_same_dimension_arithmetic_clean(self):
        report = lint("""
            def f(send_at, latency_cycles):
                arrive_at = send_at + latency_cycles
                return arrive_at + 1
        """)
        assert len(report) == 0

    def test_dimensionless_literals_clean(self):
        report = lint("""
            def f(payload_flits):
                return payload_flits + 1
        """)
        assert len(report) == 0

    def test_unknown_dimension_not_flagged(self):
        report = lint("""
            def f(payload_flits, mystery):
                return payload_flits + mystery
        """)
        assert len(report) == 0

    def test_explicit_unit_cast_accepted(self):
        # a narrow link streams one flit per cycle: the flit count is
        # deliberately reused as a cycle count, annotated as such.
        report = lint("""
            def f(now, payload_flits):
                stream_cycles = payload_flits  # unit: cycles
                return now + stream_cycles
        """)
        assert len(report) == 0

    def test_unit_ignore_suppresses(self):
        report = lint("""
            def f(now, payload_flits):
                x = now + payload_flits  # unit: ignore
                return x
        """)
        assert len(report) == 0

    def test_ratio_of_like_quantities_is_dimensionless(self):
        report = lint("""
            def f(used_flits, capacity_flits, now):
                frac = used_flits / capacity_flits
                return now + frac
        """)
        assert len(report) == 0

    def test_rate_times_time_collapses(self):
        report = lint("""
            def f(flits_sent, elapsed_cycles, capacity_flits):
                rate = flits_sent / elapsed_cycles
                recovered = rate * elapsed_cycles
                return recovered + capacity_flits
        """)
        assert len(report) == 0


class TestKnownApis:
    def test_credit_round_trip_cycles_propagates(self):
        # the satellite case: rtt is cycles, adding it to a cycle
        # counter is clean, adding it to a flit count is a mix.
        clean = lint("""
            def f(now, link_latency):
                rtt = credit_round_trip_cycles(link_latency)
                return now + rtt
        """)
        assert len(clean) == 0

        mixed = lint("""
            def f(payload_flits, link_latency):
                rtt = credit_round_trip_cycles(link_latency)
                return payload_flits + rtt
        """)
        assert rules_of(mixed) == {"unit-mix"}

    def test_packet_size_for_is_flits(self):
        report = lint("""
            def f(now):
                size = packet_size_for("read_reply")
                return now + size
        """)
        assert rules_of(report) == {"unit-mix"}

    def test_attribute_dims(self):
        report = lint("""
            def f(packet, link):
                return packet.size + link.latency
        """)
        assert rules_of(report) == {"unit-mix"}

    def test_min_preserves_dimension(self):
        report = lint("""
            def f(now, payload_flits):
                clamped = min(payload_flits, 8)
                return now + clamped
        """)
        assert rules_of(report) == {"unit-mix"}


class TestControlFlow:
    def test_branch_join_keeps_agreeing_dim(self):
        report = lint("""
            def f(cond, a_cycles, b_cycles, payload_flits):
                if cond:
                    x = a_cycles
                else:
                    x = b_cycles
                return x + payload_flits
        """)
        assert rules_of(report) == {"unit-mix"}

    def test_branch_join_drops_conflicting_dim(self):
        report = lint("""
            def f(cond, a_cycles, payload_flits):
                if cond:
                    x = a_cycles
                else:
                    x = payload_flits
                return x + a_cycles
        """)
        assert len(report) == 0

    def test_loop_reassignment_reaches_fixpoint(self):
        report = lint("""
            def f(n, step_cycles, payload_flits):
                total = 0
                while n:
                    total = total + step_cycles
                    n -= 1
                return total + payload_flits
        """)
        assert rules_of(report) == {"unit-mix"}


class TestModuleScope:
    def test_module_level_mix_flagged(self):
        report = lint("""
            WARMUP = 100  # plain literal, dimensionless
            def f(payload_flits, horizon):
                return payload_flits < horizon
        """)
        assert rules_of(report) == {"unit-mix"}

    def test_syntax_error_is_error_severity(self):
        report = lint("def f(:\n")
        assert report.failed()
