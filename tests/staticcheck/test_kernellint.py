"""Kernel-soundness prover tests — the byte-identity contract, statically."""

import textwrap

from repro.staticcheck.callgraph import build_call_graph
from repro.staticcheck.diagnostics import Severity
from repro.staticcheck.kernellint import (
    RECEIVER_HINTS,
    find_kernel_pairs,
    lint_paths,
    lint_source,
)

COMPONENT = textwrap.dedent("""
    class Counter:
        def __init__(self):
            self.ticks = 0
            self.marks = 0

        def tick(self):
            self.ticks += 1

        def mark(self):
            self.marks += 1
""")

SOUND_PAIR = COMPONENT + textwrap.dedent("""

    class ReferenceKernel:
        name = "reference"

        def cycle(self, counters):
            for c in counters:
                c.tick()
                c.mark()


    class ActivityKernel:
        name = "activity"

        def __init__(self):
            self._wake = []

        def cycle(self, counters):
            for c in self._wake:
                c.tick()
                c.mark()

        def on_offer(self, c):
            self._wake.append(c)
""")

# Identical, except the activity kernel forgets to replicate mark():
# the reference-side self.marks mutation becomes invisible to the
# gated fast path — exactly the bug class the rule exists for.
UNSOUND_PAIR = SOUND_PAIR.replace(
    """        for c in self._wake:
            c.tick()
            c.mark()
""",
    """        for c in self._wake:
            c.tick()
""",
)


def lint(src):
    return lint_source(src, "fixture.py")


class TestPairDiscovery:
    def test_finds_reference_activity_pair(self):
        graph = build_call_graph(
            [("fixture.py", textwrap.dedent(SOUND_PAIR))], RECEIVER_HINTS
        )
        pairs = find_kernel_pairs(graph)
        assert len(pairs) == 1
        assert pairs[0].reference.name == "ReferenceKernel"
        assert pairs[0].activity.name == "ActivityKernel"
        assert pairs[0].reference_root == "fixture.ReferenceKernel.cycle"
        assert "fixture.ActivityKernel.on_offer" in pairs[0].activity_roots

    def test_module_without_kernels_is_clean(self):
        report = lint(COMPONENT)
        assert report.ok


class TestSkipUnsound:
    def test_sound_pair_passes(self):
        report = lint(SOUND_PAIR)
        assert [d.rule for d in report.diagnostics] == []

    def test_dropped_replication_is_an_error(self):
        report = lint(UNSOUND_PAIR)
        errs = [
            d for d in report.diagnostics if d.rule == "kernel-skip-unsound"
        ]
        assert len(errs) == 1
        assert errs[0].severity == Severity.ERROR
        assert "'marks'" in errs[0].message
        assert "fixture.py:" in errs[0].location

    def test_inert_annotation_discharges_the_obligation(self):
        src = UNSOUND_PAIR.replace(
            "def mark(self):",
            "def mark(self):  # kernel: inert(Counter.marks)",
        )
        report = lint(src)
        assert report.ok


class TestWakeUnscheduled:
    def test_drained_but_never_armed_agenda_warns(self):
        src = SOUND_PAIR.replace(
            """    def on_offer(self, c):
        self._wake.append(c)
""",
            """    def on_offer(self, c):
        pass
""",
        )
        report = lint(src)
        warns = [
            d
            for d in report.diagnostics
            if d.rule == "kernel-wake-unscheduled"
        ]
        assert len(warns) == 1
        assert warns[0].severity == Severity.WARNING
        assert "_wake" in warns[0].message

    def test_armed_agenda_is_quiet(self):
        report = lint(SOUND_PAIR)
        assert not any(
            d.rule == "kernel-wake-unscheduled" for d in report.diagnostics
        )


class TestStateUntracked:
    def test_activity_only_mutation_warns(self):
        src = SOUND_PAIR.replace(
            """    def mark(self):
        self.marks += 1
""",
            """    def mark(self):
        self.marks += 1

    def scrub(self):
        self.debris = 0
""",
        ).replace(
            """        for c in self._wake:
            c.tick()
            c.mark()
""",
            """        for c in self._wake:
            c.tick()
            c.mark()
            c.scrub()
""",
        )
        report = lint(src)
        warns = [
            d
            for d in report.diagnostics
            if d.rule == "kernel-state-untracked"
        ]
        assert len(warns) == 1
        assert "'debris'" in warns[0].message

    def test_private_annotation_excuses_bookkeeping(self):
        src = SOUND_PAIR.replace(
            "class Counter:",
            "# kernel: private(Counter.debris)\nclass Counter:",
        ).replace(
            """    def mark(self):
        self.marks += 1
""",
            """    def mark(self):
        self.marks += 1

    def scrub(self):
        self.debris = 0
""",
        ).replace(
            "            c.mark()\n\n    def on_offer",
            "            c.mark()\n            c.scrub()\n\n    def on_offer",
        )
        report = lint(src)
        assert not any(
            d.rule == "kernel-state-untracked" for d in report.diagnostics
        )


class TestRepoContract:
    def test_shipping_kernels_prove_clean(self):
        # The acceptance bar for the whole pass: the real
        # ReferenceKernel/ActivityKernel pair (plus annotations) carries
        # no outstanding proof obligations.
        report = lint_paths(["src/repro"])
        assert [d.format() for d in report.diagnostics] == []
