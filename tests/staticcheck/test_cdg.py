"""Channel-dependency-graph construction and escape-walk tests."""

import pytest

from repro.noc.routing import (
    EAST,
    LOCAL,
    NORTH,
    SOUTH,
    WEST,
    MinimalAdaptiveRouting,
    RoutingAlgorithm,
    XYRouting,
)
from repro.noc.topology import MeshTopology, default_placement
from repro.staticcheck.cdg import (
    all_pairs_unreachable,
    build_escape_cdg,
    channel_name,
    trace_escape,
)


class ClockwiseRingRouting(RoutingAlgorithm):
    """Deliberately cyclic: every escape hop walks the mesh boundary
    clockwise (E along the bottom, N up the right edge, W along the top,
    S down the left edge), never terminating at interior destinations.
    The CDG over the boundary channels is one big cycle."""

    name = "clockwise-ring"

    def __init__(self, width: int, height: int) -> None:
        self.width = width
        self.height = height

    def candidates(self, cur, dest):
        return [self.escape_port(cur, dest)]

    def escape_port(self, cur, dest):
        x, y = cur
        if cur == dest:
            return LOCAL
        if y == 0 and x < self.width - 1:
            return EAST
        if x == self.width - 1 and y < self.height - 1:
            return NORTH
        if y == self.height - 1 and x > 0:
            return WEST
        if x == 0 and y > 0:
            return SOUTH
        return EAST  # interior: drift onto the ring

    def vc_allowed(self, vc, port, escape):
        return True


class TestChannelName:
    def test_names_edges_and_walls(self):
        topo = MeshTopology(4, 4)
        assert channel_name(topo, (0, EAST)) == "r0-E>r1"
        assert channel_name(topo, (0, NORTH)) == "r0-N>r4"
        # A channel pointing off the mesh has no destination router.
        assert channel_name(topo, (0, WEST)) == "r0-W>"


class TestAcyclicSchemes:
    @pytest.mark.parametrize("mesh", [4, 6, 8])
    @pytest.mark.parametrize(
        "routing", [XYRouting(), MinimalAdaptiveRouting()]
    )
    def test_escape_network_acyclic(self, mesh, routing):
        """Acceptance: xy and adaptive escape networks are cycle-free."""
        topo = MeshTopology(mesh, mesh)
        dests = list(range(topo.num_routers))
        graph = build_escape_cdg(routing, topo, dests)
        assert graph.find_cycle() is None
        assert not graph.off_mesh_hops
        assert not graph.inadmissible
        assert not graph.dead_escape_hops

    @pytest.mark.parametrize(
        "routing", [XYRouting(), MinimalAdaptiveRouting()]
    )
    def test_all_cc_mc_pairs_reachable(self, routing):
        topo = MeshTopology(6, 6)
        mcs, ccs = default_placement(6, 6, 8)
        assert all_pairs_unreachable(routing, topo, ccs, mcs) == []
        assert all_pairs_unreachable(routing, topo, mcs, ccs) == []


class TestCyclicRoutingDetected:
    def test_ring_cycle_found_and_formatted(self):
        """Acceptance: a hand-built cyclic routing function is rejected."""
        topo = MeshTopology(4, 4)
        routing = ClockwiseRingRouting(4, 4)
        graph = build_escape_cdg(routing, topo, list(range(16)))
        cycle = graph.find_cycle()
        assert cycle is not None
        # The cycle closes: every consecutive pair is a recorded edge.
        for a, b in zip(cycle, cycle[1:] + cycle[:1]):
            assert b in graph.edges[a]
        text = graph.format_cycle(cycle)
        assert text.count("->") == len(cycle)
        assert text.split(" -> ")[0] == text.split(" -> ")[-1]

    def test_ring_never_reaches_interior(self):
        topo = MeshTopology(4, 4)
        routing = ClockwiseRingRouting(4, 4)
        interior = topo.router_at(1, 1)
        trace = trace_escape(routing, topo, 0, interior)
        assert trace.status == "loop"
        assert not trace.ok


class TestDeadChannels:
    def test_dead_link_breaks_reachability(self):
        topo = MeshTopology(4, 4)
        routing = XYRouting()
        # Kill r0's East output: XY paths from r0 to anything east die.
        dead = frozenset({(0, EAST)})
        trace = trace_escape(routing, topo, 0, 3, dead_links=dead)
        assert trace.status == "dead"
        assert trace.blocker == (0, EAST)
        failures = all_pairs_unreachable(
            routing, topo, [0], [1, 2, 3], dead_links=dead
        )
        assert {(src, dst) for src, dst, _t in failures} == {
            (0, 1), (0, 2), (0, 3)
        }

    def test_dead_escape_vc_counts_as_unusable(self):
        topo = MeshTopology(4, 4)
        routing = MinimalAdaptiveRouting()
        dead_vcs = frozenset({(0, EAST)})
        trace = trace_escape(
            routing, topo, 0, 1, dead_escape_vcs=dead_vcs
        )
        assert trace.status == "dead"
        graph = build_escape_cdg(
            routing, topo, [1], dead_escape_vcs=dead_vcs
        )
        assert (0, 1, (0, EAST)) in graph.dead_escape_hops
        assert (0, EAST) not in graph.edges

    def test_vertical_detour_keeps_pair_alive(self):
        """With the fault-aware wrapper the same cut stays reachable."""
        from repro.faults.injector import FaultState
        from repro.noc.routing import FaultAwareRouting

        topo = MeshTopology(4, 4)
        state = FaultState(topo)
        state.dead_links.add((0, EAST))
        routing = FaultAwareRouting(XYRouting(), topo, state)
        trace = trace_escape(
            routing, topo, 0, 3, dead_links=frozenset(state.dead_links)
        )
        assert trace.ok, trace.describe(topo)


class TestEscapeTraceDescribe:
    def test_ok_and_stuck_descriptions(self):
        topo = MeshTopology(4, 4)
        ok = trace_escape(XYRouting(), topo, 0, 5)
        assert ok.ok and "reaches via" in ok.describe(topo)

        class StuckRouting(XYRouting):
            def escape_port(self, cur, dest):
                return LOCAL

        stuck = trace_escape(StuckRouting(), topo, 0, 5)
        assert stuck.status == "stuck"
        assert "stalls" in stuck.describe(topo)

    def test_off_mesh_description(self):
        class OffMeshRouting(XYRouting):
            def escape_port(self, cur, dest):
                return WEST  # r0 has no West link

        topo = MeshTopology(4, 4)
        trace = trace_escape(OffMeshRouting(), topo, 0, 5)
        assert trace.status == "off-mesh"
        assert "off the mesh" in trace.describe(topo)
        graph = build_escape_cdg(OffMeshRouting(), topo, [5])
        assert (0, 5) in graph.off_mesh_hops
