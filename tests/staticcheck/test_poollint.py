"""Worker-capture race detection tests (pool-global-write / pool-capture)."""

import textwrap

from repro.staticcheck.poollint import lint_source


def lint(code):
    return lint_source(textwrap.dedent(code), path="mod.py")


def rules_of(report):
    return set(report.rules_hit())


class TestGlobalWrite:
    def test_subscript_write_to_module_global_flagged(self):
        report = lint("""
            from concurrent.futures import ProcessPoolExecutor
            CACHE = {}

            def _work(key):
                CACHE[key] = key * 2
                return key

            def run(pool, items):
                return [pool.submit(_work, i) for i in items]
        """)
        assert rules_of(report) == {"pool-global-write"}
        assert "CACHE" in report.diagnostics[0].message

    def test_mutator_call_on_module_global_flagged(self):
        report = lint("""
            RESULTS = []

            def _work(x):
                RESULTS.append(x)

            def run(pool, items):
                pool.map(_work, items)
        """)
        assert rules_of(report) == {"pool-global-write"}
        assert ".append()" in report.diagnostics[0].message

    def test_global_rebind_flagged(self):
        report = lint("""
            STATE = {}

            def _work(x):
                global STATE
                STATE = {"last": x}

            def run(pool, items):
                pool.map(_work, items)
        """)
        assert rules_of(report) == {"pool-global-write"}

    def test_transitive_callee_write_flagged(self):
        report = lint("""
            COUNTS = []

            def _helper(x):
                COUNTS.append(x)

            def _work(x):
                _helper(x)
                return x

            def run(pool, items):
                return [pool.submit(_work, i) for i in items]
        """)
        assert rules_of(report) == {"pool-global-write"}
        assert "_helper" in report.diagnostics[0].message

    def test_pure_worker_accepted(self):
        report = lint("""
            LIMIT = 4

            def _work(payload):
                out = []
                for rec in payload:
                    out.append(rec * LIMIT)
                local = {}
                local["k"] = 1
                return out

            def run(pool, chunks):
                return [pool.submit(_work, c).result() for c in chunks]
        """)
        assert len(report) == 0

    def test_shadowing_local_is_not_a_global_write(self):
        report = lint("""
            CACHE = {}

            def _work(x):
                CACHE = {}
                CACHE[x] = 1
                return CACHE

            def run(pool, items):
                pool.map(_work, items)
        """)
        assert len(report) == 0

    def test_suppression_comment_honored(self):
        report = lint("""
            METRICS = []

            def _work(x):
                METRICS.append(x)  # pool: allow(pool-global-write)
                return x

            def run(pool, items):
                pool.map(_work, items)
        """)
        assert len(report) == 0

    def test_non_pool_callsite_ignored(self):
        # writing a module global from a normally-called function is the
        # parent process mutating its own state; not this lint's business
        report = lint("""
            CACHE = {}

            def memoize(key):
                CACHE[key] = key
                return key

            def run(items):
                return [memoize(i) for i in items]
        """)
        assert len(report) == 0


class TestCapture:
    def test_lambda_submission_flagged(self):
        report = lint("""
            def run(pool, items):
                return pool.map(lambda i: i * 2, items)
        """)
        assert rules_of(report) == {"pool-capture"}

    def test_bound_method_submission_flagged(self):
        report = lint("""
            class Sweep:
                def step(self, item):
                    return item

                def run(self, pool, items):
                    return [pool.submit(self.step, i) for i in items]
        """)
        assert rules_of(report) == {"pool-capture"}
        assert "step" in report.diagnostics[0].message

    def test_closure_submission_flagged(self):
        report = lint("""
            def run(pool, items):
                seen = []
                def inner(x):
                    seen.append(x)
                    return x
                return [pool.submit(inner, i) for i in items]
        """)
        assert rules_of(report) == {"pool-capture"}

    def test_module_level_worker_accepted(self):
        report = lint("""
            def _work(x):
                return x * 2

            def run(pool, items):
                return [pool.submit(_work, i) for i in items]
        """)
        assert len(report) == 0

    def test_pool_detected_via_constructor_binding(self):
        report = lint("""
            from concurrent.futures import ProcessPoolExecutor

            def run(items):
                with ProcessPoolExecutor(max_workers=2) as ppe:
                    return list(ppe.map(lambda i: i, items))
        """)
        assert rules_of(report) == {"pool-capture"}
