"""CFG construction + forward-analysis engine tests."""

import ast
import textwrap

from repro.staticcheck.flow import (
    BranchCondition,
    ForwardAnalysis,
    build_cfg,
    iter_function_defs,
)


def cfg_of(code):
    tree = ast.parse(textwrap.dedent(code))
    fn = next(iter_function_defs(tree))
    return build_cfg(fn)


def labels(cfg):
    return {b.label for b in cfg.blocks.values()}


class TestLinear:
    def test_straight_line_single_path(self):
        cfg = cfg_of("""
            def f():
                a = 1
                b = 2
                return a + b
        """)
        paths = cfg.paths_to_exit(cfg.entry)
        assert len(paths) == 1
        assert paths[0][-1] == cfg.exit

    def test_statements_enumerates_everything(self):
        cfg = cfg_of("""
            def f(x):
                if x:
                    y = 1
                else:
                    y = 2
                return y
        """)
        stmts = [s for _bid, s in cfg.statements()]
        assert any(isinstance(s, BranchCondition) for s in stmts)
        assert sum(isinstance(s, ast.Assign) for s in stmts) == 2


class TestBranches:
    def test_if_else_joins(self):
        cfg = cfg_of("""
            def f(x):
                if x:
                    a = 1
                else:
                    a = 2
                return a
        """)
        assert {"then", "else", "join"} <= labels(cfg)
        # two acyclic paths: through then and through else
        assert len(cfg.paths_to_exit(cfg.entry)) == 2

    def test_if_without_else_falls_through(self):
        cfg = cfg_of("""
            def f(x):
                if x:
                    a = 1
                return 0
        """)
        assert len(cfg.paths_to_exit(cfg.entry)) == 2

    def test_return_in_both_arms_kills_join(self):
        cfg = cfg_of("""
            def f(x):
                if x:
                    return 1
                else:
                    return 2
        """)
        assert "join" not in labels(cfg)
        assert len(cfg.paths_to_exit(cfg.entry)) == 2


class TestLoops:
    def test_while_else_runs_on_exhaustion(self):
        cfg = cfg_of("""
            def f(n):
                while n:
                    n -= 1
                else:
                    done = True
                return done
        """)
        assert "loop-else" in labels(cfg)
        # the else block lies on a path from entry to exit
        else_bid = next(
            b.bid for b in cfg.blocks.values() if b.label == "loop-else"
        )
        assert any(
            else_bid in path for path in cfg.paths_to_exit(cfg.entry)
        )

    def test_break_skips_loop_else(self):
        cfg = cfg_of("""
            def f(items):
                for item in items:
                    if item:
                        break
                else:
                    missed = True
                return 0
        """)
        else_bid = next(
            b.bid for b in cfg.blocks.values() if b.label == "loop-else"
        )
        after_bid = next(
            b.bid for b in cfg.blocks.values() if b.label == "loop-after"
        )
        break_block = next(
            bid
            for bid, stmt in cfg.statements()
            if isinstance(stmt, ast.Break)
        )
        # break edges go straight to loop-after, not through the else
        assert after_bid in cfg.blocks[break_block].succs
        assert else_bid not in cfg.blocks[break_block].succs

    def test_loop_back_edge_exists(self):
        cfg = cfg_of("""
            def f(n):
                while n:
                    n -= 1
                return n
        """)
        head = next(
            b.bid for b in cfg.blocks.values() if b.label == "loop-head"
        )
        body = next(
            b.bid for b in cfg.blocks.values() if b.label == "loop-body"
        )
        assert head in cfg.blocks[body].succs

    def test_for_target_is_bound_in_head(self):
        cfg = cfg_of("""
            def f(items):
                for x in items:
                    pass
                return 0
        """)
        head = next(
            b for b in cfg.blocks.values() if b.label == "loop-head"
        )
        binds = [s for s in head.stmts if isinstance(s, ast.Assign)]
        assert binds and isinstance(binds[0].targets[0], ast.Name)
        assert binds[0].targets[0].id == "x"


class TestTry:
    def test_try_body_statements_may_reach_handler(self):
        cfg = cfg_of("""
            def f():
                try:
                    risky()
                    more()
                except ValueError:
                    fallback()
                return 0
        """)
        handler = next(
            b.bid for b in cfg.blocks.values() if b.label == "except"
        )
        try_blocks = [
            b for b in cfg.blocks.values() if b.label == "try"
        ]
        assert all(handler in b.succs for b in try_blocks)

    def test_finally_on_normal_and_abrupt_exit(self):
        cfg = cfg_of("""
            def f():
                try:
                    risky()
                    return 1
                finally:
                    cleanup()
                return 0
        """)
        # one finally copy for the fallthrough path, one for the return
        assert "finally" in labels(cfg)
        assert "finally-abrupt" in labels(cfg)
        # the cleanup() call appears on every entry->exit path
        cleanup_blocks = {
            bid
            for bid, stmt in cfg.statements()
            if isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Name)
            and stmt.value.func.id == "cleanup"
        }
        for path in cfg.paths_to_exit(cfg.entry):
            assert cleanup_blocks & set(path)

    def test_break_routed_through_finally(self):
        cfg = cfg_of("""
            def f(items):
                for item in items:
                    try:
                        break
                    finally:
                        cleanup()
                return 0
        """)
        assert "finally-abrupt" in labels(cfg)
        abrupt = next(
            b for b in cfg.blocks.values() if b.label == "finally-abrupt"
        )
        after = next(
            b.bid for b in cfg.blocks.values() if b.label == "loop-after"
        )
        # the finally copy flows on to the loop's break target
        assert after in abrupt.succs

    def test_except_else_runs_only_on_clean_body(self):
        cfg = cfg_of("""
            def f():
                try:
                    risky()
                except ValueError:
                    return -1
                else:
                    ok = True
                return 0
        """)
        # the else statement lands in a block reachable from the try body
        ok_bid = next(
            bid
            for bid, stmt in cfg.statements()
            if isinstance(stmt, ast.Assign)
        )
        try_bid = next(
            b.bid for b in cfg.blocks.values() if b.label == "try"
        )
        assert ok_bid in cfg.reachable_from(try_bid)


class TestComprehensions:
    def test_nested_comprehension_is_one_simple_statement(self):
        cfg = cfg_of("""
            def f(grid):
                flat = [x for row in grid for x in row if x]
                pairs = {(a, b) for a in flat for b in flat}
                return len(pairs)
        """)
        # comprehensions are expressions: no loop blocks appear
        assert "loop-head" not in labels(cfg)
        assert len(cfg.paths_to_exit(cfg.entry)) == 1
        assigns = [
            s for _bid, s in cfg.statements() if isinstance(s, ast.Assign)
        ]
        assert len(assigns) == 2


class _CollectingAnalysis(ForwardAnalysis):
    """Collects the set of assigned names (may-analysis, set-union join)."""

    def initial_state(self):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer(self, state, stmt):
        if isinstance(stmt, ast.Assign):
            names = frozenset(
                t.id for t in stmt.targets if isinstance(t, ast.Name)
            )
            return state | names
        if isinstance(stmt, ast.AugAssign) and isinstance(
            stmt.target, ast.Name
        ):
            return state | {stmt.target.id}
        return state


class TestForwardAnalysis:
    def test_fixpoint_over_loop(self):
        cfg = cfg_of("""
            def f(n):
                total = 0
                while n:
                    total += n
                    n -= 1
                return total
        """)
        analysis = _CollectingAnalysis(cfg)
        analysis.run()
        assert "total" in analysis.block_in[cfg.exit]
        assert "n" in analysis.block_in[cfg.exit]

    def test_branch_join_is_union(self):
        cfg = cfg_of("""
            def f(x):
                if x:
                    a = 1
                else:
                    b = 2
                return 0
        """)
        analysis = _CollectingAnalysis(cfg)
        analysis.run()
        assert {"a", "b"} <= analysis.block_in[cfg.exit]

    def test_state_before_replays_block_prefix(self):
        cfg = cfg_of("""
            def f():
                a = 1
                b = 2
                return b
        """)
        analysis = _CollectingAnalysis(cfg)
        analysis.run()
        assigns = [
            (bid, s)
            for bid, s in cfg.statements()
            if isinstance(s, ast.Assign)
        ]
        bid, second = assigns[1]
        state = analysis.state_before(bid, second)
        assert "a" in state and "b" not in state

    def test_terminates_on_pathological_loop_nest(self):
        cfg = cfg_of("""
            def f(n):
                while n:
                    while n:
                        while n:
                            n -= 1
                return n
        """)
        analysis = _CollectingAnalysis(cfg)
        analysis.run()  # must not hang
        assert "n" in analysis.block_in[cfg.exit]


class TestMatch:
    def test_match_creates_case_blocks_and_join(self):
        cfg = cfg_of("""
            def f(x):
                match x:
                    case 1:
                        a = 1
                    case 2:
                        a = 2
                return a
        """)
        assert {"case", "match-join"} <= labels(cfg)
        kinds = [
            s.kind for _b, s in cfg.statements()
            if isinstance(s, BranchCondition)
        ]
        assert "match" in kinds

    def test_capture_pattern_binds_name(self):
        cfg = cfg_of("""
            def f(x):
                match x:
                    case [head]:
                        return head
                return None
        """)
        assigned = {
            s.targets[0].id
            for _b, s in cfg.statements()
            if isinstance(s, ast.Assign)
            and isinstance(s.targets[0], ast.Name)
        }
        assert "head" in assigned

    def test_guard_becomes_branch_condition(self):
        cfg = cfg_of("""
            def f(x):
                match x:
                    case n if n > 0:
                        return n
                return 0
        """)
        kinds = [
            s.kind for _b, s in cfg.statements()
            if isinstance(s, BranchCondition)
        ]
        assert kinds.count("if") == 1

    def test_refutable_cases_keep_fallthrough_edge(self):
        cfg = cfg_of("""
            def f(x):
                match x:
                    case 1:
                        a = 1
                y = 2
                return y
        """)
        join = next(
            b for b in cfg.blocks.values() if b.label == "match-join"
        )
        match_block = next(
            bid for bid, s in cfg.statements()
            if isinstance(s, BranchCondition) and s.kind == "match"
        )
        assert match_block in join.preds

    def test_wildcard_case_suppresses_fallthrough(self):
        cfg = cfg_of("""
            def f(x):
                match x:
                    case 1:
                        a = 1
                    case _:
                        a = 2
                return a
        """)
        join = next(
            b for b in cfg.blocks.values() if b.label == "match-join"
        )
        match_block = next(
            bid for bid, s in cfg.statements()
            if isinstance(s, BranchCondition) and s.kind == "match"
        )
        assert match_block not in join.preds

    def test_guarded_wildcard_still_falls_through(self):
        cfg = cfg_of("""
            def f(x):
                match x:
                    case _ if x > 0:
                        a = 1
                return 0
        """)
        join = next(
            b for b in cfg.blocks.values() if b.label == "match-join"
        )
        match_block = next(
            bid for bid, s in cfg.statements()
            if isinstance(s, BranchCondition) and s.kind == "match"
        )
        assert match_block in join.preds


class TestAssert:
    def test_assert_adds_failure_edge_to_exit(self):
        cfg = cfg_of("""
            def f(x):
                assert x > 0
                return x
        """)
        assert_block = next(
            bid for bid, s in cfg.statements()
            if isinstance(s, ast.Assert)
        )
        assert cfg.exit in cfg.blocks[assert_block].succs

    def test_code_after_assert_lives_on_passing_path(self):
        cfg = cfg_of("""
            def f(x):
                assert x > 0
                y = 1
                return y
        """)
        assert "assert-ok" in labels(cfg)
        assign_block = next(
            bid for bid, s in cfg.statements()
            if isinstance(s, ast.Assign)
        )
        assert cfg.blocks[assign_block].label == "assert-ok"

    def test_assert_failure_reaches_handler(self):
        cfg = cfg_of("""
            def f(x):
                try:
                    assert x
                except AssertionError:
                    return -1
                return x
        """)
        assert_block = next(
            bid for bid, s in cfg.statements()
            if isinstance(s, ast.Assert)
        )
        handler_labels = {
            cfg.blocks[succ].label
            for succ in cfg.blocks[assert_block].succs
        }
        assert any("handler" in lab or "except" in lab
                   for lab in handler_labels)


class TestWithRaise:
    def test_with_body_raise_path_reaches_exit(self):
        cfg = cfg_of("""
            def f(res):
                with res:
                    step()
                return 1
        """)
        assert {"with-body", "with-raise"} <= labels(cfg)
        body = next(
            b for b in cfg.blocks.values() if b.label == "with-body"
        )
        wraise = next(
            b for b in cfg.blocks.values() if b.label == "with-raise"
        )
        # every body statement may raise into the synthetic handler,
        # which (with no enclosing try) propagates to the function exit
        assert wraise.bid in body.succs
        assert cfg.exit in wraise.succs

    def test_with_inside_try_routes_to_handler(self):
        cfg = cfg_of("""
            def f(res):
                try:
                    with res:
                        step()
                except ValueError:
                    fallback()
                return 0
        """)
        wraise = next(
            b for b in cfg.blocks.values() if b.label == "with-raise"
        )
        succ_labels = {cfg.blocks[s].label for s in wraise.succs}
        assert any(
            "except" in lab or "handler" in lab for lab in succ_labels
        )

    def test_with_raise_runs_enclosing_finally(self):
        cfg = cfg_of("""
            def f(res):
                try:
                    with res:
                        step()
                finally:
                    cleanup()
                return 0
        """)
        wraise = next(
            b for b in cfg.blocks.values() if b.label == "with-raise"
        )
        succ_labels = {cfg.blocks[s].label for s in wraise.succs}
        assert any("finally" in lab for lab in succ_labels)
