"""Taint-engine and cache/overhead/determinism prover tests."""

import ast
import textwrap

from repro.staticcheck import cachelint
from repro.staticcheck.cachelint import (
    find_cache_sinks,
    find_spec_classes,
    lint_source,
)
from repro.staticcheck.callgraph import build_call_graph
from repro.staticcheck.diagnostics import Severity
from repro.staticcheck.kernellint import RECEIVER_HINTS
from repro.staticcheck.taint import (
    TaintAnnotations,
    TaintEngine,
    is_guarded,
    split_facts,
    token_base,
)


def graph_of(**sources):
    items = [
        (f"{name}.py", textwrap.dedent(src))
        for name, src in sorted(sources.items())
    ]
    return build_call_graph(items, RECEIVER_HINTS)


def summary_of(src, qname, path="m.py"):
    graph = build_call_graph([(path, textwrap.dedent(src))])
    return TaintEngine(graph).summaries()[qname]


def lint(**sources):
    return cachelint.lint_graph(graph_of(**sources))


def rules_hit(report):
    return [d.rule for d in report.diagnostics]


# -- engine unit tests -------------------------------------------------------

class TestSummaries:
    def test_param_flows_to_return(self):
        summary = summary_of("def f(a, b):\n    return a\n", "m.f")
        assert summary.ret == {"p:a"}

    def test_field_sensitivity_one_level(self):
        summary = summary_of(
            "def f(spec):\n    return spec.telemetry\n", "m.f"
        )
        assert summary.ret == {"p:spec.telemetry"}

    def test_deep_access_collapses_to_first_field(self):
        summary = summary_of(
            "def f(spec):\n    return spec.noc.router.credits\n", "m.f"
        )
        assert summary.ret == {"p:spec.noc"}

    def test_interprocedural_composition(self):
        summary = summary_of(
            """
            def ident(x):
                return x

            def f(spec):
                return ident(spec.kernel)
            """,
            "m.f",
        )
        assert summary.ret == {"p:spec.kernel"}

    def test_recursion_reaches_fixpoint(self):
        summary = summary_of(
            """
            def f(a, n):
                if n:
                    return f(a, n - 1)
                return a
            """,
            "m.f",
        )
        # The first pass treats the yet-unsummarized recursive call as a
        # passthrough, so the fixpoint is a (sound) over-approximation —
        # the load-bearing claim is that p:a survives and the loop ends.
        assert "p:a" in summary.ret
        assert all(token_base(t).startswith("p:") for t in summary.ret)

    def test_attribute_write_recorded_with_owner(self):
        summary = summary_of(
            """
            class Box:
                def fill(self, spec):
                    self.payload = spec.kernel
            """,
            "m.Box.fill",
        )
        assert summary.writes[("Box", "payload")] == {"p:spec.kernel"}


class TestGuards:
    def test_non_none_guard_marks_the_flow(self):
        summary = summary_of(
            """
            def f(spec):
                if spec.telemetry is not None:
                    return spec.telemetry
                return 0
            """,
            "m.f",
        )
        assert summary.ret == {"p:spec.telemetry!"}
        assert all(is_guarded(t) for t in summary.ret)

    def test_ifexp_guard_idiom(self):
        summary = summary_of(
            "def f(spec):\n"
            "    return spec.t if spec.t is not None else 0\n",
            "m.f",
        )
        assert summary.ret == {"p:spec.t!"}

    def test_ifexp_condition_is_not_an_influence(self):
        # Implicit flows are out of scope: the chosen branch depends on
        # spec.t, but the *value* is d either way.
        summary = summary_of(
            "def f(spec, d):\n"
            "    return d if spec.t is not None else d\n",
            "m.f",
        )
        assert summary.ret == {"p:d"}

    def test_early_return_narrows_the_tail(self):
        summary = summary_of(
            """
            def f(spec):
                if spec.t is None:
                    return 0
                return spec.t
            """,
            "m.f",
        )
        assert summary.ret == {"p:spec.t!"}

    def test_or_default_is_not_a_guard(self):
        summary = summary_of(
            "def f(spec):\n    return spec.t or 100\n", "m.f"
        )
        assert summary.ret == {"p:spec.t"}


class TestSources:
    def test_wallclock_call_is_a_source(self):
        summary = summary_of(
            "import time\n\ndef f():\n    return time.perf_counter()\n",
            "m.f",
        )
        assert summary.ret == {"src:wallclock"}

    def test_module_level_rng_is_a_source(self):
        summary = summary_of(
            "import random\n\ndef f():\n    return random.random()\n",
            "m.f",
        )
        assert summary.ret == {"src:rng"}

    def test_seeded_rng_instance_is_not_a_source(self):
        summary = summary_of(
            """
            import random

            def f(seed):
                rng = random.Random(seed)
                return rng.random()
            """,
            "m.f",
        )
        assert not any(t.startswith("src:") for t in summary.ret)

    def test_declared_source_annotation(self):
        summary = summary_of(
            "def f():\n"
            "    return read_tsc()  # taint: source(wallclock)\n",
            "m.f",
        )
        assert "src:wallclock" in summary.ret

    def test_source_origin_is_recorded(self):
        src = "import time\n\ndef f():\n    return time.time()\n"
        graph = build_call_graph([("m.py", textwrap.dedent(src))])
        engine = TaintEngine(graph)
        engine.summaries()
        assert engine.origin_of("m.f", "src:wallclock") == ("m.py", 4)


class TestSanitizers:
    def test_field_pattern_drops_the_token(self):
        summary = summary_of(
            "def f(spec):\n"
            "    return spec.kernel  # taint: sanitize(kernel)\n",
            "m.f",
        )
        assert summary.ret == frozenset()

    def test_dotted_pattern_is_root_specific(self):
        summary = summary_of(
            "def f(spec, other):\n"
            "    return (spec.kernel, other.kernel)"
            "  # taint: sanitize(spec.kernel)\n",
            "m.f",
        )
        assert summary.ret == {"p:other.kernel"}

    def test_source_kind_pattern(self):
        summary = summary_of(
            "import time\n\n"
            "def f(spec):\n"
            "    return (time.time(), spec.t)"
            "  # taint: sanitize(wallclock)\n",
            "m.f",
        )
        assert summary.ret == {"p:spec.t"}


class TestHeap:
    def test_source_stored_in_state_resurfaces_in_sibling_method(self):
        summary = summary_of(
            """
            import time

            class HostStats:
                def start(self):
                    self.t0 = time.time()

                def elapsed(self):
                    return self.t0
            """,
            "m.HostStats.elapsed",
        )
        assert "src:wallclock" in summary.ret

    def test_heap_is_owner_scoped(self):
        # Another class with a same-named attribute must not inherit
        # the wallclock stored on HostStats.
        summary = summary_of(
            """
            import time

            class HostStats:
                def start(self):
                    self.t0 = time.time()

            class CycleCount:
                def read(self):
                    return self.t0
            """,
            "m.CycleCount.read",
        )
        assert "src:wallclock" not in summary.ret


class TestSplitFacts:
    def check(self, src, true_facts, false_facts):
        test = ast.parse(src, mode="eval").body
        t, f = split_facts(test, {})
        assert t == frozenset(true_facts)
        assert f == frozenset(false_facts)

    def test_is_none(self):
        self.check("x is None", [], ["x"])

    def test_is_not_none(self):
        self.check("x.t is not None", ["x.t"], [])

    def test_truthiness(self):
        self.check("x", ["x"], [])

    def test_not_swaps_sides(self):
        self.check("not x", [], ["x"])

    def test_and_accumulates_true_facts(self):
        self.check(
            "a is not None and b is not None", ["a", "b"], []
        )

    def test_or_accumulates_false_facts(self):
        self.check("a is None or b is None", [], ["a", "b"])


class TestAnnotations:
    def test_collect_parses_every_kind(self):
        graph = graph_of(
            m=(
                "x = 1  # taint: sanitize(wallclock, spec.kernel)\n"
                "y = 2  # taint: gated\n"
                "z = 3  # taint: source(rng)\n"
            )
        )
        ann = TaintAnnotations.collect(graph)
        assert ann.sanitize[("m.py", 1)] == {"wallclock", "spec.kernel"}
        assert ("m.py", 2) in ann.gated
        assert ann.sources[("m.py", 3)] == {"rng"}

    def test_bare_sanitize_means_everything(self):
        graph = graph_of(m="x = 1  # taint: sanitize\n")
        ann = TaintAnnotations.collect(graph)
        assert ann.sanitize[("m.py", 1)] == {"*"}


# -- prover fixtures ---------------------------------------------------------

SPEC = """
    import dataclasses

    @dataclasses.dataclass
    class Spec:
        benchmark: str
        kernel: str = None
        telemetry: int = None

        def key(self):
            payload = dataclasses.asdict(self)
            del payload["kernel"]
            if payload["telemetry"] is None:
                del payload["telemetry"]
            return str(payload)
"""

# Acceptance fixture: the always-excluded `kernel` field influences the
# cached payload through a helper — two specs differing only in kernel
# would share a key yet cache different stats.
LEAKY_RUN = SPEC + """

    def simulate(spec):
        stats = {}
        stats["backend"] = spec.kernel
        return stats


    def run(spec, store):
        payload = simulate(spec)
        store.put(spec.key(), payload)
        return payload
"""

# Acceptance fixture: with telemetry off, simulate() still touches a
# *Collector — the measurement path is not overhead-free.
HOT_COLLECTOR = """
    class TraceCollector:
        def record(self, cycle):
            pass


    class MeshSystem:
        def simulate(self, cycles):
            tap = TraceCollector()
            for c in range(cycles):
                tap.record(c)
            return cycles
"""


class TestSpecDiscovery:
    def test_exclusion_classes_extracted(self):
        specs = find_spec_classes(graph_of(api=SPEC))
        assert len(specs) == 1
        assert specs[0].always_excluded == {"kernel"}
        assert specs[0].when_none_excluded == {"telemetry"}

    def test_loop_over_const_tuple_exclusions(self):
        specs = find_spec_classes(graph_of(api="""
            import dataclasses

            class Spec:
                def key(self):
                    payload = dataclasses.asdict(self)
                    for name in ("faults", "telemetry"):
                        if payload[name] is None:
                            del payload[name]
                    del payload["kernel"]
                    return str(payload)
        """))
        assert specs[0].always_excluded == {"kernel"}
        assert specs[0].when_none_excluded == {"faults", "telemetry"}

    def test_key_without_asdict_is_not_a_spec(self):
        specs = find_spec_classes(graph_of(api="""
            class Point:
                def key(self):
                    return (self.x, self.y)
        """))
        assert specs == []


class TestSinkDiscovery:
    def test_formal_rooted_put_found(self):
        sinks = find_cache_sinks(graph_of(api=LEAKY_RUN))
        assert [(s.qname, s.param) for s in sinks] == [("api.run", "spec")]

    def test_non_formal_receiver_skipped(self):
        sinks = find_cache_sinks(graph_of(api="""
            GLOBAL_SPEC = None

            def run(store):
                spec = GLOBAL_SPEC
                store.put(spec.key(), {})
        """))
        assert sinks == []


class TestEntryPoints:
    def test_all_three_shapes_discovered(self):
        graph = graph_of(
            api="def run(spec, store):\n    return spec\n",
            executor="def simulate_spec(spec):\n    return spec\n",
            system=(
                "class GPGPUSystem:\n"
                "    def simulate(self, cycles):\n"
                "        return cycles\n"
            ),
        )
        roots = cachelint._entry_points(graph)
        assert set(roots) == {
            "api.run",
            "executor.simulate_spec",
            "system.GPGPUSystem.simulate",
        }


class TestCacheKeyUnsound:
    def test_always_excluded_flow_is_an_error(self):
        report = lint(api=LEAKY_RUN)
        errs = [
            d for d in report.diagnostics if d.rule == "cachekey-unsound"
        ]
        assert len(errs) == 1
        assert errs[0].severity == Severity.ERROR
        assert "'spec.kernel'" in errs[0].message
        assert "api.py:" in errs[0].location

    def test_sanitize_annotation_discharges(self):
        src = LEAKY_RUN.replace(
            'stats["backend"] = spec.kernel',
            'stats["backend"] = spec.kernel'
            "  # taint: sanitize(spec.kernel)",
        )
        assert "cachekey-unsound" not in rules_hit(lint(api=src))

    def test_when_none_unguarded_flow_is_an_error(self):
        src = LEAKY_RUN.replace(
            'stats["backend"] = spec.kernel',
            'stats["interval"] = spec.telemetry or 100',
        )
        errs = [
            d
            for d in lint(api=src).diagnostics
            if d.rule == "cachekey-unsound"
        ]
        assert len(errs) == 1
        assert "'spec.telemetry'" in errs[0].message

    def test_when_none_guarded_flow_is_clean(self):
        src = LEAKY_RUN.replace(
            'stats["backend"] = spec.kernel',
            'stats["interval"] = ('
            "spec.telemetry if spec.telemetry is not None else 100)",
        )
        assert "cachekey-unsound" not in rules_hit(lint(api=src))

    def test_keyed_field_flow_is_clean(self):
        src = LEAKY_RUN.replace(
            'stats["backend"] = spec.kernel',
            'stats["benchmark"] = spec.benchmark',
        )
        assert "cachekey-unsound" not in rules_hit(lint(api=src))


class TestOverheadNotFree:
    def test_unconditional_collector_call_is_an_error(self):
        report = lint(system=HOT_COLLECTOR)
        errs = [
            d for d in report.diagnostics if d.rule == "overhead-not-free"
        ]
        assert len(errs) == 1
        assert errs[0].severity == Severity.ERROR
        assert "TraceCollector.record" in errs[0].message

    def test_non_none_gate_on_telemetry_chain_is_clean(self):
        report = lint(system="""
            class TelemetryCollector:
                def record(self, cycle):
                    pass


            class MeshSystem:
                def __init__(self, telemetry=None):
                    self.telemetry = telemetry

                def simulate(self, cycles):
                    for c in range(cycles):
                        if self.telemetry is not None:
                            self.telemetry.record(c)
                    return cycles
        """)
        assert "overhead-not-free" not in rules_hit(report)

    def test_gated_annotation_discharges(self):
        src = HOT_COLLECTOR.replace(
            "tap.record(c)", "tap.record(c)  # taint: gated"
        )
        assert "overhead-not-free" not in rules_hit(lint(system=src))

    def test_reachability_is_interprocedural(self):
        report = lint(system="""
            class FaultInjector:
                def poke(self):
                    pass


            def deep():
                inj = FaultInjector()
                inj.poke()


            def middle():
                deep()


            class MeshSystem:
                def simulate(self, cycles):
                    middle()
                    return cycles
        """)
        # The component call sits two plain-function frames below the
        # entry point; the BFS over call edges still reaches it.
        assert "overhead-not-free" in rules_hit(report)


class TestDetTaint:
    def test_wallclock_into_stats_state_warns(self):
        report = lint(executor="""
            import time


            class RunStats:
                pass


            def simulate_spec(spec):
                stats = RunStats()
                stats.wall = time.time()
                return 0
        """)
        warns = [d for d in report.diagnostics if d.rule == "det-taint"]
        assert len(warns) == 1
        assert warns[0].severity == Severity.WARNING
        assert "src:wallclock" in warns[0].message

    def test_rng_into_return_warns(self):
        report = lint(executor="""
            import random


            def simulate_spec(spec):
                return random.random()
        """)
        warns = [d for d in report.diagnostics if d.rule == "det-taint"]
        assert warns and "src:rng" in warns[0].message

    def test_sanitize_discharges_diagnostic_timing(self):
        report = lint(executor="""
            import time


            class RunStats:
                pass


            def simulate_spec(spec):
                stats = RunStats()
                stats.wall = time.time()  # taint: sanitize(wallclock)
                return 0
        """)
        assert "det-taint" not in rules_hit(report)

    def test_non_result_state_is_not_flagged(self):
        report = lint(executor="""
            import time


            class Progress:
                pass


            def simulate_spec(spec):
                bar = Progress()
                bar.started = time.time()
                return 0
        """)
        assert "det-taint" not in rules_hit(report)


class TestLintSource:
    def test_single_module_entry_point(self):
        report = lint_source(
            textwrap.dedent(LEAKY_RUN), "api.py"
        )
        assert "cachekey-unsound" in rules_hit(report)

    def test_syntax_error_module_is_skipped(self):
        report = lint_source("def broken(:\n", "api.py")
        assert report.ok
