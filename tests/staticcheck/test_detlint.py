"""Determinism-lint (AST) tests."""

import textwrap

from repro.staticcheck.detlint import lint_paths, lint_source


def lint(code):
    return lint_source(textwrap.dedent(code), path="mod.py")


def rules_of(report):
    return set(report.rules_hit())


class TestDetRandom:
    def test_global_rng_call_flagged(self):
        report = lint("""
            import random
            def pick(items):
                return random.choice(items)
        """)
        assert rules_of(report) == {"det-random"}
        assert "mod.py:4" in report.diagnostics[0].location

    def test_numpy_global_rng_flagged(self):
        report = lint("""
            import numpy as np
            x = np.random.randint(0, 10)
        """)
        assert rules_of(report) == {"det-random"}

    def test_from_import_of_global_fn_flagged(self):
        report = lint("from random import shuffle, randint\n")
        assert rules_of(report) == {"det-random"}
        assert "shuffle" in report.diagnostics[0].message

    def test_seeded_instance_allowed(self):
        report = lint("""
            import random
            rng = random.Random(3)
            x = rng.random()
            y = rng.sample(range(10), 2)
        """)
        assert len(report) == 0

    def test_from_import_of_class_allowed(self):
        report = lint("from random import Random\nrng = Random(1)\n")
        assert len(report) == 0


class TestDetWallclock:
    def test_time_calls_flagged(self):
        report = lint("""
            import time
            def stamp():
                return time.time()
        """)
        assert rules_of(report) == {"det-wallclock"}

    def test_datetime_now_flagged(self):
        report = lint("""
            import datetime
            t = datetime.datetime.now()
        """)
        assert rules_of(report) == {"det-wallclock"}

    def test_from_import_flagged(self):
        report = lint("from time import perf_counter\n")
        assert rules_of(report) == {"det-wallclock"}

    def test_sleep_not_flagged(self):
        report = lint("import time\ntime.sleep(1)\n")
        assert len(report) == 0


class TestDetSetIter:
    def test_for_over_set_literal(self):
        report = lint("""
            for x in {1, 2, 3}:
                print(x)
        """)
        assert rules_of(report) == {"det-set-iter"}

    def test_for_over_set_typed_local(self):
        report = lint("""
            def arbitrate(reqs):
                ready = set(reqs)
                for r in ready:
                    yield r
        """)
        assert rules_of(report) == {"det-set-iter"}

    def test_comprehension_over_set_call(self):
        report = lint("xs = [x for x in set(range(3))]\n")
        assert rules_of(report) == {"det-set-iter"}

    def test_sorted_set_allowed(self):
        report = lint("""
            ready = set()
            for r in sorted(ready):
                print(r)
        """)
        assert len(report) == 0

    def test_membership_test_allowed(self):
        report = lint("""
            seen = set()
            def check(x):
                return x in seen
        """)
        assert len(report) == 0

    def test_rebound_name_not_flagged(self):
        report = lint("""
            items = set()
            items = sorted(items)
            for x in items:
                print(x)
        """)
        assert len(report) == 0


class TestDetFloatCycle:
    def test_float_augassign_flagged(self):
        report = lint("""
            cycle = 0
            cycle += 0.5
        """)
        assert rules_of(report) == {"det-float-cycle"}

    def test_float_binop_assign_flagged(self):
        report = lint("next_tick = now + 1.5\n")
        assert rules_of(report) == {"det-float-cycle"}

    def test_attribute_counter_flagged(self):
        report = lint("""
            class Clock:
                def advance(self):
                    self.cycle += 2.0
        """)
        assert rules_of(report) == {"det-float-cycle"}

    def test_integer_arithmetic_allowed(self):
        report = lint("""
            cycle = 0
            cycle += 1
            next_cycle = cycle + 4
        """)
        assert len(report) == 0

    def test_non_cycle_names_allowed(self):
        report = lint("ratio = 1.0\nratio += 0.5\n")
        assert len(report) == 0


class TestSuppression:
    def test_bare_allow(self):
        report = lint("""
            import time
            t = time.time()  # det: allow
        """)
        assert len(report) == 0

    def test_named_allow_matches(self):
        report = lint("""
            import time
            t = time.time()  # det: allow(det-wallclock)
        """)
        assert len(report) == 0

    def test_named_allow_for_other_rule_does_not_match(self):
        report = lint("""
            import time
            t = time.time()  # det: allow(det-random)
        """)
        assert rules_of(report) == {"det-wallclock"}


class TestFilesAndErrors:
    def test_syntax_error_reported_not_raised(self):
        report = lint_source("def broken(:\n", path="bad.py")
        assert not report.ok
        assert "cannot parse" in report.diagnostics[0].message

    def test_lint_paths_walks_tree(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text("import time\nx = time.time()\n")
        (pkg / "b.py").write_text("y = 1\n")
        cache = pkg / "__pycache__"
        cache.mkdir()
        (cache / "a.cpython-312.py").write_text("import time\ntime.time()\n")
        report = lint_paths([str(tmp_path)])
        assert len(report) == 1
        assert report.diagnostics[0].location.endswith("a.py:2")

    def test_repo_simulator_sources_are_clean(self):
        """Acceptance: the determinism lint runs clean on src/repro."""
        import repro

        root = repro.__path__[0]
        report = lint_paths([root])
        assert len(report) == 0, report.render()


class TestMultiLineSuppression:
    """Suppressions on the statement's first line cover the whole
    statement, including nodes on continuation lines (regression: a
    ``# det: allow`` above the flagged line of a multi-line expression
    used to be ignored)."""

    def test_statement_first_line_covers_continuation(self):
        report = lint("""
            import time
            elapsed = (  # det: allow(det-wallclock)
                time.time()
                - start
            )
        """)
        assert len(report) == 0

    def test_bare_allow_on_first_line_covers_continuation(self):
        report = lint("""
            import time
            elapsed = (  # det: allow
                time.time()
            )
        """)
        assert len(report) == 0

    def test_unsuppressed_multiline_still_flagged(self):
        report = lint("""
            import time
            elapsed = (
                time.time()
            )
        """)
        assert rules_of(report) == {"det-wallclock"}

    def test_wrong_rule_name_on_first_line_does_not_suppress(self):
        report = lint("""
            import time
            elapsed = (  # det: allow(det-random)
                time.time()
            )
        """)
        assert rules_of(report) == {"det-wallclock"}

    def test_suppression_scoped_to_its_own_statement(self):
        report = lint("""
            import time
            a = (  # det: allow(det-wallclock)
                time.time()
            )
            b = time.time()
        """)
        assert rules_of(report) == {"det-wallclock"}
        assert report.diagnostics[0].location.endswith(":6")


class TestCallerChainHints:
    SRC = """
        import random

        def draw():
            return random.random()

        def helper():
            return draw()

        def sweep_entry():
            return helper()
    """

    def test_hint_names_the_full_call_chain(self):
        from repro.staticcheck.callgraph import build_call_graph

        src = textwrap.dedent(self.SRC)
        graph = build_call_graph([("mod.py", src)])
        report = lint_source(src, path="mod.py", graph=graph)
        [diag] = report.diagnostics
        assert (
            "reached via mod.sweep_entry -> mod.helper -> mod.draw"
            in diag.hint
        )
        # The original remediation advice survives in front of the chain.
        assert diag.hint.startswith("use a seeded random.Random")

    def test_no_graph_means_no_chain(self):
        report = lint(self.SRC)
        assert "reached via" not in report.diagnostics[0].hint

    def test_chain_only_for_nondeterminism_rules(self):
        from repro.staticcheck.callgraph import build_call_graph

        src = textwrap.dedent("""
            def spin(items):
                for x in set(items):
                    yield x

            def entry(items):
                return list(spin(items))
        """)
        graph = build_call_graph([("mod.py", src)])
        report = lint_source(src, path="mod.py", graph=graph)
        [diag] = report.diagnostics
        assert diag.rule == "det-set-iter"
        assert "reached via" not in diag.hint

    def test_lint_paths_builds_the_graph_itself(self, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text(textwrap.dedent(self.SRC))
        report = lint_paths([str(mod)])
        [diag] = report.diagnostics
        assert "reached via" in diag.hint
