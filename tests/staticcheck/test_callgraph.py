"""Call-graph builder tests — resolution corners and graph queries."""

import textwrap

from repro.staticcheck.callgraph import (
    build_call_graph,
    chain_of,
    final_attr,
    module_name_for,
)


def graph_of(**sources):
    """Build a graph from ``name=source`` pairs (name -> name.py)."""
    items = [
        (f"{name}.py", textwrap.dedent(src))
        for name, src in sorted(sources.items())
    ]
    return build_call_graph(items)


class TestModuleNames:
    def test_src_prefix_stripped(self):
        assert module_name_for("src/repro/noc/router.py") == "repro.noc.router"

    def test_init_dropped(self):
        assert module_name_for("src/repro/__init__.py") == "repro"


class TestResolution:
    def test_plain_function_call(self):
        g = graph_of(m="""
            def helper():
                pass

            def entry():
                helper()
        """)
        sites = g.calls["m.entry"]
        assert ["m.helper"] == [t for s in sites for t in s.targets]

    def test_decorated_method_still_resolves(self):
        g = graph_of(m="""
            import functools

            class C:
                @functools.lru_cache(maxsize=None)
                def cached(self):
                    return 1

                def run(self):
                    return self.cached()
        """)
        targets = [
            t for s in g.calls["m.C.run"] for t in s.targets
        ]
        assert "m.C.cached" in targets

    def test_super_dispatch_resolves_to_base(self):
        g = graph_of(m="""
            class Base:
                def step(self):
                    pass

            class Derived(Base):
                def step(self):
                    super().step()
        """)
        sites = [s for s in g.calls["m.Derived.step"] if s.kind == "super"]
        assert sites and list(sites[0].targets) == ["m.Base.step"]

    def test_self_call_includes_subclass_overrides(self):
        g = graph_of(m="""
            class Base:
                def run(self):
                    self.step()

                def step(self):
                    pass

            class Derived(Base):
                def step(self):
                    pass
        """)
        targets = {
            t for s in g.calls["m.Base.run"] for t in s.targets
        }
        assert {"m.Base.step", "m.Derived.step"} <= targets

    def test_property_access_resolves_as_value(self):
        g = graph_of(m="""
            class C:
                @property
                def depth(self):
                    return 3

                def use(self):
                    return self.depth + 1
        """)
        sites = [s for s in g.calls["m.C.use"] if s.kind == "property"]
        assert sites and list(sites[0].targets) == ["m.C.depth"]
        assert g.functions["m.C.depth"].is_property

    def test_aliased_import_resolves_across_modules(self):
        g = graph_of(
            util="""
                def compute():
                    pass
            """,
            app="""
                from util import compute as c

                def entry():
                    c()
            """,
        )
        targets = [t for s in g.calls["app.entry"] for t in s.targets]
        assert targets == ["util.compute"]

    def test_instance_local_method_call(self):
        g = graph_of(m="""
            class Widget:
                def poke(self):
                    pass

            def entry():
                w = Widget()
                w.poke()
        """)
        targets = [t for s in g.calls["m.entry"] for t in s.targets]
        assert "m.Widget.__init__" not in targets  # no ctor defined
        assert "m.Widget.poke" in targets

    def test_generic_method_name_not_guessed(self):
        g = graph_of(m="""
            class C:
                def append(self, x):
                    pass

            def entry(items):
                items.append(1)
        """)
        # ``items`` is untyped and ``append`` is a generic container
        # method: resolution must NOT guess C.append.
        targets = [t for s in g.calls["m.entry"] for t in s.targets]
        assert targets == []


class TestQueries:
    def test_flattened_methods_prefer_overrides(self):
        g = graph_of(m="""
            class Base:
                def a(self):
                    pass

                def b(self):
                    pass

            class Derived(Base):
                def b(self):
                    pass
        """)
        flat = g.flattened_methods("m.Derived")
        assert flat["a"].qname == "m.Base.a"
        assert flat["b"].qname == "m.Derived.b"

    def test_reachable_and_call_chain(self):
        g = graph_of(m="""
            def a():
                b()

            def b():
                c()

            def c():
                pass
        """)
        assert set(g.reachable(["m.a"])) == {"m.a", "m.b", "m.c"}
        assert g.call_chain("m.a", "m.c") == ["m.a", "m.b", "m.c"]

    def test_recursive_scc_groups_cycle(self):
        g = graph_of(m="""
            def even(n):
                return n == 0 or odd(n - 1)

            def odd(n):
                return n != 0 and even(n - 1)

            def entry(n):
                return even(n)
        """)
        sccs = [set(s) for s in g.sccs()]
        assert {"m.even", "m.odd"} in sccs
        # reverse-topological: the cycle is emitted before its caller
        cycle_pos = sccs.index({"m.even", "m.odd"})
        entry_pos = sccs.index({"m.entry"})
        assert cycle_pos < entry_pos

    def test_function_at_finds_innermost(self):
        src = textwrap.dedent("""
            class C:
                def outer(self):
                    x = 1
                    return x
        """)
        g = build_call_graph([("m.py", src)])
        fn = g.function_at("m.py", 4)
        assert fn is not None and fn.qname == "m.C.outer"

    def test_syntax_error_recorded_not_raised(self):
        g = build_call_graph([("bad.py", "def broken(:\n")])
        assert "bad.py" in g.errors
        assert not g.functions


class TestChains:
    def test_chain_of_subscript_and_attr(self):
        import ast

        expr = ast.parse("self.routers[3].vcs", mode="eval").body
        chain = chain_of(expr, {})
        assert chain == "self.routers[].vcs"
        assert final_attr(chain) == "vcs"


class TestWalrusAndZip:
    def test_walrus_binds_like_assignment(self):
        g = graph_of(m="""
            class Router:
                def tick(self):
                    pass

            def f():
                if (r := Router()) is not None:
                    r.tick()
        """)
        sites = g.calls["m.f"]
        assert any("m.Router.tick" in s.targets for s in sites)

    def test_chain_passes_through_walrus(self):
        import ast

        expr = ast.parse("(x := net.router)", mode="eval").body
        assert chain_of(expr, {}) == "net.router"

    def test_zip_loop_binds_positional_elements(self):
        import textwrap

        src = textwrap.dedent("""
            class Router:
                def tick(self):
                    pass

            class Link:
                def pulse(self):
                    pass

            class Net:
                def step(self):
                    for r, ln in zip(self.routers, self.links):
                        r.tick()
                        ln.pulse()
        """)
        g = build_call_graph(
            [("m.py", src)],
            {"routers[]": ("Router",), "links[]": ("Link",)},
        )
        targets = {
            t for s in g.calls["m.Net.step"] for t in s.targets
        }
        assert {"m.Router.tick", "m.Link.pulse"} <= targets

    def test_starred_target_aliases_the_element(self):
        import textwrap

        src = textwrap.dedent("""
            class Router:
                def tick(self):
                    pass

            class Net:
                def step(self):
                    head, *rest = self.routers
                    for r in rest:
                        r.tick()
        """)
        g = build_call_graph([("m.py", src)], {"routers[]": ("Router",)})
        targets = {
            t for s in g.calls["m.Net.step"] for t in s.targets
        }
        assert "m.Router.tick" in targets

    def test_setdefault_aliases_an_element(self):
        import ast

        expr = ast.parse("table.setdefault(k, [])", mode="eval").body
        assert chain_of(expr, {}) == "table[]"
