"""Grandfathered-findings baseline tests."""

import pytest

from repro.staticcheck import baseline
from repro.staticcheck.diagnostics import CheckReport, Severity


def report_with(*entries):
    report = CheckReport()
    for rule, location, message in entries:
        report.add(rule, Severity.WARNING, location, message, "hint")
    return report


class TestFingerprint:
    def test_line_number_independent(self):
        a = report_with(("unit-mix", "src/m.py:10", "mixes flits with cycles"))
        b = report_with(("unit-mix", "src/m.py:99", "mixes flits with cycles"))
        assert baseline.fingerprint(a.diagnostics[0]) == baseline.fingerprint(
            b.diagnostics[0]
        )

    def test_distinguishes_rule_path_message(self):
        diags = report_with(
            ("unit-mix", "src/m.py:1", "msg"),
            ("pool-capture", "src/m.py:1", "msg"),
            ("unit-mix", "src/other.py:1", "msg"),
            ("unit-mix", "src/m.py:1", "other msg"),
        ).diagnostics
        fps = {baseline.fingerprint(d) for d in diags}
        assert len(fps) == 4


class TestRoundTrip:
    def test_save_load_apply(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        findings = report_with(
            ("unit-mix", "src/m.py:10", "mixes flits with cycles"),
            ("proto-push-guard", "src/n.py:5", "push without guard"),
        )
        assert baseline.save(path, findings) == 2

        # identical findings (different lines) are fully absorbed
        fresh_scan = report_with(
            ("unit-mix", "src/m.py:12", "mixes flits with cycles"),
            ("proto-push-guard", "src/n.py:7", "push without guard"),
        )
        remaining, matched, stale = baseline.apply(
            fresh_scan, baseline.load(path)
        )
        assert matched == 2
        assert len(remaining) == 0
        assert stale == []

    def test_new_finding_not_absorbed(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        baseline.save(
            path, report_with(("unit-mix", "src/m.py:10", "old finding"))
        )
        scan = report_with(
            ("unit-mix", "src/m.py:10", "old finding"),
            ("unit-mix", "src/m.py:20", "brand new finding"),
        )
        remaining, matched, stale = baseline.apply(scan, baseline.load(path))
        assert matched == 1
        assert len(remaining) == 1
        assert "brand new" in remaining.diagnostics[0].message

    def test_counts_limit_duplicate_findings(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        baseline.save(
            path, report_with(("unit-mix", "src/m.py:10", "dup"))
        )
        scan = report_with(
            ("unit-mix", "src/m.py:10", "dup"),
            ("unit-mix", "src/m.py:30", "dup"),
        )
        remaining, matched, _stale = baseline.apply(scan, baseline.load(path))
        assert matched == 1
        assert len(remaining) == 1  # the second instance still fails

    def test_stale_entries_reported(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        baseline.save(
            path, report_with(("unit-mix", "src/m.py:10", "fixed since"))
        )
        remaining, matched, stale = baseline.apply(
            report_with(), baseline.load(path)
        )
        assert matched == 0
        assert len(remaining) == 0
        assert len(stale) == 1 and "fixed since" in stale[0]


class TestLoadValidation:
    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert baseline.load(str(tmp_path / "absent.json")) == {}

    def test_malformed_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            baseline.load(str(path))

    def test_wrong_version_raises(self, tmp_path):
        path = tmp_path / "v0.json"
        path.write_text('{"version": 0, "findings": []}')
        with pytest.raises(ValueError, match="unsupported format"):
            baseline.load(str(path))

    def test_saved_file_is_sorted_and_versioned(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        baseline.save(
            path,
            report_with(
                ("z-rule", "src/z.py:1", "zz"),
                ("a-rule", "src/a.py:1", "aa"),
            ),
        )
        import json

        payload = json.load(open(path))
        assert payload["version"] == 1
        fps = [f["fingerprint"] for f in payload["findings"]]
        assert fps == sorted(fps)


class TestUpdate:
    def test_update_prunes_stale_fingerprints(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        baseline.save(path, report_with(
            ("unit-mix", "src/m.py:1", "old finding"),
            ("unit-mix", "src/m.py:2", "kept finding"),
        ))
        count, pruned = baseline.update(
            path, report_with(("unit-mix", "src/m.py:9", "kept finding"))
        )
        assert count == 1
        assert pruned == ["unit-mix::src/m.py::old finding"]
        assert set(baseline.load(path)) == {
            "unit-mix::src/m.py::kept finding"
        }

    def test_update_from_missing_file_prunes_nothing(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        count, pruned = baseline.update(
            path, report_with(("unit-mix", "src/m.py:1", "msg"))
        )
        assert count == 1
        assert pruned == []
        assert len(baseline.load(path)) == 1

    def test_update_tolerates_malformed_old_file(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("not json")
        count, pruned = baseline.update(
            str(path), report_with(("unit-mix", "src/m.py:1", "msg"))
        )
        assert count == 1
        assert pruned == []
        assert len(baseline.load(str(path))) == 1
