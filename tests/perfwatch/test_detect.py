"""Detector tests on synthetic ledger histories.

The satellite contract: flat noise produces no finding, a step
regression gates, a step improvement informs, a high-variance series
suppresses itself through its wide MAD band, and the min-samples guard
keeps short histories from ever gating.
"""

from repro.perfwatch import (
    COUNTER,
    HIGHER_BETTER,
    LOWER_BETTER,
    MetricPolicy,
    detect,
    detect_series,
    pin_baseline,
    policy_for,
    robust_band,
)
from repro.perfwatch.detect import DEFAULT_POLICY, EITHER
from repro.staticcheck.diagnostics import Severity

from tests.perfwatch.conftest import record, series

KEY = ("simulator_speed", "full_system.cycles_per_sec")
RATE_POLICY = policy_for("full_system.cycles_per_sec")


def run_series(values, policy=RATE_POLICY, **kwargs):
    return detect_series(KEY, series(values), policy, **kwargs)


class TestPolicyTable:
    def test_first_match_wins_and_directions(self):
        assert policy_for("x.cycles_per_sec").direction == HIGHER_BETTER
        assert policy_for("serial.wall_s").direction == LOWER_BETTER
        assert policy_for("rows[scheme=a].ipc").direction == HIGHER_BETTER
        assert policy_for("rows[scheme=a].reply_latency").direction == LOWER_BETTER
        assert policy_for("full_system.cycles").direction == COUNTER
        assert policy_for("host_cpus").direction == COUNTER
        assert policy_for("something_unheard_of") is DEFAULT_POLICY

    def test_custom_table(self):
        table = (("special*", MetricPolicy(LOWER_BETTER)),)
        assert policy_for("special_metric", table).direction == LOWER_BETTER
        assert policy_for("other", table) is DEFAULT_POLICY


class TestRobustBand:
    def test_flat_series_band_is_noise_floor(self):
        center, lo, hi = robust_band([100.0] * 5, MetricPolicy(noise_floor=0.1))
        assert center == 100.0
        assert (lo, hi) == (90.0, 110.0)

    def test_one_outlier_does_not_blow_up_the_band(self):
        tight = robust_band([100.0] * 9 + [500.0], RATE_POLICY)
        assert tight[2] < 150.0  # MAD ignores the single outlier

    def test_high_variance_widens_band(self):
        noisy = [100.0, 140.0, 70.0, 130.0, 80.0, 120.0]
        _, lo, hi = robust_band(noisy, RATE_POLICY)
        assert hi - lo > 100.0


class TestDetection:
    def test_flat_noise_no_finding(self):
        assert run_series([100.0, 101.5, 99.0, 100.5, 99.5, 100.2]) == []

    def test_step_regression_is_error(self):
        findings = run_series([100.0, 101.0, 99.5, 100.5, 50.0])
        assert len(findings) == 1
        f = findings[0]
        assert f.rule == "pw-regression"
        assert f.severity == Severity.ERROR
        assert f.metric == KEY[1]
        assert f.baseline_median is not None
        assert f.band is not None and f.band[0] > 50.0
        assert "band [" in f.message

    def test_small_drift_is_warning(self):
        # Outside the 10% noise floor but under the 25% error threshold.
        findings = run_series([100.0, 100.2, 99.8, 100.1, 85.0])
        assert len(findings) == 1
        assert findings[0].severity == Severity.WARNING
        assert "drifted" in findings[0].message

    def test_step_improvement_is_info(self):
        findings = run_series([100.0, 101.0, 99.5, 100.5, 200.0])
        assert len(findings) == 1
        assert findings[0].rule == "pw-improvement"
        assert findings[0].severity == Severity.INFO

    def test_improvements_suppressible(self):
        assert run_series(
            [100.0, 101.0, 99.5, 100.5, 200.0], include_improvements=False
        ) == []

    def test_high_variance_suppressed_by_mad_band(self):
        # Same 50% drop at head, but the history itself swings that much:
        # the band absorbs it.
        noisy = [100.0, 160.0, 60.0, 150.0, 70.0, 140.0, 75.0]
        assert run_series(noisy) == []

    def test_min_samples_guard(self):
        # A 2-point (and 3-point) history must never gate, however bad.
        assert run_series([100.0, 1.0]) == []
        assert run_series([100.0, 100.0, 1.0]) == []
        # At min_samples the gate engages.
        assert run_series([100.0, 100.0, 100.0, 1.0]) != []

    def test_lower_better_direction(self):
        wall = policy_for("serial.wall_s")
        regress = detect_series(
            ("b", "serial.wall_s"),
            series([2.0, 2.1, 1.9, 2.0, 4.0], metric="serial.wall_s"),
            wall,
        )
        assert regress[0].rule == "pw-regression"
        improve = detect_series(
            ("b", "serial.wall_s"),
            series([2.0, 2.1, 1.9, 2.0, 1.0], metric="serial.wall_s"),
            wall,
        )
        assert improve[0].rule == "pw-improvement"

    def test_either_direction_caps_at_warning(self):
        policy = MetricPolicy(EITHER, noise_floor=0.05)
        findings = detect_series(KEY, series([1.0, 1.0, 1.0, 1.0, 9.0]), policy)
        assert findings[0].severity == Severity.WARNING
        assert "moved" in findings[0].message

    def test_counter_never_gates(self):
        policy = MetricPolicy(COUNTER)
        assert detect_series(KEY, series([300.0, 300.0, 300.0, 600.0]),
                             policy) == []

    def test_changed_axes_in_message(self):
        recs = series([100.0, 101.0, 99.5, 100.5])
        recs.append(record(50.0, sha="head", fingerprint="fp-new",
                           config={"mesh": 8}))
        findings = detect_series(KEY, recs, RATE_POLICY)
        assert findings[0].changed_axes == {"config.mesh": (6, 8)}
        assert "config.mesh: 6 -> 8" in findings[0].message

    def test_unchanged_axes_in_message(self):
        findings = run_series([100.0, 101.0, 99.5, 100.5, 50.0])
        assert findings[0].changed_axes == {}
        assert "no config/host axes changed" in findings[0].message


class TestPinnedBaseline:
    def test_pinned_band_gates_short_history(self):
        pinned = {"median": 100.0, "lo": 90.0, "hi": 110.0, "n": 8}
        findings = detect_series(KEY, series([50.0]), RATE_POLICY,
                                 pinned=pinned)
        assert findings and findings[0].severity == Severity.ERROR
        assert "pinned baseline" in findings[0].message

    def test_pinned_band_accepts_in_band_value(self):
        pinned = {"median": 100.0, "lo": 90.0, "hi": 110.0, "n": 8}
        assert detect_series(KEY, series([105.0]), RATE_POLICY,
                             pinned=pinned) == []

    def test_malformed_pinned_entry_ignored(self):
        assert detect_series(KEY, series([50.0]), RATE_POLICY,
                             pinned={"median": "x"}) == []


class TestLedgerLevel:
    def test_detect_over_ledger(self, ledger):
        ledger.append(series([100.0, 101.0, 99.5, 100.5, 50.0]))
        findings = detect(ledger)
        assert [f.rule for f in findings] == ["pw-regression"]

    def test_pin_baseline_skips_counters(self, ledger):
        ledger.append(series([100.0, 101.0]))
        ledger.append(series([300.0, 300.0], metric="full_system.cycles"))
        baseline = pin_baseline(ledger)
        assert "simulator_speed::full_system.cycles_per_sec" in baseline
        assert "simulator_speed::full_system.cycles" not in baseline

    def test_pinned_baseline_used_from_ledger(self, ledger):
        ledger.append(series([100.0, 101.0]))
        ledger.save_baseline(pin_baseline(ledger))
        ledger.append([record(30.0, sha="head")])
        findings = detect(ledger)  # 3 records: below min_samples, but pinned
        assert findings and findings[0].rule == "pw-regression"
        assert detect(ledger, use_pinned=False) == []
