"""Tests for driver analysis (axis attribution) and data-quality checks."""

import json
import os

from repro.perfwatch import attribute_axes, data_quality, format_axes
from repro.staticcheck.diagnostics import Severity

from tests.perfwatch.conftest import record, series


def rules(findings):
    return sorted(f.rule for f in findings)


class TestAttributeAxes:
    def test_empty_for_short_history(self):
        assert attribute_axes([]) == {}
        assert attribute_axes([record(1.0)]) == {}

    def test_no_axes_when_fingerprint_stable(self):
        assert attribute_axes(series([1.0, 2.0, 3.0])) == {}

    def test_diffs_nearest_different_fingerprint(self):
        recs = series([1.0, 2.0])
        recs.append(record(3.0, sha="head", fingerprint="fp-new",
                           config={"mesh": 8}, seed=9))
        axes = attribute_axes(recs)
        assert axes == {"config.mesh": (6, 8), "seed": (3, 9)}

    def test_format_axes(self):
        assert format_axes({}) == "no config/host axes changed"
        text = format_axes({"config.mesh": (6, 8)})
        assert text == "changed axes: config.mesh: 6 -> 8"
        many = {f"a{i}": (0, 1) for i in range(9)}
        assert "(+3 more)" in format_axes(many, limit=6)


class TestDataQuality:
    def test_clean_history_no_findings(self, ledger):
        ledger.append(series([1.0, 2.0]))
        assert data_quality(ledger) == []

    def test_missing_bench_at_head(self, ledger):
        ledger.append(series([1.0, 2.0]))
        ledger.append([record(5.0, bench="other", metric="m", sha="sha0")])
        findings = data_quality(ledger)
        assert rules(findings) == ["pw-missing-bench"]
        f = findings[0]
        assert f.bench == "other"
        assert f.severity == Severity.WARNING
        assert "1 commit(s) behind" in f.message

    def test_stale_table_past_threshold(self, ledger):
        ledger.append(series([1.0, 2.0, 3.0, 4.0]))
        ledger.append([record(5.0, bench="old", metric="m", sha="sha0")])
        findings = data_quality(ledger, stale_after=3)
        assert rules(findings) == ["pw-missing-bench", "pw-stale-table"]
        stale = [f for f in findings if f.rule == "pw-stale-table"][0]
        assert "3 distinct commit(s) behind" in stale.message

    def test_counter_drift_same_fingerprint(self, ledger):
        ledger.append(series(
            [400.0, 400.0, 800.0], metric="full_system.cycles"))
        findings = data_quality(ledger)
        assert rules(findings) == ["pw-counter-drift"]
        assert "400 -> 800" in findings[0].message

    def test_counter_change_with_new_fingerprint_ok(self, ledger):
        ledger.append([
            record(400.0, metric="full_system.cycles", sha="a"),
            record(800.0, metric="full_system.cycles", sha="b",
                   fingerprint="fp-new", config={"mesh": 8}),
        ])
        assert data_quality(ledger) == []

    def test_uningested_table(self, ledger, tmp_path):
        ledger.append(series([1.0]))
        tables = tmp_path / "tables"
        tables.mkdir()
        with open(tables / "BENCH_orphan.json", "w") as fh:
            json.dump({"x": 1.0}, fh)
        findings = data_quality(ledger, tables_dir=str(tables))
        assert rules(findings) == ["pw-uningested-table"]
        assert findings[0].severity == Severity.INFO
        assert findings[0].bench == "orphan"

    def test_ledger_skip_lines_reported(self, ledger):
        ledger.append(series([1.0]))
        with open(ledger.path, "a") as fh:
            fh.write("garbage\n")
        ledger.records()  # refresh skipped_lines
        findings = data_quality(ledger)
        assert rules(findings) == ["pw-ledger-skip"]
        assert "1 unparseable" in findings[0].message

    def test_missing_tables_dir_is_fine(self, ledger):
        ledger.append(series([1.0]))
        missing = os.path.join(str(ledger.root), "nope")
        assert data_quality(ledger, tables_dir=missing) == []
