"""Shared fixtures for the perfwatch tests."""

import pytest

from repro.perfwatch import LedgerRecord, PerfLedger


def record(
    value,
    *,
    bench="simulator_speed",
    metric="full_system.cycles_per_sec",
    sha="sha0",
    fingerprint="fp0",
    config=None,
    host=None,
    seed=3,
):
    return LedgerRecord(
        bench=bench,
        metric=metric,
        value=float(value),
        sha=sha,
        fingerprint=fingerprint,
        ts="2026-08-07T00:00:00Z",
        seed=seed,
        config=dict(config or {"mesh": 6}),
        host=dict(host or {"cpus": 8}),
    )


def series(values, **kwargs):
    """One record per value, each at its own commit sha."""
    return [
        record(v, sha=f"sha{i}", **kwargs) for i, v in enumerate(values)
    ]


@pytest.fixture
def ledger(tmp_path):
    return PerfLedger(str(tmp_path / "ledger"))


@pytest.fixture
def make_record():
    return record


@pytest.fixture
def make_series():
    return series
