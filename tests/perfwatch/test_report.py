"""Tests for the markdown/JSON perfwatch reports."""

from repro.perfwatch import (
    data_quality,
    detect,
    render_json,
    render_markdown,
    series_rows,
    sort_findings,
)

from tests.perfwatch.conftest import record, series

REGRESSION = [100.0, 101.0, 99.5, 100.5, 50.0]


def regressed_ledger(ledger):
    ledger.append(series(REGRESSION))
    ledger.append(series([1.0, 2.0], metric="other.count"))
    return ledger


class TestSeriesRows:
    def test_one_row_per_series(self, ledger):
        regressed_ledger(ledger)
        rows = series_rows(ledger)
        assert [r["series"] for r in rows] == [
            "simulator_speed::full_system.cycles_per_sec",
            "simulator_speed::other.count",
        ]
        row = rows[0]
        assert row["n"] == 5
        assert row["last"] == 50.0
        assert row["last_sha"] == "sha4"
        assert row["direction"] == "higher_better"
        assert row["band"][0] < row["median"] < row["band"][1]

    def test_single_sample_degenerate_band(self, ledger):
        ledger.append([record(7.0)])
        row = series_rows(ledger)[0]
        assert row["median"] == row["last"] == 7.0
        assert row["band"] == [7.0, 7.0]


class TestMarkdown:
    def test_findings_and_trend_table(self, ledger):
        regressed_ledger(ledger)
        findings = sort_findings(detect(ledger) + data_quality(ledger))
        text = render_markdown(ledger, findings)
        assert "# perfwatch report" in text
        assert "**error** `pw-regression`" in text
        assert "full_system.cycles_per_sec regressed" in text
        assert "| series | n | median | last |" in text
        # The sparkline shows the cliff; counters are labelled, not judged.
        assert "`simulator_speed::full_system.cycles_per_sec` | 5" in text
        assert "| counter |" in text

    def test_no_findings_message(self, ledger):
        ledger.append(series([1.0, 1.0, 1.0, 1.0]))
        text = render_markdown(ledger, [])
        assert "every tracked KPI is inside its baseline band" in text

    def test_max_series_truncates(self, ledger):
        regressed_ledger(ledger)
        text = render_markdown(ledger, [], max_series=1)
        assert "1 more series not shown" in text
        assert "other.count" not in text


class TestJson:
    def test_shape_and_ok_flag(self, ledger):
        regressed_ledger(ledger)
        findings = detect(ledger)
        payload = render_json(ledger, findings)
        assert payload["schema_version"] == 1
        assert payload["ok"] is False
        assert payload["counts"]["error"] == 1
        assert payload["ledger"]["records"] == 7
        f = payload["findings"][0]
        assert f["rule"] == "pw-regression"
        assert f["severity"] == "error"
        assert f["band"][0] > 50.0
        # series rows are embedded without the raw value arrays
        assert all("values" not in row for row in payload["series"])

    def test_ok_true_when_clean(self, ledger):
        ledger.append(series([1.0, 1.0, 1.0, 1.0]))
        payload = render_json(ledger, detect(ledger))
        assert payload["ok"] is True
        assert payload["findings"] == []
