"""Tests for bench-artifact ingestion, including the one-shot backfill."""

import json
import os

from repro.perfwatch import (
    PerfLedger,
    bench_envelope,
    detect,
    ingest_tables,
    records_from_extras,
    records_from_payload,
    records_from_profiler,
)
from repro.perfwatch.ingest import bench_name_of, default_tables_dir


def write_table(tables, name, payload):
    os.makedirs(tables, exist_ok=True)
    path = os.path.join(tables, f"BENCH_{name}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh)
    return path


class TestRecordsFromPayload:
    def test_envelope_stamp_wins(self):
        env = bench_envelope(
            "speed", {"full_system": {"cycles_per_sec": 120000.0}},
            seed=7, config={"mesh": 6}, sha="abc123def456",
            host={"cpus": 8}, ts="2026-08-07T00:00:00Z",
        )
        recs = records_from_payload("ignored-name", env, sha="other")
        assert len(recs) == 1
        rec = recs[0]
        assert rec.bench == "speed"
        assert rec.metric == "full_system.cycles_per_sec"
        assert rec.value == 120000.0
        assert rec.sha == "abc123def456"
        assert rec.seed == 7
        assert rec.config == {"mesh": 6}
        assert rec.host == {"cpus": 8}
        assert rec.fingerprint

    def test_legacy_bare_dict_is_split_and_stamped(self):
        recs = records_from_payload(
            "sweep",
            {"benchmark": "bfs", "ipc": 1.05, "config": {"mesh": 4}},
            sha="deadbeef", ts="t0",
        )
        assert [r.metric for r in recs] == ["ipc"]
        rec = recs[0]
        assert rec.sha == "deadbeef"
        assert rec.config == {"benchmark": "bfs", "mesh": 4}
        assert rec.host  # stamped with the current host

    def test_same_config_same_fingerprint(self):
        a = records_from_payload("b", {"mesh": "4x4", "v": 1.0}, sha="s1")
        b = records_from_payload("b", {"mesh": "4x4", "v": 2.0}, sha="s2")
        c = records_from_payload("b", {"mesh": "8x8", "v": 1.0}, sha="s3")
        assert a[0].fingerprint == b[0].fingerprint
        assert a[0].fingerprint != c[0].fingerprint

    def test_records_from_extras_and_profiler(self):
        recs = records_from_extras(
            "run", {"sim_wall_s": 1.5}, config={"mesh": 4}, sha="s", seed=3
        )
        assert recs[0].metric == "sim_wall_s"
        assert recs[0].seed == 3

        class FakeProfiler:
            def summary(self):
                return {"sim_cycles_per_sec": 9000.0}

        recs = records_from_profiler("run", FakeProfiler(), sha="s")
        assert recs[0].metric == "sim_cycles_per_sec"
        assert recs[0].value == 9000.0


class TestIngestTables:
    def test_ingest_envelopes_and_legacy(self, tmp_path, ledger):
        tables = str(tmp_path / "tables")
        write_table(tables, "modern", bench_envelope(
            "modern", {"rate": 2.0}, sha="abc", ts="t"))
        write_table(tables, "legacy", {"rate": 1.0})
        appended, records, problems = ingest_tables(
            ledger, tables, sha="fallback")
        assert appended == 2
        assert problems == {}
        by_bench = {r.bench: r for r in records}
        assert by_bench["modern"].sha == "abc"
        assert by_bench["legacy"].sha == "fallback"
        assert ledger.exists

    def test_reingest_is_noop(self, tmp_path, ledger):
        tables = str(tmp_path / "tables")
        write_table(tables, "b", bench_envelope("b", {"x": 1.0}, sha="s"))
        assert ingest_tables(ledger, tables)[0] == 1
        assert ingest_tables(ledger, tables)[0] == 0

    def test_dry_run_appends_nothing(self, tmp_path, ledger):
        tables = str(tmp_path / "tables")
        write_table(tables, "b", {"x": 1.0})
        appended, records, _ = ingest_tables(
            ledger, tables, sha="s", dry_run=True)
        assert appended == 0
        assert len(records) == 1
        assert not ledger.exists

    def test_problem_files_reported_not_fatal(self, tmp_path, ledger):
        tables = str(tmp_path / "tables")
        write_table(tables, "good", {"x": 1.0})
        write_table(tables, "empty", {"name": "no numbers here"})
        with open(os.path.join(tables, "BENCH_broken.json"), "w") as fh:
            fh.write("{nope")
        appended, _, problems = ingest_tables(ledger, tables, sha="s")
        assert appended == 1
        assert "unreadable" in problems["BENCH_broken.json"]
        assert problems["BENCH_empty.json"] == "no numeric metrics found"

    def test_bench_name_of(self):
        assert bench_name_of("/x/BENCH_simulator_speed.json") == (
            "simulator_speed")
        assert bench_name_of("plain.json") == "plain"


class TestCommittedBackfill:
    """The acceptance criterion: backfilling the real committed tables
    yields a clean ledger — zero findings on unmodified history."""

    def test_backfill_of_committed_tables_is_clean(self, tmp_path):
        tables = default_tables_dir()
        if not os.path.isdir(tables):
            import pytest

            pytest.skip("no committed bench tables in this checkout")
        ledger = PerfLedger(str(tmp_path / "ledger"))
        appended, records, problems = ingest_tables(
            ledger, tables, sha="backfill")
        assert problems == {}
        assert appended == len(records) > 0
        # One record per series: below min_samples, nothing can gate.
        assert detect(ledger) == []
