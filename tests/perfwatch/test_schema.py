"""Tests for the bench-artifact envelope and metric flattening."""

from repro.perfwatch import schema


class TestEnvelope:
    def test_envelope_shape(self):
        env = schema.bench_envelope(
            "speed", {"rate": 1.0}, seed=3, config={"mesh": 6},
            sha="abc123", host={"cpus": 4}, ts="2026-08-07T00:00:00Z",
        )
        assert env["schema_version"] == schema.SCHEMA_VERSION
        assert env["bench"] == "speed"
        assert env["git_sha"] == "abc123"
        assert env["seed"] == 3
        assert env["config"] == {"mesh": 6}
        assert env["data"] == {"rate": 1.0}
        assert schema.is_envelope(env)

    def test_envelope_defaults_stamp_host_and_sha(self):
        env = schema.bench_envelope("speed", {"rate": 1.0})
        assert set(env["host"]) == {"platform", "python", "machine", "cpus"}
        assert env["git_sha"]
        assert env["generated_utc"].endswith("Z")

    def test_bare_dict_is_not_envelope(self):
        assert not schema.is_envelope({"rate": 1.0})
        assert not schema.is_envelope([1, 2])
        assert not schema.is_envelope(None)

    def test_git_sha_env_override(self, monkeypatch):
        monkeypatch.setenv(schema.GIT_SHA_ENV, "f" * 40)
        assert schema.git_sha() == "f" * 12


class TestSplitPayload:
    def test_strings_and_bools_are_config(self):
        config, data = schema.split_payload(
            {"benchmark": "bfs", "detour": True, "ipc": 1.05}
        )
        assert config == {"benchmark": "bfs", "detour": True}
        assert data == {"ipc": 1.05}

    def test_nested_config_dict_is_pulled_out(self):
        config, data = schema.split_payload(
            {"config": {"mesh": 4, "cycles": 400}, "rows": [{"ipc": 1.0}]}
        )
        assert config == {"mesh": 4, "cycles": 400}
        assert data == {"rows": [{"ipc": 1.0}]}


class TestFlattenMetrics:
    def test_nested_dicts_dot_join(self):
        flat = schema.flatten_metrics({"serial": {"wall_s": 2.5}})
        assert flat == {"serial.wall_s": 2.5}

    def test_bools_and_strings_skipped(self):
        flat = schema.flatten_metrics({"ok": True, "name": "x", "v": 1})
        assert flat == {"v": 1.0}

    def test_row_labels_use_identifying_keys(self):
        flat = schema.flatten_metrics(
            {"rows": [
                {"scheme": "ada-ari", "dead_links": 1, "ipc": 1.06},
                {"scheme": "xy-baseline", "dead_links": 1, "ipc": 0.9},
            ]}
        )
        assert flat["rows[scheme=ada-ari,dead_links=1].ipc"] == 1.06
        assert flat["rows[scheme=xy-baseline,dead_links=1].ipc"] == 0.9

    def test_row_labels_survive_reordering(self):
        rows = [
            {"scheme": "a", "ipc": 1.0},
            {"scheme": "b", "ipc": 2.0},
        ]
        fwd = schema.flatten_metrics({"rows": rows})
        rev = schema.flatten_metrics({"rows": list(reversed(rows))})
        assert fwd == rev

    def test_anonymous_rows_fall_back_to_index(self):
        flat = schema.flatten_metrics({"rows": [{"x": 1.0}, {"x": 2.0}]})
        assert flat == {"rows[0].x": 1.0, "rows[1].x": 2.0}

    def test_numeric_lists_index(self):
        flat = schema.flatten_metrics({"lat": [10, 20]})
        assert flat == {"lat[0]": 10.0, "lat[1]": 20.0}
