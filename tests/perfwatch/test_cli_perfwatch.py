"""End-to-end tests for ``repro perfwatch`` through the real CLI."""

import json
import os

from repro.cli import main
from repro.perfwatch import PerfLedger, bench_envelope

from tests.perfwatch.conftest import record, series

HEALTHY = [98_400.0, 101_200.0, 99_700.0, 100_900.0, 99_100.0]


def seeded_ledger(tmp_path, head_value=None):
    """Healthy history, optionally topped with a fabricated head value."""
    root = str(tmp_path / "ledger")
    ledger = PerfLedger(root)
    ledger.append(series(HEALTHY, bench="simulator_speed"))
    if head_value is not None:
        ledger.append([record(
            head_value, sha="baadf00dcafe", fingerprint="fp-head",
            config={"mesh": 8},
        )])
    return root


class TestIngest:
    def test_ingest_then_check_clean(self, tmp_path, capsys):
        tables = tmp_path / "tables"
        tables.mkdir()
        env = bench_envelope("speed", {"cycles_per_sec": 1e5}, sha="abc")
        with open(tables / "BENCH_speed.json", "w") as fh:
            json.dump(env, fh)
        root = str(tmp_path / "ledger")
        assert main(["perfwatch", "ingest", "--ledger", root,
                     "--tables", str(tables)]) == 0
        out = capsys.readouterr().out
        assert "appended 1 record(s)" in out
        assert main(["perfwatch", "check", "--ledger", root,
                     "--tables", str(tables)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_dry_run(self, tmp_path, capsys):
        tables = tmp_path / "tables"
        tables.mkdir()
        with open(tables / "BENCH_b.json", "w") as fh:
            json.dump({"x": 1.0}, fh)
        root = str(tmp_path / "ledger")
        assert main(["perfwatch", "ingest", "--ledger", root,
                     "--tables", str(tables), "--dry-run"]) == 0
        assert "dry run: parsed 1 record(s)" in capsys.readouterr().out
        assert not os.path.exists(os.path.join(root, "ledger.jsonl"))


class TestCheck:
    def test_halved_throughput_gates_with_drivers(self, tmp_path, capsys):
        """The ISSUE acceptance criterion: a fabricated halved
        cycles_per_sec must exit 1 naming the metric, the baseline band,
        and the changed config axes."""
        root = seeded_ledger(tmp_path, head_value=HEALTHY[-1] / 2)
        rc = main(["perfwatch", "check", "--ledger", root,
                   "--tables", str(tmp_path)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "full_system.cycles_per_sec regressed" in out
        assert "band [" in out
        assert "changed axes: config.mesh: 6 -> 8" in out

    def test_clean_history_passes(self, tmp_path, capsys):
        root = seeded_ledger(tmp_path, head_value=100_500.0)
        assert main(["perfwatch", "check", "--ledger", root,
                     "--tables", str(tmp_path)]) == 0

    def test_json_output(self, tmp_path, capsys):
        root = seeded_ledger(tmp_path, head_value=HEALTHY[-1] / 2)
        rc = main(["perfwatch", "check", "--ledger", root,
                   "--tables", str(tmp_path), "--json", "-"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed"] is True
        assert payload["counts"]["error"] == 1
        assert payload["findings"][0]["metric"] == (
            "full_system.cycles_per_sec")

    def test_strict_escalates_warnings(self, tmp_path, capsys):
        # A drift past the noise floor but under the error threshold.
        root = seeded_ledger(tmp_path, head_value=85_000.0)
        args = ["perfwatch", "check", "--ledger", root,
                "--tables", str(tmp_path)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--strict"]) == 1
        assert "drifted" in capsys.readouterr().out

    def test_missing_ledger_exits_2(self, tmp_path, capsys):
        rc = main(["perfwatch", "check", "--ledger",
                   str(tmp_path / "nope")])
        assert rc == 2
        assert "no ledger" in capsys.readouterr().err


class TestReport:
    def test_markdown_to_file(self, tmp_path, capsys):
        root = seeded_ledger(tmp_path)
        out_file = tmp_path / "report.md"
        rc = main(["perfwatch", "report", "--ledger", root,
                   "--tables", str(tmp_path), "--out", str(out_file)])
        assert rc == 0
        text = out_file.read_text()
        assert "# perfwatch report" in text
        assert "simulator_speed::full_system.cycles_per_sec" in text

    def test_json_report(self, tmp_path, capsys):
        root = seeded_ledger(tmp_path)
        rc = main(["perfwatch", "report", "--ledger", root,
                   "--tables", str(tmp_path), "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ledger"]["records"] == len(HEALTHY)

    def test_missing_ledger_exits_2(self, tmp_path, capsys):
        rc = main(["perfwatch", "report", "--ledger",
                   str(tmp_path / "nope")])
        assert rc == 2
        assert "no ledger" in capsys.readouterr().err


class TestBaseline:
    def test_update_show_clear(self, tmp_path, capsys):
        root = seeded_ledger(tmp_path)
        assert main(["perfwatch", "baseline", "--ledger", root,
                     "update"]) == 0
        assert "pinned 1 series band(s)" in capsys.readouterr().out
        assert main(["perfwatch", "baseline", "--ledger", root,
                     "show"]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert "simulator_speed::full_system.cycles_per_sec" in shown
        assert main(["perfwatch", "baseline", "--ledger", root,
                     "clear"]) == 0
        assert "removed pinned baseline" in capsys.readouterr().out

    def test_update_without_ledger_exits_2(self, tmp_path, capsys):
        rc = main(["perfwatch", "baseline", "--ledger",
                   str(tmp_path / "nope"), "update"])
        assert rc == 2
        assert "nothing to pin" in capsys.readouterr().err
