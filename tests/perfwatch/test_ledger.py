"""Tests for the append-only JSONL KPI ledger."""

import json

import pytest

from repro.perfwatch import LedgerRecord, PerfLedger, series_id

from tests.perfwatch.conftest import record, series


class TestAppend:
    def test_append_and_read_back(self, ledger):
        assert ledger.append(series([1.0, 2.0])) == 2
        recs = ledger.records()
        assert [r.value for r in recs] == [1.0, 2.0]
        assert ledger.exists

    def test_reingest_is_noop(self, ledger):
        recs = series([1.0, 2.0])
        assert ledger.append(recs) == 2
        assert ledger.append(recs) == 0
        assert len(ledger.records()) == 2

    def test_dedupe_key_is_sha_bench_metric_fingerprint(self, ledger):
        a = record(1.0, sha="s", fingerprint="f")
        same_key_other_value = record(9.0, sha="s", fingerprint="f")
        other_fp = record(1.0, sha="s", fingerprint="g")
        assert ledger.append([a]) == 1
        assert ledger.append([same_key_other_value]) == 0
        assert ledger.append([other_fp]) == 1

    def test_append_empty(self, ledger):
        assert ledger.append([]) == 0
        assert not ledger.exists


class TestTolerantParsing:
    def test_bad_lines_skipped_and_counted(self, ledger):
        ledger.append(series([1.0]))
        with open(ledger.path, "a") as fh:
            fh.write("not json at all\n")
            fh.write('{"bench": "x"}\n')  # missing metric/value
            fh.write("\n")  # blank lines are fine, not counted
        recs = ledger.records()
        assert len(recs) == 1
        assert ledger.skipped_lines == 2

    def test_future_schema_rejected(self, ledger):
        ledger.append(series([1.0]))
        bad = record(2.0).to_dict()
        bad["schema"] = 999
        with open(ledger.path, "a") as fh:
            fh.write(json.dumps(bad) + "\n")
        assert len(ledger.records()) == 1
        assert ledger.skipped_lines == 1

    def test_missing_file_is_empty(self, tmp_path):
        ledger = PerfLedger(str(tmp_path / "nope"))
        assert ledger.records() == []
        assert not ledger.exists

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(ValueError):
            LedgerRecord.from_dict({"bench": "x"})
        with pytest.raises(ValueError):
            LedgerRecord.from_dict({"bench": "x", "metric": "m",
                                    "value": "not-a-number"})


class TestQueries:
    def test_series_grouping_preserves_order(self, ledger):
        ledger.append(series([1.0, 2.0]) + series([5.0], metric="other"))
        grouped = ledger.series()
        key = ("simulator_speed", "full_system.cycles_per_sec")
        assert [r.value for r in grouped[key]] == [1.0, 2.0]
        assert len(grouped) == 2

    def test_shas_first_appearance_order(self, ledger):
        ledger.append([
            record(1.0, sha="b"), record(2.0, sha="a", metric="m2"),
            record(3.0, sha="b", metric="m3"),
        ])
        assert ledger.shas() == ["b", "a"]

    def test_info(self, ledger):
        ledger.append(series([1.0, 2.0]))
        info = ledger.info()
        assert info["records"] == 2
        assert info["series"] == 1
        assert info["shas"] == 2
        assert info["skipped_lines"] == 0

    def test_series_id(self):
        assert series_id(("b", "m.x")) == "b::m.x"


class TestBaseline:
    def test_roundtrip(self, ledger):
        pinned = {"b::m": {"median": 1.0, "lo": 0.9, "hi": 1.1, "n": 5}}
        ledger.save_baseline(pinned)
        assert ledger.load_baseline() == pinned
        assert ledger.clear_baseline() is True
        assert ledger.load_baseline() == {}
        assert ledger.clear_baseline() is False

    def test_corrupt_baseline_is_empty(self, ledger):
        import os

        os.makedirs(ledger.root, exist_ok=True)
        with open(ledger.baseline_path, "w") as fh:
            fh.write("[broken")
        assert ledger.load_baseline() == {}
