"""Documentation consistency checks.

Keep README / DESIGN / EXPERIMENTS / docs in sync with the code: every
figure driver documented, every benchmark listed, every example file
referenced actually existing, and the workload table matching the suite.
"""

import os
import re

import pytest

REPO = os.path.join(os.path.dirname(__file__), "..")


def read(relpath):
    with open(os.path.join(REPO, relpath)) as fh:
        return fh.read()


class TestTopLevelFiles:
    @pytest.mark.parametrize(
        "name", ["README.md", "DESIGN.md", "EXPERIMENTS.md", "pyproject.toml"]
    )
    def test_exists(self, name):
        assert os.path.exists(os.path.join(REPO, name))

    def test_readme_cites_paper(self):
        text = read("README.md")
        assert "Accelerated Reply Injection" in text
        assert "IPPS 2020" in text

    def test_design_confirms_paper_identity(self):
        assert "matches the stated title" in read("DESIGN.md")


class TestFigureCoverage:
    def test_every_paper_figure_has_driver_and_bench(self):
        from repro.experiments.figures import ALL_FIGURES

        paper_figures = [
            "fig3", "fig4", "fig5", "fig6", "fig9", "fig10", "fig11",
            "fig12", "fig13", "fig14", "fig15", "fig16",
            "sec3_util", "sec61_area", "sec75_scalability",
        ]
        for name in paper_figures:
            assert name in ALL_FIGURES, f"driver missing for {name}"

        benches = os.listdir(os.path.join(REPO, "benchmarks"))
        for num in (3, 4, 5, 6, 9, 10, 11, 12, 13, 14, 15, 16):
            assert f"bench_fig{num:02d}.py" in benches

    def test_experiments_md_covers_every_paper_figure(self):
        text = read("EXPERIMENTS.md")
        for token in ["Fig. 3", "Fig. 4", "Fig. 5", "Fig. 6", "Fig. 9",
                      "Fig. 10", "Fig. 11", "Fig. 12", "Fig. 13", "Fig. 14",
                      "Fig. 15", "Fig. 16", "Sec. 6.1", "Sec. 7.5"]:
            assert token in text, f"EXPERIMENTS.md missing {token}"

    def test_design_md_lists_every_driver(self):
        from repro.experiments.figures import ALL_FIGURES

        text = read("DESIGN.md")
        # Paper figures are indexed by their bench target.
        for num in (3, 4, 5, 6, 9, 10, 11, 12, 13, 14, 15, 16):
            assert f"bench_fig{num:02d}" in text


class TestExamplesReferenced:
    def test_all_examples_exist(self):
        text = read("README.md")
        for match in re.findall(r"examples/(\w+\.py)", text):
            assert os.path.exists(
                os.path.join(REPO, "examples", match)
            ), f"README references missing example {match}"

    def test_at_least_three_examples(self):
        examples = [
            f for f in os.listdir(os.path.join(REPO, "examples"))
            if f.endswith(".py")
        ]
        assert len(examples) >= 3
        assert "quickstart.py" in examples


class TestWorkloadDocSync:
    def test_workload_table_matches_suite(self):
        from repro.workloads.suite import SUITE

        text = read("docs/workloads.md")
        for name, prof in SUITE.items():
            # Markdown table escaping: benchmark names appear verbatim.
            assert f"| {name} |" in text, f"docs/workloads.md missing {name}"
            assert str(prof.working_set_lines) in text

    def test_doc_class_counts(self):
        text = read("docs/workloads.md")
        assert text.count("| high |") == 9
        assert text.count("| medium |") == 11
        assert text.count("| low |") == 10


class TestSchemeDocSync:
    def test_main_schemes_in_readme_or_design(self):
        combined = read("README.md") + read("DESIGN.md")
        for sch in ["xy-baseline", "ada-ari", "ada-multiport", "da2mesh"]:
            assert sch.replace("-", "") in combined.replace("-", "").lower()
