"""Tests for telemetry sinks and their load() inverses."""

import pytest

from repro.telemetry import (
    CSVSink,
    JSONLSink,
    MemorySink,
    TelemetrySample,
    load_csv,
    load_jsonl,
)

SAMPLES = [
    TelemetrySample(0, {"a": 1, "b": [0, 0], "c": {"5": [1, 2]}, "d": 0.5}),
    TelemetrySample(100, {"a": 2, "b": [3, 4], "c": {"5": [5, 6]}, "d": 1.5}),
    TelemetrySample(200, {"a": 3, "b": [7, 8], "c": {"5": [9, 10]}, "d": 2.5}),
]


class TestMemorySink:
    def test_series(self):
        mem = MemorySink()
        for s in SAMPLES:
            mem.emit(s)
        cycles, values = mem.series("a")
        assert cycles == [0, 100, 200]
        assert values == [1, 2, 3]
        assert len(mem) == 3

    def test_series_skips_missing(self):
        mem = MemorySink()
        mem.emit(TelemetrySample(0, {"a": 1}))
        mem.emit(TelemetrySample(50, {"b": 2}))
        cycles, values = mem.series("a")
        assert cycles == [0]
        assert values == [1]

    def test_channel_listing_preserves_order(self):
        mem = MemorySink()
        for s in SAMPLES:
            mem.emit(s)
        assert mem.channels() == ["a", "b", "c", "d"]

    def test_sample_get(self):
        s = SAMPLES[0]
        assert s.get("a") == 1
        assert s.get("zz", -1) == -1


class TestJSONLRoundTrip:
    def test_lossless(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        sink = JSONLSink(path)
        for s in SAMPLES:
            sink.emit(s)
        sink.close()
        reloaded = load_jsonl(path)
        # Lossless inverse: cycles, channel names, scalars, lists and
        # nested dicts all survive exactly.
        assert [s.cycle for s in reloaded] == [s.cycle for s in SAMPLES]
        assert [s.channels for s in reloaded] == [s.channels for s in SAMPLES]

    def test_one_object_per_line(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        sink = JSONLSink(path)
        for s in SAMPLES:
            sink.emit(s)
        sink.close()
        with open(path) as fh:
            lines = [l for l in fh.read().splitlines() if l.strip()]
        assert len(lines) == len(SAMPLES)


class TestCSV:
    def test_flattens_lists_and_dicts(self, tmp_path):
        path = str(tmp_path / "t.csv")
        sink = CSVSink(path)
        for s in SAMPLES:
            sink.emit(s)
        sink.close()
        reloaded = load_csv(path)
        assert reloaded[1].cycle == 100
        assert reloaded[1].channels["a"] == 2
        assert reloaded[1].channels["b[0]"] == 3
        assert reloaded[1].channels["b[1]"] == 4
        assert reloaded[1].channels["c.5[0]"] == 5  # dict-of-lists recurses
        assert reloaded[1].channels["d"] == pytest.approx(1.5)

    def test_header_fixed_by_first_sample(self, tmp_path):
        path = str(tmp_path / "t.csv")
        sink = CSVSink(path)
        sink.emit(TelemetrySample(0, {"a": 1}))
        sink.emit(TelemetrySample(100, {"a": 2, "late": 9}))
        sink.close()
        reloaded = load_csv(path)
        # CSV is the lossy format: columns not in the first sample drop.
        assert "late" not in reloaded[1].channels
        assert reloaded[1].channels["a"] == 2

    def test_missing_cell_left_empty(self, tmp_path):
        path = str(tmp_path / "t.csv")
        sink = CSVSink(path)
        sink.emit(TelemetrySample(0, {"a": 1, "b": 2}))
        sink.emit(TelemetrySample(100, {"a": 3}))
        sink.close()
        reloaded = load_csv(path)
        assert "b" not in reloaded[1].channels
