"""Tests for terminal rendering of telemetry series."""

from repro.telemetry import (
    MemorySink,
    TelemetrySample,
    occupancy_heatmap,
    series_sparkline,
    series_summary,
    summary_table,
)


def sink_with(samples):
    mem = MemorySink()
    for s in samples:
        mem.emit(s)
    return mem


class TestSeriesSummary:
    def test_scalar_channel(self):
        mem = sink_with([
            TelemetrySample(0, {"x": 1}),
            TelemetrySample(10, {"x": 5}),
            TelemetrySample(20, {"x": 3}),
        ])
        s = series_summary(mem, "x")
        assert s == {"count": 3, "min": 1.0, "mean": 3.0, "max": 5.0,
                     "last": 3.0}

    def test_list_channel_sums_per_sample(self):
        mem = sink_with([TelemetrySample(0, {"occ": [1, 2, 3]})])
        assert series_summary(mem, "occ")["last"] == 6.0

    def test_dict_channel_sums_leaves(self):
        mem = sink_with([TelemetrySample(0, {"q": {"5": [1, 2], "9": [3]}})])
        assert series_summary(mem, "q")["last"] == 6.0

    def test_missing_channel(self):
        assert series_summary(sink_with([]), "nope")["count"] == 0


class TestSparkline:
    def test_width_capped(self):
        line = series_sparkline(list(range(100)), width=20)
        assert len(line) == 20

    def test_short_series_not_padded(self):
        assert len(series_sparkline([1, 2, 3], width=20)) == 3

    def test_empty(self):
        assert series_sparkline([]) == ""

    def test_peak_is_hottest(self):
        line = series_sparkline([0, 0, 10, 0], width=4)
        assert line[2] != line[0]


class TestSummaryTable:
    def test_rows_for_present_channels(self):
        mem = sink_with([
            TelemetrySample(0, {"a": 1, "b": [2, 3]}),
            TelemetrySample(10, {"a": 4, "b": [5, 6]}),
        ])
        table = summary_table(mem)
        assert "a" in table and "b" in table
        assert "mean" in table.splitlines()[0]

    def test_explicit_channel_subset(self):
        mem = sink_with([TelemetrySample(0, {"a": 1, "b": 2})])
        table = summary_table(mem, channels=["a"])
        assert "\nb" not in table


class TestOccupancyHeatmap:
    def samples(self, n=5, nodes=4):
        return [
            TelemetrySample(i * 100, {"occ": [i * (j + 1) for j in range(nodes)]})
            for i in range(n)
        ]

    def test_one_row_per_sample(self):
        mem = sink_with(self.samples(5))
        out = occupancy_heatmap(mem, "occ")
        # header + marker line + 5 sample rows
        assert len(out.splitlines()) == 7
        assert "4 nodes" in out

    def test_mc_columns_marked(self):
        mem = sink_with(self.samples())
        marker_line = occupancy_heatmap(mem, "occ", mc_nodes=[1, 3]).splitlines()[1]
        assert marker_line.endswith(".M.M")

    def test_row_cap_downsamples(self):
        mem = sink_with(self.samples(100))
        out = occupancy_heatmap(mem, "occ", max_rows=10)
        assert len(out.splitlines()) <= 12

    def test_non_list_channel_degrades(self):
        mem = sink_with([TelemetrySample(0, {"x": 3})])
        assert "no per-node samples" in occupancy_heatmap(mem, "x")
