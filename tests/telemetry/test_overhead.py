"""The zero-overhead-when-detached contract.

ISSUE requirement: with no collector attached, the hot path must pay
nothing beyond a single ``is None`` check at the network/system step
level.  Routers and NIs — the per-flit inner loop — must not reference
telemetry at all; we assert that structurally (no ``telemetry`` name in
their compiled code) and behaviorally (identical simulation results with
and without a collector).
"""

from repro.gpu.system import GPGPUSystem
from repro.noc import Network, NetworkConfig
from repro.noc.kernel import ActivityKernel, ReferenceKernel
from repro.noc.network import PerfectNetwork
from repro.noc.ni import (
    BaselineNI,
    InjectionInterface,
    MultiPortNI,
    SplitNI,
    _SingleQueueNI,
)
from repro.noc.router import Router
from repro.noc.topology import default_placement
from repro.telemetry import TelemetryCollector
from repro.workloads.traffic import ReplyTrafficPattern, SyntheticTrafficGenerator


def _code_objects(cls):
    for name, member in vars(cls).items():
        fn = getattr(member, "__func__", member)
        fn = getattr(member, "fget", fn)
        code = getattr(fn, "__code__", None)
        if code is not None:
            yield f"{cls.__name__}.{name}", code


class TestStructural:
    def test_detached_by_default(self):
        assert Network(NetworkConfig(width=4, height=4)).telemetry is None
        assert PerfectNetwork(NetworkConfig(width=4, height=4)).telemetry is None

    def test_router_code_never_names_telemetry(self):
        for name, code in _code_objects(Router):
            assert "telemetry" not in code.co_names, name

    def test_ni_code_never_names_telemetry(self):
        for cls in (InjectionInterface, _SingleQueueNI, BaselineNI,
                    MultiPortNI, SplitNI):
            for name, code in _code_objects(cls):
                assert "telemetry" not in code.co_names, name

    def test_step_pays_exactly_one_attribute_read(self):
        # The whole opt-in lives at the clock owner: one attribute load
        # plus an `is None` test per cycle, nothing per flit.  Network's
        # per-cycle loop lives in its kernel backends since the SimKernel
        # seam, so the contract is asserted on each kernel's cycle().
        for cls in (PerfectNetwork, GPGPUSystem):
            names = cls.step.__code__.co_names
            assert names.count("telemetry") == 1, cls.__name__
        for cls in (ReferenceKernel, ActivityKernel):
            names = cls.cycle.__code__.co_names
            assert names.count("telemetry") == 1, cls.__name__


class TestBehavioral:
    def test_collector_does_not_perturb_simulation(self):
        def run(with_collector):
            mcs, ccs = default_placement(4, 4, 4)
            net = Network(
                NetworkConfig(width=4, height=4, routing="adaptive",
                              accelerated_nodes=set(mcs))
            )
            if with_collector:
                TelemetryCollector(interval=25).attach_network(net, "net")
            gen = SyntheticTrafficGenerator(
                net, ReplyTrafficPattern(mcs, ccs, seed=2), rate=0.2, seed=3
            )
            gen.run(400)
            return net

        plain = run(False)
        sampled = run(True)
        assert sampled.stats.packets_offered == plain.stats.packets_offered
        assert sampled.stats.packets_delivered == plain.stats.packets_delivered
        assert (sampled.stats.flit_hops_delivered
                == plain.stats.flit_hops_delivered)
        assert sampled.stats.mean_latency() == plain.stats.mean_latency()
