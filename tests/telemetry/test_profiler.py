"""Tests for host-side profiling."""

import pytest

from repro.telemetry import HostProfiler


class TestPhases:
    def test_phase_accumulates(self):
        prof = HostProfiler()
        with prof.phase("measure"):
            pass
        with prof.phase("measure"):
            pass
        assert prof.phase_calls["measure"] == 2
        assert prof.phase_seconds("measure") >= 0.0

    def test_add_phase_time(self):
        prof = HostProfiler()
        prof.add_phase_time("measure", 2.0)
        prof.add_phase_time("measure", 1.0)
        assert prof.phase_seconds("measure") == pytest.approx(3.0)
        assert prof.total_seconds() == pytest.approx(3.0)

    def test_exception_still_recorded(self):
        prof = HostProfiler()
        with pytest.raises(ValueError):
            with prof.phase("bad"):
                raise ValueError("boom")
        assert "bad" in prof.phases


class TestRates:
    def test_rate_against_phase(self):
        prof = HostProfiler()
        prof.add_phase_time("measure", 2.0)
        prof.count("cycles", 1000)
        assert prof.rate("cycles", "measure") == pytest.approx(500.0)

    def test_rate_zero_time(self):
        prof = HostProfiler()
        prof.count("cycles", 100)
        assert prof.rate("cycles") == 0.0

    def test_counter_accumulates(self):
        prof = HostProfiler()
        prof.count("packets", 3)
        prof.count("packets", 4)
        assert prof.counters["packets"] == 7


class TestSummary:
    def test_rates_prefer_measure_phase(self):
        prof = HostProfiler()
        prof.add_phase_time("build", 100.0)
        prof.add_phase_time("measure", 1.0)
        prof.count("cycles", 500)
        s = prof.summary()
        # Rates exclude the build phase when a measure phase exists.
        assert s["rates"]["cycles_per_sec"] == pytest.approx(500.0)

    def test_summary_shape(self):
        prof = HostProfiler()
        prof.add_phase_time("measure", 1.0)
        prof.count("cycles", 10)
        s = prof.summary()
        assert set(s) == {"phases", "counters", "rates"}
        assert s["counters"]["cycles"] == 10

    def test_format_lists_phases_and_rates(self):
        prof = HostProfiler()
        prof.add_phase_time("measure", 1.0)
        prof.count("cycles", 10)
        txt = prof.format()
        assert "measure" in txt
        assert "cycles_per_sec" in txt
