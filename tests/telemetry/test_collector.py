"""Tests for the telemetry collector: cadence, probes, attachment."""

import pytest

from repro.noc import Network, NetworkConfig
from repro.noc.flit import Packet, PacketType
from repro.noc.ni import NIKind
from repro.noc.topology import default_placement
from repro.telemetry import (
    JSONLSink,
    MemorySink,
    TelemetryCollector,
    load_jsonl,
)
from repro.workloads.traffic import ReplyTrafficPattern, SyntheticTrafficGenerator


def loaded_network(**cfg_overrides):
    """A 4x4 reply-traffic network with its generator (not yet run)."""
    mcs, ccs = default_placement(4, 4, 4)
    cfg = dict(width=4, height=4, routing="adaptive",
               accelerated_nodes=set(mcs))
    cfg.update(cfg_overrides)
    net = Network(NetworkConfig(**cfg))
    gen = SyntheticTrafficGenerator(
        net, ReplyTrafficPattern(mcs, ccs, seed=2), rate=0.2, seed=3
    )
    return net, gen, mcs


class TestCadence:
    def test_samples_every_interval(self):
        net, gen, _ = loaded_network()
        col = TelemetryCollector(interval=50)
        col.attach_network(net, "net")
        gen.run(500)
        cycles = [s.cycle for s in col.memory.samples]
        assert cycles == list(range(0, 500, 50))
        assert col.samples_taken == 10

    def test_on_cycle_skips_off_interval(self):
        col = TelemetryCollector(interval=100)
        col.on_cycle(37)
        col.on_cycle(101)
        assert col.samples_taken == 0

    def test_on_cycle_deduplicates_shared_clock(self):
        # Request net, reply net and the system share one clock; the
        # collector must sample each interval exactly once.
        col = TelemetryCollector(interval=100)
        col.on_cycle(100)
        col.on_cycle(100)
        col.on_cycle(100)
        assert col.samples_taken == 1

    def test_interval_validated(self):
        with pytest.raises(ValueError):
            TelemetryCollector(interval=0)

    def test_forced_sample(self):
        col = TelemetryCollector(interval=1000)
        sample = col.sample(now=42)
        assert sample.cycle == 42
        assert col.samples_taken == 1


class TestNetworkProbe:
    def test_delivered_deltas_sum_to_stats(self):
        net, gen, _ = loaded_network()
        col = TelemetryCollector(interval=50)
        col.attach_network(net, "net")
        gen.run(400)
        col.sample(net.now)  # final flush so deltas cover the whole run
        _, deltas = col.memory.series("net.delivered")
        assert sum(deltas) == net.stats.packets_delivered
        assert net.stats.packets_delivered > 0

    def test_per_node_channels_shape(self):
        net, gen, _ = loaded_network()
        col = TelemetryCollector(interval=50)
        col.attach_network(net, "net")
        gen.run(200)
        last = col.memory.samples[-1]
        assert len(last.channels["net.router_occ"]) == 16
        assert len(last.channels["net.ni_occ_flits"]) == 16

    def test_split_queue_depths_only_for_split_nis(self):
        net, gen, mcs = loaded_network(
            ni_kind=NIKind.SPLIT, num_split_queues=4
        )
        col = TelemetryCollector(interval=50)
        col.attach_network(net, "net")
        gen.run(300)
        last = col.memory.samples[-1]
        split = last.channels["net.split_q_depths"]
        assert sorted(int(k) for k in split) == sorted(mcs)
        assert all(len(depths) == 4 for depths in split.values())

    def test_latency_window(self):
        net, gen, _ = loaded_network()
        col = TelemetryCollector(interval=50)
        col.attach_network(net, "net")
        gen.run(400)
        _, counts = col.memory.series("net.lat_count")
        _, means = col.memory.series("net.lat_mean")
        assert sum(counts) > 0
        assert any(m > 0 for m in means)

    def test_existing_delivery_callback_chained(self):
        net = Network(NetworkConfig(width=4, height=4))
        seen = []
        net.on_delivery = lambda node, pkt, now: seen.append(pkt.pid)
        col = TelemetryCollector(interval=10)
        probe = col.attach_network(net, "net")
        p = Packet(PacketType.READ_REPLY, 0, 15, 9, 0)
        net.offer(0, p)
        net.drain(2000)
        assert seen == [p.pid]
        assert probe._window  # latency reached the probe too

    def test_jsonl_sink_round_trips_live_run(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        net, gen, _ = loaded_network()
        col = TelemetryCollector(interval=50, sinks=[MemorySink(), JSONLSink(path)])
        col.attach_network(net, "net")
        gen.run(400)
        col.close()
        reloaded = load_jsonl(path)
        live = col.memory.samples
        assert [s.cycle for s in reloaded] == [s.cycle for s in live]
        assert [s.channels for s in reloaded] == [s.channels for s in live]


class TestSystemAttachment:
    def test_attach_system_samples_all_prefixes(self):
        from repro.core.schemes import scheme
        from repro.gpu.config import GPUConfig
        from repro.gpu.system import GPGPUSystem
        from repro.workloads.suite import benchmark

        cfg = GPUConfig.scaled(4, warps_per_core=4)
        system = GPGPUSystem(cfg, scheme("ada-ari"), benchmark("bfs"), seed=1)
        col = TelemetryCollector(interval=100)
        system.attach_telemetry(col)
        system.run(300)
        assert col.samples_taken == 3  # cycles 0, 100, 200
        last = col.memory.samples[-1]
        prefixes = {name.split(".", 1)[0] for name in last.channels}
        assert {"req", "rep", "sys"} <= prefixes
        # ARI puts SplitNIs at the reply-net MC nodes.
        assert "rep.split_q_depths" in last.channels
        assert last.channels["sys.instructions"] >= 0
