"""Tests for the Eq. (1)/(2) speedup sizing rules."""

import pytest

from repro.core.speedup import (
    choose_speedup,
    estimate_ideal_injection_rate,
    mean_flits_per_packet,
    peak_injection_rate,
    required_speedup,
    speedup_upper_bound,
)
from repro.noc.flit import Packet, PacketType
from repro.noc.network import NetworkConfig


class TestEquation1:
    def test_basic(self):
        # 0.3 packets/cycle x 8.2 flits/packet -> ceil(2.46) = 3.
        assert required_speedup(0.3, 8.2) == 3

    def test_minimum_one(self):
        assert required_speedup(0.0, 9) == 1
        assert required_speedup(0.01, 1) == 1

    def test_exact_integer(self):
        assert required_speedup(0.5, 8) == 4

    def test_invalid(self):
        with pytest.raises(ValueError):
            required_speedup(-1, 9)
        with pytest.raises(ValueError):
            required_speedup(0.5, 0)


class TestEquation2:
    def test_mesh_default(self):
        assert speedup_upper_bound(4, 4) == 4

    def test_vc_limited(self):
        assert speedup_upper_bound(4, 2) == 2

    def test_port_limited(self):
        assert speedup_upper_bound(3, 4) == 3

    def test_invalid(self):
        with pytest.raises(ValueError):
            speedup_upper_bound(0, 4)


class TestChoose:
    def test_smin_within_bound(self):
        assert choose_speedup(0.2, 8.2) == 2

    def test_clamped_to_bound(self):
        """Paper guideline: if S_min violates (2), use the (2) bound."""
        assert choose_speedup(1.0, 9.0) == 4

    def test_paper_main_configuration(self):
        """The paper's S=4 covers 95% of peak rates with 4 VCs on a mesh."""
        assert choose_speedup(0.45, 8.8, 4, 4) == 4


class TestMeanFlits:
    def test_reply_mix(self):
        # 85% long read replies (9 flits) + 15% short write replies.
        mix = {PacketType.READ_REPLY: 0.85, PacketType.WRITE_REPLY: 0.15}
        assert mean_flits_per_packet(mix) == pytest.approx(0.85 * 9 + 0.15)

    def test_empty_mix_raises(self):
        with pytest.raises(ValueError):
            mean_flits_per_packet({})


class TestIdealRateEstimation:
    def test_measures_offered_rate(self):
        def schedule(net, cycle):
            if cycle % 4 == 0:
                net.offer(5, Packet(PacketType.READ_REPLY, 5, 1, 9, cycle))

        rates = estimate_ideal_injection_rate(
            NetworkConfig(width=4, height=4), schedule, cycles=400, mc_nodes=[5]
        )
        assert rates[5] == pytest.approx(0.25, rel=0.05)


class TestPeakRate:
    def test_percentile(self):
        counts = list(range(1, 101))  # 1..100 packets per 100-cycle interval
        assert peak_injection_rate(counts, 100, 0.95) == pytest.approx(0.95)

    def test_empty(self):
        assert peak_injection_rate([], 100) == 0.0

    def test_bad_percentile(self):
        with pytest.raises(ValueError):
            peak_injection_rate([1], 100, 0.0)
