"""Tests for ARIConfig."""

import pytest

from repro.core.ari import ARIConfig
from repro.noc.ni import NIKind


class TestPresets:
    def test_full(self):
        a = ARIConfig.full()
        assert a.supply and a.consume
        assert a.priority_levels == 2
        assert a.priority_enabled
        assert a.ni_kind == NIKind.SPLIT
        assert a.effective_speedup == 4

    def test_off(self):
        a = ARIConfig.off()
        assert not a.supply and not a.consume
        assert not a.priority_enabled
        assert a.ni_kind == NIKind.ENHANCED
        assert a.effective_speedup == 1

    def test_supply_only(self):
        a = ARIConfig.supply_only()
        assert a.ni_kind == NIKind.SPLIT
        assert a.effective_speedup == 1

    def test_consume_only(self):
        a = ARIConfig.consume_only()
        assert a.ni_kind == NIKind.ENHANCED
        assert a.effective_speedup == 4

    def test_both_no_priority(self):
        a = ARIConfig.both_no_priority()
        assert a.ni_kind == NIKind.SPLIT
        assert a.effective_speedup == 4
        assert not a.priority_enabled


class TestValidation:
    def test_priority_levels_positive(self):
        with pytest.raises(ValueError):
            ARIConfig(priority_levels=0)

    def test_split_queues_positive(self):
        with pytest.raises(ValueError):
            ARIConfig(num_split_queues=0)

    def test_speedup_positive(self):
        with pytest.raises(ValueError):
            ARIConfig(injection_speedup=0)

    def test_frozen(self):
        a = ARIConfig.full()
        with pytest.raises(Exception):
            a.supply = False
