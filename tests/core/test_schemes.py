"""Tests for the named evaluation schemes."""

import pytest

from repro.core.schemes import SCHEMES, Scheme, scheme, scheme_names
from repro.noc.ni import NIKind


class TestRegistry:
    def test_paper_schemes_present(self):
        for name in [
            "xy-baseline", "xy-ari", "ada-baseline", "ada-multiport",
            "ada-ari", "acc-supply", "acc-consume", "acc-both",
            "da2mesh", "da2mesh-ari",
        ]:
            assert name in SCHEMES

    def test_unknown_scheme(self):
        with pytest.raises(KeyError):
            scheme("torus-ari")

    def test_names_sorted(self):
        assert scheme_names() == sorted(scheme_names())


class TestSchemeProperties:
    def test_baselines_use_enhanced_ni(self):
        assert scheme("xy-baseline").ni_kind == NIKind.ENHANCED
        assert scheme("ada-baseline").ni_kind == NIKind.ENHANCED

    def test_ari_uses_split_ni(self):
        assert scheme("xy-ari").ni_kind == NIKind.SPLIT
        assert scheme("ada-ari").ni_kind == NIKind.SPLIT

    def test_multiport_overrides_ni(self):
        s = scheme("ada-multiport")
        assert s.num_injection_ports == 2
        assert s.ni_kind == NIKind.MULTIPORT

    def test_routing_assignment(self):
        assert scheme("xy-ari").routing == "xy"
        assert scheme("ada-ari").routing == "adaptive"

    def test_fig10_ablations(self):
        assert scheme("acc-supply").ari.supply
        assert not scheme("acc-supply").ari.consume
        assert not scheme("acc-consume").ari.supply
        assert scheme("acc-consume").ari.consume
        both = scheme("acc-both").ari
        assert both.supply and both.consume and not both.priority_enabled

    def test_link_width_variants(self):
        assert scheme("xy-baseline-256req").request_width_mult == 2
        assert scheme("xy-baseline-256rep").reply_width_mult == 2

    def test_da2mesh_overlay_flag(self):
        assert scheme("da2mesh").reply_overlay == "da2mesh"
        assert scheme("da2mesh-ari").reply_overlay == "da2mesh"
        assert scheme("ada-ari").reply_overlay == "mesh"


class TestModifiers:
    def test_with_priority_levels(self):
        s = scheme("ada-ari").with_priority_levels(4)
        assert s.ari.priority_levels == 4
        assert scheme("ada-ari").ari.priority_levels == 2  # original intact

    def test_with_speedup(self):
        s = scheme("ada-ari").with_speedup(2)
        assert s.ari.injection_speedup == 2


class TestNewSchemes:
    def test_request_side_ablation_scheme(self):
        s = scheme("ada-ari-both")
        assert s.accelerate_request
        assert s.ari.supply and s.ari.consume

    def test_naive_baseline_forces_narrow_ni(self):
        s = scheme("xy-naive-baseline")
        assert s.force_ni_kind == NIKind.BASELINE_NARROW
        assert s.ni_kind == NIKind.BASELINE_NARROW

    def test_modifiers_chain(self):
        s = (
            scheme("ada-ari")
            .with_priority_levels(3)
            .with_speedup(2)
            .with_split_queues(2)
            .with_starvation_threshold(500)
        )
        assert s.ari.priority_levels == 3
        assert s.ari.injection_speedup == 2
        assert s.ari.num_split_queues == 2
        assert s.ari.starvation_threshold == 500

    def test_modifiers_do_not_mutate_registry(self):
        before = scheme("ada-ari").ari
        scheme("ada-ari").with_speedup(1)
        assert scheme("ada-ari").ari == before
