"""Tests for the analytical area model (Sec. 6.1)."""

import pytest

from repro.energy.area import AreaModel, ari_area_overhead


class TestCalibration:
    def test_pair_overhead_matches_paper(self):
        """Paper: 5.4% for one revised NI + MC-router pair."""
        assert ari_area_overhead()["pair_overhead"] == pytest.approx(0.054, abs=0.01)

    def test_network_overhead_matches_paper(self):
        """Paper: 0.7% amortized over the whole network."""
        assert ari_area_overhead()["network_overhead"] == pytest.approx(
            0.007, abs=0.004
        )


class TestStructure:
    def test_ari_tile_larger(self):
        m = AreaModel()
        assert m.ari_tile().total > m.baseline_tile().total

    def test_crossbar_grows_with_speedup(self):
        m = AreaModel()
        assert (
            m.ari_tile(injection_speedup=4).crossbar
            > m.ari_tile(injection_speedup=2).crossbar
        )

    def test_buffers_unchanged(self):
        """Fair comparison: ARI keeps the same total buffering."""
        m = AreaModel()
        base = m.baseline_tile()
        ari = m.ari_tile()
        assert ari.input_buffers == base.input_buffers
        # split queues add only small periphery
        assert ari.ni_queues < base.ni_queues * 1.2

    def test_priority_logic_only_with_levels(self):
        m = AreaModel()
        assert m.ari_tile(priority_levels=1).priority_logic == 0.0
        assert m.ari_tile(priority_levels=2).priority_logic > 0.0

    def test_network_overhead_scales_with_mc_fraction(self):
        m = AreaModel()
        few = m.network_overhead(num_routers=72, num_mc_routers=4)
        many = m.network_overhead(num_routers=72, num_mc_routers=16)
        assert many > few

    def test_breakdown_sums(self):
        b = AreaModel().ari_tile()
        assert b.total == pytest.approx(sum(b.as_dict().values()))
