"""Tests for the energy model (Fig. 14)."""

import pytest

from repro.energy.gpuwattch import (
    ActivityCounts,
    EnergyModel,
    activity_from_system,
)


def counts(**kw):
    base = dict(
        instructions=1000,
        l1_accesses=400,
        l2_accesses=100,
        dram_accesses=50,
        flit_hops=2000,
        injected_flits=500,
        cycles=500,
    )
    base.update(kw)
    return ActivityCounts(**base)


class TestModelStructure:
    def test_static_scales_with_cycles(self):
        m = EnergyModel()
        fast = m.evaluate(counts(cycles=400))
        slow = m.evaluate(counts(cycles=800))
        assert slow.static == 2 * fast.static
        assert slow.dynamic == fast.dynamic

    def test_ari_adds_small_dynamic(self):
        base = EnergyModel(ari_enabled=False).evaluate(counts())
        ari = EnergyModel(ari_enabled=True).evaluate(counts())
        assert ari.dynamic > base.dynamic
        assert (ari.dynamic - base.dynamic) / base.dynamic < 0.02

    def test_shorter_execution_saves_energy(self):
        """The Fig. 14 mechanism: same work in fewer cycles -> less total."""
        base = EnergyModel(False).evaluate(counts(cycles=1000))
        ari = EnergyModel(True).evaluate(counts(cycles=850))
        assert ari.total < base.total

    def test_breakdown_dict(self):
        e = EnergyModel().evaluate(counts())
        d = e.as_dict()
        assert d["total"] == pytest.approx(d["dynamic"] + d["static"])


class TestSystemIntegration:
    def _system(self, scheme_name):
        from repro.core.schemes import scheme
        from repro.gpu.config import GPUConfig
        from repro.gpu.system import GPGPUSystem
        from repro.workloads.suite import benchmark

        cfg = GPUConfig.scaled(4, warps_per_core=8)
        sys_ = GPGPUSystem(cfg, scheme(scheme_name), benchmark("bfs"), seed=1)
        sys_.simulate(cycles=300, warmup=50)
        return sys_

    def test_activity_collection(self):
        sys_ = self._system("xy-baseline")
        a = activity_from_system(sys_)
        assert a.instructions > 0
        assert a.flit_hops > 0
        assert a.dram_accesses > 0
        assert a.cycles == sys_.now

    def test_ari_reduces_cycles_per_instruction(self):
        """The Fig. 14 mechanism at system level: ARI does the same work in
        fewer cycles, shrinking the static-energy share.  (The full
        energy-per-instruction comparison needs steady-state windows and is
        exercised by the fig14 driver / benches.)"""
        base = activity_from_system(self._system("ada-baseline"))
        ari = activity_from_system(self._system("ada-ari"))
        assert ari.cycles / ari.instructions < base.cycles / base.instructions

    def test_injected_flits_counted_on_reply_side(self):
        sys_ = self._system("ada-ari")
        a = activity_from_system(sys_)
        assert a.injected_flits > 0
