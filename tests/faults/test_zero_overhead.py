"""The zero-overhead contract: an empty fault plan changes nothing.

A spec with ``faults=None`` never imports :mod:`repro.faults`.  A spec
with an *empty* plan installs the whole subsystem — wrapped routing,
network hooks, injectors — and its per-run records must still be
byte-identical to the plain run (only host-timing extras may differ).
"""

import dataclasses
import json

import pytest

from repro.experiments.executor import simulate_spec
from repro.experiments.runner import RunSpec

BUDGET = dict(cycles=120, warmup=30, mesh=4, warps_per_core=4)

#: Host-timing extras legitimately differ between two runs of anything.
WALL_KEYS = ("build_wall_s", "sim_wall_s", "sim_cycles_per_sec")


def record(result):
    d = dataclasses.asdict(result)
    for k in WALL_KEYS:
        d["extras"].pop(k, None)
    # json round-trip = exactly what the result store would persist.
    return json.dumps(d, sort_keys=True)


@pytest.mark.parametrize("scheme", ["xy-baseline", "ada-ari"])
def test_empty_plan_records_byte_identical(scheme):
    plain = simulate_spec(
        RunSpec("binomialOptions", scheme, **BUDGET)
    )
    faulted = simulate_spec(
        RunSpec("binomialOptions", scheme, faults="", fault_detour=True,
                **BUDGET)
    )
    assert record(plain) == record(faulted)


def test_empty_plan_adds_no_fault_extras():
    result = simulate_spec(
        RunSpec("binomialOptions", "xy-baseline", faults="", **BUDGET)
    )
    assert not any(k.startswith("fault_") for k in result.extras)
    assert "delivered_fraction" not in result.extras
    assert "first_deadlock_cycle" not in result.extras


def test_plain_spec_never_imports_faults_package(tmp_path):
    """A no-faults run must not even load the subsystem."""
    import os
    import subprocess
    import sys

    import repro

    src_dir = os.path.dirname(os.path.dirname(repro.__file__))
    code = (
        "import sys\n"
        "from repro.experiments.executor import simulate_spec\n"
        "from repro.experiments.runner import RunSpec\n"
        "simulate_spec(RunSpec('binomialOptions', 'xy-baseline', cycles=60,"
        " warmup=20, mesh=4, warps_per_core=4))\n"
        "assert not any(m.startswith('repro.faults') for m in sys.modules),"
        " sorted(m for m in sys.modules if m.startswith('repro.faults'))\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env={
            **os.environ,
            "PYTHONPATH": src_dir,
            "REPRO_CACHE": str(tmp_path / "c.json"),
        },
    )
    assert proc.returncode == 0, proc.stderr


def test_fault_fields_keep_legacy_cache_keys():
    """Unset fault fields must not perturb pre-existing content keys."""
    spec = RunSpec("bfs", "ada-ari", cycles=300, warmup=100)
    assert spec.faults is None and spec.fault_detour is None
    payload = dataclasses.asdict(spec)
    del payload["faults"], payload["fault_detour"]
    legacy = RunSpec(**payload)
    assert legacy.key() == spec.key()
    # A set plan does change the key (it changes the simulation).
    assert RunSpec("bfs", "ada-ari", cycles=300, warmup=100,
                   faults="link:r5.E@0").key() != spec.key()
