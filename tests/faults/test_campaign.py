"""Tests for degradation campaigns and their reports."""

from repro.faults import CampaignConfig, CampaignRunner, run_campaign

SMALL = CampaignConfig(
    benchmark="binomialOptions",
    schemes=("xy-baseline", "ada-ari"),
    dead_links=(0, 1),
    seeds=(3,),
    cycles=200,
    warmup=60,
    mesh=4,
    check_invariants="collect",
)


class TestSpecConstruction:
    def test_zero_fault_cells_are_plain_specs(self):
        for scheme, n_dead, _seed, spec in CampaignRunner(SMALL).specs():
            if n_dead == 0:
                assert spec.faults is None
                assert spec.fault_detour is None
            else:
                assert spec.faults
                assert spec.fault_detour is True
            assert spec.scheme == scheme

    def test_same_link_cut_for_every_scheme(self):
        by_scheme = {}
        for scheme, n_dead, _seed, spec in CampaignRunner(SMALL).specs():
            if n_dead == 1:
                by_scheme[scheme] = spec.faults
        assert len(set(by_scheme.values())) == 1

    def test_plan_for_zero_is_empty(self):
        assert SMALL.plan_for(0).empty
        assert len(SMALL.plan_for(2)) == 2


class TestCampaignRun:
    def test_report_shape_and_contract(self):
        report = run_campaign(SMALL, use_cache=False)
        assert len(report.rows) == 4  # 2 schemes x 2 intensities
        for row in report.rows:
            if row["dead_links"] == 0:
                assert row["delivered_fraction"] == 1.0
                assert row["latency_inflation"] == 1.0
                assert row["dropped"] == 0
            assert row["delivered_fraction"] > 0.0
            assert row["first_deadlock_cycle"] is None
            assert row["invariant_violations"] == 0

    def test_render_and_row_lookup(self):
        report = run_campaign(SMALL, use_cache=False)
        text = report.render()
        assert "xy-baseline" in text and "ada-ari" in text
        assert "-" in text  # never-deadlocked cells render as a dash
        cell = report.row("ada-ari", 1)
        assert cell is not None and cell["dead_links"] == 1
        assert report.row("ada-ari", 99) is None

    def test_to_dict_round_trips_config(self):
        report = run_campaign(SMALL, use_cache=False)
        payload = report.to_dict()
        assert payload["benchmark"] == "binomialOptions"
        assert payload["config"]["dead_links"] == [0, 1]
        assert len(payload["rows"]) == 4

    def test_results_cache_across_campaigns(self, tmp_path):
        from repro.experiments.store import ResultStore

        store = ResultStore(str(tmp_path / "s"))
        run_campaign(SMALL, store=store)
        before = len(store)
        assert before == 4

        calls = []
        run_campaign(
            SMALL, store=store,
            progress=lambda done, total, spec, source: calls.append(source),
        )
        assert set(calls) == {"cache"}
