"""Behavioral tests for the fault injector: detours, repairs, retries, drops.

Every scenario runs with a per-cycle :class:`InvariantChecker` audit in
raise mode — a fault plan may change *where* packets go (or whether they
arrive at all), but it must never corrupt flow-control state.
"""

import pytest

from repro.faults import (
    FaultPlan,
    FaultProbe,
    RetryPolicy,
    install_faults,
)
from repro.noc import Network, NetworkConfig
from repro.noc.flit import Packet, PacketType
from repro.noc.ni import NIKind, SplitNI
from repro.noc.routing import DIRECTION_NAMES, opposite
from repro.noc.validation import InvariantChecker

#: Fast retry policy so stranded-packet handling resolves in tens of cycles.
FAST_RETRY = RetryPolicy(timeout=4, backoff=1.0, max_retries=2)


def make_network(routing="xy", **overrides):
    cfg = NetworkConfig(width=4, height=4, routing=routing, **overrides)
    net = Network(cfg)
    net.auditor = InvariantChecker(net)
    return net


def make_packet(src, dest, size=5):
    return Packet(PacketType.READ_REPLY, src, dest, size, created_at=0)


def first_hop_token(net, src, dest, cycle=0, duration=None):
    """DSL token killing the XY first-hop link of ``src -> dest``."""
    direction = net.routing.candidates(
        net.topology.coords(src), net.topology.coords(dest)
    )[0]
    tail = f"@{cycle}" if duration is None else f"@{cycle}+{duration}"
    return f"link:r{src}.{DIRECTION_NAMES[direction]}{tail}"


def run_until_drained(net, cycles=2000):
    for _ in range(cycles):
        net.step()
        if net.stats.in_flight == 0:
            return True
    return False


class TestDetourDelivery:
    def test_xy_detours_around_dead_first_hop(self):
        net = make_network("xy")
        token = first_hop_token(net, 0, 15)
        inj = install_faults(net, FaultPlan.parse(token))
        assert net.offer(0, make_packet(0, 15))
        assert run_until_drained(net)
        assert net.stats.packets_delivered == 1
        assert net.stats.packets_dropped == 0
        assert net.stats.delivered_fraction() == 1.0
        assert inj.stats.events_applied == 1

    def test_wrapper_is_transparent_without_faults(self):
        net = make_network("xy")
        base = net.routing
        install_faults(net, FaultPlan())
        assert net.routing.adaptive == base.adaptive
        src, dest = 0, 15
        assert net.routing.candidates(
            net.topology.coords(src), net.topology.coords(dest)
        ) == base.candidates(
            net.topology.coords(src), net.topology.coords(dest)
        )

    def test_mixed_traffic_survives_two_dead_links(self):
        net = make_network("adaptive")
        plan = FaultPlan.random_links(2, 4, 4, seed=7)
        install_faults(net, plan)
        offered = 0
        for src in range(16):
            dest = (src + 5) % 16
            if net.offer(src, make_packet(src, dest)):
                offered += 1
        assert run_until_drained(net)
        assert net.stats.packets_delivered == offered
        assert net.stats.delivered_fraction() == 1.0


class TestTransientFaults:
    def test_link_repairs_and_routing_returns_to_base(self):
        net = make_network("xy")
        token = first_hop_token(net, 0, 15, cycle=5, duration=30)
        inj = install_faults(net, FaultPlan.parse(token))
        for _ in range(50):
            net.step()
        assert inj.stats.events_applied == 1
        assert inj.stats.repairs_applied == 1
        assert not inj.state.active
        # A packet sent after the repair takes the plain XY path again.
        assert not net.routing.adaptive
        assert net.offer(0, make_packet(0, 15))
        assert run_until_drained(net)
        assert net.stats.packets_delivered == 1

    def test_overlapping_faults_on_same_link_refcount(self):
        net = make_network("xy")
        token = first_hop_token(net, 0, 15)
        base = token.split("@")[0]
        plan = FaultPlan.parse(f"{base}@0+40;{base}@10+10")
        inj = install_faults(net, plan)
        for _ in range(25):
            net.step()
        # The first fault still holds after the second one's repair.
        assert inj.state.active
        for _ in range(30):
            net.step()
        assert not inj.state.active
        assert inj.stats.repairs_applied == 2


class TestVCFaults:
    def test_traffic_flows_on_surviving_vcs(self):
        net = make_network("xy", num_vcs=4)
        token = first_hop_token(net, 0, 15).replace("@0", ".1@0")
        token = token.replace("link:", "vc:")
        inj = install_faults(net, FaultPlan.parse(token))
        for _ in range(4):
            net.offer(0, make_packet(0, 15))
        assert run_until_drained(net)
        assert net.stats.packets_delivered == 4
        assert inj.state.active is False  # a VC pin is not a dead link

    def test_transient_vc_pin_releases(self):
        net = make_network("xy", num_vcs=4)
        token = first_hop_token(net, 0, 15, duration=20)
        token = token.replace("link:", "vc:").replace("@0+20", ".1@0+20")
        inj = install_faults(net, FaultPlan.parse(token))
        for _ in range(30):
            net.step()
        assert inj.stats.repairs_applied == 1
        assert not inj._pin_counts


class TestNIQueueFaults:
    def test_queued_packet_dropped_after_retries(self):
        net = make_network("xy", ni_kind=NIKind.ENHANCED)
        inj = install_faults(
            net, FaultPlan.parse("niq:r0.0@0"), retry=FAST_RETRY
        )
        # Offered before the first step: the fault lands (at the top of
        # cycle 0) with the packet already queued, stranding it.
        assert net.offer(0, make_packet(0, 15))
        for _ in range(60):
            net.step()
        assert inj.stats.drops_niq == 1
        assert inj.stats.retries == FAST_RETRY.max_retries + 1
        assert net.stats.packets_dropped == 1
        assert net.stats.delivered_fraction() == 0.0
        assert net.stats.in_flight == 0

    def test_offer_to_fully_dead_ni_drops_at_source(self):
        net = make_network("xy", ni_kind=NIKind.ENHANCED)
        inj = install_faults(
            net, FaultPlan.parse("niq:r0.0@0"), retry=FAST_RETRY
        )
        net.step()
        assert net.offer(0, make_packet(0, 15))  # producer's send "succeeds"
        assert inj.stats.drops_source == 1
        assert net.stats.packets_dropped == 1
        assert net.stats.packets_offered == 1

    def test_split_ni_relocates_to_live_queue(self):
        net = make_network(
            "adaptive",
            accelerated_nodes={5},
            ni_kind=NIKind.SPLIT,
            injection_speedup=4,
        )
        assert isinstance(net.nis[5], SplitNI)
        pkt = make_packet(5, 10)
        assert net.offer(5, pkt)
        queues = net.nis[5].queue_depths()
        stuck_queue = next(i for i, d in enumerate(queues) if d > 0)
        inj = install_faults(
            net,
            FaultPlan.parse(f"niq:r5.{stuck_queue}@0"),
            retry=FAST_RETRY,
        )
        assert run_until_drained(net)
        assert inj.stats.relocations == 1
        assert inj.stats.drops_niq == 0
        assert net.stats.packets_delivered == 1

    def test_transient_niq_restores_fast_path(self):
        net = make_network("xy", ni_kind=NIKind.ENHANCED)
        install_faults(net, FaultPlan.parse("niq:r0.0@0+10"))
        net.step()
        assert net.nis[0].dead_queues == {0}
        for _ in range(15):
            net.step()
        assert net.nis[0].dead_queues is None


class TestUnreachableDestinations:
    def _isolate_node(self, net, node):
        """Tokens killing every link *into* ``node``."""
        tokens = []
        for d, nbr in net.topology.neighbors(node).items():
            tokens.append(f"link:r{nbr}.{DIRECTION_NAMES[opposite(d)]}@0")
        return ";".join(tokens)

    def test_source_drop_when_destination_cut_off(self):
        net = make_network("xy")
        inj = install_faults(net, FaultPlan.parse(self._isolate_node(net, 0)))
        net.step()
        assert net.offer(15, make_packet(15, 0))
        assert inj.stats.drops_source == 1
        assert net.stats.packets_dropped == 1
        # Reachable destinations are unaffected.
        assert net.offer(15, make_packet(15, 5))
        assert run_until_drained(net)
        assert net.stats.packets_delivered == 1
        assert net.stats.delivered_fraction() == 0.5

    def test_in_flight_packet_purged_without_detour(self):
        net = make_network("xy")
        token = first_hop_token(net, 0, 15, cycle=1)
        inj = install_faults(
            net, FaultPlan.parse(token), detour=False, retry=FAST_RETRY
        )
        assert net.offer(0, make_packet(0, 15))
        for _ in range(100):
            net.step()
        assert inj.stats.drops_purged == 1
        assert net.stats.packets_dropped == 1
        assert net.stats.in_flight == 0
        # Purging returned every credit: the mesh is clean at quiescence.
        net.auditor.check_quiescent_conservation()


class TestFaultProbe:
    def test_channels_and_deltas(self):
        net = make_network("xy")
        inj = install_faults(net, FaultPlan.parse(first_hop_token(net, 0, 15)))
        probe = FaultProbe([inj])
        net.step()
        sample = probe.collect(net.now)
        assert sample["fault.dead_links"] == 1
        assert sample["fault.events_applied"] == 1
        assert sample["fault.drops"] == 0
        # Deltas: a second collect with no new drops reports zero.
        assert probe.collect(net.now)["fault.drops"] == 0

    def test_summary_keys_are_prefixed_floats(self):
        net = make_network("xy")
        inj = install_faults(net, FaultPlan.parse(first_hop_token(net, 0, 15)))
        net.step()
        summary = inj.summary()
        assert summary["fault_dead_links"] == 1.0
        assert all(k.startswith("fault_") for k in summary)
        assert all(isinstance(v, float) for v in summary.values())


class TestInstallErrors:
    def test_invalid_plan_rejected_at_install(self):
        net = make_network("xy")
        with pytest.raises(ValueError, match="router 99"):
            install_faults(net, FaultPlan.parse("link:r99.E@0"))

    def test_niq_index_validated_at_apply(self):
        net = make_network("xy", ni_kind=NIKind.ENHANCED)
        install_faults(net, FaultPlan.parse("niq:r0.3@0"))
        with pytest.raises(ValueError, match="no injection queue"):
            net.step()
