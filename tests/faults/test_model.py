"""Tests for the fault DSL: events, plans, parsing, validation."""

import pytest

from repro.faults import FaultEvent, FaultKind, FaultPlan, describe, parse_event
from repro.faults.model import validate_plan
from repro.noc.routing import EAST, NORTH
from repro.noc.topology import MeshTopology


class TestParseEvent:
    def test_link_token(self):
        e = parse_event("link:r5.E@100")
        assert e.kind == FaultKind.LINK
        assert (e.router, e.direction) == (5, EAST)
        assert e.cycle == 100
        assert e.duration is None
        assert e.net == "rep"

    def test_transient_with_net_prefix(self):
        e = parse_event("req:link:r5.E@100+50")
        assert e.net == "req"
        assert e.duration == 50
        assert e.repair_cycle == 150

    def test_vc_token(self):
        e = parse_event("vc:r2.N.1@0")
        assert e.kind == FaultKind.VC
        assert (e.router, e.direction, e.vc) == (2, NORTH, 1)

    def test_niq_token(self):
        e = parse_event("niq:r3.1@10")
        assert e.kind == FaultKind.NIQ
        assert (e.router, e.queue) == (3, 1)

    def test_port_token(self):
        e = parse_event("port:r5.W@0")
        assert e.kind == FaultKind.PORT

    @pytest.mark.parametrize("bad", [
        "",
        "link:r5@0",            # no direction
        "link:r5.X@0",          # bad direction
        "link:r5.E",            # no cycle
        "vc:r5.E@0",            # vc fault without VC index
        "niq:r5.E@0",           # niq target is not a direction
        "spoon:r5.E@0",         # unknown kind
        "mid:link:r5.E@0",      # unknown net
        "link:r5.E@0+0",        # zero duration
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_event(bad)

    def test_event_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(FaultKind.LINK, 5, cycle=-1, direction=EAST)
        with pytest.raises(ValueError):
            FaultEvent(FaultKind.LINK, 5, cycle=0)  # no direction
        with pytest.raises(ValueError):
            FaultEvent(FaultKind.NIQ, 5, cycle=0)   # no queue


class TestFaultPlan:
    def test_round_trip(self):
        text = "link:r6.W@0;req:vc:r2.N.1@100+50;niq:r3.1@10"
        plan = FaultPlan.parse(text)
        assert FaultPlan.parse(plan.format()) == plan
        assert len(plan) == 3

    def test_sorted_by_cycle(self):
        plan = FaultPlan.parse("link:r5.E@100;link:r6.W@0")
        assert [e.cycle for e in plan.events] == [0, 100]

    def test_none_and_empty_parse_to_empty_plan(self):
        assert FaultPlan.parse(None).empty
        assert FaultPlan.parse("").empty
        assert FaultPlan.parse("  ").empty
        assert FaultPlan().format() == ""

    def test_for_net_partitions(self):
        plan = FaultPlan.parse("req:link:r1.E@0;link:r2.E@0")
        assert [e.net for e in plan.for_net("req").events] == ["req"]
        assert [e.net for e in plan.for_net("rep").events] == ["rep"]

    def test_random_links_deterministic(self):
        a = FaultPlan.random_links(3, 4, 4, seed=7)
        b = FaultPlan.random_links(3, 4, 4, seed=7)
        assert a == b
        assert len(a) == 3
        # Growing the count keeps the draw prefix-free of duplicates.
        targets = {(e.router, e.direction) for e in a.events}
        assert len(targets) == 3

    def test_random_links_respects_exclude(self):
        full = FaultPlan.random_links(2, 4, 4, seed=7)
        banned = (full.events[0].router, full.events[0].direction)
        redrawn = FaultPlan.random_links(2, 4, 4, seed=7, exclude=[banned])
        assert banned not in {
            (e.router, e.direction) for e in redrawn.events
        }

    def test_random_links_pool_exhaustion(self):
        with pytest.raises(ValueError):
            FaultPlan.random_links(1000, 4, 4, seed=1)


class TestValidatePlan:
    def test_accepts_valid_plan(self):
        topo = MeshTopology(4, 4)
        validate_plan(FaultPlan.parse("link:r5.E@0;vc:r5.E.1@0"), topo, 2)

    def test_rejects_router_out_of_mesh(self):
        with pytest.raises(ValueError, match="router 99"):
            validate_plan(FaultPlan.parse("link:r99.E@0"), MeshTopology(4, 4), 2)

    def test_rejects_mesh_edge_link(self):
        # Router 3 is the top-right corner of a 4x4 mesh: no East link.
        with pytest.raises(ValueError, match="mesh edge"):
            validate_plan(FaultPlan.parse("link:r3.E@0"), MeshTopology(4, 4), 2)

    def test_rejects_vc_out_of_range(self):
        with pytest.raises(ValueError, match="num_vcs"):
            validate_plan(FaultPlan.parse("vc:r5.E.7@0"), MeshTopology(4, 4), 2)


def test_describe_is_one_line_per_event():
    plan = FaultPlan.parse("link:r6.W@0;niq:r3.1@10+5")
    lines = describe(plan)
    assert len(lines) == 2
    assert any("permanent" in line for line in lines)
    assert any("for 5 cycles" in line for line in lines)
