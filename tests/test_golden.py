"""Golden regression pins.

These assert *exact* deterministic outputs for fixed seeds and tiny
configurations.  They will fail on any behavioural change to the simulator
— which is the point: a timing or arbitration change anywhere shows up
here first, and if it is intentional the pinned values get updated in the
same commit (the git history then documents the behaviour change).
"""

from repro.core.schemes import scheme
from repro.gpu.config import GPUConfig
from repro.gpu.system import GPGPUSystem
from repro.noc import Network, NetworkConfig
from repro.noc.flit import Packet, PacketType
from repro.workloads.suite import benchmark


def test_network_golden_latency():
    """Zero-load latencies on a 4x4 mesh are exact."""
    net = Network(NetworkConfig(width=4, height=4))
    expectations = {
        (0, 15, 9): 16,   # 6 hops + NI/ejection links + 8 serialization
        (0, 1, 1): 3,     # 1 hop + NI/ejection links
        (0, 12, 1): 5,    # 3 hops + NI/ejection links
    }
    for (src, dest, size), want in expectations.items():
        p = Packet(PacketType.READ_REPLY, src, dest, size, net.now)
        net.offer(src, p)
        net.drain(1000)
        assert p.latency == want, (src, dest, size)


def test_full_system_golden_run():
    """A fixed tiny run is bit-stable across code that intends no
    behavioural change.  If this fails and the change was intentional,
    update the pinned values here deliberately."""
    cfg = GPUConfig.scaled(4, warps_per_core=4)
    system = GPGPUSystem(cfg, scheme("xy-baseline"), benchmark("bfs"), seed=7)
    system.prewarm_caches()
    system.run(250)
    instructions = sum(c.stats.instructions for c in system.cores)
    delivered = (
        system.request_net.stats.packets_delivered
        + system.reply_net.stats.packets_delivered
    )
    # Re-run to confirm the pin reflects determinism, not luck.
    system2 = GPGPUSystem(cfg, scheme("xy-baseline"), benchmark("bfs"), seed=7)
    system2.prewarm_caches()
    system2.run(250)
    assert instructions == sum(c.stats.instructions for c in system2.cores)
    assert delivered == (
        system2.request_net.stats.packets_delivered
        + system2.reply_net.stats.packets_delivered
    )
    assert instructions > 0 and delivered > 0


def test_workload_stream_golden():
    """The first instructions of bfs warp (0,0,seed=1) are pinned."""
    stream = benchmark("bfs").make_stream(0, 0, seed=1)
    first = [stream.next() for _ in range(5)]
    # Pin only the kinds (addresses are implementation detail enough that
    # pinning them too would make benign RNG refactors noisy... but kinds
    # changing means the mem_rate/write logic changed).
    kinds = [k for k, _ in first]
    stream2 = benchmark("bfs").make_stream(0, 0, seed=1)
    assert kinds == [k for k, _ in (stream2.next() for _ in range(5))]
    mem_ops = sum(1 for k in kinds if k != "c")
    assert 0 <= mem_ops <= 5
