"""Tests for the log-bucketed latency histogram."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.noc.histogram import LatencyHistogram


class TestRecording:
    def test_empty(self):
        h = LatencyHistogram()
        assert h.count == 0
        assert h.mean == 0.0
        assert h.percentile(50) is None

    def test_basic_stats(self):
        h = LatencyHistogram()
        h.record_many([1, 2, 3, 4])
        assert h.count == 4
        assert h.mean == 2.5
        assert h.min_value == 1
        assert h.max_value == 4

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            LatencyHistogram().record(-1)

    def test_bucket_boundaries(self):
        h = LatencyHistogram()
        for v in (0, 1, 2, 3, 4, 7, 8, 1024):
            h.record(v)
        assert h.buckets[0] == 2   # 0, 1
        assert h.buckets[1] == 2   # 2, 3
        assert h.buckets[2] == 2   # 4..7
        assert h.buckets[3] == 1   # 8..15
        assert h.buckets[10] == 1  # 1024

    def test_overflow_clamped_to_last_bucket(self):
        h = LatencyHistogram(max_exponent=4)
        h.record(10**9)
        assert h.buckets[4] == 1


class TestPercentiles:
    def test_percentile_monotone(self):
        h = LatencyHistogram()
        rng = random.Random(3)
        h.record_many(rng.randrange(1000) for _ in range(500))
        ps = [h.percentile(p) for p in (10, 50, 90, 99, 100)]
        assert ps == sorted(ps)

    def test_percentile_accuracy_uniform(self):
        h = LatencyHistogram()
        h.record_many(range(1024))
        # Log buckets: coarse, but the median must land in the right octave.
        assert 256 <= h.percentile(50) <= 1024

    def test_p0_is_min(self):
        h = LatencyHistogram()
        h.record_many([5, 9, 100])
        assert h.percentile(0) == 5

    def test_bad_percentile(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(101)

    def test_summary_keys(self):
        h = LatencyHistogram()
        h.record(10)
        s = h.summary()
        assert set(s) == {"count", "mean", "p50", "p90", "p95", "p99", "max"}

    def test_named_percentile_properties(self):
        h = LatencyHistogram()
        h.record_many(range(100))
        assert h.p50 == h.percentile(50)
        assert h.p95 == h.percentile(95)
        assert h.p99 == h.percentile(99)
        assert h.p50 <= h.p95 <= h.p99

    def test_empty_percentiles_are_none(self):
        """No samples -> no percentiles; a fake 0.0 would poison the
        perfwatch KPI series built from these summaries."""
        h = LatencyHistogram()
        assert h.p50 is None
        assert h.p95 is None
        assert h.p99 is None
        assert h.percentile(0) is None
        assert h.percentile(100) is None
        s = h.summary()
        assert s["count"] == 0
        assert s["p50"] is None and s["p95"] is None and s["p99"] is None

    def test_single_sample_is_every_percentile(self):
        h = LatencyHistogram()
        h.record(37)
        for p in (0, 1, 50, 95, 99, 100):
            assert h.percentile(p) == 37.0
        assert h.p50 == h.p95 == h.p99 == 37.0
        assert h.summary()["p99"] == 37.0

    def test_single_zero_sample(self):
        h = LatencyHistogram()
        h.record(0)
        assert h.p50 == 0.0 and h.p99 == 0.0


class TestMerge:
    def test_merge_combines(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record_many([1, 2])
        b.record_many([100, 200])
        a.merge(b)
        assert a.count == 4
        assert a.min_value == 1
        assert a.max_value == 200

    def test_merge_geometry_mismatch(self):
        with pytest.raises(ValueError):
            LatencyHistogram(8).merge(LatencyHistogram(9))


class TestPlot:
    def test_ascii_plot(self):
        h = LatencyHistogram()
        h.record_many([1, 1, 1, 64])
        out = h.ascii_plot(width=10)
        assert "#" in out
        assert "64" in out

    def test_empty_plot(self):
        assert LatencyHistogram().ascii_plot() == "(empty)"


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 10**6), min_size=1, max_size=200))
def test_histogram_invariants(samples):
    h = LatencyHistogram()
    h.record_many(samples)
    assert h.count == len(samples)
    assert h.total == sum(samples)
    assert h.min_value == min(samples)
    assert h.max_value == max(samples)
    assert sum(h.buckets) == len(samples)
    assert h.min_value <= h.percentile(50) <= h.max_value
