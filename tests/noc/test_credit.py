"""Tests for credit-based flow control bookkeeping."""

import pytest

from repro.noc.credit import CreditChannel, CreditCounter


class TestCreditChannel:
    def test_latency_delays_delivery(self):
        ch = CreditChannel(latency=2)
        ch.send(vc=1, now=5)
        assert ch.deliver(5) == []
        assert ch.deliver(6) == []
        assert ch.deliver(7) == [1]

    def test_zero_latency(self):
        ch = CreditChannel(latency=0)
        ch.send(0, now=3)
        assert ch.deliver(3) == [0]

    def test_multiple_credits_in_order(self):
        ch = CreditChannel(latency=1)
        ch.send(0, now=0)
        ch.send(2, now=0)
        ch.send(1, now=1)
        assert ch.deliver(1) == [0, 2]
        assert ch.deliver(2) == [1]

    def test_late_delivery_collects_backlog(self):
        ch = CreditChannel(latency=1)
        for vc in (0, 1, 2):
            ch.send(vc, now=vc)
        assert ch.deliver(100) == [0, 1, 2]
        assert ch.pending == 0

    def test_pending_count(self):
        ch = CreditChannel(latency=5)
        ch.send(0, 0)
        ch.send(1, 0)
        assert ch.pending == 2

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            CreditChannel(latency=-1)


class TestCreditCounter:
    def test_initial_credits_equal_capacity(self):
        c = CreditCounter(num_vcs=4, vc_capacity=9)
        assert all(c.available(v) == 9 for v in range(4))

    def test_consume_and_restore(self):
        c = CreditCounter(2, 3)
        c.consume(0)
        c.consume(0)
        assert c.available(0) == 1
        assert c.available(1) == 3
        c.restore(0)
        assert c.available(0) == 2

    def test_underflow_raises(self):
        c = CreditCounter(1, 1)
        c.consume(0)
        with pytest.raises(RuntimeError):
            c.consume(0)

    def test_overflow_raises(self):
        c = CreditCounter(1, 1)
        with pytest.raises(RuntimeError):
            c.restore(0)

    def test_has_credit(self):
        c = CreditCounter(1, 1)
        assert c.has_credit(0)
        c.consume(0)
        assert not c.has_credit(0)

    def test_free_space_alias(self):
        c = CreditCounter(2, 5)
        c.consume(1)
        assert c.free_space(1) == c.available(1) == 4

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            CreditCounter(0, 1)
        with pytest.raises(ValueError):
            CreditCounter(1, 0)
