"""Analytic-model tests: formulas + simulator agreement with theory."""

import random

import pytest

from repro.noc import Network, NetworkConfig
from repro.noc.analytic import (
    injection_queue_wait,
    md1_wait,
    saturation_throughput,
    utilization,
    zero_load_latency,
)
from repro.noc.flit import Packet, PacketType


class TestFormulas:
    def test_zero_load_latency(self):
        assert zero_load_latency(hops=6, size_flits=9) == 1 + 6 + 1 + 8
        assert zero_load_latency(0, 1) == 2

    def test_zero_load_hop_latency(self):
        assert zero_load_latency(4, 1, hop_latency=2) == 1 + 8 + 1

    def test_zero_load_validation(self):
        with pytest.raises(ValueError):
            zero_load_latency(-1, 9)
        with pytest.raises(ValueError):
            zero_load_latency(2, 0)

    def test_md1_zero_load(self):
        assert md1_wait(0.0, 9) == 0.0

    def test_md1_saturation_is_infinite(self):
        assert md1_wait(0.2, 9) == float("inf")  # rho = 1.8

    def test_md1_half_load(self):
        # rho = 0.5: W = 0.5 * S / (2 * 0.5) = S / 2.
        assert md1_wait(0.5 / 9, 9) == pytest.approx(4.5)

    def test_saturation_throughput(self):
        assert saturation_throughput(9) == pytest.approx(1 / 9)
        assert saturation_throughput(9, 4.0) == pytest.approx(4 / 9)

    def test_utilization(self):
        assert utilization(0.05, 9) == pytest.approx(0.45)


class TestSimulatorAgreement:
    """The cycle-level simulator must match theory where theory is exact."""

    def test_zero_load_latency_matches_sim(self):
        net = Network(NetworkConfig(width=4, height=4))
        for src, dest, size in [(0, 15, 9), (0, 3, 1), (5, 6, 9)]:
            p = Packet(PacketType.READ_REPLY, src, dest, size, net.now)
            net.offer(src, p)
            net.drain(5000)
            hops = abs(src % 4 - dest % 4) + abs(src // 4 - dest // 4)
            assert p.latency == zero_load_latency(hops, size)

    @pytest.mark.parametrize("rate", [0.02, 0.05, 0.08])
    def test_injection_wait_tracks_md1(self, rate):
        """Poisson reply arrivals at one NI: the measured NI wait must sit
        near the M/D/1 prediction at light-to-moderate load (within a
        factor accounting for non-Poisson drain jitter downstream)."""
        from repro.noc.trace import PacketTracer

        dests = [d for d in range(16) if d != 5]
        net2 = Network(NetworkConfig(width=4, height=4, ni_queue_flits=360))
        tracer = PacketTracer.attach(net2)
        rng = random.Random(11)
        for cyc in range(12000):
            if rng.random() < rate:
                net2.offer(
                    5,
                    Packet(PacketType.READ_REPLY, 5, rng.choice(dests), 9, net2.now),
                )
            net2.step()
        net2.drain(20000)
        measured = tracer.ni_wait.mean
        predicted = injection_queue_wait(rate, 9)
        # Exact M/D/1 at low rho; allow slack for head-of-line effects from
        # downstream VC contention.
        assert measured == pytest.approx(predicted, rel=0.5, abs=1.5)

    def test_saturation_matches_ceiling(self):
        """A hammered baseline NI converges to 1/size packets per cycle."""
        net = Network(NetworkConfig(width=4, height=4))
        dests = [d for d in range(16) if d != 5]
        rng = random.Random(3)
        cycles = 4000
        for _ in range(cycles):
            net.offer(
                5, Packet(PacketType.READ_REPLY, 5, rng.choice(dests), 9, net.now)
            )
            net.step()
        tput = net.stats.packets_offered / cycles
        assert tput == pytest.approx(saturation_throughput(9), rel=0.05)


class TestBandwidthAnalysis:
    """Pins the paper's Sec. 3 arithmetic word for word."""

    def test_paper_numbers(self):
        from repro.noc.analytic import bandwidth_analysis

        r = bandwidth_analysis()
        assert r["mc_in_gbps"] == 28.0            # 1.75GHz x 32b x 4 / 8
        assert r["link_out_gbps"] == 16.0         # 128b x 1GHz / 8
        assert r["edge_mc_out_gbps"] == 48.0      # 3 links from an edge MC
        assert r["aggregate_mc_in_gbps"] == 224.0 # 28 x 8
        assert r["needed_bisection_gbps"] == pytest.approx(179.2)  # 80% rule
        assert r["bisection_gbps"] == 192.0       # 12 links x 16GB/s
        assert r["links_sufficient"]

    def test_non_edge_mc(self):
        from repro.noc.analytic import bandwidth_analysis

        r = bandwidth_analysis(mc_links=4)
        assert r["edge_mc_out_gbps"] == 64.0      # paper: "4 links ... 64GB/s"

    def test_narrower_links_insufficient(self):
        from repro.noc.analytic import bandwidth_analysis

        r = bandwidth_analysis(link_width_bits=64)
        assert not r["links_sufficient"]


class TestMD1Properties:
    def test_wait_monotone_in_rate(self):
        waits = [md1_wait(r / 100, 9) for r in range(0, 11)]
        assert waits == sorted(waits)

    def test_wait_monotone_in_service(self):
        assert md1_wait(0.05, 9) < md1_wait(0.05, 12)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            md1_wait(-0.1, 9)
        with pytest.raises(ValueError):
            md1_wait(0.1, 0)
        with pytest.raises(ValueError):
            injection_queue_wait(0.1, 9, drain_flits_per_cycle=0)
        with pytest.raises(ValueError):
            saturation_throughput(0)
