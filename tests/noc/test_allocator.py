"""Tests for arbiters and the separable input-first switch allocator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.noc.allocator import Bid, RoundRobinArbiter, SwitchAllocator


class TestRoundRobinArbiter:
    def test_grants_only_requesters(self):
        arb = RoundRobinArbiter(4)
        assert arb.grant([False, True, False, False]) == 1

    def test_no_request_no_grant(self):
        arb = RoundRobinArbiter(3)
        assert arb.grant([False, False, False]) is None

    def test_rotates_for_fairness(self):
        arb = RoundRobinArbiter(3)
        grants = [arb.grant([True, True, True]) for _ in range(6)]
        assert grants == [0, 1, 2, 0, 1, 2]

    def test_size_mismatch_raises(self):
        arb = RoundRobinArbiter(2)
        with pytest.raises(ValueError):
            arb.grant([True])

    def test_prioritized_prefers_higher(self):
        arb = RoundRobinArbiter(3)
        assert arb.grant_prioritized([0, 1, 0]) == 1

    def test_prioritized_ties_round_robin(self):
        arb = RoundRobinArbiter(2)
        first = arb.grant_prioritized([1, 1])
        second = arb.grant_prioritized([1, 1])
        assert {first, second} == {0, 1}

    def test_prioritized_skips_idle(self):
        arb = RoundRobinArbiter(3)
        assert arb.grant_prioritized([None, None, 0]) == 2

    def test_prioritized_all_idle(self):
        arb = RoundRobinArbiter(2)
        assert arb.grant_prioritized([None, None]) is None


class TestSwitchAllocator:
    def _alloc(self, speedups=None):
        return SwitchAllocator(num_in=5, num_out=5, num_vcs=4, speedups=speedups)

    def test_single_bid_wins(self):
        winners = self._alloc().allocate([Bid(0, 0, 1, 0)])
        assert len(winners) == 1

    def test_output_conflict_one_winner(self):
        winners = self._alloc().allocate([Bid(0, 0, 2, 0), Bid(1, 0, 2, 0)])
        assert len(winners) == 1

    def test_distinct_outputs_both_win(self):
        winners = self._alloc().allocate([Bid(0, 0, 1, 0), Bid(1, 0, 2, 0)])
        assert len(winners) == 2

    def test_input_without_speedup_single_grant(self):
        # Two VCs of the same port requesting different outputs: only one
        # may cross a 1-switch-port input per cycle.
        winners = self._alloc().allocate([Bid(0, 0, 1, 0), Bid(0, 1, 2, 0)])
        assert len(winners) == 1

    def test_injection_speedup_multiple_grants(self):
        # ARI consumption side: speedup-4 injection port sends up to 4 flits.
        alloc = self._alloc(speedups={4: 4})
        bids = [Bid(4, vc, vc, 0) for vc in range(4)]  # 4 VCs, 4 outputs
        winners = alloc.allocate(bids)
        assert len(winners) == 4

    def test_speedup_respects_distinct_outputs(self):
        alloc = self._alloc(speedups={4: 4})
        bids = [Bid(4, vc, 1, 0) for vc in range(4)]  # all to output 1
        winners = alloc.allocate(bids)
        assert len(winners) == 1

    def test_speedup_capped(self):
        alloc = self._alloc(speedups={4: 2})
        bids = [Bid(4, vc, vc, 0) for vc in range(4)]
        winners = alloc.allocate(bids)
        assert len(winners) == 2

    def test_priority_wins_output_stage(self):
        alloc = self._alloc()
        winners = alloc.allocate([Bid(0, 0, 1, 0), Bid(1, 0, 1, 5)])
        assert len(winners) == 1
        assert winners[0].in_port == 1

    def test_priority_wins_input_stage(self):
        alloc = self._alloc()
        winners = alloc.allocate([Bid(0, 0, 1, 0), Bid(0, 1, 2, 5)])
        assert len(winners) == 1
        assert winners[0].vc == 1

    def test_bad_ports_rejected(self):
        alloc = self._alloc()
        with pytest.raises(ValueError):
            alloc.allocate([Bid(9, 0, 0, 0)])
        with pytest.raises(ValueError):
            alloc.allocate([Bid(0, 0, 9, 0)])


@settings(max_examples=200, deadline=None)
@given(
    bids=st.lists(
        st.tuples(
            st.integers(0, 4),  # in_port
            st.integers(0, 3),  # vc
            st.integers(0, 4),  # out_port
            st.integers(0, 3),  # priority
        ),
        max_size=20,
    ),
    inj_speedup=st.integers(1, 4),
)
def test_allocator_invariants(bids, inj_speedup):
    """Property: winners never violate the crossbar's physical constraints."""
    alloc = SwitchAllocator(5, 5, 4, speedups={4: inj_speedup})
    # At most one bid per (in_port, vc) — a VC has one front flit.
    seen = set()
    uniq = []
    for ip, vc, op, pr in bids:
        if (ip, vc) in seen:
            continue
        seen.add((ip, vc))
        uniq.append(Bid(ip, vc, op, pr))
    winners = alloc.allocate(uniq)

    # 1. each output grants at most once
    outs = [w.out_port for w in winners]
    assert len(outs) == len(set(outs))
    # 2. each input wins at most its speedup
    from collections import Counter

    per_in = Counter(w.in_port for w in winners)
    for in_port, count in per_in.items():
        cap = inj_speedup if in_port == 4 else 1
        assert count <= cap
    # 3. winners are a subset of the bids
    bid_keys = {(b.in_port, b.vc, b.out_port) for b in uniq}
    assert all((w.in_port, w.vc, w.out_port) in bid_keys for w in winners)
    # 4. work conservation: if any bid exists, someone wins
    if uniq:
        assert winners
