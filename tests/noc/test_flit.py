"""Tests for packets and flits."""

import pytest

from repro.noc.flit import (
    Packet,
    PacketType,
    classify_pair,
    packet_size_for,
    reset_packet_ids,
)


class TestPacketType:
    def test_four_types(self):
        assert len(PacketType) == 4

    def test_request_classification(self):
        assert PacketType.READ_REQUEST.is_request
        assert PacketType.WRITE_REQUEST.is_request
        assert not PacketType.READ_REPLY.is_request
        assert not PacketType.WRITE_REPLY.is_request

    def test_reply_classification(self):
        assert PacketType.READ_REPLY.is_reply
        assert PacketType.WRITE_REPLY.is_reply
        assert not PacketType.READ_REQUEST.is_reply

    def test_long_packets_carry_data(self):
        # Sec. 2.1: read replies and write requests are long (data-carrying).
        assert PacketType.READ_REPLY.is_long
        assert PacketType.WRITE_REQUEST.is_long
        assert not PacketType.READ_REQUEST.is_long
        assert not PacketType.WRITE_REPLY.is_long


class TestPacketSize:
    def test_short_packets_single_flit(self):
        assert packet_size_for(PacketType.READ_REQUEST) == 1
        assert packet_size_for(PacketType.WRITE_REPLY) == 1

    def test_long_packet_default_geometry(self):
        # 128B line over 128-bit (16B) flits: head + 8 body = 9.
        assert packet_size_for(PacketType.READ_REPLY) == 9
        assert packet_size_for(PacketType.WRITE_REQUEST) == 9

    def test_wider_flits_shorten_long_packets(self):
        # 256-bit links (Fig. 4): 128B / 32B = 4 body flits + head.
        assert packet_size_for(PacketType.READ_REPLY, 128, 32) == 5

    def test_rounds_up_partial_flits(self):
        assert packet_size_for(PacketType.READ_REPLY, 100, 16) == 1 + 7

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            packet_size_for(PacketType.READ_REPLY, 0, 16)
        with pytest.raises(ValueError):
            packet_size_for(PacketType.READ_REPLY, 128, 0)


class TestPacket:
    def test_ids_monotonic(self):
        reset_packet_ids()
        a = Packet(PacketType.READ_REQUEST, 0, 1, 1, 0)
        b = Packet(PacketType.READ_REQUEST, 0, 1, 1, 0)
        assert b.pid == a.pid + 1

    def test_rejects_self_send(self):
        with pytest.raises(ValueError):
            Packet(PacketType.READ_REQUEST, 3, 3, 1, 0)

    def test_rejects_empty_packet(self):
        with pytest.raises(ValueError):
            Packet(PacketType.READ_REQUEST, 0, 1, 0, 0)

    def test_make_flits_structure(self):
        p = Packet(PacketType.READ_REPLY, 0, 1, 9, 0)
        flits = p.make_flits()
        assert len(flits) == 9
        assert flits[0].is_head and not flits[0].is_tail
        assert flits[-1].is_tail and not flits[-1].is_head
        assert all(not f.is_head and not f.is_tail for f in flits[1:-1])
        assert [f.seq for f in flits] == list(range(9))

    def test_single_flit_packet_is_head_and_tail(self):
        p = Packet(PacketType.READ_REQUEST, 0, 1, 1, 0)
        (f,) = p.make_flits()
        assert f.is_head and f.is_tail

    def test_latency_none_until_received(self):
        p = Packet(PacketType.READ_REPLY, 0, 1, 9, created_at=10)
        assert p.latency is None
        assert p.network_latency is None
        p.injected_at = 12
        p.received_at = 40
        assert p.latency == 30
        assert p.network_latency == 28

    def test_flit_priority_follows_packet(self):
        p = Packet(PacketType.READ_REPLY, 0, 1, 2, 0, priority=3)
        flits = p.make_flits()
        assert all(f.priority == 3 for f in flits)
        p.priority = 1
        assert all(f.priority == 1 for f in flits)


class TestClassifyPair:
    @pytest.mark.parametrize(
        "ptype,expected",
        [
            (PacketType.READ_REQUEST, (PacketType.READ_REQUEST, PacketType.READ_REPLY)),
            (PacketType.READ_REPLY, (PacketType.READ_REQUEST, PacketType.READ_REPLY)),
            (PacketType.WRITE_REQUEST,
             (PacketType.WRITE_REQUEST, PacketType.WRITE_REPLY)),
            (PacketType.WRITE_REPLY,
             (PacketType.WRITE_REQUEST, PacketType.WRITE_REPLY)),
        ],
    )
    def test_pairs(self, ptype, expected):
        assert classify_pair(ptype) == expected


class TestResetPacketIds:
    def test_reset_restarts_counter(self):
        reset_packet_ids()
        a = Packet(PacketType.READ_REQUEST, 0, 1, 1, 0)
        reset_packet_ids()
        b = Packet(PacketType.READ_REQUEST, 0, 1, 1, 0)
        assert a.pid == b.pid == 0
