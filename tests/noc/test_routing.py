"""Tests for XY and minimal adaptive routing."""

import pytest

from repro.noc.routing import (
    EAST,
    LOCAL,
    NORTH,
    SOUTH,
    WEST,
    MinimalAdaptiveRouting,
    XYRouting,
    hop_count,
    make_routing,
    opposite,
    productive_directions,
    xy_direction,
)


class TestPrimitives:
    @pytest.mark.parametrize(
        "cur,dest,expected",
        [
            ((0, 0), (2, 0), [EAST]),
            ((2, 0), (0, 0), [WEST]),
            ((0, 0), (0, 3), [NORTH]),
            ((0, 3), (0, 0), [SOUTH]),
            ((0, 0), (1, 1), [EAST, NORTH]),
            ((1, 1), (0, 0), [WEST, SOUTH]),
            ((1, 1), (1, 1), []),
        ],
    )
    def test_productive_directions(self, cur, dest, expected):
        assert sorted(productive_directions(cur, dest)) == sorted(expected)

    def test_xy_goes_x_first(self):
        assert xy_direction((0, 0), (2, 2)) == EAST
        assert xy_direction((2, 0), (0, 2)) == WEST
        assert xy_direction((2, 0), (2, 2)) == NORTH

    def test_xy_at_destination_is_local(self):
        assert xy_direction((1, 1), (1, 1)) == LOCAL

    @pytest.mark.parametrize(
        "a,b", [(NORTH, SOUTH), (SOUTH, NORTH), (EAST, WEST), (WEST, EAST)]
    )
    def test_opposite(self, a, b):
        assert opposite(a) == b

    def test_hop_count(self):
        assert hop_count((0, 0), (3, 2)) == 5
        assert hop_count((2, 2), (2, 2)) == 0


class TestXYRouting:
    def test_single_candidate(self):
        r = XYRouting()
        assert r.candidates((0, 0), (3, 3)) == [EAST]
        assert r.candidates((3, 0), (3, 3)) == [NORTH]

    def test_local_at_destination(self):
        assert XYRouting().candidates((1, 1), (1, 1)) == [LOCAL]

    def test_all_vcs_allowed(self):
        r = XYRouting()
        for vc in range(4):
            assert r.vc_allowed(vc, EAST, escape=EAST)
            assert r.vc_allowed(vc, NORTH, escape=EAST)

    def test_not_adaptive(self):
        assert not XYRouting().adaptive


class TestAdaptiveRouting:
    def test_both_productive_directions(self):
        r = MinimalAdaptiveRouting()
        cands = r.candidates((0, 0), (2, 2))
        assert sorted(cands) == sorted([EAST, NORTH])

    def test_xy_choice_listed_first(self):
        r = MinimalAdaptiveRouting()
        assert r.candidates((0, 0), (2, 2))[0] == EAST  # X-first preference

    def test_single_dimension_left(self):
        r = MinimalAdaptiveRouting()
        assert r.candidates((2, 0), (2, 3)) == [NORTH]

    def test_escape_vc_restricted_to_xy(self):
        """Duato deadlock freedom: VC 0 may only take the XY hop."""
        r = MinimalAdaptiveRouting()
        escape = r.escape_port((0, 0), (2, 2))
        assert escape == EAST
        assert r.vc_allowed(0, EAST, escape)
        assert not r.vc_allowed(0, NORTH, escape)

    def test_non_escape_vcs_unrestricted(self):
        r = MinimalAdaptiveRouting()
        for vc in (1, 2, 3):
            assert r.vc_allowed(vc, NORTH, escape=EAST)
            assert r.vc_allowed(vc, EAST, escape=EAST)

    def test_is_adaptive(self):
        assert MinimalAdaptiveRouting().adaptive


class TestEscapePortEdgeCases:
    """escape_port behaviour at its boundaries (ISSUE 4 satellite)."""

    @pytest.mark.parametrize(
        "routing", [XYRouting(), MinimalAdaptiveRouting()]
    )
    def test_destination_is_current_node(self, routing):
        for xy in [(0, 0), (3, 2), (5, 5)]:
            assert routing.escape_port(xy, xy) == LOCAL

    @pytest.mark.parametrize(
        "routing", [XYRouting(), MinimalAdaptiveRouting()]
    )
    def test_single_row_walk_uses_only_east_west(self, routing):
        """On a 1-row coordinate band (y fixed) only E/W hops ever appear."""
        y = 0
        for src in range(6):
            for dst in range(6):
                if src == dst:
                    continue
                port = routing.escape_port((src, y), (dst, y))
                assert port == (EAST if dst > src else WEST)

    @pytest.mark.parametrize(
        "routing", [XYRouting(), MinimalAdaptiveRouting()]
    )
    def test_single_column_walk_uses_only_north_south(self, routing):
        """On a 1-column band (x fixed) only N/S hops ever appear."""
        x = 2
        for src in range(6):
            for dst in range(6):
                if src == dst:
                    continue
                port = routing.escape_port((x, src), (x, dst))
                assert port == (NORTH if dst > src else SOUTH)

    def test_single_row_walk_terminates(self):
        """Following escape hops along a row reaches the destination."""
        routing = MinimalAdaptiveRouting()
        cur, dest = (0, 3), (5, 3)
        hops = 0
        while cur != dest:
            port = routing.escape_port(cur, dest)
            step = {NORTH: (0, 1), EAST: (1, 0),
                    SOUTH: (0, -1), WEST: (-1, 0)}[port]
            cur = (cur[0] + step[0], cur[1] + step[1])
            hops += 1
            assert hops <= 5
        assert hops == 5

    def test_fault_wrapper_delegates_verbatim_when_inactive(self):
        """FaultAwareRouting with no active fault must mirror its base."""
        from repro.noc.routing import FaultAwareRouting
        from repro.noc.topology import MeshTopology

        class InactiveState:
            active = False

            def link_ok(self, router, direction):  # pragma: no cover
                raise AssertionError("must not consult links when inactive")

        topo = MeshTopology(4, 4)
        base = MinimalAdaptiveRouting()
        wrapped = FaultAwareRouting(base, topo, InactiveState())
        for cx in range(4):
            for cy in range(4):
                for dx in range(4):
                    for dy in range(4):
                        cur, dest = (cx, cy), (dx, dy)
                        assert wrapped.candidates(cur, dest) == \
                            base.candidates(cur, dest)
                        assert wrapped.escape_port(cur, dest) == \
                            base.escape_port(cur, dest)
        assert wrapped.adaptive == base.adaptive

    def test_fault_wrapper_escape_differs_only_when_active(self):
        """Activating a fault may change the escape hop; deactivating
        restores the base choice exactly."""
        from repro.faults.injector import FaultState
        from repro.noc.routing import FaultAwareRouting
        from repro.noc.topology import MeshTopology

        topo = MeshTopology(4, 4)
        base = XYRouting()
        state = FaultState(topo)
        wrapped = FaultAwareRouting(base, topo, state)
        cur, dest = (0, 0), (3, 0)
        assert wrapped.escape_port(cur, dest) == EAST
        state.dead_links.add((topo.router_at(0, 0), EAST))
        state.invalidate()
        assert wrapped.escape_port(cur, dest) == NORTH  # detour around cut
        state.dead_links.clear()
        state.invalidate()
        assert wrapped.escape_port(cur, dest) == EAST


class TestFactory:
    @pytest.mark.parametrize("name", ["xy", "dor"])
    def test_xy_aliases(self, name):
        assert isinstance(make_routing(name), XYRouting)

    @pytest.mark.parametrize("name", ["adaptive", "ada", "min-adaptive"])
    def test_adaptive_aliases(self, name):
        assert isinstance(make_routing(name), MinimalAdaptiveRouting)

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            make_routing("torus-goal")

    def test_minimality_exhaustive_4x4(self):
        """Every candidate hop strictly reduces distance (minimal routing)."""
        for routing in (XYRouting(), MinimalAdaptiveRouting()):
            for cx in range(4):
                for cy in range(4):
                    for dx in range(4):
                        for dy in range(4):
                            if (cx, cy) == (dx, dy):
                                continue
                            before = hop_count((cx, cy), (dx, dy))
                            for port in routing.candidates((cx, cy), (dx, dy)):
                                step = {NORTH: (0, 1), EAST: (1, 0),
                                        SOUTH: (0, -1), WEST: (-1, 0)}[port]
                                after = hop_count(
                                    (cx + step[0], cy + step[1]), (dx, dy)
                                )
                                assert after == before - 1
