"""SimKernel backend seam: selection, equivalence, watchdog, overhead.

The activity kernel's contract is *byte-identity* with the reference
kernel — every stat, counter and arbitration pointer must match after
any run.  These tests pin the contract on small fast grids; the heavier
``repro check --kernel-equiv`` harness covers the full scheme x traffic
x fault grid in CI.
"""

import ast
import dataclasses

import pytest

from repro.experiments.equivalence import (
    _run_network_case,
    network_snapshot,
    result_payload,
)
from repro.experiments.executor import simulate_spec
from repro.experiments.runner import RunSpec
from repro.noc import Network, NetworkConfig
from repro.noc.kernel import (
    ActivityKernel,
    ReferenceKernel,
    make_kernel,
    resolve_kernel,
)

MAIN_SCHEMES = (
    "xy-baseline", "xy-ari", "ada-baseline", "ada-multiport", "ada-ari",
)

SPEC = RunSpec(
    "bfs", "ada-ari", cycles=120, warmup=30, mesh=4, warps_per_core=4,
)


class TestSelection:
    def test_default_is_reference(self):
        assert resolve_kernel(None) == "reference"
        assert isinstance(make_kernel(None), ReferenceKernel)

    def test_explicit_names(self):
        assert resolve_kernel("activity") == "activity"
        assert isinstance(make_kernel("activity"), ActivityKernel)
        assert isinstance(make_kernel("reference"), ReferenceKernel)

    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "activity")
        assert resolve_kernel(None) == "activity"
        net = Network(NetworkConfig(width=4, height=4))
        assert net.kernel_name == "activity"
        assert isinstance(net.kernel, ActivityKernel)

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "activity")
        assert resolve_kernel("reference") == "reference"
        net = Network(NetworkConfig(width=4, height=4), kernel="reference")
        assert isinstance(net.kernel, ReferenceKernel)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown simulation kernel"):
            resolve_kernel("turbo")

    def test_case_and_whitespace_normalized(self):
        assert resolve_kernel(" Activity ") == "activity"

    def test_overlay_networks_accept_kernel(self):
        from repro.noc.da2mesh import DA2MeshReplyNetwork
        from repro.noc.network import PerfectNetwork

        assert PerfectNetwork(
            NetworkConfig(width=4, height=4), kernel="activity"
        ).kernel_name == "activity"
        assert DA2MeshReplyNetwork(
            mc_nodes=[0], num_nodes=16, kernel="activity"
        ).kernel_name == "activity"


class TestNetworkEquivalence:
    @pytest.mark.parametrize("traffic", ["uniform", "hotspot"])
    @pytest.mark.parametrize("routing", ["xy", "adaptive"])
    def test_synthetic_grids_match(self, traffic, routing):
        kwargs = dict(
            traffic=traffic, routing=routing, ni_kind="enhanced",
            mesh=4, rate=0.25, cycles=300,
        )
        ref = _run_network_case("reference", **kwargs)
        act = _run_network_case("activity", **kwargs)
        assert ref == act

    def test_split_and_multiport_nis_match(self):
        for ni_kind in ("split", "multiport", "baseline-narrow"):
            kwargs = dict(
                traffic="hotspot", routing="adaptive", ni_kind=ni_kind,
                mesh=4, rate=0.3, cycles=250,
            )
            assert (
                _run_network_case("reference", **kwargs)
                == _run_network_case("activity", **kwargs)
            ), ni_kind

    def test_idle_network_stays_idle_and_identical(self):
        snaps = []
        for kernel in ("reference", "activity"):
            net = Network(NetworkConfig(width=4, height=4), kernel=kernel)
            for _ in range(200):
                net.step()
            snaps.append(network_snapshot(net))
        assert snaps[0] == snaps[1]

    def test_activity_kernel_skips_idle_routers(self, monkeypatch):
        from repro.noc.router import Router

        calls = {"fast": 0, "ref": 0}
        orig_fast = Router.step_fast
        orig_step = Router.step

        def count_fast(self, now, ingest=True):
            calls["fast"] += 1
            return orig_fast(self, now, ingest)

        def count_step(self, now):
            calls["ref"] += 1
            return orig_step(self, now)

        monkeypatch.setattr(Router, "step_fast", count_fast)
        monkeypatch.setattr(Router, "step", count_step)
        net = Network(NetworkConfig(width=4, height=4), kernel="activity")
        for _ in range(100):
            net.step()
        assert calls == {"fast": 0, "ref": 0}


class TestSystemEquivalence:
    @pytest.mark.parametrize("scheme", MAIN_SCHEMES)
    def test_schemes_match(self, scheme):
        spec = dataclasses.replace(SPEC, scheme=scheme)
        ref = result_payload(
            simulate_spec(dataclasses.replace(spec, kernel="reference"))
        )
        act = result_payload(
            simulate_spec(dataclasses.replace(spec, kernel="activity"))
        )
        assert ref == act

    def test_fault_campaign_cell_matches(self):
        # Faulted runs force the activity kernel into its reference-order
        # fallback; results must still be exact.
        spec = dataclasses.replace(
            SPEC, faults="link:r1.E@40", fault_detour=True
        )
        ref = result_payload(
            simulate_spec(dataclasses.replace(spec, kernel="reference"))
        )
        act = result_payload(
            simulate_spec(dataclasses.replace(spec, kernel="activity"))
        )
        assert ref == act

    def test_telemetry_run_matches(self):
        from repro.experiments.api import run_live

        payloads = []
        for kernel in ("reference", "activity"):
            live = run_live(
                dataclasses.replace(SPEC, kernel=kernel), interval=25
            )
            payload = result_payload(live.result)
            payload["samples"] = live.collector.samples_taken
            payloads.append(payload)
        assert payloads[0] == payloads[1]


class TestWatchdog:
    @pytest.mark.parametrize("kernel", ["reference", "activity"])
    def test_ni_injection_counts_as_progress(self, kernel):
        # Regression: the deadlock watchdog must treat an NI putting flits
        # on its injection link as progress, not only router switching —
        # on the first send cycle nothing has moved inside a router yet.
        from repro.workloads.traffic import (
            ReplyTrafficPattern,
            SyntheticTrafficGenerator,
        )

        net = Network(
            NetworkConfig(width=4, height=4, accelerated_nodes={5}),
            kernel=kernel,
        )
        gen = SyntheticTrafficGenerator(
            net, ReplyTrafficPattern([5], [0, 3, 12], seed=2),
            rate=1.0, seed=3,
        )
        net._last_progress = -10
        gen.step()           # offer a packet; the NI sends this cycle
        net.step()
        assert net._last_progress == 0

    @pytest.mark.parametrize("kernel", ["reference", "activity"])
    def test_watchdog_still_trips_without_progress(self, kernel):
        net = Network(
            NetworkConfig(width=4, height=4, deadlock_cycles=50),
            kernel=kernel,
        )
        # Fake stuck in-flight traffic with no component able to move.
        net.stats.packets_offered = 1
        with pytest.raises(RuntimeError, match="no progress"):
            for _ in range(100):
                net.step()


class TestOverheadContract:
    def test_kernel_module_imports_nothing_heavy(self):
        # The reference kernel must not drag new dependencies into the
        # hot path: the kernel module imports stdlib os/typing only.
        import repro.noc.kernel as kernel_mod

        tree = ast.parse(open(kernel_mod.__file__).read())
        imported = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                imported.update(a.name for a in node.names)
            elif isinstance(node, ast.ImportFrom):
                imported.add(node.module or "")
        assert imported <= {"os", "typing", "__future__"}, imported

    def test_reference_cycle_matches_historical_loop(self):
        # The reference kernel is the old Network.step() loop verbatim:
        # it must not call into any fast-path entry points.
        names = ReferenceKernel.cycle.__code__.co_names
        assert "step_fast" not in names
        assert "step" in names
