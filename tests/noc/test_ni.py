"""Tests for the network-interface variants (the ARI supply side)."""

import pytest

from repro.noc.flit import Packet, PacketType
from repro.noc.link import Link
from repro.noc.ni import (
    BaselineNI,
    EjectionInterface,
    EnhancedNI,
    MultiPortNI,
    NIKind,
    SplitNI,
    make_ni,
)


def reply(size=9, dest=1):
    return Packet(PacketType.READ_REPLY, 0, dest, size, 0)


def wire_single(ni, vc_capacity=9, num_vcs=4, port=4):
    link = Link(is_injection=True)
    ni.attach(
        [link],
        [(port, 0)],
        vc_capacity,
        [(port, vc) for vc in range(num_vcs)],
    )
    return link


def wire_split(ni, vc_capacity=9, port=4):
    links = [Link(is_injection=True) for _ in range(ni.num_queues)]
    targets = [(port, q % ni.num_vcs) for q in range(ni.num_queues)]
    ni.attach(links, targets, vc_capacity, [(port, v) for v in range(ni.num_vcs)])
    return links


class TestFactory:
    @pytest.mark.parametrize(
        "kind,cls",
        [
            (NIKind.BASELINE_NARROW, BaselineNI),
            (NIKind.ENHANCED, EnhancedNI),
            (NIKind.SPLIT, SplitNI),
            (NIKind.MULTIPORT, MultiPortNI),
        ],
    )
    def test_kinds(self, kind, cls):
        ni = make_ni(kind, 0, 36, 4)
        assert isinstance(ni, cls)
        assert ni.kind == kind


class TestEnhancedNI:
    def test_whole_packet_accepted_in_one_call(self):
        ni = EnhancedNI(0, 36, 4)
        wire_single(ni)
        assert ni.offer(reply(), 0)
        assert ni.queued_flits() == 9
        assert ni.queued_packets() == 1

    def test_capacity_limit(self):
        ni = EnhancedNI(0, 36, 4)
        wire_single(ni)
        for _ in range(4):
            assert ni.offer(reply(), 0)
        assert not ni.offer(reply(), 0)  # 36 flits = 4 long packets
        assert ni.stats.packets_rejected == 1

    def test_drains_one_flit_per_cycle(self):
        """The enhanced baseline's supply cap: 1 flit/cycle (Sec. 4.1)."""
        ni = EnhancedNI(0, 36, 4)
        link = wire_single(ni)
        ni.offer(reply(), 0)
        for t in range(9):
            ni.step(t)
        assert link.flits_carried == 9
        assert ni.queued_flits() == 0

    def test_binding_waits_for_whole_packet_space(self):
        ni = EnhancedNI(0, 36, 4)
        link = wire_single(ni, vc_capacity=4)  # VC smaller than packet
        ni.offer(reply(9), 0)
        ni.step(0)
        assert link.flits_carried == 0  # WPF: no VC fits the whole packet

    def test_flits_carry_vc_assignment(self):
        ni = EnhancedNI(0, 36, 4)
        link = wire_single(ni)
        ni.offer(reply(2), 0)
        ni.step(0)
        ni.step(1)
        flits = link.arrivals(2)
        assert len(flits) == 2
        assert all(f.out_vc is not None for f in flits)

    def test_credit_blocks_then_resumes(self):
        ni = EnhancedNI(0, 36, 4)
        link = wire_single(ni, vc_capacity=9, num_vcs=1)
        ni.offer(reply(9), 0)
        for t in range(9):
            ni.step(t)
        assert link.flits_carried == 9
        ni.offer(reply(9), 9)
        ni.step(9)
        assert link.flits_carried == 9  # out of credits on the only VC
        ni.on_credit(4, 0)
        # Needs the whole packet's worth of credits before binding (WPF).
        for _ in range(8):
            ni.on_credit(4, 0)
        ni.step(10)
        assert link.flits_carried == 10


class TestBaselineNI:
    def test_narrow_link_transfer_delay(self):
        """GPGPU-Sim default: the packet crawls over a narrow MC->NI link."""
        ni = BaselineNI(0, 36, 4)
        link = wire_single(ni)
        assert ni.offer(reply(9), 0)
        ni.step(0)
        assert link.flits_carried == 0  # still transferring into the NI
        for t in range(1, 9):
            ni.step(t)
        assert link.flits_carried == 0
        ni.step(9)  # transfer done at t=9; first flit leaves
        assert link.flits_carried == 1

    def test_busy_during_transfer(self):
        ni = BaselineNI(0, 36, 4)
        wire_single(ni)
        assert ni.offer(reply(9), 0)
        assert not ni.can_accept(reply(9))  # node link busy

    def test_higher_latency_than_enhanced(self):
        """The narrow node->NI link adds a full serialization delay before
        the first flit can leave (steady-state rate is the same: both are
        capped by the 1 flit/cycle NI->router link)."""
        base, enh = BaselineNI(0, 36, 4), EnhancedNI(0, 36, 4)
        bl, el = wire_single(base), wire_single(enh)
        base.offer(reply(9), 0)
        enh.offer(reply(9), 0)
        for t in range(9):
            base.step(t)
            enh.step(t)
        assert el.flits_carried == 9
        assert bl.flits_carried == 0


class TestSplitNI:
    def test_parallel_drain(self):
        """ARI supply: k split queues drain k flits per cycle (Fig. 7b)."""
        ni = SplitNI(0, 36, 4, num_queues=4)
        links = wire_split(ni)
        for _ in range(4):
            assert ni.offer(reply(9), 0)
        ni.step(0)
        assert sum(l.flits_carried for l in links) == 4

    def test_queue_sized_for_one_packet(self):
        ni = SplitNI(0, 36, 4, num_queues=4)
        assert ni.queue_capacity == 9

    def test_total_capacity_matches_baseline(self):
        """Fair comparison (Sec. 6.2): same total buffer as single queue."""
        ni = SplitNI(0, 36, 4, num_queues=4)
        wire_split(ni)
        accepted = 0
        while ni.offer(reply(9), 0):
            accepted += 1
        assert accepted == 4  # 4 x 9 = 36 flits

    def test_round_robin_queue_choice(self):
        ni = SplitNI(0, 36, 4, num_queues=4)
        wire_split(ni)
        ni.offer(reply(9), 0)
        ni.offer(reply(9), 0)
        occupied = [qi for qi, q in enumerate(ni.queues) if q]
        assert len(occupied) == 2  # spread, not piled on queue 0

    def test_fixed_vc_wiring(self):
        ni = SplitNI(0, 36, 4, num_queues=4)
        links = wire_split(ni)
        for _ in range(4):
            ni.offer(reply(9), 0)
        ni.step(0)
        vcs = set()
        for qi, l in enumerate(links):
            for f in l.arrivals(1):
                assert f.out_vc == qi % 4
                vcs.add(f.out_vc)
        assert len(vcs) == 4

    def test_small_packets_share_queue(self):
        ni = SplitNI(0, 36, 4, num_queues=4)
        wire_split(ni)
        for _ in range(9):
            assert ni.offer(reply(2), 0)  # 2-flit write replies pack in

    def test_rejects_when_all_queues_full(self):
        ni = SplitNI(0, 36, 4, num_queues=2, queue_capacity_flits=9)
        links = [Link(), Link()]
        ni.attach(links, [(4, 0), (4, 1)], 9, [(4, 0), (4, 1)])
        assert ni.offer(reply(9), 0)
        assert ni.offer(reply(9), 0)
        assert not ni.offer(reply(9), 0)


class TestMultiPortNI:
    def test_supply_still_one_flit_per_cycle(self):
        """MultiPort adds consumption paths, not supply (Sec. 7.2)."""
        ni = MultiPortNI(0, 36, 4)
        links = [Link(is_injection=True), Link(is_injection=True)]
        ni.port_index = {4: 0, 5: 1}
        ni.attach(links, [], 9, [(p, v) for p in (4, 5) for v in range(4)])
        ni.offer(reply(9), 0)
        ni.offer(reply(9), 0)
        ni.step(0)
        assert sum(l.flits_carried for l in links) == 1


class TestEjectionInterface:
    def _deliver(self, ej, packet, now=0):
        for f in packet.make_flits():
            ej.receive_flit(f, now)

    def test_reassembles_packet(self):
        ej = EjectionInterface(0)
        got = []
        ej.on_packet = lambda p, t: got.append(p)
        p = reply(9)
        self._deliver(ej, p, now=5)
        assert got == [p]
        assert p.received_at == 5

    def test_interleaved_packets(self):
        ej = EjectionInterface(0)
        got = []
        ej.on_packet = lambda p, t: got.append(p.pid)
        a, b = reply(3), reply(3)
        fa, fb = a.make_flits(), b.make_flits()
        for f in (fa[0], fb[0], fa[1], fb[1], fb[2], fa[2]):
            ej.receive_flit(f, 0)
        assert got == [b.pid, a.pid]

    def test_missing_flit_detected(self):
        ej = EjectionInterface(0)
        p = reply(3)
        flits = p.make_flits()
        ej.receive_flit(flits[0], 0)
        with pytest.raises(RuntimeError):
            ej.receive_flit(flits[2], 0)  # tail without the middle flit

    def test_bounded_buffer_backpressure(self):
        ej = EjectionInterface(0, capacity_flits=4, auto_release=False)
        p = reply(4)
        self._deliver(ej, p)
        assert not ej.can_accept_flit()
        ej.release(4)
        assert ej.can_accept_flit()

    def test_release_underflow(self):
        ej = EjectionInterface(0, capacity_flits=4, auto_release=False)
        with pytest.raises(RuntimeError):
            ej.release(1)

    def test_auto_release_frees_on_delivery(self):
        ej = EjectionInterface(0, capacity_flits=9, auto_release=True)
        self._deliver(ej, reply(9))
        assert ej.flit_occupancy == 0


class TestQueuedPacketCounting:
    def test_baseline_counts_pending_transfer(self):
        ni = BaselineNI(0, 36, 4)
        wire_single(ni)
        ni.offer(reply(9), 0)
        assert ni.queued_packets() == 1  # still on the narrow link
        for t in range(12):
            ni.step(t)
        assert ni.queued_packets() == 1  # now in the queue, not yet drained

    def test_split_counts_per_queue(self):
        ni = SplitNI(0, 36, 4, num_queues=4)
        wire_split(ni)
        ni.offer(reply(9), 0)
        ni.offer(reply(9), 0)
        assert ni.queued_packets() == 2
        assert ni.queued_flits() == 18

    def test_sample_records_occupancy(self):
        ni = EnhancedNI(0, 36, 4)
        wire_single(ni)
        ni.offer(reply(9), 0)
        ni.sample()
        ni.sample()
        assert ni.stats.occupancy_samples == 2
        assert ni.stats.mean_occupancy == 1.0
        assert ni.stats.occupancy_max == 1
