"""Tests for the invariant checker, including failure injection."""

import random

import pytest

from repro.noc import Network, NetworkConfig
from repro.noc.flit import Packet, PacketType
from repro.noc.ni import NIKind
from repro.noc.validation import InvariantChecker, InvariantViolation


def loaded_network(routing="xy", ari=False, seed=5, packets=60):
    cfg = NetworkConfig(
        width=4, height=4, routing=routing,
        accelerated_nodes={5} if ari else set(),
        ni_kind=NIKind.SPLIT if ari else NIKind.ENHANCED,
        injection_speedup=4 if ari else 1,
        priority_enabled=ari, priority_levels=2 if ari else 1,
    )
    net = Network(cfg)
    rng = random.Random(seed)
    remaining = packets

    def pump():
        nonlocal remaining
        if remaining <= 0:
            return
        src = rng.randrange(16)
        dest = (src + rng.randrange(1, 16)) % 16
        size = rng.choice([1, 9])
        ptype = PacketType.READ_REPLY if size == 9 else PacketType.WRITE_REPLY
        if net.offer(src, Packet(ptype, src, dest, size, net.now,
                                 priority=1 if ari else 0)):
            remaining -= 1

    return net, pump


class TestCleanRuns:
    @pytest.mark.parametrize("routing,ari", [
        ("xy", False), ("adaptive", False), ("adaptive", True),
    ])
    def test_audit_passes_under_load(self, routing, ari):
        net, pump = loaded_network(routing, ari)
        checker = InvariantChecker(net)
        for _ in range(150):
            pump()
            net.step()
            checker.audit()
        assert checker.audits == 150

    def test_quiescent_conservation(self):
        net, pump = loaded_network()
        checker = InvariantChecker(net)
        for _ in range(100):
            pump()
            net.step()
        assert net.drain(20000)
        checker.audit(quiescent=True)

    def test_run_audited_helper(self):
        net, pump = loaded_network()
        for _ in range(30):
            pump()
            net.step()
        InvariantChecker(net).run_audited(50, every=5)


class TestFailureInjection:
    """Corrupt simulator state on purpose; the checker must localize it."""

    def _busy_network(self):
        net, pump = loaded_network()
        for _ in range(60):
            pump()
            net.step()
        return net

    def test_detects_occupancy_drift(self):
        net = self._busy_network()
        # Corrupt a router's maintained counter.
        victim = max(net.routers, key=lambda r: r.occupancy())
        victim._occ += 1
        with pytest.raises(InvariantViolation, match="occupancy"):
            InvariantChecker(net).audit()

    def test_detects_port_counter_drift(self):
        net = self._busy_network()
        victim = max(net.routers, key=lambda r: r.occupancy())
        port = max(victim.input_ports, key=lambda p: p.occ)
        port.occ += 1
        victim._occ += 1  # keep the router-level sum consistent
        with pytest.raises(InvariantViolation, match="port counter"):
            InvariantChecker(net).audit()

    def test_detects_credit_leak(self):
        net = self._busy_network()
        for router in net.routers:
            out = router.output_ports[0]
            if out is not None and out.credits is not None:
                if out.credits.available(0) > 0:
                    out.credits.counts[0] -= 1  # leak one credit
                    break
        with pytest.raises(InvariantViolation, match="credit leak"):
            InvariantChecker(net).audit()

    def test_detects_dangling_writer_lock(self):
        net = self._busy_network()
        out = net.routers[0].output_ports[1] or net.routers[0].output_ports[0]
        out.writer[0] = 12345
        out.writer_left[0] = 0
        with pytest.raises(InvariantViolation, match="locked with zero"):
            InvariantChecker(net).audit()

    def test_detects_orphan_writer_count(self):
        net = self._busy_network()
        out = net.routers[0].output_ports[1] or net.routers[0].output_ports[0]
        out.writer[0] = None
        out.writer_left[0] = 3
        with pytest.raises(InvariantViolation, match="unlocked with"):
            InvariantChecker(net).audit()

    def test_detects_interleaved_packets(self):
        # Construct the forbidden state directly: a body flit of packet B
        # spliced between packet A's head and body in one VC.
        net = Network(NetworkConfig(width=4, height=4))
        a = Packet(PacketType.READ_REPLY, 0, 15, 3, 0).make_flits()
        b = Packet(PacketType.READ_REPLY, 1, 15, 3, 0).make_flits()
        vc = net.routers[0].input_ports[4].vcs[0]
        vc.push(a[0], 0)
        vc.fifo.append(b[1])  # bypass push() to fake the corruption
        vc.fifo.append(a[1])
        with pytest.raises(InvariantViolation, match="interleaved"):
            InvariantChecker(net).check_no_interleaving()

    def test_detects_foreign_head_mid_packet(self):
        net = Network(NetworkConfig(width=4, height=4))
        a = Packet(PacketType.READ_REPLY, 0, 15, 3, 0).make_flits()
        b = Packet(PacketType.READ_REPLY, 1, 15, 3, 0).make_flits()
        vc = net.routers[0].input_ports[4].vcs[0]
        vc.push(a[0], 0)
        vc.fifo.append(b[0])  # a second head before A's tail
        with pytest.raises(InvariantViolation, match="head of"):
            InvariantChecker(net).check_no_interleaving()

    def test_quiescence_check_requires_quiescence(self):
        net, pump = loaded_network()
        for _ in range(20):
            pump()
            net.step()
        with pytest.raises(InvariantViolation, match="in flight"):
            InvariantChecker(net).check_quiescent_conservation()


class TestAccountingUnderDrops:
    """Packet drops are part of the model now (fault injection); the
    conservation and credit checks must stay satisfied through them."""

    def _purge_one(self, net, pump, checker):
        """Step until a whole packet can be purged from a router VC."""
        from repro.noc.buffer import VCState

        for _ in range(400):
            pump()
            net.step()
            checker.audit()
            for router in net.routers:
                for port in router.input_ports:
                    if port.occ == 0:
                        continue
                    for vc in port.vcs:
                        if vc.state != VCState.ROUTING:
                            continue
                        purged = router.purge_front_packet(
                            port.port_id, vc.index, net.now
                        )
                        if purged is not None:
                            return purged
        raise AssertionError("no purgable packet found")

    def test_purge_conserves_credits_and_occupancy(self):
        net, pump = loaded_network()
        checker = InvariantChecker(net)
        purged = self._purge_one(net, pump, checker)
        net.stats.on_drop(purged)
        # The very next audit sees consistent counters and no credit leak:
        # every buffered flit's credit went back upstream.
        checker.audit()
        assert net.stats.packets_dropped == 1

    def test_quiescent_conservation_counts_drops(self):
        net, pump = loaded_network(packets=30)
        checker = InvariantChecker(net)
        purged = self._purge_one(net, pump, checker)
        net.stats.on_drop(purged)
        assert net.drain(20000)
        # offered = delivered + dropped; buffers and NIs empty.
        checker.audit(quiescent=True)
        assert net.stats.in_flight == 0
        assert net.stats.delivered_fraction() < 1.0


class TestContextAndCollect:
    def test_context_prefixes_messages(self):
        net, pump = loaded_network()
        for _ in range(60):
            pump()
            net.step()
        net.routers[0]._occ += 1
        checker = InvariantChecker(net, context="bfs/xy-baseline seed=3")
        with pytest.raises(InvariantViolation,
                           match=r"\[bfs/xy-baseline seed=3\]"):
            checker.audit()

    def test_collect_mode_accumulates_instead_of_raising(self):
        net, pump = loaded_network()
        for _ in range(60):
            pump()
            net.step()
        net.routers[0]._occ += 1
        checker = InvariantChecker(net, context="ctx", collect=True)
        checker.audit()
        checker.audit()
        assert len(checker.violations) >= 2  # one per audit, not fatal
        assert all(v.startswith("[ctx]") for v in checker.violations)

    def test_on_cycle_respects_every(self):
        net, _ = loaded_network()
        checker = InvariantChecker(net, every=10)
        for now in range(20):
            checker.on_cycle(now)
        assert checker.audits == 2  # cycles 0 and 10

    def test_every_must_be_positive(self):
        net, _ = loaded_network()
        with pytest.raises(ValueError):
            InvariantChecker(net, every=0)

    def test_auditor_hook_runs_during_step(self):
        net, pump = loaded_network()
        checker = InvariantChecker(net, every=2)
        net.auditor = checker
        for _ in range(10):
            pump()
            net.step()
        assert checker.audits == 5
