"""Tests for virtual-channel buffers and the WPF admission rule."""

import pytest

from repro.noc.buffer import InputPort, VCState, VirtualChannel
from repro.noc.flit import Packet, PacketType


def flits_of(size=3, priority=0):
    return Packet(PacketType.READ_REPLY, 0, 1, size, 0, priority=priority).make_flits()


class TestVCStateMachine:
    def test_starts_idle(self):
        vc = VirtualChannel(0, 9)
        assert vc.state == VCState.IDLE
        assert vc.empty

    def test_head_arrival_triggers_routing(self):
        vc = VirtualChannel(0, 9)
        vc.push(flits_of(3)[0], now=0)
        assert vc.state == VCState.ROUTING

    def test_route_then_vc_allocation(self):
        vc = VirtualChannel(0, 9)
        head = flits_of(3)[0]
        vc.push(head, now=0)
        vc.set_route(2)
        assert vc.state == VCState.VA
        assert head.out_port == 2
        vc.set_out_vc(1)
        assert vc.state == VCState.ACTIVE
        assert head.out_vc == 1

    def test_set_route_requires_routing_state(self):
        vc = VirtualChannel(0, 9)
        with pytest.raises(RuntimeError):
            vc.set_route(1)

    def test_tail_pop_releases_route(self):
        vc = VirtualChannel(0, 9)
        f = flits_of(2)
        vc.push(f[0], 0)
        vc.push(f[1], 0)
        vc.set_route(1)
        vc.set_out_vc(0)
        vc.pop(1)
        assert vc.state == VCState.ACTIVE  # body still queued
        vc.pop(2)
        assert vc.state == VCState.IDLE
        assert vc.out_port is None and vc.out_vc is None

    def test_wpf_second_packet_restarts_routing(self):
        """Non-atomic allocation: a second whole packet behind the first
        re-enters ROUTING once the first fully drains."""
        vc = VirtualChannel(0, 9)
        p1 = flits_of(2)
        p2 = flits_of(2)
        for f in p1 + p2:
            vc.push(f, 0)
        vc.set_route(1)
        vc.set_out_vc(0)
        vc.pop(1)
        vc.pop(2)  # p1 tail leaves
        assert vc.state == VCState.ROUTING  # p2's head now at the front
        assert vc.out_port is None

    def test_pop_empty_raises(self):
        vc = VirtualChannel(0, 9)
        with pytest.raises(RuntimeError):
            vc.pop(0)

    def test_overflow_raises(self):
        vc = VirtualChannel(0, 1)
        vc.push(flits_of(1)[0], 0)
        with pytest.raises(RuntimeError):
            vc.push(flits_of(1)[0], 0)


class TestWPFAdmission:
    def test_accepts_whole_packet_in_free_space(self):
        vc = VirtualChannel(0, 9)
        assert vc.can_accept_packet(9)
        assert not vc.can_accept_packet(10)

    def test_partial_occupancy_reduces_admission(self):
        vc = VirtualChannel(0, 9)
        for f in flits_of(4):
            vc.push(f, 0)
        assert vc.can_accept_packet(5)
        assert not vc.can_accept_packet(6)

    def test_free_space_tracks_occupancy(self):
        vc = VirtualChannel(0, 5)
        flits = flits_of(3)
        for i, f in enumerate(flits):
            vc.push(f, 0)
            assert vc.occupancy == i + 1
            assert vc.free_space == 5 - (i + 1)


class TestWaitTracking:
    def test_wait_since_set_on_new_front(self):
        vc = VirtualChannel(0, 9)
        vc.push(flits_of(2)[0], now=7)
        assert vc.wait_since == 7

    def test_wait_since_updates_after_pop(self):
        vc = VirtualChannel(0, 9)
        f = flits_of(2)
        vc.push(f[0], 5)
        vc.push(f[1], 5)
        vc.set_route(1)
        vc.set_out_vc(0)
        vc.pop(9)
        assert vc.wait_since == 9


class TestInputPort:
    def test_port_structure(self):
        port = InputPort(2, num_vcs=4, vc_capacity=9)
        assert port.num_vcs == 4
        assert not port.is_injection
        assert port.total_occupancy() == 0

    def test_injection_flag(self):
        port = InputPort(4, 4, 9, is_injection=True)
        assert port.is_injection

    def test_oldest_wait(self):
        port = InputPort(0, 2, 9)
        port.vcs[0].push(flits_of(1)[0], now=3)
        port.vcs[1].push(flits_of(1)[0], now=8)
        assert port.oldest_wait(now=10) == 7

    def test_oldest_wait_empty_port(self):
        port = InputPort(0, 2, 9)
        assert port.oldest_wait(100) == 0
