"""Tests for the DA2mesh reply overlay."""

import itertools

import pytest

from repro.noc.da2mesh import DA2MeshReplyNetwork
from repro.noc.flit import Packet, PacketType


def reply(src=5, dest=0, size=9, now=0):
    return Packet(PacketType.READ_REPLY, src, dest, size, now)


def make_net(ni_mode="single", **kw):
    return DA2MeshReplyNetwork(
        mc_nodes=[5, 10], num_nodes=16, ni_mode=ni_mode, **kw
    )


class TestBasics:
    def test_delivery(self):
        net = make_net()
        got = []
        net.on_delivery = lambda node, pkt, now: got.append((node, pkt.pid))
        p = reply(5, 3)
        assert net.offer(5, p)
        net.run(100)
        assert got == [(3, p.pid)]
        assert p.received_at is not None

    def test_lane_serialization_time(self):
        net = make_net()
        assert net.lane_cycles(9) == 18  # 9 flits x 4 narrow / 2x clock

    def test_queue_capacity(self):
        net = make_net()
        accepted = sum(net.offer(5, reply()) for _ in range(10))
        assert accepted == 4  # 36 flits / 9 per packet

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            make_net(ni_mode="dual")

    def test_conservation(self):
        net = make_net()
        offered = 0
        dests = itertools.cycle(d for d in range(16) if d not in (5, 10))
        for _ in range(500):
            if net.offer(5, reply(5, next(dests), now=net.now)):
                offered += 1
            net.step()
        net.run(2000)
        assert net.stats.packets_delivered == offered


class TestFeedBottleneck:
    def _throughput(self, ni_mode, cycles=1500):
        net = make_net(ni_mode=ni_mode)
        dests = itertools.cycle(d for d in range(16) if d not in (5, 10))
        for _ in range(cycles):
            net.offer(5, reply(5, next(dests), now=net.now))
            net.step()
        return net.stats.packets_delivered / cycles

    def test_single_queue_feed_limited(self):
        """Baseline DA2mesh: one read port = 1 mesh flit/cycle feed."""
        tput = self._throughput("single")
        assert tput <= 1 / 9 + 0.01

    def test_split_queues_feed_parallel(self):
        """ARI on DA2mesh: split queues feed the lanes concurrently."""
        assert self._throughput("split") > 1.5 * self._throughput("single")

    def test_occupancy_shim(self):
        net = make_net()
        net.offer(5, reply())
        assert net.ni_occupancy(5) == 9.0
        assert net.ni_occupancy(99) == 0.0
