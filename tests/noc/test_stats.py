"""Tests for network statistics collection."""

import pytest

from repro.noc.flit import Packet, PacketType
from repro.noc.link import Link
from repro.noc.stats import LatencyAccumulator, NetworkStats, mean_link_utilization


def delivered(ptype=PacketType.READ_REPLY, size=9, created=0, injected=2, received=20):
    p = Packet(ptype, 0, 1, size, created)
    p.injected_at = injected
    p.received_at = received
    return p


class TestLatencyAccumulator:
    def test_records(self):
        acc = LatencyAccumulator()
        acc.record(delivered(received=20))
        acc.record(delivered(received=40))
        assert acc.count == 2
        assert acc.mean == 30.0
        assert acc.max == 40

    def test_network_latency(self):
        acc = LatencyAccumulator()
        acc.record(delivered(injected=5, received=25))
        assert acc.mean_network == 20.0

    def test_ignores_undelivered(self):
        acc = LatencyAccumulator()
        acc.record(Packet(PacketType.READ_REPLY, 0, 1, 9, 0))
        assert acc.count == 0

    def test_empty_means(self):
        acc = LatencyAccumulator()
        assert acc.mean == 0.0
        assert acc.mean_network == 0.0


class TestNetworkStats:
    def test_in_flight(self):
        s = NetworkStats()
        s.on_offer()
        s.on_offer()
        s.on_delivery(delivered())
        assert s.in_flight == 1

    def test_traffic_mix(self):
        s = NetworkStats()
        s.on_delivery(delivered(PacketType.READ_REPLY, size=9))
        s.on_delivery(delivered(PacketType.WRITE_REPLY, size=1))
        mix = s.traffic_mix()
        assert mix[PacketType.READ_REPLY] == pytest.approx(0.9)
        assert mix[PacketType.WRITE_REPLY] == pytest.approx(0.1)

    def test_traffic_mix_empty(self):
        assert all(v == 0.0 for v in NetworkStats().traffic_mix().values())

    def test_flit_hops_delivered(self):
        s = NetworkStats()
        s.on_delivery(delivered(size=9), hops=5)
        s.on_delivery(delivered(size=1), hops=3)
        assert s.flit_hops_delivered == 9 * 5 + 1 * 3

    def test_mean_latency_by_type(self):
        s = NetworkStats()
        s.on_delivery(delivered(PacketType.READ_REPLY, received=10))
        s.on_delivery(delivered(PacketType.READ_REQUEST, size=1, received=50))
        assert s.mean_latency([PacketType.READ_REPLY]) == 10.0
        assert s.mean_latency([PacketType.READ_REQUEST]) == 50.0
        assert s.mean_latency() == 30.0

    def test_throughput(self):
        s = NetworkStats()
        s.cycles = 100
        s.on_delivery(delivered())
        assert s.throughput() == 0.01


class TestSummary:
    def test_per_type_and_merged_percentiles(self):
        s = NetworkStats()
        for lat in (10, 20, 30, 40, 200):
            s.on_delivery(delivered(PacketType.READ_REPLY, received=lat))
        s.on_delivery(delivered(PacketType.WRITE_REPLY, size=1, received=50))
        summ = s.summary()
        rep = summ["read_reply"]
        assert rep["count"] == 5
        assert set(rep) == {"count", "mean", "p50", "p95", "p99", "max"}
        assert rep["p50"] <= rep["p95"] <= rep["p99"] <= rep["max"]
        assert rep["max"] == 200.0
        assert summ["all"]["count"] == 6

    def test_empty_types_omitted(self):
        s = NetworkStats()
        s.on_delivery(delivered(PacketType.READ_REPLY))
        summ = s.summary()
        assert "write_reply" not in summ
        assert set(summ) == {"read_reply", "all"}

    def test_empty_stats(self):
        assert NetworkStats().summary() == {}

    def test_accumulator_percentile_properties(self):
        acc = LatencyAccumulator()
        for lat in range(1, 101):
            acc.record(delivered(received=lat, injected=0, created=0))
        assert acc.p50 <= acc.p95 <= acc.p99
        assert acc.p95 > acc.mean / 2


class TestLinkUtilization:
    def test_mean_over_links(self):
        links = [Link(), Link()]
        f = Packet(PacketType.WRITE_REPLY, 0, 1, 1, 0).make_flits()[0]
        links[0].send(f, 0)
        assert mean_link_utilization(links, 10) == pytest.approx(0.05)

    def test_degenerate_inputs(self):
        assert mean_link_utilization([], 10) == 0.0
        assert mean_link_utilization([Link()], 0) == 0.0


class TestExpectedFlitHops:
    def test_system_accounting(self):
        """Charged at request issue: request + predicted reply flits times
        the (minimal) path length; monotone and positive under load."""
        from repro.core.schemes import scheme
        from repro.gpu.config import GPUConfig
        from repro.gpu.system import GPGPUSystem
        from repro.workloads.suite import benchmark

        cfg = GPUConfig.scaled(4, warps_per_core=4)
        system = GPGPUSystem(cfg, scheme("xy-baseline"), benchmark("bfs"), seed=1)
        system.run(120)
        first = system.expected_flit_hops
        assert first > 0
        system.run(120)
        assert system.expected_flit_hops > first
