"""Micro-tests for a single router wired by hand."""

import pytest

from repro.noc.credit import CreditChannel
from repro.noc.flit import Packet, PacketType
from repro.noc.link import Link
from repro.noc.router import Router
from repro.noc.routing import EAST, WEST, MinimalAdaptiveRouting, XYRouting


def make_router(routing=None, coords=(1, 0), **kw):
    r = Router(
        router_id=1,
        coords=coords,
        routing=routing or XYRouting(),
        num_vcs=4,
        vc_capacity=9,
        **kw,
    )
    r.set_dest_coords_fn(lambda node: (node % 4, node // 4))
    return r


def wire_east(router):
    link = Link("east")
    credit = CreditChannel(1)
    router.set_output(EAST, link, credit, downstream_vc_capacity=9)
    return link, credit


def wire_injection(router, port=4):
    link = Link("inj", is_injection=True)
    router.set_input(port, link, None)
    return link


def inject(link, packet, now=0, vc=0):
    """Put a packet's flits on an injection link over consecutive cycles."""
    for i, flit in enumerate(packet.make_flits()):
        flit.out_vc = vc
        link.send(flit, now + i)


class TestForwarding:
    def test_routes_and_forwards(self):
        # Router at (1,0); destination node 3 = (3,0): go EAST.
        router = make_router()
        out, _ = wire_east(router)
        inj = wire_injection(router)
        router.set_ejection(Link("ej"))
        pkt = Packet(PacketType.READ_REPLY, 0, 3, 3, 0)
        inject(inj, pkt, now=0)
        for t in range(1, 10):
            router.step(t)
        assert out.flits_carried == 3
        assert router.flits_injected == 3

    def test_ejects_local_traffic(self):
        # Destination node 1 = (1,0) = this router: eject.
        router = make_router()
        ej = Link("ej")
        router.set_ejection(ej)
        inj = wire_injection(router)
        pkt = Packet(PacketType.READ_REPLY, 0, 1, 2, 0)
        inject(inj, pkt)
        for t in range(1, 8):
            router.step(t)
        assert ej.flits_carried == 2

    def test_wormhole_order_preserved(self):
        router = make_router()
        out, _ = wire_east(router)
        router.set_ejection(Link("ej"))
        inj = wire_injection(router)
        pkt = Packet(PacketType.READ_REPLY, 0, 3, 5, 0)
        inject(inj, pkt)
        for t in range(1, 12):
            router.step(t)
        seqs = [f.seq for f in out.arrivals(100)]
        assert seqs == sorted(seqs)

    def test_occupancy_counter_consistent(self):
        router = make_router()
        wire_east(router)
        router.set_ejection(Link("ej"))
        inj = wire_injection(router)
        pkt = Packet(PacketType.READ_REPLY, 0, 3, 4, 0)
        inject(inj, pkt)
        for t in range(1, 12):
            router.step(t)
            total = sum(p.total_occupancy() for p in router.input_ports)
            assert router.occupancy() == total
        assert router.occupancy() == 0


class TestCredits:
    def test_blocks_without_credits(self):
        router = make_router()
        out, credit_in = wire_east(router)
        router.set_ejection(Link("ej"))
        inj = wire_injection(router)
        # Exhaust all downstream credits on every VC.
        for port in [router.output_ports[EAST]]:
            for vc in range(4):
                for _ in range(9):
                    port.credits.consume(vc)
        pkt = Packet(PacketType.READ_REPLY, 0, 3, 2, 0)
        inject(inj, pkt)
        for t in range(1, 10):
            router.step(t)
        assert out.flits_carried == 0  # WPF: no VC can hold the packet

    def test_resumes_on_credit_return(self):
        router = make_router()
        out, credit_in = wire_east(router)
        router.set_ejection(Link("ej"))
        inj = wire_injection(router)
        port = router.output_ports[EAST]
        for vc in range(4):
            for _ in range(9):
                port.credits.consume(vc)
        pkt = Packet(PacketType.READ_REPLY, 0, 3, 2, 0)
        inject(inj, pkt)
        for t in range(1, 6):
            router.step(t)
        # Return enough credits on VC 1 for the whole packet.
        for _ in range(9):
            credit_in.send(1, now=6)
        for t in range(7, 15):
            router.step(t)
        assert out.flits_carried == 2


class TestInjectionSpeedup:
    def test_speedup_moves_multiple_flits(self):
        """Consumption side: with speedup 4 and flits in 4 VCs bound for
        different outputs, several flits cross the switch per cycle."""
        router = make_router(
            routing=MinimalAdaptiveRouting(), coords=(1, 1),
            injection_speedup=4,
        )
        router.set_dest_coords_fn(lambda node: (node % 4, node // 4))
        links = {}
        for d in range(4):
            links[d] = Link(f"d{d}")
            router.set_output(d, links[d], CreditChannel(1), 9)
        router.set_ejection(Link("ej"))
        inj = wire_injection(router)
        # Four single-flit packets to four different quadrants.
        dests = [13, 6, 1, 4]  # (1,3) N, (2,1) E, (1,0) S, (0,1) W
        for vc, dest in enumerate(dests):
            p = Packet(PacketType.WRITE_REPLY, 5, dest, 1, 0)
            f = p.make_flits()[0]
            f.out_vc = vc
            inj.send(f, 0)
        moved = router.step(1)
        assert moved == 4

    def test_no_speedup_single_flit(self):
        router = make_router(
            routing=MinimalAdaptiveRouting(), coords=(1, 1),
            injection_speedup=1,
        )
        router.set_dest_coords_fn(lambda node: (node % 4, node // 4))
        for d in range(4):
            router.set_output(d, Link(f"d{d}"), CreditChannel(1), 9)
        router.set_ejection(Link("ej"))
        inj = wire_injection(router)
        for vc, dest in enumerate([13, 6, 1, 4]):
            p = Packet(PacketType.WRITE_REPLY, 5, dest, 1, 0)
            f = p.make_flits()[0]
            f.out_vc = vc
            inj.send(f, 0)
        moved = router.step(1)
        assert moved == 1


class TestPriorityDecay:
    def test_head_decrement_on_mesh_ingress(self):
        router = make_router(priority_enabled=True)
        out, _ = wire_east(router)
        router.set_ejection(Link("ej"))
        west_in = Link("west_in")
        router.set_input(WEST, west_in, CreditChannel(1))
        pkt = Packet(PacketType.READ_REPLY, 0, 3, 1, 0, priority=1)
        f = pkt.make_flits()[0]
        f.out_vc = 0
        west_in.send(f, 0)
        router.step(1)
        assert pkt.priority == 0

    def test_no_decrement_on_injection(self):
        router = make_router(priority_enabled=True)
        wire_east(router)
        router.set_ejection(Link("ej"))
        inj = wire_injection(router)
        pkt = Packet(PacketType.READ_REPLY, 0, 3, 1, 0, priority=1)
        inject(inj, pkt)
        router.step(1)
        assert pkt.priority == 1


class TestEjectionGate:
    def test_gate_blocks_local_output(self):
        router = make_router()
        ej = Link("ej")
        router.set_ejection(ej)
        router.ejection_gate = lambda: False
        inj = wire_injection(router)
        pkt = Packet(PacketType.READ_REPLY, 0, 1, 2, 0)  # dest = this router
        inject(inj, pkt)
        for t in range(1, 8):
            router.step(t)
        assert ej.flits_carried == 0
        router.ejection_gate = lambda: True
        for t in range(8, 14):
            router.step(t)
        assert ej.flits_carried == 2


class TestConstruction:
    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            make_router(num_injection_ports=0)
        with pytest.raises(ValueError):
            make_router(injection_speedup=0)

    def test_multiport_port_ids(self):
        router = make_router(num_injection_ports=3)
        assert router.injection_port_ids() == [4, 5, 6]
        assert router.num_inputs == 7


class TestStarvationDemotion:
    def _router_with_contention(self, threshold):
        """Injection traffic (priority 1) and a through flit (priority 0)
        permanently competing for the EAST output."""
        router = make_router(
            priority_enabled=True, starvation_threshold=threshold,
            injection_speedup=4,
        )
        out, _ = wire_east(router)
        router.set_ejection(Link("ej"))
        inj = wire_injection(router)
        west_in = Link("west_in")
        router.set_input(WEST, west_in, CreditChannel(1))
        return router, out, inj, west_in

    def test_injection_priority_demoted_after_threshold(self):
        router, out, inj, west_in = self._router_with_contention(threshold=5)
        # A through packet (priority 0) arrives and keeps losing to a
        # steady stream of priority-1 injected packets.
        through = Packet(PacketType.READ_REPLY, 0, 3, 1, 0, priority=0)
        tf = through.make_flits()[0]
        tf.out_vc = 0
        west_in.send(tf, 0)
        delivered_through = None
        for t in range(1, 40):
            # keep one injected packet pending each cycle on a fresh VC
            p = Packet(PacketType.READ_REPLY, 0, 3, 1, t, priority=1)
            f = p.make_flits()[0]
            f.out_vc = (t % 3) + 1
            inj.send(f, t - 1)
            router.step(t)
            if through.received_at is None and not any(
                fl.packet is through
                for port in router.input_ports
                for vc in port.vcs
                for fl in vc.fifo
            ):
                delivered_through = delivered_through or t
        # Without demotion the through flit would starve indefinitely; the
        # threshold forces it out.
        assert delivered_through is not None
        assert router.starvation_demotions > 0
