"""Integration tests for the assembled network."""

import itertools

import pytest

from repro.noc import Network, NetworkConfig
from repro.noc.flit import Packet, PacketType
from repro.noc.network import DeadlockError, PerfectNetwork
from repro.noc.ni import NIKind


def long_reply(src, dest, now=0, priority=0):
    return Packet(PacketType.READ_REPLY, src, dest, 9, now, priority=priority)


class TestBasicDelivery:
    def test_single_packet(self, small_network):
        p = long_reply(0, 15)
        assert small_network.offer(0, p)
        assert small_network.drain(2000)
        assert p.received_at is not None
        assert p.latency > 0

    def test_zero_load_latency_matches_model(self, small_network):
        p = long_reply(0, 15)
        small_network.offer(0, p)
        small_network.drain(2000)
        assert p.latency == small_network.zero_load_latency(0, 15, 9)

    def test_neighbor_delivery(self, small_network):
        p = long_reply(0, 1)
        small_network.offer(0, p)
        small_network.drain(100)
        assert p.received_at is not None

    def test_short_packet(self, small_network):
        p = Packet(PacketType.READ_REQUEST, 3, 12, 1, 0)
        small_network.offer(3, p)
        assert small_network.drain(200)

    def test_delivery_callback(self, small_network):
        got = []
        small_network.on_delivery = lambda node, pkt, now: got.append((node, pkt.pid))
        p = long_reply(5, 10)
        small_network.offer(5, p)
        small_network.drain(500)
        assert got == [(10, p.pid)]

    def test_all_pairs_xy(self):
        net = Network(NetworkConfig(width=3, height=3))
        pkts = []
        for src, dest in itertools.permutations(range(9), 2):
            p = Packet(PacketType.WRITE_REPLY, src, dest, 1, net.now)
            # Offer over time to avoid NI overflow.
            while not net.offer(src, p):
                net.step()
            pkts.append(p)
        assert net.drain(5000)
        assert all(p.received_at is not None for p in pkts)

    def test_all_pairs_adaptive(self, adaptive_network):
        net = adaptive_network
        pkts = []
        for src, dest in itertools.permutations(range(16), 2):
            p = Packet(PacketType.READ_REQUEST, src, dest, 1, net.now)
            while not net.offer(src, p):
                net.step()
            pkts.append(p)
        assert net.drain(8000)
        assert all(p.received_at is not None for p in pkts)


class TestFlowControlSaturation:
    def _hammer(self, net, src, cycles=600):
        dests = itertools.cycle(d for d in range(16) if d != src)
        offered = 0
        for _ in range(cycles):
            p = long_reply(src, next(dests), net.now)
            if net.offer(src, p):
                offered += 1
            net.step()
        net.drain(20000)
        return offered

    def test_enhanced_ni_caps_at_one_flit_per_cycle(self):
        net = Network(NetworkConfig(width=4, height=4))
        offered = self._hammer(net, src=5)
        # 600 cycles at 1 flit/cycle = at most ~67 nine-flit packets.
        assert offered <= 70
        assert net.stats.packets_delivered == offered

    def test_ari_injects_faster(self):
        base = Network(NetworkConfig(width=4, height=4))
        ari = Network(
            NetworkConfig(
                width=4,
                height=4,
                accelerated_nodes={5},
                ni_kind=NIKind.SPLIT,
                injection_speedup=4,
            )
        )
        n_base = self._hammer(base, 5)
        n_ari = self._hammer(ari, 5)
        assert n_ari > 1.5 * n_base

    def test_no_packet_loss_under_pressure(self):
        net = Network(NetworkConfig(width=4, height=4))
        self._hammer(net, 5, cycles=400)
        assert net.stats.in_flight == 0


class TestConservation:
    @pytest.mark.parametrize("routing", ["xy", "adaptive"])
    def test_offered_equals_delivered(self, routing):
        import random

        rng = random.Random(42)
        net = Network(NetworkConfig(width=4, height=4, routing=routing))
        offered = 0
        for _ in range(500):
            src = rng.randrange(16)
            dest = rng.randrange(16)
            if src == dest:
                dest = (dest + 1) % 16
            size = rng.choice([1, 9])
            ptype = PacketType.READ_REPLY if size == 9 else PacketType.WRITE_REPLY
            if net.offer(src, Packet(ptype, src, dest, size, net.now)):
                offered += 1
            net.step()
        assert net.drain(30000)
        assert net.stats.packets_delivered == offered


class TestARIPriority:
    def test_priority_decays_per_hop(self):
        net = Network(
            NetworkConfig(
                width=4,
                height=4,
                accelerated_nodes={0},
                ni_kind=NIKind.SPLIT,
                injection_speedup=4,
                priority_enabled=True,
                priority_levels=2,
            )
        )
        p = long_reply(0, 15, priority=1)
        net.offer(0, p)
        net.drain(1000)
        assert p.priority == 0  # decremented on entering the second router

    def test_priority_levels_cap_at_zero(self):
        net = Network(
            NetworkConfig(
                width=4, height=4, priority_enabled=True, priority_levels=2
            )
        )
        p = long_reply(0, 15, priority=1)
        net.offer(0, p)
        net.drain(1000)
        assert p.priority >= 0


class TestEjectionBackpressure:
    def test_bounded_ejector_stalls_network(self):
        net = Network(
            NetworkConfig(width=4, height=4, bounded_ejectors={15: 9})
        )
        pkts = [long_reply(0, 15, 0) for _ in range(4)]
        for p in pkts:
            net.offer(0, p)
        net.run(300)
        # Only what fits in the 9-flit sink (plus the in-flight flit budget)
        # can have been delivered; at least one packet must still be stuck.
        assert net.stats.in_flight >= 2
        # Releasing the sink lets everything through.
        ej = net.ejectors[15]
        for _ in range(200):
            if ej.flit_occupancy:
                ej.release(ej.flit_occupancy)
            net.step()
        assert net.stats.in_flight == 0


class TestDeadlockWatchdog:
    def test_raises_on_permanent_blockage(self):
        net = Network(
            NetworkConfig(
                width=4, height=4, bounded_ejectors={15: 9}, deadlock_cycles=500
            )
        )
        for _ in range(4):
            net.offer(0, long_reply(0, 15, 0))
        with pytest.raises(DeadlockError):
            net.run(3000)  # sink never drained -> watchdog fires


class TestNetworkConfigValidation:
    def test_adaptive_needs_two_vcs(self):
        with pytest.raises(ValueError):
            NetworkConfig(routing="adaptive", num_vcs=1).validate()

    def test_split_queues_bounded_by_vcs(self):
        with pytest.raises(ValueError):
            NetworkConfig(
                num_split_queues=5,
                num_vcs=4,
                ni_kind=NIKind.SPLIT,
                accelerated_nodes={5},
            ).validate()

    def test_split_queue_bound_ignored_without_split_ni(self):
        # The bound only applies where a split NI is actually instantiated.
        NetworkConfig(num_split_queues=5, num_vcs=4).validate()

    def test_speedup_eq2_bound(self):
        with pytest.raises(ValueError):
            NetworkConfig(injection_speedup=5).validate()

    def test_priority_levels_positive(self):
        with pytest.raises(ValueError):
            NetworkConfig(priority_levels=0).validate()


class TestStats:
    def test_traffic_mix_flit_weighted(self, small_network):
        net = small_network
        net.offer(0, Packet(PacketType.READ_REPLY, 0, 15, 9, 0))
        net.offer(1, Packet(PacketType.WRITE_REPLY, 1, 14, 1, 0))
        net.drain(2000)
        mix = net.stats.traffic_mix()
        assert mix[PacketType.READ_REPLY] == pytest.approx(0.9)
        assert mix[PacketType.WRITE_REPLY] == pytest.approx(0.1)

    def test_injection_link_utilization_counted(self, small_network):
        net = small_network
        net.offer(0, long_reply(0, 15))
        net.drain(2000)
        assert net.injection_link_utilization() > 0
        assert net.mesh_link_utilization() > 0

    def test_ni_occupancy_sampled(self):
        net = Network(NetworkConfig(width=4, height=4, sample_interval=1))
        for _ in range(4):
            net.offer(5, long_reply(5, 10, 0))
        net.run(5)
        assert net.ni_occupancy(5) > 0


class TestPerfectNetwork:
    def test_always_accepts(self):
        net = PerfectNetwork(NetworkConfig(width=4, height=4))
        for _ in range(100):
            assert net.offer(5, long_reply(5, 10, net.now))
            net.step()
        assert net.stats.packets_offered == 100

    def test_delivers_at_zero_load_latency(self):
        net = PerfectNetwork(NetworkConfig(width=4, height=4))
        p = long_reply(0, 15, 0)
        net.offer(0, p)
        net.run(50)
        assert p.received_at == 1 + 6 + 9  # NI link + hops + size

    def test_injection_rate_measurement(self):
        net = PerfectNetwork(NetworkConfig(width=4, height=4))
        for i in range(100):
            if i % 2 == 0:
                net.offer(5, long_reply(5, 10, net.now))
            net.step()
        assert net.injection_rate(5) == pytest.approx(0.5)
        assert net.injection_rate(7) == 0.0
