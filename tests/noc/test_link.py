"""Tests for the pipelined link model."""

import pytest

from repro.noc.flit import Packet, PacketType
from repro.noc.link import Link


def one_flit():
    return Packet(PacketType.READ_REQUEST, 0, 1, 1, 0).make_flits()[0]


class TestLink:
    def test_unit_latency_delivery(self):
        link = Link("l", latency=1)
        f = one_flit()
        link.send(f, now=0)
        assert link.arrivals(0) == []
        assert link.arrivals(1) == [f]

    def test_longer_latency(self):
        link = Link(latency=3)
        f = one_flit()
        link.send(f, now=2)
        assert link.arrivals(4) == []
        assert link.arrivals(5) == [f]

    def test_pipelining_preserves_order(self):
        link = Link(latency=2)
        flits = [one_flit() for _ in range(3)]
        for i, f in enumerate(flits):
            link.send(f, now=i)
        assert link.arrivals(2) == [flits[0]]
        assert link.arrivals(3) == [flits[1]]
        assert link.arrivals(4) == [flits[2]]

    def test_in_flight_count(self):
        link = Link(latency=5)
        link.send(one_flit(), 0)
        link.send(one_flit(), 1)
        assert link.in_flight == 2
        link.arrivals(10)
        assert link.in_flight == 0

    def test_utilization(self):
        link = Link()
        for t in range(5):
            link.send(one_flit(), t)
        assert link.utilization(10) == 0.5
        assert link.utilization(0) == 0.0

    def test_reset_stats(self):
        link = Link()
        link.send(one_flit(), 0)
        link.reset_stats()
        assert link.flits_carried == 0
        assert link.busy_cycles == 0

    def test_rejects_zero_latency(self):
        with pytest.raises(ValueError):
            Link(latency=0)

    def test_injection_flag(self):
        assert Link(is_injection=True).is_injection
        assert not Link().is_injection
