"""Tests for the packet tracer."""


from repro.noc import Network, NetworkConfig
from repro.noc.flit import Packet, PacketType
from repro.noc.trace import PacketTracer


def traced_network():
    net = Network(NetworkConfig(width=4, height=4))
    tracer = PacketTracer.attach(net)
    return net, tracer


class TestLifecycle:
    def test_offer_and_deliver_recorded(self):
        net, tracer = traced_network()
        p = Packet(PacketType.READ_REPLY, 0, 15, 9, 0)
        net.offer(0, p)
        net.drain(2000)
        kinds = [e.kind for e in tracer.events_for(p.pid)]
        assert "offer" in kinds
        assert "deliver" in kinds
        assert "inject" in kinds

    def test_rejected_offer_not_recorded(self):
        net, tracer = traced_network()
        for _ in range(10):
            net.offer(0, Packet(PacketType.READ_REPLY, 0, 15, 9, 0))
        # NI holds 4 long packets; 6 rejections.
        assert tracer.count("offer") == 4

    def test_existing_callback_chained(self):
        net = Network(NetworkConfig(width=4, height=4))
        seen = []
        net.on_delivery = lambda node, pkt, now: seen.append(pkt.pid)
        tracer = PacketTracer.attach(net)
        p = Packet(PacketType.READ_REPLY, 0, 15, 9, 0)
        net.offer(0, p)
        net.drain(2000)
        assert seen == [p.pid]
        assert tracer.count("deliver") == 1

    def test_latency_histograms_populated(self):
        net, tracer = traced_network()
        for i in range(3):
            net.offer(0, Packet(PacketType.READ_REPLY, 0, 15, 9, net.now))
            net.step()
        net.drain(3000)
        s = tracer.lifecycle_summary()
        assert s["network_latency"]["count"] == 3
        assert s["network_latency"]["mean"] > 0

    def test_timeline_format(self):
        net, tracer = traced_network()
        p = Packet(PacketType.READ_REPLY, 0, 15, 9, 0)
        net.offer(0, p)
        net.drain(2000)
        txt = tracer.format_timeline(p.pid)
        assert f"pid={p.pid}" in txt
        assert "deliver" in txt

    def test_timeline_unknown_pid(self):
        _, tracer = traced_network()
        assert "no events" in tracer.format_timeline(999)


class TestHopEvents:
    def test_hop_recorded_per_router(self):
        net, tracer = traced_network()
        p = Packet(PacketType.READ_REPLY, 0, 15, 9, 0)
        net.offer(0, p)
        net.drain(2000)
        # 0 -> 15 on a 4x4 mesh: 6 mesh hops, 7 routers entered.
        path = tracer.hop_path(p.pid)
        assert len(path) == 7
        assert path[0] == 0
        assert path[-1] == 15

    def test_priority_demotion_visible_in_trace(self):
        """Sec. 5.3: priority drops one level per route computation; the
        hop trace must show the staircase."""
        net, tracer = traced_network()
        p = Packet(PacketType.READ_REPLY, 0, 15, 9, 0, priority=3)
        net.offer(0, p)
        net.drain(2000)
        prios = tracer.priority_trace(p.pid)
        # Injection router sees the initial level; each later router
        # decays it by one until it bottoms out at zero.
        assert prios == [3, 2, 1, 0, 0, 0, 0]
        assert prios == sorted(prios, reverse=True)

    def test_hops_opt_out(self):
        net = Network(NetworkConfig(width=4, height=4))
        tracer = PacketTracer.attach(net, hops=False)
        p = Packet(PacketType.READ_REPLY, 0, 15, 9, 0)
        net.offer(0, p)
        net.drain(2000)
        assert tracer.count("hop") == 0
        assert tracer.count("deliver") == 1

    def test_hop_queries_unknown_pid(self):
        _, tracer = traced_network()
        assert tracer.hop_path(999) == []
        assert tracer.priority_trace(999) == []


class TestBounds:
    def test_max_events_drops(self):
        tracer = PacketTracer(max_events=2)
        for i in range(5):
            tracer.record(0, "offer", i)
        assert tracer.count() == 2
        assert tracer.dropped == 3

    def test_events_of_kind(self):
        tracer = PacketTracer()
        tracer.record(0, "offer", 1)
        tracer.record(1, "deliver", 1)
        tracer.record(2, "offer", 2)
        assert len(tracer.events_of_kind("offer")) == 2
        assert tracer.count("deliver") == 1

    def test_custom_events(self):
        tracer = PacketTracer()
        tracer.record(5, "stall", 7, node=3, info="NI full")
        ev = tracer.events_for(7)[0]
        assert ev.kind == "stall"
        assert "NI full" in str(ev)
