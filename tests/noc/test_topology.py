"""Tests for mesh topology and diamond MC placement."""

import pytest

from repro.noc.routing import EAST, NORTH, SOUTH, WEST
from repro.noc.topology import (
    MeshTopology,
    default_placement,
    diamond_mc_placement,
)


class TestMeshTopology:
    def test_coords_roundtrip(self):
        mesh = MeshTopology(6, 6)
        for r in range(36):
            x, y = mesh.coords(r)
            assert mesh.router_at(x, y) == r

    def test_out_of_range_raises(self):
        mesh = MeshTopology(4, 4)
        with pytest.raises(ValueError):
            mesh.router_at(4, 0)
        with pytest.raises(ValueError):
            mesh.router_at(0, -1)

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            MeshTopology(1, 5)

    def test_corner_degree(self):
        mesh = MeshTopology(4, 4)
        assert mesh.degree(mesh.router_at(0, 0)) == 2
        assert mesh.degree(mesh.router_at(3, 3)) == 2

    def test_edge_degree(self):
        mesh = MeshTopology(4, 4)
        assert mesh.degree(mesh.router_at(1, 0)) == 3

    def test_inner_degree(self):
        mesh = MeshTopology(4, 4)
        assert mesh.degree(mesh.router_at(1, 1)) == 4

    def test_neighbor_symmetry(self):
        mesh = MeshTopology(5, 3)
        for r in range(mesh.num_routers):
            for d, n in mesh.neighbors(r).items():
                back = mesh.neighbors(n)[mesh.reverse_port(d)]
                assert back == r

    def test_neighbor_directions(self):
        mesh = MeshTopology(4, 4)
        r = mesh.router_at(1, 1)
        nb = mesh.neighbors(r)
        assert mesh.coords(nb[NORTH]) == (1, 2)
        assert mesh.coords(nb[EAST]) == (2, 1)
        assert mesh.coords(nb[SOUTH]) == (1, 0)
        assert mesh.coords(nb[WEST]) == (0, 1)

    def test_link_count(self):
        # 2 * (w*(h-1) + h*(w-1)) unidirectional links.
        mesh = MeshTopology(4, 4)
        assert len(mesh.links()) == 2 * (4 * 3 + 4 * 3)

    def test_bisection_links(self):
        assert MeshTopology(6, 6).bisection_links() == 12  # paper Sec. 3


class TestDiamondPlacement:
    def test_paper_configuration(self):
        mcs = diamond_mc_placement(6, 6, 8)
        assert len(mcs) == len(set(mcs)) == 8

    def test_no_corners(self):
        mesh = MeshTopology(6, 6)
        corners = {
            mesh.router_at(x, y) for x in (0, 5) for y in (0, 5)
        }
        mcs = set(diamond_mc_placement(6, 6, 8))
        assert not (mcs & corners)

    def test_spread_over_rows_and_columns(self):
        mesh = MeshTopology(6, 6)
        mcs = diamond_mc_placement(6, 6, 8)
        rows = [mesh.coords(r)[1] for r in mcs]
        cols = [mesh.coords(r)[0] for r in mcs]
        # The diamond pattern never piles MCs on one line.
        assert max(rows.count(v) for v in set(rows)) <= 2
        assert max(cols.count(v) for v in set(cols)) <= 2

    @pytest.mark.parametrize("mesh,mcs", [(4, 4), (6, 8), (8, 12)])
    def test_scalability_configurations(self, mesh, mcs):
        out = diamond_mc_placement(mesh, mesh, mcs)
        assert len(out) == len(set(out)) == mcs

    def test_too_many_mcs_rejected(self):
        with pytest.raises(ValueError):
            diamond_mc_placement(4, 4, 9)

    def test_zero_mcs_rejected(self):
        with pytest.raises(ValueError):
            diamond_mc_placement(4, 4, 0)

    def test_deterministic(self):
        assert diamond_mc_placement(6, 6, 8) == diamond_mc_placement(6, 6, 8)

    def test_default_placement_partition(self):
        mcs, ccs = default_placement(6, 6, 8)
        assert len(mcs) == 8
        assert len(ccs) == 28
        assert not (set(mcs) & set(ccs))
        assert sorted(mcs + ccs) == list(range(36))


class TestAlternativePlacements:
    def test_edge_placement_on_edges(self):
        from repro.noc.topology import edge_mc_placement

        mesh = MeshTopology(6, 6)
        for r in edge_mc_placement(6, 6, 8):
            _, y = mesh.coords(r)
            assert y in (0, 5)

    def test_edge_placement_counts(self):
        from repro.noc.topology import edge_mc_placement

        assert len(edge_mc_placement(6, 6, 8)) == 8
        with pytest.raises(ValueError):
            edge_mc_placement(4, 4, 9)

    def test_column_placement_centered(self):
        from repro.noc.topology import column_mc_placement

        mesh = MeshTopology(6, 6)
        cols = {mesh.coords(r)[0] for r in column_mc_placement(6, 6, 8)}
        assert cols <= {2, 3}

    def test_default_placement_styles(self):
        from repro.noc.topology import default_placement

        for style in ("diamond", "edge", "column"):
            mcs, ccs = default_placement(6, 6, 8, style=style)
            assert len(mcs) == 8 and len(ccs) == 28

    def test_unknown_style(self):
        from repro.noc.topology import default_placement

        with pytest.raises(ValueError):
            default_placement(6, 6, 8, style="spiral")
