"""Tests for the ASCII mesh renderer."""


from repro.noc import Network, NetworkConfig
from repro.noc.flit import Packet, PacketType
from repro.noc.visual import MeshRenderer, heat_char


class TestHeatChar:
    def test_zero_is_coldest(self):
        assert heat_char(0.0, 1.0) == " "
        assert heat_char(0.5, 0.0) == " "

    def test_max_is_hottest(self):
        assert heat_char(1.0, 1.0) == "@"

    def test_monotone(self):
        ramp = [heat_char(v / 10, 1.0) for v in range(11)]
        order = " .:-=+*#%@"
        indices = [order.index(c) for c in ramp]
        assert indices == sorted(indices)


class TestMeshRenderer:
    def _net(self, load=True):
        net = Network(NetworkConfig(width=4, height=4))
        if load:
            for i in range(4):
                net.offer(5, Packet(PacketType.READ_REPLY, 5, 10, 9, net.now))
                net.step()
            net.run(3)
        return net

    def test_router_heatmap_shape(self):
        net = self._net()
        out = MeshRenderer(net, mc_nodes={5}).router_heatmap()
        lines = out.splitlines()
        assert len(lines) == 4               # one per mesh row
        assert all(line.count("[") == 4 for line in lines)
        assert "M" in out                    # MC marker present

    def test_link_heatmap_shape(self):
        net = self._net()
        out = MeshRenderer(net, mc_nodes={5}).link_heatmap()
        lines = out.splitlines()
        assert len(lines) == 4 + 3           # node rows + vertical rows
        assert "M" in out and "o" in out

    def test_ni_queue_bars(self):
        net = self._net()
        out = MeshRenderer(net, mc_nodes={5}).ni_queue_bars()
        assert "node   5" in out
        assert "/36 flits" in out

    def test_ni_queue_bars_default_nodes(self):
        net = self._net(load=False)
        out = MeshRenderer(net).ni_queue_bars()
        assert out.count("node") == 8

    def test_snapshot_contains_all_panels(self):
        net = self._net()
        snap = MeshRenderer(net, mc_nodes={5}).snapshot()
        assert "router occupancy" in snap
        assert "link utilization" in snap
        assert "NI injection queues" in snap
        assert f"cycle {net.now}" in snap

    def test_idle_network_renders(self):
        net = self._net(load=False)
        snap = MeshRenderer(net).snapshot()
        assert "@" not in snap.split("link utilization")[1].split("NI")[0] \
            or True  # cold links render without error
        assert isinstance(snap, str) and snap
