"""Objective families: parsing, scoring direction, resilience specs."""

import pytest

from repro.experiments.runner import RunSpec
from repro.gpu.system import SimulationResult
from repro.search.objectives import (
    MetricObjective,
    ObjectiveError,
    ResilienceObjective,
    WeightedObjective,
    metric_value,
    parse_objective,
)


def result(ipc=0.5, reply_latency=40.0, **extras):
    return SimulationResult(
        benchmark="bfs", scheme="ada-ari", cycles=80, core_cycles=80,
        instructions=40, ipc=ipc, mc_stall_cycles=0, request_latency=20.0,
        reply_latency=reply_latency, reply_traffic_share=0.6,
        extras=dict(extras),
    )


class TestMetricValue:
    def test_field_then_extras(self):
        res = result(delivered_fraction=0.9)
        assert metric_value(res, "ipc") == 0.5
        assert metric_value(res, "delivered_fraction") == 0.9

    def test_missing_metric_raises(self):
        with pytest.raises(ObjectiveError, match="no metric"):
            metric_value(result(), "bogus")


class TestParsing:
    def test_bare_metric_maximizes(self):
        obj = parse_objective("ipc")
        assert isinstance(obj, MetricObjective)
        assert obj.maximize and obj.metric == "ipc"
        assert obj.name == "max:ipc"

    def test_min_prefix(self):
        obj = parse_objective("min:reply_latency")
        assert not obj.maximize
        assert obj.name == "min:reply_latency"

    def test_weighted(self):
        obj = parse_objective("weighted:ipc=1,reply_latency=-0.01")
        assert isinstance(obj, WeightedObjective)
        assert obj.terms == (("ipc", 1.0), ("reply_latency", -0.01))

    def test_resilience_defaults(self):
        obj = parse_objective("resilience")
        assert isinstance(obj, ResilienceObjective)
        assert obj.metric == "delivered_fraction"
        assert obj.dead_links == (1, 2)

    def test_resilience_custom(self):
        obj = parse_objective("resilience:min:reply_latency@3")
        assert obj.metric == "reply_latency"
        assert not obj.maximize
        assert obj.dead_links == (3,)

    def test_bad_texts_raise(self):
        for text in ("", "max:", "weighted:", "weighted:ipc",
                     "weighted:ipc=x", "resilience:ipc@x"):
            with pytest.raises(ObjectiveError):
                parse_objective(text)

    def test_name_round_trips(self):
        for text in ("max:ipc", "min:reply_latency",
                     "weighted:ipc=1,reply_latency=-0.01",
                     "resilience:delivered_fraction@1,2"):
            obj = parse_objective(text)
            assert parse_objective(obj.name).name == obj.name


class TestScoring:
    def test_max_is_identity_min_negates(self):
        res = [result()]
        assert parse_objective("max:ipc").score(res) == 0.5
        assert parse_objective("min:reply_latency").score(res) == -40.0

    def test_higher_score_is_always_better(self):
        fast, slow = [result(reply_latency=10.0)], [result(reply_latency=90.0)]
        obj = parse_objective("min:reply_latency")
        assert obj.score(fast) > obj.score(slow)

    def test_weighted_sum(self):
        obj = parse_objective("weighted:ipc=2,reply_latency=-0.5")
        assert obj.score([result()]) == pytest.approx(2 * 0.5 - 0.5 * 40.0)

    def test_metrics_report_raw_values(self):
        obj = parse_objective("min:reply_latency")
        assert obj.metrics([result()]) == {"reply_latency": 40.0}


class TestResilienceSpecs:
    def test_specs_carry_fault_plans(self):
        obj = ResilienceObjective(dead_links=(1, 2), fault_seed=7)
        spec = RunSpec("bfs", "ada-ari", cycles=80, mesh=4)
        specs = obj.specs_for(spec)
        assert len(specs) == 2
        for s in specs:
            assert s.faults and "link:" in s.faults
            assert s.fault_detour is True

    def test_same_links_die_for_every_candidate(self):
        obj = ResilienceObjective(dead_links=(2,))
        a = RunSpec("bfs", "ada-ari", cycles=80, mesh=4, injection_speedup=1)
        b = RunSpec("bfs", "ada-ari", cycles=80, mesh=4, injection_speedup=2)
        assert obj.specs_for(a)[0].faults == obj.specs_for(b)[0].faults

    def test_scores_average_and_report_per_k(self):
        obj = ResilienceObjective(dead_links=(1, 2))
        results = [result(delivered_fraction=1.0),
                   result(delivered_fraction=0.5)]
        assert obj.score(results) == pytest.approx(0.75)
        assert obj.metrics(results) == {
            "delivered_fraction@1": 1.0, "delivered_fraction@2": 0.5,
        }

    def test_bad_dead_links_raise(self):
        with pytest.raises(ObjectiveError):
            ResilienceObjective(dead_links=())
        with pytest.raises(ObjectiveError):
            ResilienceObjective(dead_links=(0,))
