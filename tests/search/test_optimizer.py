"""Optimizer loop: determinism, pruning, budget, ledger resume, caching.

These tests run real (tiny) simulations — 80 cycles on a 4x4 mesh with
the activity kernel — so the full propose/prune/evaluate/score path is
exercised, not a mock of it.
"""

import json

import pytest

from repro.experiments.runner import RunSpec
from repro.search.objectives import parse_objective
from repro.search.optimizer import (
    Optimizer,
    SearchConfig,
    SearchError,
    Trial,
    TrialLedger,
)
from repro.search.space import SearchSpace

BASE = RunSpec(
    "bfs", "ada-ari", cycles=80, warmup=20, mesh=4, kernel="activity"
)


def config(**over):
    defaults = dict(
        space=SearchSpace.default(BASE),
        objective=parse_objective("max:ipc"),
        strategy="hillclimb",
        seed=0,
        budget=6,
        batch=3,
    )
    defaults.update(over)
    return SearchConfig(**defaults)


def trail(report):
    """The comparable essence of a run: per-trial tuples + trajectory."""
    return (
        [
            (t.index, t.status, json.dumps(t.point, sort_keys=True),
             t.score, t.pruned_rules)
            for t in report.trials
        ],
        report.trajectory,
    )


class TestDeterminism:
    def test_rerun_is_byte_identical(self):
        a = Optimizer(config()).run(baseline=False)
        b = Optimizer(config()).run(baseline=False)
        assert trail(a) == trail(b)
        assert a.best_point == b.best_point

    def test_parallel_equals_serial(self):
        serial = Optimizer(config()).run(baseline=False)
        parallel = Optimizer(config(workers=2)).run(baseline=False)
        assert trail(serial) == trail(parallel)

    @pytest.mark.parametrize("strategy", ["random", "evolutionary"])
    def test_seeded_strategies_replay(self, strategy):
        a = Optimizer(config(strategy=strategy, seed=11)).run(baseline=False)
        b = Optimizer(config(strategy=strategy, seed=11)).run(baseline=False)
        assert trail(a) == trail(b)


class TestPruning:
    def test_invalid_candidates_cost_no_budget(self):
        # The default space deliberately includes speedup=6 (beyond the
        # Eq. 2 bound) and split_queues=6 (beyond the VC count); in grid
        # order the first split_queues=6 block sits at proposals 12-15.
        report = Optimizer(config(strategy="grid", budget=14, batch=7)).run(
            baseline=False
        )
        assert report.evaluated == 14
        assert report.pruned > 0
        ok = [t for t in report.trials if t.status == "ok"]
        pruned = [t for t in report.trials if t.status == "pruned"]
        assert len(ok) == 14
        assert len(report.trials) == 14 + len(pruned)
        for t in pruned:
            assert t.score is None
            assert t.pruned_rules  # names the violated rule(s)
            assert t.spec_keys == []  # never reached the executor

    def test_pruned_rules_are_the_staticcheck_ids(self):
        report = Optimizer(config(strategy="grid", budget=14, batch=7)).run(
            baseline=False
        )
        rules = set()
        for t in report.trials:
            rules.update(t.pruned_rules)
        assert rules <= {"eq2-bound", "split-queues", "mc-degree"}
        assert rules


class TestBudgetAndTrajectory:
    def test_trajectory_is_monotone_and_indexed(self):
        report = Optimizer(config(budget=8, batch=4)).run(baseline=False)
        scores = [s for _, s in report.trajectory]
        assert scores == sorted(scores) or all(
            b >= a for a, b in zip(scores, scores[1:])
        )
        assert len(report.trajectory) == report.evaluated
        indices = [i for i, _ in report.trajectory]
        assert indices == sorted(indices)

    def test_patience_stops_early(self):
        report = Optimizer(
            config(strategy="grid", budget=40, batch=4, patience=6)
        ).run(baseline=False)
        assert report.stop_reason == "patience"
        assert report.evaluated < 40

    def test_space_exhaustion_stops_cleanly(self):
        space = SearchSpace.from_axes(BASE, {"injection_speedup": [1, 2]})
        report = Optimizer(
            config(space=space, strategy="grid", budget=10, batch=4)
        ).run(baseline=False)
        assert report.stop_reason == "exhausted"
        assert report.evaluated == 2


class TestCaching:
    def test_second_run_is_served_from_the_store(self):
        first = Optimizer(config()).run(baseline=False)
        second = Optimizer(config()).run(baseline=False)
        assert first.cache_misses > 0
        assert second.cache_hits == first.cache_hits + first.cache_misses
        assert second.cache_misses == 0
        assert second.executed == 0
        ok = [t for t in second.trials if t.status == "ok"]
        assert all(t.cache_hits == len(t.spec_keys) for t in ok)


class TestLedgerResume:
    def test_resume_replays_identically(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        first = Optimizer(config(), ledger=TrialLedger(path)).run(
            baseline=False
        )
        resumed = Optimizer(
            config(), ledger=TrialLedger(path), resume=True
        ).run(baseline=False)
        assert trail(first) == trail(resumed)
        assert resumed.replayed == len(first.trials)
        assert resumed.executed == 0  # nothing re-simulated from replay

    def test_resume_extends_the_budget(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        first = Optimizer(
            config(budget=6, batch=3), ledger=TrialLedger(path)
        ).run(baseline=False)
        extended = Optimizer(
            config(budget=12, batch=3), ledger=TrialLedger(path), resume=True
        ).run(baseline=False)
        assert trail(first)[0] == trail(extended)[0][: len(first.trials)]
        assert extended.evaluated == 12
        # One straight budget-12 run proposes the identical sequence.
        straight = Optimizer(config(budget=12, batch=3)).run(baseline=False)
        assert trail(straight) == trail(extended)
        # The extended ledger now replays the full 12-trial run.
        again = Optimizer(
            config(budget=12, batch=3), ledger=TrialLedger(path), resume=True
        ).run(baseline=False)
        assert trail(again) == trail(extended)

    def test_fingerprint_mismatch_refuses_resume(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        Optimizer(config(seed=0), ledger=TrialLedger(path)).run(
            baseline=False
        )
        with pytest.raises(SearchError, match="different search"):
            Optimizer(
                config(seed=1), ledger=TrialLedger(path), resume=True
            ).run(baseline=False)

    def test_resume_without_ledger_file_fails(self, tmp_path):
        with pytest.raises(SearchError, match="no ledger"):
            Optimizer(
                config(),
                ledger=TrialLedger(str(tmp_path / "missing.jsonl")),
                resume=True,
            )

    def test_ledger_lines_round_trip(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        report = Optimizer(config(), ledger=TrialLedger(path)).run(
            baseline=False
        )
        trials = TrialLedger(path).load(config())
        assert [t.index for t in trials] == [t.index for t in report.trials]
        assert all(isinstance(t, Trial) for t in trials)


class TestBaselineAndReport:
    def test_search_beats_the_paper_default_baseline(self):
        # Acceptance: on a fixed seed with budget <= 64, the search must
        # find a config beating the paper-default ARI spec on the chosen
        # objective (reply latency here; at this tiny scale several
        # configs tie the baseline on IPC but strictly beat its latency).
        report = Optimizer(
            config(objective=parse_objective("min:reply_latency"),
                   strategy="hillclimb", budget=24, batch=8)
        ).run(baseline=True)
        assert report.baseline_score is not None
        assert report.improved_on_baseline() is True

    def test_report_serializes_and_renders(self):
        report = Optimizer(config()).run(baseline=True)
        payload = report.to_dict()
        json.dumps(payload)  # must be JSON-clean
        assert payload["evaluated"] == report.evaluated
        text = report.render()
        assert "best" in text and "baseline" in text
