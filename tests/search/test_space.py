"""SearchSpace DSL: construction, geometry, sampling, identity."""

import random

import pytest

from repro.experiments.runner import RunSpec
from repro.search.space import (
    DEFAULT_AXES,
    EXCLUDED_FIELDS,
    SearchSpace,
    SearchSpaceError,
)

BASE = RunSpec("bfs", "ada-ari", cycles=80, warmup=20, mesh=4)


class TestConstruction:
    def test_from_axes_keeps_declaration_order(self):
        space = SearchSpace.from_axes(
            BASE, {"num_vcs": [2, 4], "injection_speedup": [1, 2]}
        )
        assert space.names == ("num_vcs", "injection_speedup")
        assert space.values("injection_speedup") == (1, 2)

    def test_unknown_field_rejected(self):
        with pytest.raises(SearchSpaceError, match="unknown RunSpec field"):
            SearchSpace.from_axes(BASE, {"warp_speed": [1]})

    def test_excluded_fields_rejected(self):
        for name in EXCLUDED_FIELDS:
            with pytest.raises(SearchSpaceError, match="cannot be a search axis"):
                SearchSpace.from_axes(BASE, {name: ["x"]})

    def test_empty_axis_rejected(self):
        with pytest.raises(SearchSpaceError, match="no values"):
            SearchSpace.from_axes(BASE, {"num_vcs": []})

    def test_no_axes_rejected(self):
        with pytest.raises(SearchSpaceError, match="at least one axis"):
            SearchSpace.from_axes(BASE, {})

    def test_duplicate_values_deduped_in_order(self):
        space = SearchSpace.from_axes(BASE, {"num_vcs": [4, 2, 4, 2]})
        assert space.values("num_vcs") == (4, 2)

    def test_parse_uses_axis_grammar_with_ranges(self):
        space = SearchSpace.parse(
            BASE, ["injection_speedup=1..4", "num_vcs=2,4"]
        )
        assert space.values("injection_speedup") == (1, 2, 3, 4)
        assert space.values("num_vcs") == (2, 4)

    def test_default_space_is_the_ari_triple(self):
        space = SearchSpace.default(BASE)
        assert space.axes == DEFAULT_AXES
        assert space.size == 5 * 4 * 4


class TestPoints:
    def test_spec_for_overlays_base(self):
        space = SearchSpace.default(BASE)
        spec = space.spec_for({"injection_speedup": 2, "num_split_queues": 1,
                               "starvation_threshold": 64})
        assert spec.injection_speedup == 2
        assert spec.benchmark == BASE.benchmark
        assert spec.cycles == BASE.cycles

    def test_contains(self):
        space = SearchSpace.default(BASE)
        point = {"injection_speedup": 2, "num_split_queues": 1,
                 "starvation_threshold": 64}
        assert space.contains(point)
        assert not space.contains({**point, "injection_speedup": 99})
        assert not space.contains({"injection_speedup": 2})

    def test_grid_points_cover_the_space_once(self):
        space = SearchSpace.default(BASE)
        keys = [space.point_key(p) for p in space.grid_points()]
        assert len(keys) == space.size
        assert len(set(keys)) == space.size

    def test_sample_is_seed_deterministic(self):
        space = SearchSpace.default(BASE)
        a = [space.sample(random.Random(5)) for _ in range(3)]
        b = [space.sample(random.Random(5)) for _ in range(3)]
        assert a == b

    def test_mutate_moves_exactly_one_axis(self):
        space = SearchSpace.default(BASE)
        rng = random.Random(1)
        point = {"injection_speedup": 2, "num_split_queues": 2,
                 "starvation_threshold": 64}
        for _ in range(20):
            child = space.mutate(point, rng)
            changed = [k for k in point if child[k] != point[k]]
            assert len(changed) == 1
            assert space.contains(child)

    def test_numeric_mutation_is_adjacent(self):
        space = SearchSpace.from_axes(BASE, {"injection_speedup": [1, 2, 3, 4]})
        rng = random.Random(2)
        point = {"injection_speedup": 2}
        for _ in range(20):
            child = space.mutate(point, rng)
            assert child["injection_speedup"] in (1, 3)

    def test_rigid_space_mutates_to_itself(self):
        space = SearchSpace.from_axes(BASE, {"num_vcs": [4]})
        assert space.mutate({"num_vcs": 4}, random.Random(0)) == {"num_vcs": 4}


class TestIdentity:
    def test_fingerprint_stable_and_sensitive(self):
        a = SearchSpace.default(BASE)
        b = SearchSpace.default(BASE)
        assert a.fingerprint() == b.fingerprint()
        c = SearchSpace.default(RunSpec("bfs", "ada-ari", cycles=81))
        assert a.fingerprint() != c.fingerprint()
        d = SearchSpace.from_axes(BASE, {"num_vcs": [2, 4]})
        assert a.fingerprint() != d.fingerprint()

    def test_point_key_is_order_insensitive(self):
        space = SearchSpace.default(BASE)
        assert space.point_key({"a": 1, "b": 2}) == space.point_key(
            {"b": 2, "a": 1}
        )
