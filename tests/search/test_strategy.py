"""Strategy determinism and freshness guarantees (no simulation here)."""

import pytest

from repro.experiments.runner import RunSpec
from repro.search.space import SearchSpace
from repro.search.strategy import (
    STRATEGIES,
    StrategyError,
    make_strategy,
)

BASE = RunSpec("bfs", "ada-ari", cycles=80, warmup=20, mesh=4)
SPACE = SearchSpace.default(BASE)


class FakeTrial:
    def __init__(self, point, score):
        self.point = point
        self.score = score


def drive(name, seed=0, rounds=4, batch=5):
    """Ask/tell a strategy with synthetic scores; return the point stream."""
    strategy = make_strategy(name, SPACE, seed=seed)
    stream = []
    for _ in range(rounds):
        points = strategy.ask(batch)
        stream.extend(points)
        # Synthetic but deterministic objective: prefer high speedup,
        # low starvation threshold; prune nothing.
        trials = [
            FakeTrial(p, p["injection_speedup"] * 10
                      - p["starvation_threshold"] / 100)
            for p in points
        ]
        strategy.tell(trials)
    return stream


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_same_seed_same_stream(self, name):
        assert drive(name, seed=3) == drive(name, seed=3)

    @pytest.mark.parametrize("name", ["random", "hillclimb", "surrogate"])
    def test_different_seed_different_stream(self, name):
        # 80-point space, 20 proposals: identical streams across seeds
        # would mean the seed is ignored.
        assert drive(name, seed=1) != drive(name, seed=2)


class TestFreshness:
    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_no_point_proposed_twice(self, name):
        stream = drive(name, rounds=6, batch=6)
        keys = [SPACE.point_key(p) for p in stream]
        assert len(keys) == len(set(keys))

    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_exhaustion_covers_whole_space_then_stops(self, name):
        strategy = make_strategy(name, SPACE, seed=0)
        seen = []
        for _ in range(2 * SPACE.size):
            points = strategy.ask(7)
            if not points:
                break
            seen.extend(points)
            strategy.tell([FakeTrial(p, 1.0) for p in points])
        assert len(seen) == SPACE.size
        assert strategy.ask(1) == []


class TestHillclimb:
    def test_exploits_the_told_elite(self):
        strategy = make_strategy("hillclimb", SPACE, seed=0, restart=0.0)
        elite = {"injection_speedup": 3, "num_split_queues": 2,
                 "starvation_threshold": 64}
        strategy.tell([FakeTrial(elite, 100.0)])
        children = strategy.ask(6)
        # With restart disabled every child is one mutation step away
        # from the single elite (modulo collision drift).
        near = sum(
            1 for c in children
            if sum(c[k] != elite[k] for k in elite) == 1
        )
        assert near >= 3


class TestRegistry:
    def test_evolutionary_is_an_alias(self):
        assert STRATEGIES["evolutionary"] is STRATEGIES["hillclimb"]

    def test_unknown_name_raises(self):
        with pytest.raises(StrategyError, match="unknown strategy"):
            make_strategy("annealing", SPACE)

    def test_bad_options_raise(self):
        with pytest.raises(StrategyError):
            make_strategy("hillclimb", SPACE, population=0)
        with pytest.raises(StrategyError):
            make_strategy("surrogate", SPACE, pool=0)
