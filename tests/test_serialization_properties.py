"""Property-based serialization round-trips (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.core.ari import ARIConfig
from repro.core.schemes import Scheme
from repro.gpu.config import GDDR5TimingParams, GPUConfig
from repro.serialization import (
    gpu_config_from_dict,
    gpu_config_to_dict,
    scheme_from_dict,
    scheme_to_dict,
)


@settings(max_examples=60, deadline=None)
@given(
    warps=st.integers(1, 64),
    l1_kb=st.sampled_from([8, 16, 32]),
    tcl=st.integers(8, 20),
    placement=st.sampled_from(["diamond", "edge", "column"]),
    hop=st.integers(1, 4),
)
def test_gpu_config_roundtrip_random(warps, l1_kb, tcl, placement, hop):
    cfg = GPUConfig(
        warps_per_core=warps,
        l1_size_bytes=l1_kb * 1024,
        dram=GDDR5TimingParams(tCL=tcl),
        mc_placement=placement,
        noc_hop_latency=hop,
    )
    assert gpu_config_from_dict(gpu_config_to_dict(cfg)) == cfg


@settings(max_examples=60, deadline=None)
@given(
    supply=st.booleans(),
    consume=st.booleans(),
    levels=st.integers(1, 6),
    queues=st.integers(1, 8),
    speedup=st.integers(1, 8),
    routing=st.sampled_from(["xy", "adaptive"]),
    ports=st.integers(1, 3),
    req_mult=st.sampled_from([1, 2]),
    accel_req=st.booleans(),
)
def test_scheme_roundtrip_random(
    supply, consume, levels, queues, speedup, routing, ports, req_mult,
    accel_req,
):
    sch = Scheme(
        "prop-test",
        routing=routing,
        ari=ARIConfig(
            supply=supply,
            consume=consume,
            priority_levels=levels,
            num_split_queues=queues,
            injection_speedup=speedup,
        ),
        num_injection_ports=ports,
        request_width_mult=req_mult,
        accelerate_request=accel_req,
    )
    assert scheme_from_dict(scheme_to_dict(sch)) == sch
