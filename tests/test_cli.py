"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_args(self):
        args = build_parser().parse_args(
            ["run", "bfs", "ada-ari", "--cycles", "200", "--mesh", "4"]
        )
        assert args.benchmark == "bfs"
        assert args.scheme == "ada-ari"
        assert args.cycles == 200
        assert args.mesh == 4

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "doom3", "ada-ari"])

    def test_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "bfs", "warp-drive"])

    def test_figure_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig11", "--scale", "huge"])


class TestCommands:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "bfs" in out
        assert "ada-ari" in out
        assert "fig11" in out

    def test_area_output(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "pair_overhead" in out

    def test_unknown_figure_fails_cleanly(self, capsys):
        assert main(["figure", "fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_run_small(self, capsys):
        rc = main(
            ["run", "binomialOptions", "xy-baseline",
             "--cycles", "150", "--mesh", "4", "--no-cache"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "IPC" in out


class TestViz:
    def test_viz_small(self, capsys):
        from repro.cli import main

        rc = main(["viz", "binomialOptions", "xy-baseline",
                   "--cycles", "100", "--mesh", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "request network" in out
        assert "reply network" in out
        assert "NI injection queues" in out

    def test_viz_da2mesh_overlay(self, capsys):
        from repro.cli import main

        rc = main(["viz", "binomialOptions", "da2mesh",
                   "--cycles", "80", "--mesh", "4"])
        assert rc == 0
        assert "no mesh to render" in capsys.readouterr().out


class TestCompare:
    # The default store is isolated per-test by conftest's autouse fixture.

    def test_compare_output(self, capsys):
        rc = main(["compare", "binomialOptions",
                   "--cycles", "150", "--mesh", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        for sch in ("xy-baseline", "xy-ari", "ada-ari"):
            assert sch in out
        assert "vs base" in out

    def test_compare_with_workers(self, capsys):
        rc = main(["compare", "binomialOptions",
                   "--cycles", "150", "--mesh", "4", "--workers", "2"])
        assert rc == 0
        assert "vs base" in capsys.readouterr().out


class TestSweepCommand:
    def test_sweep_runs_and_reports_best(self, capsys, tmp_path):
        csv_path = tmp_path / "sweep.csv"
        rc = main(
            ["sweep", "binomialOptions", "xy-baseline",
             "--axis", "seed=1,2", "--cycles", "150", "--mesh", "4",
             "--csv", str(csv_path), "--quiet"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 runs" in out
        assert "best by ipc" in out
        lines = csv_path.read_text().strip().splitlines()
        assert lines[0].startswith("seed,benchmark,scheme,ipc")
        assert len(lines) == 3  # header + 2 records

    def test_sweep_progress_lines(self, capsys):
        rc = main(
            ["sweep", "binomialOptions", "xy-baseline",
             "--axis", "seed=1,2", "--cycles", "150", "--mesh", "4"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "[1/2]" in out
        assert "[2/2]" in out

    def test_bad_axis_exits(self):
        with pytest.raises(SystemExit):
            main(["sweep", "binomialOptions", "xy-baseline",
                  "--axis", "seedonly"])

    def test_sweep_reports_cache_hits_and_misses(self, capsys):
        argv = ["sweep", "binomialOptions", "xy-baseline",
                "--axis", "seed=1,2", "--cycles", "150", "--mesh", "4",
                "--quiet"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 hit(s), 2 miss(es)" in out
        assert main(argv) == 0  # identical sweep: served from the store
        out = capsys.readouterr().out
        assert "2 hit(s), 0 miss(es)" in out
        assert "100% of unique runs" in out

    def test_axis_range_shorthand(self, capsys):
        rc = main(["sweep", "binomialOptions", "xy-baseline",
                   "--axis", "seed=1..3", "--cycles", "150", "--mesh", "4",
                   "--quiet"])
        assert rc == 0
        assert "3 runs" in capsys.readouterr().out


class TestSearchCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["search", "bfs", "ada-ari"])
        assert args.command == "search"
        assert args.strategy == "random"
        assert args.budget == 32
        assert args.objective == "max:ipc"
        assert args.search_seed == 0
        assert not args.resume

    def test_rejects_unknown_strategy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["search", "bfs", "ada-ari", "--strategy", "quantum"]
            )

    def test_search_smoke(self, capsys, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        rc = main(
            ["search", "bfs", "ada-ari", "--budget", "3", "--batch", "3",
             "--cycles", "80", "--mesh", "4", "--kernel", "activity",
             "--ledger", str(ledger), "--no-baseline"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "3 evaluated" in out
        assert "best    :" in out
        assert ledger.exists()

    def test_search_resume_and_json(self, capsys, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        base_argv = [
            "search", "bfs", "ada-ari", "--budget", "3", "--batch", "3",
            "--cycles", "80", "--mesh", "4", "--kernel", "activity",
            "--ledger", str(ledger), "--no-baseline", "--quiet",
        ]
        assert main(base_argv) == 0
        capsys.readouterr()
        json_path = tmp_path / "report.json"
        assert main(base_argv + ["--resume", "--json", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "replayed" in out
        import json as json_mod

        payload = json_mod.loads(json_path.read_text())
        assert payload["evaluated"] == 3
        assert payload["replayed"] >= 3
        assert payload["trajectory"]

    def test_bad_space_exits(self):
        with pytest.raises(SystemExit):
            main(["search", "bfs", "ada-ari", "--space", "warp_speed=1,2"])

    def test_bad_objective_exits(self):
        with pytest.raises(SystemExit):
            main(["search", "bfs", "ada-ari", "--objective", "weighted:"])


class TestCacheCommand:
    def test_info_and_clear(self, capsys):
        main(["run", "binomialOptions", "xy-baseline",
              "--cycles", "150", "--mesh", "4"])
        capsys.readouterr()
        assert main(["cache"]) == 0
        out = capsys.readouterr().out
        assert "entries" in out
        assert ": 1" in out
        assert main(["cache", "--clear"]) == 0
        out = capsys.readouterr().out
        assert "cleared result store" in out
        assert ": 0" in out


class TestFigureCommand:
    def test_figure_area_via_cli(self, capsys):
        rc = main(["figure", "sec61_area"])
        assert rc == 0
        assert "pair_overhead" in capsys.readouterr().out


class TestTelemetry:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["telemetry", "--benchmark", "bfs"])
        assert args.scheme == "ada-ari"
        assert args.interval == 100

    def test_benchmark_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["telemetry"])

    def test_scheme_alias_resolution(self):
        from repro.cli import _resolve_scheme

        assert _resolve_scheme("ari") == "ada-ari"
        assert _resolve_scheme("baseline") == "ada-baseline"
        assert _resolve_scheme("xy-ari") == "xy-ari"
        with pytest.raises(SystemExit):
            _resolve_scheme("warp-drive")

    def test_telemetry_smoke(self, capsys, tmp_path):
        out_path = tmp_path / "t.jsonl"
        rc = main(
            ["telemetry", "--benchmark", "binomialOptions",
             "--scheme", "ari", "--cycles", "150", "--mesh", "4",
             "--interval", "50", "--out", str(out_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "scheme=ada-ari" in out
        assert "rep.ni_occ_flits" in out
        assert "host profiling" in out
        from repro.telemetry import load_jsonl

        samples = load_jsonl(str(out_path))
        assert samples
        assert all(s.cycle % 50 == 0 for s in samples)


class TestModuleEntry:
    def test_dunder_main_imports(self):
        import importlib

        mod = importlib.import_module("repro.__main__")
        assert hasattr(mod, "main")


class TestFaultsCommand:
    def test_describe_explains_plan_without_running(self, capsys):
        rc = main(["faults", "--describe", "link:r5.E@0;niq:r3.1@10+5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "link fault on r5.E" in out
        assert "for 5 cycles" in out

    def test_campaign_smoke(self, capsys, tmp_path):
        json_path = tmp_path / "report.json"
        rc = main(
            ["faults", "--benchmark", "binomialOptions",
             "--schemes", "xy-baseline", "--dead-links", "0,1",
             "--cycles", "150", "--mesh", "4", "--no-cache", "--quiet",
             "--json", str(json_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "delivered_fraction" in out
        assert "dead_links=1: link:" in out

        import json

        rows = json.loads(json_path.read_text())["rows"]
        assert len(rows) == 2
        assert all(r["invariant_violations"] == 0 for r in rows)

    def test_scheme_aliases_resolve(self, capsys, tmp_path):
        rc = main(
            ["faults", "--benchmark", "binomialOptions",
             "--schemes", "ari", "--dead-links", "0",
             "--cycles", "120", "--mesh", "4", "--no-cache", "--quiet"]
        )
        assert rc == 0
        assert "ada-ari" in capsys.readouterr().out

    def test_bad_dead_links_fails_cleanly(self):
        with pytest.raises(SystemExit):
            main(["faults", "--dead-links", "two"])


class TestCheckCommand:
    def test_list_rules(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "cdg-cycle" in out
        assert "det-random" in out
        assert "[model]" in out and "[code " in out

    def test_all_schemes_pass(self, capsys):
        """Acceptance: every registered scheme checks clean (exit 0)."""
        assert main(["check", "--all-schemes"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_explicit_eq2_violation_fails(self, capsys):
        """Acceptance: S > min(N_out, N_VC) rejected with non-zero exit."""
        rc = main(
            ["check", "--scheme", "ada-ari", "--num-vcs", "2",
             "--injection-speedup", "4"]
        )
        assert rc == 1
        assert "eq2-bound" in capsys.readouterr().out

    def test_json_to_stdout(self, capsys):
        import json

        rc = main(
            ["check", "--scheme", "ada-ari", "--num-vcs", "2",
             "--injection-speedup", "4", "--json", "-"]
        )
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed"] is True
        assert any(
            d["rule"] == "eq2-bound" for d in payload["diagnostics"]
        )

    def test_rule_filter_limits_output(self, capsys):
        rc = main(
            ["check", "--scheme", "ada-ari", "--num-vcs", "2",
             "--injection-speedup", "4", "--rule", "cdg-cycle"]
        )
        assert rc == 0  # eq2 finding filtered out
        assert "eq2-bound" not in capsys.readouterr().out

    def test_unknown_rule_fails_cleanly(self, capsys):
        assert main(["check", "--all-schemes", "--rule", "bogus"]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_strict_escalates_clamp_warning(self, capsys):
        args = ["check", "--scheme", "ada-ari", "--num-vcs", "2"]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--strict"]) == 1

    def test_scheme_alias_and_comma_list(self, capsys):
        rc = main(["check", "--scheme", "ari,xy-baseline"])
        assert rc == 0

    def test_code_lint_on_clean_tree(self, capsys, tmp_path):
        mod = tmp_path / "sim.py"
        mod.write_text("import time\nt = time.time()\n")
        rc = main(["check", "--code", str(tmp_path)])
        assert rc == 0  # det findings are warnings
        assert "det-wallclock" in capsys.readouterr().out
        capsys.readouterr()
        assert main(["check", "--code", str(tmp_path), "--strict"]) == 1

    def test_nothing_selected_is_usage_error(self, capsys):
        assert main(["check"]) == 2
        assert "nothing to check" in capsys.readouterr().err

    def test_fault_plan_checked(self, capsys):
        # r5 sits on the East edge of a 6x6 mesh: invalid link fault.
        rc = main(
            ["check", "--scheme", "ada-ari", "--faults", "link:r5.E@0"]
        )
        assert rc == 1
        assert "config-resolve" in capsys.readouterr().out


class TestCheckBaseline:
    def _dirty_tree(self, tmp_path):
        mod = tmp_path / "sim.py"
        mod.write_text(
            "def f(now, payload_flits):\n"
            "    return now + payload_flits\n"
        )
        return tmp_path

    def test_update_baseline_then_strict_is_clean(self, capsys, tmp_path):
        tree = self._dirty_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        rc = main(
            ["check", "--code", str(tree),
             "--baseline", str(baseline), "--update-baseline"]
        )
        assert rc == 0
        assert baseline.exists()
        capsys.readouterr()
        rc = main(
            ["check", "--code", str(tree),
             "--baseline", str(baseline), "--strict"]
        )
        assert rc == 0
        out = capsys.readouterr()
        assert "grandfathered" in out.err

    def test_new_finding_escapes_baseline(self, capsys, tmp_path):
        tree = self._dirty_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        main(["check", "--code", str(tree),
              "--baseline", str(baseline), "--update-baseline"])
        capsys.readouterr()
        (tree / "sim.py").write_text(
            "def f(now, payload_flits):\n"
            "    return now + payload_flits\n"
            "def g(horizon, width_bits):\n"
            "    return horizon - width_bits\n"
        )
        rc = main(
            ["check", "--code", str(tree),
             "--baseline", str(baseline), "--strict"]
        )
        assert rc == 1
        assert "bits" in capsys.readouterr().out

    def test_no_baseline_reports_everything(self, capsys, tmp_path):
        tree = self._dirty_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        main(["check", "--code", str(tree),
              "--baseline", str(baseline), "--update-baseline"])
        capsys.readouterr()
        rc = main(
            ["check", "--code", str(tree), "--no-baseline", "--strict"]
        )
        assert rc == 1
        assert "unit-mix" in capsys.readouterr().out

    def test_update_baseline_requires_code(self, capsys):
        assert main(["check", "--all-schemes", "--update-baseline"]) == 2
        assert "--update-baseline requires --code" in capsys.readouterr().err

    def test_repo_default_baseline_keeps_strict_green(self, capsys):
        """Acceptance: all passes run clean against the repo post-baseline."""
        rc = main(["check", "--code", "src/repro", "--strict"])
        assert rc == 0, capsys.readouterr().out


class TestCheckTaint:
    LEAKY_API = (
        "import dataclasses\n"
        "\n"
        "\n"
        "@dataclasses.dataclass\n"
        "class Spec:\n"
        "    benchmark: str\n"
        "    kernel: str = None\n"
        "\n"
        "    def key(self):\n"
        "        payload = dataclasses.asdict(self)\n"
        "        del payload[\"kernel\"]\n"
        "        return str(payload)\n"
        "\n"
        "\n"
        "def run(spec, store):\n"
        "    payload = {\"backend\": spec.kernel}\n"
        "    store.put(spec.key(), payload)\n"
        "    return payload\n"
    )

    def test_taint_flag_selects_only_taint_rules(self, capsys, tmp_path):
        # unit-mix material only: invisible under --taint
        (tmp_path / "sim.py").write_text(
            "def f(now, payload_flits):\n"
            "    return now + payload_flits\n"
        )
        rc = main(
            ["check", "--code", str(tmp_path), "--taint",
             "--no-baseline", "--strict"]
        )
        assert rc == 0
        assert "unit-mix" not in capsys.readouterr().out

    def test_taint_flag_catches_cachekey_leak(self, capsys, tmp_path):
        (tmp_path / "api.py").write_text(self.LEAKY_API)
        rc = main(
            ["check", "--code", str(tmp_path), "--taint",
             "--no-baseline"]
        )
        assert rc == 1
        assert "cachekey-unsound" in capsys.readouterr().out

    def test_update_baseline_reports_pruned_entries(
        self, capsys, tmp_path
    ):
        baseline = tmp_path / "baseline.json"
        (tmp_path / "sim.py").write_text(
            "def f(now, payload_flits):\n"
            "    return now + payload_flits\n"
        )
        main(["check", "--code", str(tmp_path),
              "--baseline", str(baseline), "--update-baseline"])
        capsys.readouterr()
        (tmp_path / "sim.py").write_text("def f():\n    return 0\n")
        rc = main(
            ["check", "--code", str(tmp_path),
             "--baseline", str(baseline), "--update-baseline"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "pruned 1 stale fingerprint(s)" in out
        assert "unit-mix" in out
