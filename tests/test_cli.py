"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_args(self):
        args = build_parser().parse_args(
            ["run", "bfs", "ada-ari", "--cycles", "200", "--mesh", "4"]
        )
        assert args.benchmark == "bfs"
        assert args.scheme == "ada-ari"
        assert args.cycles == 200
        assert args.mesh == 4

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "doom3", "ada-ari"])

    def test_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "bfs", "warp-drive"])

    def test_figure_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig11", "--scale", "huge"])


class TestCommands:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "bfs" in out
        assert "ada-ari" in out
        assert "fig11" in out

    def test_area_output(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "pair_overhead" in out

    def test_unknown_figure_fails_cleanly(self, capsys):
        assert main(["figure", "fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_run_small(self, capsys):
        rc = main(
            ["run", "binomialOptions", "xy-baseline",
             "--cycles", "150", "--mesh", "4", "--no-cache"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "IPC" in out


class TestViz:
    def test_viz_small(self, capsys):
        from repro.cli import main

        rc = main(["viz", "binomialOptions", "xy-baseline",
                   "--cycles", "100", "--mesh", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "request network" in out
        assert "reply network" in out
        assert "NI injection queues" in out

    def test_viz_da2mesh_overlay(self, capsys):
        from repro.cli import main

        rc = main(["viz", "binomialOptions", "da2mesh",
                   "--cycles", "80", "--mesh", "4"])
        assert rc == 0
        assert "no mesh to render" in capsys.readouterr().out


class TestCompare:
    def test_compare_output(self, capsys, tmp_path, monkeypatch):
        import repro.experiments.runner as runner

        monkeypatch.setattr(runner, "_CACHE_PATH", str(tmp_path / "c.json"))
        monkeypatch.setattr(runner, "_disk_loaded", True)
        saved = dict(runner._memory_cache)
        runner._memory_cache.clear()
        try:
            rc = main(["compare", "binomialOptions",
                       "--cycles", "150", "--mesh", "4"])
            assert rc == 0
            out = capsys.readouterr().out
            for sch in ("xy-baseline", "xy-ari", "ada-ari"):
                assert sch in out
            assert "vs base" in out
        finally:
            runner._memory_cache.clear()
            runner._memory_cache.update(saved)


class TestFigureCommand:
    def test_figure_area_via_cli(self, capsys):
        rc = main(["figure", "sec61_area"])
        assert rc == 0
        assert "pair_overhead" in capsys.readouterr().out


class TestModuleEntry:
    def test_dunder_main_imports(self):
        import importlib

        mod = importlib.import_module("repro.__main__")
        assert hasattr(mod, "main")
