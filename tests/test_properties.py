"""Property-based tests (hypothesis) on core data structures and invariants.

These complement the unit suites with randomized adversarial inputs:

* network conservation — every offered packet is delivered exactly once,
  in one piece, regardless of traffic pattern, routing, or ARI features;
* cache — behaves identically to a reference LRU model;
* DRAM — completions respect minimum latency and bus serialization;
* NI/WPF — a split NI never overflows an injection VC;
* arbiters — rotating fairness under arbitrary request streams.
"""

import random
from collections import OrderedDict

from hypothesis import given, settings, strategies as st

from repro.gpu.cache import Cache
from repro.gpu.config import GDDR5TimingParams
from repro.gpu.dram import DRAMChannel, DRAMRequest
from repro.noc import Network, NetworkConfig
from repro.noc.allocator import RoundRobinArbiter
from repro.noc.flit import Packet, PacketType
from repro.noc.ni import NIKind


# ---------------------------------------------------------------------------
# Network conservation
# ---------------------------------------------------------------------------

network_scenarios = st.tuples(
    st.sampled_from(["xy", "adaptive"]),
    st.booleans(),                      # ARI at node 5
    st.integers(0, 2 ** 31 - 1),        # traffic seed
    st.integers(20, 120),               # packets
)


@settings(max_examples=20, deadline=None)
@given(network_scenarios)
def test_network_delivers_everything_exactly_once(scenario):
    routing, ari, seed, n_packets = scenario
    cfg = NetworkConfig(
        width=4,
        height=4,
        routing=routing,
        accelerated_nodes={5} if ari else set(),
        ni_kind=NIKind.SPLIT if ari else NIKind.ENHANCED,
        injection_speedup=4 if ari else 1,
        priority_enabled=ari,
        priority_levels=2 if ari else 1,
    )
    net = Network(cfg)
    delivered = []
    net.on_delivery = lambda node, pkt, now: delivered.append(pkt.pid)

    rng = random.Random(seed)
    offered = []
    pending = n_packets
    while pending:
        src = rng.randrange(16)
        dest = rng.randrange(16)
        if dest == src:
            dest = (dest + 1) % 16
        size = rng.choice([1, 1, 9])
        ptype = PacketType.READ_REPLY if size == 9 else PacketType.WRITE_REPLY
        prio = 1 if (ari and src == 5) else 0
        pkt = Packet(ptype, src, dest, size, net.now, priority=prio)
        if net.offer(src, pkt):
            offered.append(pkt)
            pending -= 1
        net.step()
    assert net.drain(50000)
    # Exactly once, whole, to the right node.
    assert sorted(delivered) == sorted(p.pid for p in offered)
    assert len(set(delivered)) == len(delivered)
    for p in offered:
        assert p.received_at is not None
        assert p.latency >= net.zero_load_latency(p.src, p.dest, p.size) - 1


# ---------------------------------------------------------------------------
# Cache vs. reference model
# ---------------------------------------------------------------------------


class RefLRU:
    """Dict-of-OrderedDict reference model for a set-associative LRU cache."""

    def __init__(self, num_sets, assoc):
        self.num_sets = num_sets
        self.assoc = assoc
        self.sets = [OrderedDict() for _ in range(num_sets)]

    def lookup(self, line):
        s = self.sets[line % self.num_sets]
        if line in s:
            s.move_to_end(line)
            return True
        return False

    def fill(self, line):
        s = self.sets[line % self.num_sets]
        if line in s:
            s.move_to_end(line)
            return
        if len(s) >= self.assoc:
            s.popitem(last=False)
        s[line] = True


cache_ops = st.lists(
    st.tuples(st.sampled_from(["lookup", "fill"]), st.integers(0, 63)),
    max_size=300,
)


@settings(max_examples=100, deadline=None)
@given(ops=cache_ops)
def test_cache_matches_reference_lru(ops):
    cache = Cache(8 * 128, 128, 2)  # 4 sets, 2 ways
    ref = RefLRU(cache.num_sets, cache.assoc)
    for op, line in ops:
        if op == "lookup":
            assert cache.lookup(line) == ref.lookup(line)
        else:
            cache.fill(line)
            ref.fill(line)


# ---------------------------------------------------------------------------
# DRAM invariants
# ---------------------------------------------------------------------------

dram_addresses = st.lists(st.integers(0, 4095), min_size=1, max_size=40)


@settings(max_examples=50, deadline=None)
@given(addrs=dram_addresses)
def test_dram_completion_invariants(addrs):
    p = GDDR5TimingParams()
    ch = DRAMChannel(p, queue_depth=64)
    reqs = [DRAMRequest(a, False) for a in addrs]
    for r in reqs:
        assert ch.enqueue(r)
    ends = []
    for _ in range(20000):
        for done in ch.step_mem_cycle():
            ends.append(done.completed_at)
        if ch.pending == 0:
            break
    assert ch.pending == 0
    assert len(ends) == len(reqs)
    for r in reqs:
        # Nothing completes faster than a row-hit CAS + burst.
        assert r.completed_at - r.enqueued_at >= p.tCL + 8
    # Data-bus serialization: completions at least one burst apart.
    ends.sort()
    for a, b in zip(ends, ends[1:]):
        assert b - a >= 8


# ---------------------------------------------------------------------------
# Split NI never overflows its credit view
# ---------------------------------------------------------------------------

ni_schedule = st.lists(st.integers(1, 9), min_size=1, max_size=30)


@settings(max_examples=50, deadline=None)
@given(sizes=ni_schedule, credit_seed=st.integers(0, 1000))
def test_split_ni_respects_credits(sizes, credit_seed):
    from repro.noc.link import Link
    from repro.noc.ni import SplitNI

    ni = SplitNI(0, 36, 4, num_queues=4)
    links = [Link(is_injection=True) for _ in range(4)]
    targets = [(4, q) for q in range(4)]
    ni.attach(links, targets, vc_capacity=9, ports_vcs=[(4, v) for v in range(4)])
    rng = random.Random(credit_seed)
    outstanding = {v: 0 for v in range(4)}
    t = 0
    for size in sizes:
        pkt = Packet(PacketType.READ_REPLY, 0, 1, size, t)
        ni.offer(pkt, t)
        ni.step(t)
        for link in links:
            for f in link.arrivals(t + 1):
                outstanding[f.out_vc] += 1
                assert outstanding[f.out_vc] <= 9  # never exceeds VC space
        # Randomly drain some flits (router consuming).
        for v in range(4):
            if outstanding[v] and rng.random() < 0.5:
                outstanding[v] -= 1
                ni.on_credit(4, v)
        t += 1
    # Credit view consistency: credits + outstanding == capacity.
    for v in range(4):
        assert ni.credits[(4, v)] + outstanding[v] == 9


# ---------------------------------------------------------------------------
# Arbiter fairness
# ---------------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(2, 8),
    rounds=st.integers(10, 80),
    seed=st.integers(0, 999),
)
def test_round_robin_no_starvation(n, rounds, seed):
    """Any persistently-requesting input is granted at least once every n
    grants (rotating-priority starvation freedom)."""
    arb = RoundRobinArbiter(n)
    rng = random.Random(seed)
    waits = [0] * n
    for _ in range(rounds):
        req = [True] * n  # everyone always requests
        g = arb.grant(req)
        assert g is not None
        for i in range(n):
            waits[i] = 0 if i == g else waits[i] + 1
            assert waits[i] < n


@settings(max_examples=50, deadline=None)
@given(
    prios=st.lists(st.integers(0, 3), min_size=2, max_size=8),
)
def test_prioritized_grant_is_max_priority(prios):
    arb = RoundRobinArbiter(len(prios))
    g = arb.grant_prioritized(list(prios))
    assert g is not None
    assert prios[g] == max(prios)


# ---------------------------------------------------------------------------
# Workload stream determinism
# ---------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 2 ** 20),
    core=st.integers(0, 27),
    warp=st.integers(0, 31),
)
def test_instruction_streams_deterministic(seed, core, warp):
    from repro.workloads.suite import benchmark

    prof = benchmark("bfs")
    a = prof.make_stream(core, warp, seed)
    b = prof.make_stream(core, warp, seed)
    assert [a.next() for _ in range(40)] == [b.next() for _ in range(40)]
