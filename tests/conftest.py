"""Shared fixtures for the test suite."""

import pytest

from repro.noc.flit import reset_packet_ids


@pytest.fixture(autouse=True)
def _fresh_packet_ids():
    """Keep packet ids deterministic per test."""
    reset_packet_ids()
    yield


@pytest.fixture(autouse=True)
def _isolated_result_store(tmp_path, monkeypatch):
    """Point the default ResultStore at a per-test directory.

    Tests must never read or pollute the repo's real ``results/`` store;
    resetting the singleton makes :func:`default_store` re-derive its
    location from the patched ``REPRO_CACHE``.
    """
    from repro.experiments import store as store_mod

    monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "result_store" / "cache.json"))
    store_mod.set_default_store(None)
    yield
    store_mod.set_default_store(None)


@pytest.fixture
def small_network():
    """A 4x4 XY network with default parameters."""
    from repro.noc import Network, NetworkConfig

    return Network(NetworkConfig(width=4, height=4, routing="xy"))


@pytest.fixture
def adaptive_network():
    from repro.noc import Network, NetworkConfig

    return Network(NetworkConfig(width=4, height=4, routing="adaptive"))


def make_packet(src=0, dest=15, size=9, ptype=None, now=0, priority=0):
    from repro.noc.flit import Packet, PacketType

    return Packet(
        ptype or PacketType.READ_REPLY, src, dest, size, created_at=now,
        priority=priority,
    )


@pytest.fixture
def packet_factory():
    return make_packet
