"""Full-system integration tests (kept small: hundreds of cycles each)."""

import pytest

from repro.core.schemes import scheme
from repro.gpu.config import GPUConfig
from repro.gpu.system import GPGPUSystem
from repro.workloads.suite import benchmark


def small_system(scheme_name="xy-baseline", bm="bfs", **kw):
    cfg = GPUConfig.scaled(4, warps_per_core=8)
    return GPGPUSystem(cfg, scheme(scheme_name), benchmark(bm), seed=1, **kw)


class TestEndToEnd:
    def test_instructions_flow(self):
        sys_ = small_system()
        res = sys_.simulate(cycles=300, warmup=50)
        assert res.instructions > 0
        assert res.ipc > 0

    def test_memory_round_trip(self):
        sys_ = small_system()
        sys_.run(400)
        reads = sum(m.stats.reads for m in sys_.mcs)
        replies = sum(c.stats.read_replies for c in sys_.cores)
        assert reads > 0
        assert replies > 0

    def test_request_and_reply_traffic_present(self):
        sys_ = small_system()
        res = sys_.simulate(cycles=300, warmup=50)
        assert 0 < res.reply_traffic_share < 1
        mix = res.traffic_mix
        assert mix.get("read_request", 0) > 0
        assert mix.get("read_reply", 0) > 0

    def test_replies_dominate_flits(self):
        """Fig. 5: the reply network carries most of the flit traffic."""
        sys_ = small_system()
        res = sys_.simulate(cycles=400, warmup=100)
        assert res.reply_traffic_share > 0.5

    def test_deterministic_given_seed(self):
        r1 = small_system().simulate(cycles=200, warmup=0)
        r2 = small_system().simulate(cycles=200, warmup=0)
        assert r1.instructions == r2.instructions
        assert r1.mc_stall_cycles == r2.mc_stall_cycles

    def test_different_seeds_differ(self):
        cfg = GPUConfig.scaled(4, warps_per_core=8)
        a = GPGPUSystem(cfg, scheme("xy-baseline"), benchmark("bfs"), seed=1)
        b = GPGPUSystem(cfg, scheme("xy-baseline"), benchmark("bfs"), seed=2)
        ra = a.simulate(cycles=200, warmup=0)
        rb = b.simulate(cycles=200, warmup=0)
        assert ra.instructions != rb.instructions


class TestPrewarm:
    def test_prewarm_fills_l2(self):
        sys_ = small_system()
        sys_.prewarm_caches()
        cap = sys_.config.l2_size_bytes // sys_.config.line_bytes
        assert all(m.l2.occupancy == cap for m in sys_.mcs)

    def test_prewarm_respects_mc_slices(self):
        sys_ = small_system()
        sys_.prewarm_caches()
        # Every prewarmed line must belong to that MC's hash slice.
        for idx, mc in enumerate(sys_.mcs):
            for s in mc.l2._sets:
                for line in s:
                    assert sys_.config.mc_for_line(line) == idx


class TestSchemes:
    def test_ari_beats_baseline_on_high_sensitivity(self):
        base = small_system("xy-baseline").simulate(cycles=500, warmup=100)
        ari = small_system("xy-ari").simulate(cycles=500, warmup=100)
        assert ari.ipc > base.ipc

    def test_low_sensitivity_unaffected(self):
        base = small_system("xy-baseline", bm="binomialOptions").simulate(
            cycles=400, warmup=100
        )
        ari = small_system("xy-ari", bm="binomialOptions").simulate(
            cycles=400, warmup=100
        )
        assert ari.ipc == pytest.approx(base.ipc, rel=0.05)

    def test_multiport_router_built(self):
        sys_ = small_system("ada-multiport")
        for node in sys_.mc_nodes:
            assert sys_.reply_net.routers[node].num_injection_ports == 2

    def test_ari_reply_network_configured(self):
        sys_ = small_system("ada-ari")
        rcfg = sys_.reply_net.config
        assert rcfg.injection_speedup == 4
        assert rcfg.priority_enabled
        from repro.noc.ni import SplitNI

        for node in sys_.mc_nodes:
            assert isinstance(sys_.reply_net.nis[node], SplitNI)
        # Non-MC nodes keep the plain enhanced NI.
        from repro.noc.ni import EnhancedNI

        assert isinstance(sys_.reply_net.nis[sys_.cc_nodes[0]], EnhancedNI)

    def test_request_network_never_accelerated(self):
        sys_ = small_system("ada-ari")
        assert sys_.request_net.config.injection_speedup == 1
        assert not sys_.request_net.config.priority_enabled

    def test_link_width_changes_packet_size(self):
        wide = small_system("xy-baseline-256rep")
        assert wide.rep_sizes[0] == 5  # 128B over 32B flits + head
        assert wide.req_sizes[list(wide.req_sizes)[1]] == 9

    def test_da2mesh_overlay_used(self):
        from repro.noc.da2mesh import DA2MeshReplyNetwork

        sys_ = small_system("da2mesh")
        assert isinstance(sys_.reply_net, DA2MeshReplyNetwork)
        res = sys_.simulate(cycles=300, warmup=50)
        assert res.instructions > 0


class TestStallMetric:
    def test_stall_time_nonzero_under_load(self):
        res = small_system("xy-baseline").simulate(cycles=500, warmup=100)
        assert res.mc_stall_time > 0
        assert res.mc_stall_per_reply > 0

    def test_ari_reduces_stall_per_reply(self):
        base = small_system("ada-baseline").simulate(cycles=500, warmup=100)
        ari = small_system("ada-ari").simulate(cycles=500, warmup=100)
        assert ari.mc_stall_per_reply < base.mc_stall_per_reply


class TestExtrasMetrics:
    def test_memory_latency_reported(self):
        res = small_system("xy-baseline").simulate(cycles=300, warmup=50)
        assert res.extras["mean_memory_latency"] > 0

    def test_ari_reduces_memory_latency(self):
        base = small_system("ada-baseline").simulate(cycles=500, warmup=100)
        ari = small_system("ada-ari").simulate(cycles=500, warmup=100)
        assert (
            ari.extras["mean_memory_latency"]
            < base.extras["mean_memory_latency"]
        )


class TestPlacementOption:
    def test_placement_configurable(self):
        from repro.gpu.config import GPUConfig
        from repro.gpu.system import GPGPUSystem
        from repro.core.schemes import scheme
        from repro.workloads.suite import benchmark

        cfg = GPUConfig.scaled(4, warps_per_core=4, mc_placement="edge")
        sys_ = GPGPUSystem(cfg, scheme("xy-baseline"), benchmark("bfs"))
        ys = {sys_.request_net.topology.coords(n)[1] for n in sys_.mc_nodes}
        assert ys <= {0, 3}
