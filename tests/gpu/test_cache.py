"""Tests for the set-associative LRU cache."""

import pytest

from repro.gpu.cache import Cache


class TestGeometry:
    def test_sets_and_ways(self):
        c = Cache(16 * 1024, 128, 4)
        assert c.num_sets == 32
        assert c.assoc == 4

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            Cache(0, 128, 4)
        with pytest.raises(ValueError):
            Cache(128, 128, 4)  # smaller than one set


class TestLookupAndFill:
    def test_miss_then_hit(self):
        c = Cache(1024, 128, 2)
        assert not c.lookup(5)
        c.fill(5)
        assert c.lookup(5)

    def test_probe_is_stateless(self):
        c = Cache(1024, 128, 2)
        c.fill(5)
        h0 = c.stats.hits
        assert c.probe(5)
        assert not c.probe(6)
        assert c.stats.hits == h0

    def test_lru_eviction(self):
        c = Cache(2 * 128, 128, 2)  # 1 set, 2 ways
        c.fill(0)
        c.fill(1)
        c.lookup(0)   # 0 becomes MRU
        c.fill(2)     # evicts 1 (LRU)
        assert c.probe(0)
        assert not c.probe(1)
        assert c.probe(2)

    def test_fill_existing_updates_lru(self):
        c = Cache(2 * 128, 128, 2)
        c.fill(0)
        c.fill(1)
        c.fill(0)  # refresh 0
        c.fill(2)  # evicts 1
        assert c.probe(0) and not c.probe(1)

    def test_set_isolation(self):
        c = Cache(4 * 128, 128, 2)  # 2 sets
        c.fill(0)  # set 0
        c.fill(1)  # set 1
        c.fill(2)  # set 0
        c.fill(4)  # set 0 -> evicts 0
        assert c.probe(1)
        assert not c.probe(0)

    def test_occupancy(self):
        c = Cache(1024, 128, 2)
        for line in range(5):
            c.fill(line)
        assert c.occupancy == 5

    def test_capacity_bound(self):
        c = Cache(1024, 128, 2)  # 8 lines total
        for line in range(100):
            c.fill(line)
        assert c.occupancy <= 8


class TestWrites:
    def test_write_through_hit(self):
        c = Cache(1024, 128, 2)
        c.fill(3)
        assert c.write(3)
        assert c.stats.write_hits == 1

    def test_write_no_allocate(self):
        c = Cache(1024, 128, 2)
        assert not c.write(3)
        assert not c.probe(3)


class TestStatsAndControl:
    def test_hit_rate(self):
        c = Cache(1024, 128, 2)
        c.fill(1)
        c.lookup(1)
        c.lookup(2)
        assert c.stats.hit_rate == pytest.approx(0.5)

    def test_hit_rate_empty(self):
        assert Cache(1024, 128, 2).stats.hit_rate == 0.0

    def test_invalidate(self):
        c = Cache(1024, 128, 2)
        c.fill(1)
        assert c.invalidate(1)
        assert not c.probe(1)
        assert not c.invalidate(1)

    def test_flush(self):
        c = Cache(1024, 128, 2)
        for line in range(4):
            c.fill(line)
        c.flush()
        assert c.occupancy == 0
