"""Tests for the SIMT core model."""


from repro.gpu.config import GPUConfig
from repro.gpu.core import Core
from repro.workloads.profile import WorkloadProfile


def make_core(mem_rate=0.5, write_fraction=0.0, reuse=0.0, warps=4, **kw):
    cfg = GPUConfig(warps_per_core=warps)
    prof = WorkloadProfile(
        name="t",
        sensitivity="high",
        mem_rate=mem_rate,
        write_fraction=write_fraction,
        coalesce_lines=1,
        reuse_prob=reuse,
        working_set_lines=4096,
        **kw,
    )
    return Core(0, node=0, config=cfg, profile=prof, seed=1)


class TestIssue:
    def test_compute_only_full_ipc(self):
        core = make_core(mem_rate=0.0)
        for t in range(100):
            core.step_core_cycle(t)
        assert core.stats.instructions == 100
        assert core.ipc == 1.0

    def test_loads_generate_requests(self):
        core = make_core(mem_rate=1.0)
        for t in range(20):
            core.step_core_cycle(t)
        assert core.stats.loads > 0
        assert len(core.outbound) > 0
        assert all(not w for (w, _) in core.outbound)

    def test_stores_generate_write_requests(self):
        core = make_core(mem_rate=1.0, write_fraction=1.0)
        for t in range(10):
            core.step_core_cycle(t)
        assert core.stats.stores > 0
        assert all(w for (w, _) in core.outbound)

    def test_stores_do_not_block_warps(self):
        core = make_core(mem_rate=1.0, write_fraction=1.0, warps=1)
        for t in range(10):
            core.step_core_cycle(t)
        # The single warp keeps issuing (no blocking on stores).
        assert core.stats.instructions >= 8

    def test_loads_block_warps(self):
        core = make_core(mem_rate=1.0, warps=1)
        for t in range(20):
            core.step_core_cycle(t)
        # One warp, first load blocks it; nothing else can issue.
        assert core.stats.instructions <= 2
        assert core.outstanding_loads() > 0

    def test_multithreading_hides_latency(self):
        few = make_core(mem_rate=0.5, warps=2)
        many = make_core(mem_rate=0.5, warps=16)
        for t in range(200):
            few.step_core_cycle(t)
            many.step_core_cycle(t)
        assert many.stats.instructions > few.stats.instructions


class TestReplies:
    def test_read_reply_unblocks_warp(self):
        core = make_core(mem_rate=1.0, warps=1)
        for t in range(5):
            core.step_core_cycle(t)
        assert core.outstanding_loads() == 1
        (_, line) = core.outbound[0]
        before = core.stats.instructions
        core.on_read_reply(line, now=10)
        assert core.outstanding_loads() == 0
        core.step_core_cycle(11)
        assert core.stats.instructions == before + 1

    def test_reply_fills_l1(self):
        core = make_core(mem_rate=1.0, warps=1)
        for t in range(5):
            core.step_core_cycle(t)
        (_, line) = core.outbound[0]
        core.on_read_reply(line, now=10)
        assert core.l1.probe(line)

    def test_mshr_merge_single_request(self):
        """Two warps missing on the same line send one request."""
        cfg = GPUConfig(warps_per_core=2)
        prof = WorkloadProfile(
            name="t", sensitivity="high", mem_rate=1.0, write_fraction=0.0,
            coalesce_lines=1, reuse_prob=0.0, working_set_lines=16,
            stream_prob=1.0,
        )
        core = Core(0, 0, cfg, prof, seed=1)
        # Force both warps onto the same line by monkeypatching streams.
        class FixedStream:
            def next(self):
                return ("ld", [7])

        core.streams = [FixedStream(), FixedStream()]
        core.step_core_cycle(0)
        core.step_core_cycle(0)
        assert core.outstanding_loads() == 2
        assert len(core.outbound) == 1  # merged in the MSHR
        core.on_read_reply(7, 5)
        assert core.outstanding_loads() == 0

    def test_write_reply_counted(self):
        core = make_core()
        core.on_write_reply(0)
        assert core.stats.write_replies == 1


class TestStructuralHazards:
    def test_outbound_full_stalls_issue(self):
        core = make_core(mem_rate=1.0, write_fraction=1.0, warps=4)
        core.OUTBOUND_DEPTH = 2
        for t in range(20):
            core.step_core_cycle(t)
        assert len(core.outbound) <= 2
        assert core.stats.struct_stall_cycles > 0

    def test_no_lost_instructions_on_stall(self):
        """A stalled instruction is retried, not dropped: every issued
        memory instruction corresponds to queued or outstanding work."""
        core = make_core(mem_rate=1.0, warps=2)
        core.OUTBOUND_DEPTH = 1
        for t in range(30):
            core.step_core_cycle(t)
        assert core.stats.loads + core.stats.stores == core.stats.mem_instructions
