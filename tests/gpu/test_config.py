"""Tests for GPUConfig (Table I)."""

import pytest

from repro.gpu.config import GPUConfig


class TestDefaults:
    def test_table1_values(self):
        cfg = GPUConfig()
        assert cfg.num_cores == 28
        assert cfg.num_mcs == 8
        assert cfg.warp_size == 32
        assert cfg.simd_width == 8
        assert cfg.l1_size_bytes == 16 * 1024
        assert cfg.l2_size_bytes == 128 * 1024
        assert cfg.link_width_bits == 128
        assert cfg.num_vcs == 4
        assert cfg.ni_queue_flits == 36
        assert cfg.mem_clock_ratio == 1.75
        d = cfg.dram
        assert (d.tRP, d.tRC, d.tRRD, d.tRAS, d.tRCD, d.tCL) == (12, 40, 6, 28, 12, 12)

    def test_derived_geometry(self):
        cfg = GPUConfig()
        assert cfg.flit_bytes == 16
        assert cfg.long_packet_flits == 9
        assert cfg.warp_issue_cycles == 4

    def test_gddr5_bandwidth_matches_paper(self):
        """1.75GHz x 32 pins x 4 (QDR) = 28 GB/s per MC (Sec. 3)."""
        cfg = GPUConfig()
        bytes_per_noc_cycle = (
            cfg.dram.bus_bytes_per_cycle * cfg.mem_clock_ratio
        )
        assert bytes_per_noc_cycle == 28  # GB/s at 1 GHz NoC clock


class TestValidation:
    def test_nodes_must_fit_mesh(self):
        with pytest.raises(ValueError):
            GPUConfig(mesh_width=4, mesh_height=4, num_cores=14, num_mcs=4)

    def test_warp_simd_divisibility(self):
        with pytest.raises(ValueError):
            GPUConfig(warp_size=30)

    def test_line_flit_divisibility(self):
        with pytest.raises(ValueError):
            GPUConfig(line_bytes=100)


class TestScaled:
    @pytest.mark.parametrize(
        "mesh,cores,mcs", [(4, 12, 4), (6, 28, 8), (8, 52, 12)]
    )
    def test_scalability_configs(self, mesh, cores, mcs):
        cfg = GPUConfig.scaled(mesh)
        assert cfg.mesh_width == cfg.mesh_height == mesh
        assert cfg.num_cores == cores
        assert cfg.num_mcs == mcs

    def test_unknown_mesh(self):
        with pytest.raises(ValueError):
            GPUConfig.scaled(5)

    def test_overrides(self):
        cfg = GPUConfig.scaled(4, warps_per_core=8)
        assert cfg.warps_per_core == 8


class TestAddressMapping:
    def test_mc_for_line_in_range(self):
        cfg = GPUConfig()
        for line in range(1000):
            assert 0 <= cfg.mc_for_line(line) < cfg.num_mcs

    def test_mc_distribution_roughly_uniform(self):
        cfg = GPUConfig()
        counts = [0] * cfg.num_mcs
        for line in range(8000):
            counts[cfg.mc_for_line(line)] += 1
        assert min(counts) > 0.7 * (8000 / cfg.num_mcs)

    def test_deterministic(self):
        cfg = GPUConfig()
        assert cfg.mc_for_line(1234) == cfg.mc_for_line(1234)
