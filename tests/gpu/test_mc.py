"""Tests for the memory-controller node."""


from repro.gpu.config import GPUConfig
from repro.gpu.mc import MemoryController
from repro.noc.flit import Packet, PacketType


class FakeReplyNet:
    """Accepts or rejects offers on command."""

    def __init__(self, accept=True):
        self.accept = accept
        self.sent = []

    def offer(self, node, pkt):
        if self.accept:
            self.sent.append(pkt)
            return True
        return False

    def can_accept(self, node, pkt):
        return self.accept


def make_mc(accept=True, priority=0):
    cfg = GPUConfig()
    net = FakeReplyNet(accept)
    mc = MemoryController(
        0, node=7, config=cfg,
        reply_offer=net.offer,
        reply_can_accept=net.can_accept,
        reply_sizes=(9, 1),
        reply_priority=priority,
    )
    return mc, net


def read_request(line=0, requester=3):
    p = Packet(PacketType.READ_REQUEST, requester, 7, 1, 0, tag=(requester, line))
    return p


def write_request(line=0, requester=3):
    p = Packet(PacketType.WRITE_REQUEST, requester, 7, 9, 0, tag=(requester, line))
    return p


def run(mc, cycles, start=0):
    for t in range(start, start + cycles):
        mc.step(t)
    return start + cycles


class TestReadPath:
    def test_l2_hit_produces_reply_after_latency(self):
        mc, net = make_mc()
        mc.l2.fill(5)
        mc.on_request(read_request(5), 0)
        run(mc, mc.config.l2_latency)
        assert not net.sent
        run(mc, 5, start=mc.config.l2_latency)
        assert len(net.sent) == 1
        assert net.sent[0].ptype == PacketType.READ_REPLY
        assert net.sent[0].size == 9
        assert net.sent[0].dest == 3

    def test_l2_miss_goes_to_dram(self):
        mc, net = make_mc()
        mc.on_request(read_request(5), 0)
        run(mc, 5)
        assert mc.stats.l2_read_misses == 1
        assert mc.dram.pending > 0
        run(mc, 100, start=5)
        assert len(net.sent) == 1

    def test_dram_fill_installs_in_l2(self):
        mc, net = make_mc()
        mc.on_request(read_request(5), 0)
        run(mc, 150)
        assert mc.l2.probe(5)
        # A second read to the same line is now an L2 hit.
        mc.on_request(read_request(5, requester=4), 150)
        run(mc, 50, start=150)
        assert mc.stats.l2_read_hits == 1


class TestWritePath:
    def test_write_acked_short_reply(self):
        mc, net = make_mc()
        mc.on_request(write_request(5), 0)
        run(mc, 60)
        assert len(net.sent) == 1
        assert net.sent[0].ptype == PacketType.WRITE_REPLY
        assert net.sent[0].size == 1

    def test_write_consumes_dram_bandwidth(self):
        mc, net = make_mc()
        mc.on_request(write_request(5), 0)
        run(mc, 5)
        assert mc.dram.pending > 0


class TestStallAccounting:
    def test_stall_counted_when_ni_full(self):
        mc, net = make_mc(accept=False)
        mc.l2.fill(5)
        mc.on_request(read_request(5), 0)
        run(mc, 100)
        assert mc.stats.stall_cycles > 0
        assert len(mc.reply_queue) == 1

    def test_stall_data_time_measures_wait(self):
        mc, net = make_mc(accept=False)
        mc.l2.fill(5)
        mc.on_request(read_request(5), 0)
        run(mc, 100)
        net.accept = True
        mc.step(100)
        assert mc.stats.stall_data_time >= 50

    def test_no_stall_when_accepting(self):
        mc, net = make_mc(accept=True)
        mc.l2.fill(5)
        mc.on_request(read_request(5), 0)
        run(mc, 100)
        assert mc.stats.stall_cycles == 0


class TestBackpressure:
    def test_reply_gate_pauses_request_processing(self):
        mc, net = make_mc(accept=False)
        for line in range(64):
            mc.l2.fill(line)
        for line in range(64):
            mc.on_request(read_request(line, requester=3), 0)
        run(mc, 200)
        # Processing stops once the reply queue hits the gate; the rest of
        # the requests stay queued (propagating backpressure).
        assert len(mc.request_queue) > 0

    def test_release_callback_invoked(self):
        released = []
        cfg = GPUConfig()
        net = FakeReplyNet(True)
        mc = MemoryController(
            0, 7, cfg, net.offer, net.can_accept, (9, 1),
            request_release=released.append,
        )
        mc.l2.fill(5)
        mc.on_request(read_request(5), 0)
        run(mc, 10)
        assert released == [1]  # one short read request released


class TestPriority:
    def test_reply_priority_applied(self):
        mc, net = make_mc(priority=1)
        mc.l2.fill(5)
        mc.on_request(read_request(5), 0)
        run(mc, 60)
        assert net.sent[0].priority == 1


class TestL2MissMerging:
    def _mc(self, merge):
        cfg = GPUConfig(l2_miss_merging=merge)
        net = FakeReplyNet(True)
        return MemoryController(
            0, 7, cfg, net.offer, net.can_accept, (9, 1)
        ), net

    def test_concurrent_misses_merged(self):
        mc, net = self._mc(merge=True)
        mc.on_request(read_request(5, requester=3), 0)
        mc.on_request(read_request(5, requester=4), 0)
        run(mc, 3)
        # Only one DRAM fetch is in flight for line 5.
        assert mc.dram.pending == 1
        run(mc, 200, start=3)
        # Both requesters get replies.
        assert sorted(p.dest for p in net.sent) == [3, 4]

    def test_no_merging_duplicates_fetches(self):
        mc, net = self._mc(merge=False)
        mc.on_request(read_request(5, requester=3), 0)
        mc.on_request(read_request(5, requester=4), 0)
        run(mc, 3)
        assert mc.dram.pending == 2
