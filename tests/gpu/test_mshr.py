"""Tests for the MSHR table."""

import pytest

from repro.gpu.mshr import MSHRTable


class TestAllocation:
    def test_new_miss_returns_true(self):
        t = MSHRTable(4)
        assert t.allocate(0x10, "w0") is True
        assert t.occupancy == 1

    def test_merge_returns_false(self):
        t = MSHRTable(4)
        t.allocate(0x10, "w0")
        assert t.allocate(0x10, "w1") is False
        assert t.occupancy == 1
        assert t.merges == 1

    def test_full_table_returns_none(self):
        t = MSHRTable(1)
        t.allocate(0x10, "w0")
        assert t.allocate(0x20, "w1") is None
        assert t.full_stalls == 1

    def test_merge_cap(self):
        t = MSHRTable(4, max_merged=2)
        t.allocate(0x10, "a")
        t.allocate(0x10, "b")
        assert t.allocate(0x10, "c") is None

    def test_can_handle_predicts_allocate(self):
        t = MSHRTable(1, max_merged=2)
        assert t.can_handle(0x10)
        t.allocate(0x10, "a")
        assert t.can_handle(0x10)       # merge possible
        assert not t.can_handle(0x20)   # table full
        t.allocate(0x10, "b")
        assert not t.can_handle(0x10)   # merge cap reached

    def test_needs_one_entry(self):
        with pytest.raises(ValueError):
            MSHRTable(0)


class TestFill:
    def test_fill_releases_all_waiters(self):
        t = MSHRTable(4)
        t.allocate(0x10, "a")
        t.allocate(0x10, "b")
        assert t.fill(0x10) == ["a", "b"]
        assert t.occupancy == 0

    def test_fill_unknown_raises(self):
        t = MSHRTable(4)
        with pytest.raises(KeyError):
            t.fill(0x99)

    def test_outstanding(self):
        t = MSHRTable(4)
        t.allocate(0x10, "a")
        assert t.outstanding(0x10)
        t.fill(0x10)
        assert not t.outstanding(0x10)

    def test_reallocation_after_fill(self):
        t = MSHRTable(1)
        t.allocate(0x10, "a")
        t.fill(0x10)
        assert t.allocate(0x20, "b") is True
