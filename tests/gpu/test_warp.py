"""Tests for warps and the greedy-then-oldest scheduler."""

import pytest

from repro.gpu.warp import GTOScheduler, LRRScheduler, Warp, make_scheduler


class TestWarp:
    def test_starts_ready(self):
        w = Warp(0)
        assert w.is_ready(0)

    def test_issue_occupies_pipeline(self):
        w = Warp(0)
        w.issue(now=0, pipeline_cycles=3)
        assert not w.is_ready(1)
        assert w.is_ready(3)
        assert w.instructions_issued == 1

    def test_block_and_unblock(self):
        w = Warp(0)
        w.outstanding_loads = 2
        w.block(now=5)
        assert not w.is_ready(10)
        w.unblock_one(12)
        assert not w.is_ready(12)
        w.unblock_one(20)
        assert w.is_ready(20)
        assert w.blocked_cycles == 15

    def test_spurious_return_raises(self):
        w = Warp(0)
        with pytest.raises(RuntimeError):
            w.unblock_one(0)


class TestGTO:
    def test_greedy_sticks_with_current(self):
        warps = [Warp(i) for i in range(4)]
        sched = GTOScheduler(warps)
        first = sched.pick(0)
        first.issue(0, 1)
        assert sched.pick(1) is first  # still ready -> greedy

    def test_falls_back_to_oldest(self):
        warps = [Warp(i) for i in range(4)]
        sched = GTOScheduler(warps)
        w = sched.pick(0)
        assert w is warps[0]
        w.outstanding_loads = 1
        w.block(0)
        nxt = sched.pick(1)
        assert nxt is warps[1]  # oldest ready

    def test_returns_to_unblocked_older_warp_only_after_stall(self):
        warps = [Warp(i) for i in range(2)]
        sched = GTOScheduler(warps)
        w0 = sched.pick(0)
        w0.outstanding_loads = 1
        w0.block(0)
        w1 = sched.pick(1)
        assert w1 is warps[1]
        w0.unblock_one(2)
        # Greedy: stays on w1 while it is ready.
        w1.issue(2, 1)
        assert sched.pick(3) is w1

    def test_all_blocked_returns_none(self):
        warps = [Warp(i) for i in range(2)]
        sched = GTOScheduler(warps)
        for w in warps:
            w.outstanding_loads = 1
            w.block(0)
        assert sched.pick(5) is None

    def test_on_stall_releases_greed(self):
        warps = [Warp(i) for i in range(2)]
        sched = GTOScheduler(warps)
        sched.pick(0)
        sched.on_stall()
        assert sched.current is None

    def test_empty_warp_list_rejected(self):
        with pytest.raises(ValueError):
            GTOScheduler([])


class TestLRR:
    def test_round_robin_order(self):
        warps = [Warp(i) for i in range(3)]
        sched = LRRScheduler(warps)
        picks = [sched.pick(0).wid for _ in range(3)]
        assert picks == [0, 1, 2]


class TestFactory:
    def test_gto(self):
        assert isinstance(make_scheduler("gto", [Warp(0)]), GTOScheduler)

    def test_lrr(self):
        assert isinstance(make_scheduler("lrr", [Warp(0)]), LRRScheduler)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_scheduler("two-level", [Warp(0)])
