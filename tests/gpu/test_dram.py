"""Tests for the GDDR5 channel: timing invariants, FR-FCFS, bandwidth."""

import random

import pytest

from repro.gpu.config import GDDR5TimingParams
from repro.gpu.dram import DRAMChannel, DRAMRequest


def drain(ch, cycles):
    done = []
    for _ in range(cycles):
        done.extend(ch.step_mem_cycle())
    return done


class TestBasics:
    def test_single_read_latency(self):
        """Cold access: ACT (tRCD) + CAS (tCL) + burst."""
        p = GDDR5TimingParams()
        ch = DRAMChannel(p)
        req = DRAMRequest(0, False)
        ch.enqueue(req)
        done = drain(ch, 200)
        assert done == [req]
        expected = p.tRCD + 1 + p.tCL + 8  # ACT@0, CAS@tRCD, data burst
        assert req.completed_at == pytest.approx(expected, abs=2)

    def test_row_hit_faster_than_conflict(self):
        p = GDDR5TimingParams()
        # Same bank, same row -> hit; same bank, different row -> conflict.
        ch = DRAMChannel(p)
        a = DRAMRequest(0, False)
        b = DRAMRequest(8 * 16, False)  # same bank 0, next row
        c = DRAMRequest(0, False)       # row 0 again (conflict after b)
        for r in (a, b, c):
            ch.enqueue(r)
        drain(ch, 500)
        gap_conflict = b.completed_at - a.completed_at
        assert gap_conflict > 8  # conflict costs precharge + activate

    def test_queue_depth_respected(self):
        ch = DRAMChannel(GDDR5TimingParams(), queue_depth=2)
        assert ch.enqueue(DRAMRequest(0, False))
        assert ch.enqueue(DRAMRequest(1, False))
        assert not ch.enqueue(DRAMRequest(2, False))
        assert ch.full

    def test_all_requests_complete(self):
        ch = DRAMChannel(GDDR5TimingParams(), queue_depth=64)
        rng = random.Random(7)
        reqs = [DRAMRequest(rng.randrange(10000), False) for _ in range(64)]
        for r in reqs:
            ch.enqueue(r)
        done = drain(ch, 5000)
        assert set(id(r) for r in done) == set(id(r) for r in reqs)
        assert ch.pending == 0


class TestBandwidth:
    def _throughput(self, addr_fn, cycles=20000):
        ch = DRAMChannel(GDDR5TimingParams(), queue_depth=32)
        rng = random.Random(1)
        state = {"cursor": 0}
        served = 0
        for _ in range(cycles):
            while not ch.full:
                ch.enqueue(DRAMRequest(addr_fn(rng, state), False))
            served += len(ch.step_mem_cycle())
        return served / cycles

    def test_streaming_saturates_bus(self):
        """Sequential access reaches the data-bus limit (1 line / 8 cycles),
        i.e. the 28 GB/s of the paper's per-MC calculation."""
        def seq(rng, st):
            st["cursor"] += 1
            return st["cursor"]

        tput = self._throughput(seq)
        assert tput == pytest.approx(1 / 8, rel=0.05)

    def test_random_also_bus_bound_with_bank_parallelism(self):
        tput = self._throughput(lambda rng, st: rng.randrange(1 << 20))
        assert tput == pytest.approx(1 / 8, rel=0.15)

    def test_single_bank_conflicts_limit_bandwidth(self):
        """Strictly alternating rows on one bank (queue depth 1, so FR-FCFS
        cannot batch row hits): every access is a conflict, tRC-limited."""
        ch = DRAMChannel(GDDR5TimingParams(), queue_depth=1)
        cursor = 0
        served = 0
        cycles = 10000
        for _ in range(cycles):
            if not ch.full:
                cursor += 1
                ch.enqueue(DRAMRequest((cursor % 2) * 8 * 16, False))
            served += len(ch.step_mem_cycle())
        assert served / cycles < 1 / 16  # far below the bus limit

    def test_frfcfs_batches_row_hits_at_bus_rate(self):
        """With a deep queue, FR-FCFS keeps serving the open row and stays
        near the bus limit even with a conflicting row mixed in."""
        def mixed(rng, st):
            st["cursor"] += 1
            return (st["cursor"] % 2) * 8 * 16 * 8

        tput = self._throughput(mixed, cycles=10000)
        assert tput > 1 / 12


class TestFRFCFS:
    def test_row_hits_served_first(self):
        p = GDDR5TimingParams()
        ch = DRAMChannel(p)
        first = DRAMRequest(0, False)          # opens bank0 row0
        conflict = DRAMRequest(8 * 16, False)  # bank0 row1 (older)
        hit = DRAMRequest(8, False)            # bank1... make it bank0 row0:
        hit = DRAMRequest(0 + 8 * 1, False)    # bank1 actually
        # Use explicit same-bank addresses: bank = line % 8.
        conflict = DRAMRequest(0 + 8 * 16, False)   # bank0, row 1
        hit = DRAMRequest(0 + 8 * 2, False)         # bank0, row 0 (col 2)
        ch.enqueue(first)
        drain(ch, p.tRCD + p.tCL + 10)  # row 0 open now
        ch.enqueue(conflict)
        ch.enqueue(hit)
        drain(ch, 500)
        assert hit.completed_at < conflict.completed_at

    def test_row_hit_rate_tracked(self):
        ch = DRAMChannel(GDDR5TimingParams())
        for i in range(8):
            ch.enqueue(DRAMRequest(8 * i, False))  # same bank? no: bank=(8i)%8=0
        drain(ch, 2000)
        total = ch.row_hits + ch.row_misses + ch.row_conflicts
        assert total > 0
        assert 0.0 <= ch.row_hit_rate <= 1.0


class TestTimingValidation:
    def test_invalid_timing_rejected(self):
        with pytest.raises(ValueError):
            GDDR5TimingParams(tRP=0).validate()

    def test_inconsistent_trc_rejected(self):
        with pytest.raises(ValueError):
            GDDR5TimingParams(tRAS=35, tRP=12, tRC=40).validate()

    def test_burst_length(self):
        from repro.gpu.dram import GDDR5Timing

        t = GDDR5Timing(GDDR5TimingParams(), line_bytes=128)
        assert t.burst == 8  # 128B / 16B-per-mem-cycle

    def test_bank_row_mapping(self):
        from repro.gpu.dram import GDDR5Timing

        t = GDDR5Timing(GDDR5TimingParams())
        assert t.bank_of(0) == 0
        assert t.bank_of(9) == 1
        assert t.row_of(0) == t.row_of(8 * 15)      # same row, last column
        assert t.row_of(0) != t.row_of(8 * 16)      # next row


class TestRefresh:
    def test_disabled_by_default(self):
        ch = DRAMChannel(GDDR5TimingParams())
        drain(ch, 5000)
        assert ch.refreshes == 0

    def test_refresh_fires_periodically(self):
        p = GDDR5TimingParams(tREFI=500, tRFC=88)
        ch = DRAMChannel(p)
        drain(ch, 2600)
        assert ch.refreshes == 5  # at 500, 1000, 1500, 2000, 2500

    def test_refresh_closes_rows_and_blocks(self):
        p = GDDR5TimingParams(tREFI=100, tRFC=88)
        ch = DRAMChannel(p)
        ch.enqueue(DRAMRequest(0, False))
        drain(ch, 60)  # row 0 open now
        assert ch.banks[0].open_row is not None
        drain(ch, 60)  # crosses the 100-cycle refresh point
        assert ch.banks[0].open_row is None

    def test_refresh_costs_bandwidth(self):
        def tput(params):
            ch = DRAMChannel(params, queue_depth=32)
            cursor, served = 0, 0
            for _ in range(20000):
                while not ch.full:
                    cursor += 1
                    ch.enqueue(DRAMRequest(cursor, False))
                served += len(ch.step_mem_cycle())
            return served

        base = tput(GDDR5TimingParams())
        refreshed = tput(GDDR5TimingParams(tREFI=1000, tRFC=88))
        assert refreshed < base
        assert refreshed > 0.85 * base  # ~tRFC/tREFI = 8.8% worst case
