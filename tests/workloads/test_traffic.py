"""Tests for the synthetic NoC-only traffic generators."""

import pytest

from repro.noc import Network, NetworkConfig
from repro.noc.flit import PacketType
from repro.workloads.traffic import ReplyTrafficPattern, SyntheticTrafficGenerator


class TestReplyTrafficPattern:
    def test_packets_target_cc_nodes(self):
        pat = ReplyTrafficPattern([5], [0, 1, 2], seed=1)
        for _ in range(50):
            p = pat.make_packet(5, 0)
            assert p.dest in (0, 1, 2)
            assert p.src == 5

    def test_read_fraction(self):
        pat = ReplyTrafficPattern([5], [0], read_reply_fraction=1.0)
        assert all(
            pat.make_packet(5, 0).ptype == PacketType.READ_REPLY
            for _ in range(20)
        )

    def test_sizes(self):
        pat = ReplyTrafficPattern([5], [0], read_reply_fraction=1.0)
        assert pat.make_packet(5, 0).size == 9
        pat2 = ReplyTrafficPattern([5], [0], read_reply_fraction=0.0)
        assert pat2.make_packet(5, 0).size == 1

    def test_requires_nodes(self):
        with pytest.raises(ValueError):
            ReplyTrafficPattern([], [0])

    def test_priority_stamped(self):
        pat = ReplyTrafficPattern([5], [0])
        assert pat.make_packet(5, 0, priority=1).priority == 1


class TestSyntheticGenerator:
    def test_accounting(self):
        net = Network(NetworkConfig(width=4, height=4))
        pat = ReplyTrafficPattern([5], [r for r in range(16) if r != 5], seed=2)
        gen = SyntheticTrafficGenerator(net, pat, rate=0.05, seed=3)
        gen.run(400)
        net.drain(20000)
        assert gen.offered > 0
        assert net.stats.packets_delivered == gen.offered

    def test_backlog_models_mc_stall(self):
        net = Network(NetworkConfig(width=4, height=4))
        pat = ReplyTrafficPattern([5], [r for r in range(16) if r != 5], seed=2)
        gen = SyntheticTrafficGenerator(net, pat, rate=0.9, seed=3)
        gen.run(300)
        assert gen.stall_cycles > 0
        assert gen.backlog_packets > 0

    def test_zero_rate(self):
        net = Network(NetworkConfig(width=4, height=4))
        pat = ReplyTrafficPattern([5], [0], seed=2)
        gen = SyntheticTrafficGenerator(net, pat, rate=0.0)
        gen.run(100)
        assert gen.offered == 0

    def test_negative_rate_rejected(self):
        net = Network(NetworkConfig(width=4, height=4))
        pat = ReplyTrafficPattern([5], [0])
        with pytest.raises(ValueError):
            SyntheticTrafficGenerator(net, pat, rate=-0.1)
