"""Tests for workload profiles and instruction streams."""

import pytest

from repro.workloads.profile import WorkloadProfile


def profile(**kw):
    base = dict(
        name="t",
        sensitivity="high",
        mem_rate=0.5,
        write_fraction=0.2,
        coalesce_lines=2,
        reuse_prob=0.3,
        working_set_lines=4096,
    )
    base.update(kw)
    return WorkloadProfile(**base)


class TestValidation:
    def test_sensitivity_values(self):
        with pytest.raises(ValueError):
            profile(sensitivity="extreme")

    def test_mem_rate_range(self):
        with pytest.raises(ValueError):
            profile(mem_rate=1.5)

    def test_write_fraction_range(self):
        with pytest.raises(ValueError):
            profile(write_fraction=-0.1)

    def test_coalesce_minimum(self):
        with pytest.raises(ValueError):
            profile(coalesce_lines=0)

    def test_reuse_range(self):
        with pytest.raises(ValueError):
            profile(reuse_prob=1.0)

    def test_working_set_minimum(self):
        with pytest.raises(ValueError):
            profile(working_set_lines=4)


class TestStream:
    def test_deterministic(self):
        p = profile()
        s1 = p.make_stream(0, 0, seed=42)
        s2 = p.make_stream(0, 0, seed=42)
        assert [s1.next() for _ in range(50)] == [s2.next() for _ in range(50)]

    def test_different_warps_differ(self):
        p = profile()
        s1 = p.make_stream(0, 0, seed=42)
        s2 = p.make_stream(0, 1, seed=42)
        assert [s1.next() for _ in range(50)] != [s2.next() for _ in range(50)]

    def test_mem_rate_respected(self):
        p = profile(mem_rate=0.25)
        s = p.make_stream(0, 0, seed=1)
        instrs = [s.next() for _ in range(4000)]
        mem = sum(1 for k, _ in instrs if k != "c")
        assert mem / len(instrs) == pytest.approx(0.25, abs=0.03)

    def test_write_fraction_respected(self):
        p = profile(mem_rate=1.0, write_fraction=0.4)
        s = p.make_stream(0, 0, seed=1)
        instrs = [s.next() for _ in range(4000)]
        writes = sum(1 for k, _ in instrs if k == "st")
        assert writes / len(instrs) == pytest.approx(0.4, abs=0.03)

    def test_coalesce_lines_count(self):
        p = profile(mem_rate=1.0, coalesce_lines=3)
        s = p.make_stream(0, 0, seed=1)
        for _ in range(100):
            kind, lines = s.next()
            assert len(lines) == 3

    def test_addresses_within_working_set(self):
        p = profile(mem_rate=1.0, working_set_lines=256)
        s = p.make_stream(0, 0, seed=1)
        for _ in range(500):
            _, lines = s.next()
            assert all(0 <= l < 256 for l in lines)

    def test_reuse_produces_repeats(self):
        hot = profile(mem_rate=1.0, reuse_prob=0.8, coalesce_lines=1)
        cold = profile(mem_rate=1.0, reuse_prob=0.0, coalesce_lines=1)
        def distinct(p):
            s = p.make_stream(0, 0, seed=5)
            seen = [s.next()[1][0] for _ in range(500)]
            return len(set(seen))
        assert distinct(hot) < distinct(cold)

    def test_streaming_locality(self):
        p = profile(mem_rate=1.0, reuse_prob=0.0, stream_prob=1.0, coalesce_lines=1)
        s = p.make_stream(0, 0, seed=1)
        lines = [s.next()[1][0] for _ in range(50)]
        deltas = [(b - a) % 4096 for a, b in zip(lines, lines[1:])]
        assert all(d == 1 for d in deltas)

    def test_expected_l2_hit_rate(self):
        p = profile(working_set_lines=16384)
        assert p.expected_l2_hit_rate(8192) == pytest.approx(0.5)
        assert profile(working_set_lines=1024).expected_l2_hit_rate(8192) == 1.0
