"""Tests for the 30-benchmark suite."""

import pytest

from repro.workloads.suite import (
    PAPER_FIG15_BENCHMARKS,
    PAPER_FIG6_BENCHMARKS,
    PAPER_FIG9_BENCHMARKS,
    SUITE,
    benchmark,
    benchmark_names,
    by_sensitivity,
)


class TestSuiteComposition:
    def test_thirty_benchmarks(self):
        assert len(SUITE) == 30

    def test_paper_sensitivity_split(self):
        """Paper Sec. 6.2: 9 highly sensitive, 11 medium, 10 low."""
        split = by_sensitivity()
        assert len(split["high"]) == 9
        assert len(split["medium"]) == 11
        assert len(split["low"]) == 10

    def test_paper_named_benchmarks_present(self):
        for name in ["bfs", "mummerGPU", "kmeans", "pathfinder", "hotspot",
                     "srad", "b+tree", "blackScholes"]:
            assert name in SUITE

    def test_figure_subsets_exist(self):
        for lst in (PAPER_FIG6_BENCHMARKS, PAPER_FIG9_BENCHMARKS,
                    PAPER_FIG15_BENCHMARKS):
            for name in lst:
                assert name in SUITE

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            benchmark("doom3")

    def test_benchmark_names_filter(self):
        assert set(benchmark_names("high")) == set(by_sensitivity()["high"])
        assert len(benchmark_names()) == 30


class TestCalibration:
    def test_high_sensitivity_memory_intensive(self):
        """High-sensitivity demand must exceed medium, which exceeds low
        (miss traffic per instruction, the NoC-load proxy)."""
        def demand(p):
            return p.mem_rate * (1 - p.reuse_prob) * p.coalesce_lines

        split = by_sensitivity()
        high = min(demand(SUITE[n]) for n in split["high"])
        med = max(demand(SUITE[n]) for n in split["medium"])
        low = max(demand(SUITE[n]) for n in split["low"])
        assert high > med > low

    def test_reads_dominate(self):
        """Fig. 5: read transactions outnumber writes in most benchmarks."""
        read_heavy = sum(1 for p in SUITE.values() if p.write_fraction < 0.5)
        assert read_heavy == 30

    def test_high_working_sets_exceed_l2(self):
        total_l2_lines = 8 * 128 * 1024 // 128
        for name in by_sensitivity()["high"]:
            assert SUITE[name].working_set_lines > total_l2_lines
