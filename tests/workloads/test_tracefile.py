"""Tests for trace-driven workloads."""

import io

import pytest

from repro.workloads.suite import benchmark
from repro.workloads.tracefile import (
    load_trace,
    parse_trace,
    record_trace,
)

SAMPLE = """\
# comment
0 0 c
0 0 ld 16 17
0 0 st 32
1 0 c
"""


class TestParse:
    def test_parses_sample(self):
        wl = parse_trace(io.StringIO(SAMPLE), "t")
        assert wl.warps_recorded == 2
        assert wl.instructions_recorded == 4
        assert wl.working_set_lines == 33

    def test_stream_replay_order(self):
        wl = parse_trace(io.StringIO(SAMPLE), "t")
        s = wl.make_stream(0, 0, seed=0)
        assert s.next() == ("c", None)
        assert s.next() == ("ld", [16, 17])
        assert s.next() == ("st", [32])
        assert s.next() == ("c", None)  # cyclic restart

    def test_hex_addresses(self):
        wl = parse_trace(io.StringIO("0 0 ld 0x10\n"), "t")
        assert wl.make_stream(0, 0, 0).next() == ("ld", [16])

    @pytest.mark.parametrize(
        "bad",
        ["0 0\n", "x 0 c\n", "0 0 ld\n", "0 0 ld zz\n", "0 0 jmp 4\n"],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_trace(io.StringIO(bad))

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            parse_trace(io.StringIO("# nothing\n"))


class TestFallbacks:
    def test_unrecorded_warp_borrows_core_stream(self):
        wl = parse_trace(io.StringIO("0 0 ld 5\n"), "t")
        s = wl.make_stream(0, 3, 0)  # warp 3 not recorded
        assert s.next() == ("ld", [5])

    def test_unrecorded_core_idles(self):
        wl = parse_trace(io.StringIO("0 0 ld 5\n"), "t")
        s = wl.make_stream(7, 0, 0)
        assert s.next() == ("c", None)


class TestRecordReplay:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "bfs.trace")
        record_trace(benchmark("bfs"), path, cores=2, warps_per_core=2,
                     instructions_per_warp=50)
        wl = load_trace(path, "bfs-trace")
        assert wl.warps_recorded == 4
        assert wl.instructions_recorded == 200
        # Replay matches the original stream exactly.
        orig = benchmark("bfs").make_stream(0, 0, seed=1)
        replay = wl.make_stream(0, 0, seed=99)  # seed must not matter
        for _ in range(50):
            assert replay.next() == orig.next()

    def test_trace_drives_full_system(self, tmp_path):
        from repro.core.schemes import scheme
        from repro.gpu.config import GPUConfig
        from repro.gpu.system import GPGPUSystem

        path = str(tmp_path / "t.trace")
        record_trace(benchmark("hotspot"), path, cores=12, warps_per_core=4,
                     instructions_per_warp=60)
        wl = load_trace(path)
        cfg = GPUConfig.scaled(4, warps_per_core=4)
        system = GPGPUSystem(cfg, scheme("xy-baseline"), wl, seed=1)
        res = system.simulate(cycles=200, warmup=50)
        assert res.instructions > 0
        assert res.reply_traffic_share > 0
