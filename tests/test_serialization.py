"""Round-trip tests for JSON serialization."""

import pytest

from repro.core.ari import ARIConfig
from repro.core.schemes import Scheme, scheme
from repro.gpu.config import GDDR5TimingParams, GPUConfig
from repro.gpu.system import SimulationResult
from repro.noc.ni import NIKind
from repro.serialization import (
    dump_gpu_config,
    dump_result,
    dump_scheme,
    gpu_config_from_dict,
    gpu_config_to_dict,
    load_gpu_config,
    load_result,
    load_scheme,
    result_from_dict,
    result_to_dict,
    scheme_from_dict,
    scheme_to_dict,
)


class TestGPUConfig:
    def test_roundtrip_default(self):
        cfg = GPUConfig()
        assert gpu_config_from_dict(gpu_config_to_dict(cfg)) == cfg

    def test_roundtrip_customized(self):
        cfg = GPUConfig.scaled(
            4, warps_per_core=8, dram=GDDR5TimingParams(tCL=14),
            mc_placement="edge",
        )
        back = gpu_config_from_dict(gpu_config_to_dict(cfg))
        assert back == cfg
        assert back.dram.tCL == 14

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "gpu.json")
        cfg = GPUConfig.scaled(8)
        dump_gpu_config(cfg, path)
        assert load_gpu_config(path) == cfg

    def test_invalid_config_rejected_on_load(self, tmp_path):
        path = str(tmp_path / "gpu.json")
        d = gpu_config_to_dict(GPUConfig())
        d["warp_size"] = 30  # not divisible by simd_width
        import json

        with open(path, "w") as fh:
            json.dump(d, fh)
        with pytest.raises(ValueError):
            load_gpu_config(path)


class TestScheme:
    @pytest.mark.parametrize(
        "name", ["xy-baseline", "ada-ari", "ada-multiport", "da2mesh-ari",
                 "xy-naive-baseline"]
    )
    def test_roundtrip_named(self, name):
        s = scheme(name)
        assert scheme_from_dict(scheme_to_dict(s)) == s

    def test_roundtrip_custom(self):
        s = Scheme(
            "custom", routing="adaptive",
            ari=ARIConfig(supply=True, consume=False, priority_levels=3),
            force_ni_kind=NIKind.BASELINE_NARROW,
        )
        back = scheme_from_dict(scheme_to_dict(s))
        assert back == s
        assert back.force_ni_kind == NIKind.BASELINE_NARROW

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "scheme.json")
        dump_scheme(scheme("ada-ari"), path)
        assert load_scheme(path) == scheme("ada-ari")


class TestResult:
    def _result(self):
        return SimulationResult(
            benchmark="bfs", scheme="ada-ari", cycles=100, core_cycles=2800,
            instructions=3000, ipc=1.07, mc_stall_cycles=5,
            request_latency=100.0, reply_latency=40.0,
            reply_traffic_share=0.7, mc_stall_time=55, replies_sent=10,
            mc_stall_per_reply=5.5, traffic_mix={"read_reply": 0.6},
            extras={"energy_per_instr": 12.0},
        )

    def test_roundtrip(self):
        r = self._result()
        assert result_from_dict(result_to_dict(r)) == r

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "result.json")
        r = self._result()
        dump_result(r, path)
        assert load_result(path) == r
