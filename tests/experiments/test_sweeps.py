"""Tests for the cartesian sweep utility."""

import pytest

from repro.experiments.runner import RunSpec
from repro.experiments.sweeps import (
    best_by,
    cartesian_sweep,
    records_to_csv,
    write_csv,
)

BASE = RunSpec("binomialOptions", "xy-baseline", cycles=120, warmup=30,
               mesh=4, warps_per_core=4)


class TestCartesianSweep:
    # cartesian_sweep is a deprecated shim over repro.experiments.api.sweep;
    # every call warns.  The new API is covered in test_api.py.

    def test_expands_all_combinations(self):
        with pytest.warns(DeprecationWarning, match="cartesian_sweep"):
            records = cartesian_sweep(
                BASE,
                axes={"num_vcs": [2, 4], "seed": [1, 2]},
                metrics=("ipc",),
                use_cache=False,
            )
        assert len(records) == 4
        combos = {(r["num_vcs"], r["seed"]) for r in records}
        assert combos == {(2, 1), (2, 2), (4, 1), (4, 2)}
        assert all(r["ipc"] > 0 for r in records)
        assert all(r["benchmark"] == "binomialOptions" for r in records)

    def test_rejects_unknown_axis(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="unknown RunSpec field"):
                cartesian_sweep(BASE, axes={"clock_speed": [1]})

    def test_progress_callback(self):
        seen = []
        with pytest.warns(DeprecationWarning):
            cartesian_sweep(
                BASE,
                axes={"seed": [1, 2]},
                metrics=("ipc",),
                use_cache=False,
                progress=lambda i, n, spec: seen.append((i, n)),
            )
        assert seen == [(0, 2), (1, 2)]


class TestExport:
    def _records(self):
        return [
            {"seed": 1, "ipc": 2.0},
            {"seed": 2, "ipc": 3.0, "extra": "x"},
        ]

    def test_csv_union_of_columns(self):
        csv = records_to_csv(self._records())
        lines = csv.splitlines()
        assert lines[0] == "seed,ipc,extra"
        assert lines[1].startswith("1,2.0")
        assert lines[2].endswith("x")

    def test_csv_empty(self):
        assert records_to_csv([]) == ""

    def test_write_csv(self, tmp_path):
        path = str(tmp_path / "out.csv")
        write_csv(self._records(), path)
        assert open(path).read().startswith("seed,ipc")


class TestBestBy:
    def test_max(self):
        recs = [{"ipc": 1.0}, {"ipc": 3.0}, {"ipc": 2.0}]
        assert best_by(recs)["ipc"] == 3.0

    def test_min(self):
        recs = [{"lat": 9.0}, {"lat": 4.0}]
        assert best_by(recs, "lat", maximize=False)["lat"] == 4.0

    def test_empty(self):
        assert best_by([]) is None

    def test_skips_records_missing_metric(self):
        recs = [{"seed": 1}, {"seed": 2, "ipc": 2.0}, {"seed": 3, "ipc": 1.0}]
        assert best_by(recs)["seed"] == 2
        assert best_by(recs, maximize=False)["seed"] == 3

    def test_none_when_no_record_carries_metric(self):
        recs = [{"seed": 1}, {"seed": 2}]
        assert best_by(recs, "ipc") is None
