"""Tests for config/host fingerprints and the axis differ."""

from repro.experiments.fingerprint import (
    ABSENT,
    config_fingerprint,
    diff_config,
    flatten_config,
    spec_fingerprint,
)
from repro.experiments.runner import RunSpec


class TestFlattenConfig:
    def test_nested_dicts_and_lists(self):
        flat = flatten_config({"a": {"b": 1}, "c": [2, {"d": 3}]})
        assert flat == {"a.b": 1, "c[0]": 2, "c[1].d": 3}

    def test_non_native_leaves_stringified(self):
        flat = flatten_config({"x": {1, 2, 3}})
        assert isinstance(flat["x"], str)

    def test_scalars_and_none_pass_through(self):
        flat = flatten_config({"a": None, "b": True, "c": 1.5})
        assert flat == {"a": None, "b": True, "c": 1.5}


class TestFingerprint:
    def test_stable_across_key_order(self):
        a = config_fingerprint({"x": 1, "y": {"z": 2}})
        b = config_fingerprint({"y": {"z": 2}, "x": 1})
        assert a == b
        assert len(a) == 12

    def test_sensitive_to_values(self):
        assert config_fingerprint({"x": 1}) != config_fingerprint({"x": 2})

    def test_spec_fingerprint_tracks_fields(self):
        base = RunSpec("bfs", "ada-ari")
        assert spec_fingerprint(base) == spec_fingerprint(
            RunSpec("bfs", "ada-ari"))
        assert spec_fingerprint(base) != spec_fingerprint(
            RunSpec("bfs", "ada-ari", mesh=4))


class TestDiffConfig:
    def test_identical_is_empty(self):
        assert diff_config({"a": 1}, {"a": 1}) == {}

    def test_changed_axis_named(self):
        assert diff_config(
            {"config": {"mesh": 6}}, {"config": {"mesh": 8}}
        ) == {"config.mesh": (6, 8)}

    def test_one_sided_axes_report_absent(self):
        diff = diff_config({"a": 1}, {"b": 2})
        assert diff == {"a": (1, ABSENT), "b": (ABSENT, 2)}

    def test_none_sides_tolerated(self):
        assert diff_config(None, None) == {}
        assert diff_config(None, {"a": 1}) == {"a": (ABSENT, 1)}
