"""Tests for the public experiments API (run / run_many / sweep / grid)
and the deprecated wrappers that sit on top of it."""

import dataclasses

import pytest

from repro.experiments import api
from repro.experiments.runner import RunSpec
from repro.experiments.store import ResultStore

BASE = RunSpec(
    "binomialOptions", "xy-baseline", cycles=80, warmup=20, mesh=4,
    warps_per_core=4,
)


class TestRun:
    def test_caches_into_store(self, tmp_path):
        store = ResultStore(str(tmp_path / "s"))
        r1 = api.run(BASE, store=store)
        assert BASE.key() in store
        r2 = api.run(BASE, store=store)
        assert dataclasses.asdict(r1) == dataclasses.asdict(r2)

    def test_use_cache_false_skips_store(self, tmp_path):
        store = ResultStore(str(tmp_path / "s"))
        r = api.run(BASE, store=store, use_cache=False)
        assert r.instructions > 0
        assert len(store) == 0

    def test_default_store_used(self):
        from repro.experiments.store import default_store

        api.run(BASE)
        assert BASE.key() in default_store()

    def test_extras_carry_host_profile(self, tmp_path):
        r = api.run(BASE, store=ResultStore(str(tmp_path / "s")))
        assert "energy_per_instr" in r.extras
        assert r.extras["sim_cycles_per_sec"] > 0

    def test_telemetry_bypasses_cache(self, tmp_path):
        store = ResultStore(str(tmp_path / "s"))
        r = api.run(BASE, store=store, telemetry=True, interval=20)
        assert r.instructions > 0
        assert len(store) == 0


class TestRunLive:
    def test_returns_result_collector_system(self):
        live = api.run_live(BASE, interval=20)
        assert live.result.instructions > 0
        assert live.collector.samples_taken > 0
        assert live.system.mc_nodes
        assert len(live.collector.memory.samples) > 0

    def test_accepts_existing_collector(self):
        from repro.telemetry import MemorySink, TelemetryCollector

        collector = TelemetryCollector(interval=20, sinks=[MemorySink()])
        live = api.run_live(BASE, collector=collector)
        assert live.collector is collector


class TestSweep:
    def test_rejects_unknown_axis(self):
        with pytest.raises(ValueError, match="unknown RunSpec field"):
            api.sweep(BASE, axes={"clock_speed": [1]})

    def test_expands_all_combinations(self, tmp_path):
        records = api.sweep(
            BASE,
            axes={"num_vcs": [2, 4], "seed": [1, 2]},
            metrics=("ipc",),
            store=ResultStore(str(tmp_path / "s")),
        )
        assert len(records) == 4
        combos = {(r["num_vcs"], r["seed"]) for r in records}
        assert combos == {(2, 1), (2, 2), (4, 1), (4, 2)}
        assert all(r["ipc"] > 0 for r in records)
        assert all(r["benchmark"] == "binomialOptions" for r in records)

    def test_workers_do_not_change_records(self, tmp_path):
        axes = {"seed": [1, 2, 3, 4], "num_vcs": [2, 4]}
        serial = api.sweep(
            BASE, axes, workers=1, store=ResultStore(str(tmp_path / "a"))
        )
        parallel = api.sweep(
            BASE, axes, workers=4, store=ResultStore(str(tmp_path / "b"))
        )
        assert serial == parallel

    def test_progress_callback(self, tmp_path):
        seen = []
        api.sweep(
            BASE,
            axes={"seed": [1, 2]},
            metrics=("ipc",),
            store=ResultStore(str(tmp_path / "s")),
            progress=lambda done, total, spec, source: seen.append(
                (done, total, source)
            ),
        )
        assert seen == [(1, 2, "run"), (2, 2, "run")]


class TestGrid:
    def test_shape_and_content(self, tmp_path):
        out = api.grid(
            ["binomialOptions"],
            ["xy-baseline", "ada-ari"],
            store=ResultStore(str(tmp_path / "s")),
            cycles=80, warmup=20, mesh=4, warps_per_core=4,
        )
        assert set(out) == {"binomialOptions"}
        assert set(out["binomialOptions"]) == {"xy-baseline", "ada-ari"}
        assert out["binomialOptions"]["ada-ari"].ipc > 0


class TestDeprecatedWrappers:
    def test_run_system_warns_and_delegates(self, tmp_path):
        from repro.experiments.runner import run_system

        with pytest.warns(DeprecationWarning, match="run_system"):
            r = run_system(BASE)
        assert r.instructions > 0

    def test_run_with_telemetry_warns_and_returns_triple(self):
        from repro.experiments.runner import run_with_telemetry

        with pytest.warns(DeprecationWarning, match="run_with_telemetry"):
            result, collector, system = run_with_telemetry(BASE, interval=20)
        assert result.instructions > 0
        assert collector.samples_taken > 0
        assert system.mc_nodes

    def test_runner_sweep_warns_and_returns_grid(self):
        from repro.experiments.runner import sweep as runner_sweep

        with pytest.warns(DeprecationWarning, match="runner.sweep"):
            out = runner_sweep(
                ["binomialOptions"], ["xy-baseline"],
                cycles=80, warmup=20, mesh=4, warps_per_core=4,
            )
        assert out["binomialOptions"]["xy-baseline"].ipc > 0

    def test_cartesian_sweep_warns_and_keeps_progress_signature(self):
        from repro.experiments.sweeps import cartesian_sweep

        seen = []
        with pytest.warns(DeprecationWarning, match="cartesian_sweep"):
            records = cartesian_sweep(
                BASE,
                axes={"seed": [1, 2]},
                metrics=("ipc",),
                use_cache=False,
                progress=lambda i, n, spec: seen.append((i, n)),
            )
        assert len(records) == 2
        assert seen == [(0, 2), (1, 2)]


class TestCheckInvariants:
    def test_resolve_mode_explicit_wins(self, monkeypatch):
        from repro.experiments.executor import resolve_invariant_mode

        assert resolve_invariant_mode(None) is None
        assert resolve_invariant_mode(True) == "raise"
        assert resolve_invariant_mode("raise") == "raise"
        assert resolve_invariant_mode("collect") == "collect"
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        assert resolve_invariant_mode(False) is None  # explicit off beats env
        assert resolve_invariant_mode(None) == "raise"
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "collect")
        assert resolve_invariant_mode(None) == "collect"
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "nonsense")
        assert resolve_invariant_mode(None) is None
        with pytest.raises(ValueError):
            resolve_invariant_mode("sometimes")

    def test_audited_run_records_zero_violations(self, tmp_path):
        r = api.run(
            BASE,
            store=ResultStore(str(tmp_path / "s")),
            check_invariants=True,
        )
        assert r.extras["invariant_violations"] == 0.0

    def test_raise_mode_bypasses_cache(self, tmp_path):
        store = ResultStore(str(tmp_path / "s"))
        poisoned = dataclasses.asdict(api.run(BASE, store=store))
        poisoned["ipc"] = -1.0
        store.put(BASE.key(), poisoned)
        # A plain cached run happily returns the poisoned record...
        assert api.run(BASE, store=store).ipc == -1.0
        # ...but a raise-mode run re-simulates under audit.
        r = api.run(BASE, store=store, check_invariants="raise")
        assert r.ipc > 0
        assert r.extras["invariant_violations"] == 0.0

    def test_collect_mode_uses_cache(self, tmp_path):
        store = ResultStore(str(tmp_path / "s"))
        first = api.run(BASE, store=store, check_invariants="collect")
        assert first.extras["invariant_violations"] == 0.0
        again = api.run(BASE, store=store, check_invariants="collect")
        assert dataclasses.asdict(first) == dataclasses.asdict(again)

    def test_env_var_reaches_simulate_spec(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "collect")
        r = api.run(BASE, store=ResultStore(str(tmp_path / "s")))
        assert r.extras["invariant_violations"] == 0.0

    def test_run_many_threads_mode_through(self, tmp_path):
        specs = [
            dataclasses.replace(BASE, seed=s) for s in (1, 2)
        ]
        results = api.run_many(
            specs,
            store=ResultStore(str(tmp_path / "s")),
            check_invariants="collect",
        )
        assert all(
            r.extras["invariant_violations"] == 0.0 for r in results
        )


class TestKernelField:
    def test_kernel_never_enters_cache_key(self):
        # Byte-identity contract: the kernel choice may not change any
        # result, so it must not fragment the result cache.
        assert BASE.key() == dataclasses.replace(BASE, kernel="activity").key()
        assert BASE.key() == dataclasses.replace(BASE, kernel="reference").key()

    def test_telemetry_none_keeps_legacy_key(self):
        # New optional fields default to None and are dropped from the
        # payload so pre-existing cached results stay addressable.
        assert BASE.telemetry is None
        assert BASE.key() != dataclasses.replace(BASE, telemetry=20).key()

    def test_kernel_reaches_system(self):
        from repro.experiments.runner import build_system

        spec = dataclasses.replace(BASE, kernel="activity")
        system = build_system(spec)
        assert system.kernel_name == "activity"
        assert system.request_net.kernel_name == "activity"
        assert system.reply_net.kernel_name == "activity"
        assert build_system(BASE).kernel_name == "reference"

    def test_env_var_reaches_system(self, monkeypatch):
        from repro.experiments.runner import build_system

        monkeypatch.setenv("REPRO_KERNEL", "activity")
        assert build_system(BASE).kernel_name == "activity"

    def test_spec_telemetry_routes_through_run(self, tmp_path):
        # RunSpec.telemetry is the declarative spelling of
        # run(..., telemetry=True, interval=N): live sampling, no cache.
        store = ResultStore(str(tmp_path / "s"))
        spec = dataclasses.replace(BASE, telemetry=20)
        r = api.run(spec, store=store)
        assert r.instructions > 0
        assert len(store) == 0

    def test_kernels_agree_through_run(self, tmp_path):
        ref = api.run(
            dataclasses.replace(BASE, kernel="reference"),
            store=ResultStore(str(tmp_path / "a")), use_cache=False,
        )
        act = api.run(
            dataclasses.replace(BASE, kernel="activity"),
            store=ResultStore(str(tmp_path / "b")), use_cache=False,
        )
        a, b = dataclasses.asdict(ref), dataclasses.asdict(act)
        for payload in (a, b):  # wall-clock extras legitimately differ
            for k in ("build_wall_s", "sim_wall_s", "sim_cycles_per_sec"):
                payload["extras"].pop(k, None)
        assert a == b
