"""Tests for the content-addressed per-run-file ResultStore."""

import json
import os
import threading

from repro.experiments.store import (
    ResultStore,
    default_store,
    set_default_store,
)


class TestBasics:
    def test_put_get_roundtrip(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        store.put("abcdef0123", {"ipc": 2.5, "extras": {"e": 1.0}})
        assert store.get("abcdef0123") == {"ipc": 2.5, "extras": {"e": 1.0}}
        assert store.get("missing") is None

    def test_per_run_file_layout(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        store.put("abcdef0123", {"x": 1})
        store.put("ab99999999", {"x": 2})
        store.put("cd00000000", {"x": 3})
        # Sharded by key prefix, one JSON file per run.
        assert os.path.exists(tmp_path / "store" / "ab" / "abcdef0123.json")
        assert os.path.exists(tmp_path / "store" / "ab" / "ab99999999.json")
        assert os.path.exists(tmp_path / "store" / "cd" / "cd00000000.json")

    def test_persistence_across_instances(self, tmp_path):
        ResultStore(str(tmp_path / "store")).put("aa11", {"v": 7})
        fresh = ResultStore(str(tmp_path / "store"))
        assert fresh.get("aa11") == {"v": 7}
        assert "aa11" in fresh
        assert len(fresh) == 1
        assert list(fresh.keys()) == ["aa11"]

    def test_clear_memory_vs_disk(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        store.put("aa11", {"v": 7})
        store.clear()
        assert store.get("aa11") == {"v": 7}  # reloaded from disk
        store.clear(disk=True)
        assert store.get("aa11") is None
        assert len(store) == 0

    def test_corrupt_file_is_a_miss(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        store.put("aa11", {"v": 7})
        store.clear()
        path = tmp_path / "store" / "aa" / "aa11.json"
        path.write_text("{not json")
        assert store.get("aa11") is None

    def test_info(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        store.put("aa11", {"v": 7})
        info = store.info()
        assert info["entries"] == 1
        assert info["path"] == str(tmp_path / "store")


class TestLegacyMigration:
    def test_json_location_imports_legacy_once(self, tmp_path):
        legacy = tmp_path / "cache.json"
        legacy.write_text(json.dumps({"aa11": {"ipc": 1.0}, "bb22": {"ipc": 2.0}}))
        store = ResultStore(str(legacy))
        assert store.root == str(tmp_path / "cache")
        assert store.get("aa11") == {"ipc": 1.0}
        assert store.get("bb22") == {"ipc": 2.0}
        # One-shot: later additions to the legacy blob are ignored.
        legacy.write_text(json.dumps({"cc33": {"ipc": 3.0}}))
        again = ResultStore(str(legacy))
        assert again.get("cc33") is None
        assert again.get("aa11") == {"ipc": 1.0}

    def test_import_legacy_returns_count(self, tmp_path):
        legacy = tmp_path / "cache.json"
        legacy.write_text(json.dumps({"aa11": {"ipc": 1.0}}))
        store = ResultStore(str(tmp_path / "cache"), migrate=False)
        assert store.import_legacy() == 1
        assert store.import_legacy() == 0  # marker written

    def test_missing_or_bad_legacy_is_noop(self, tmp_path):
        assert ResultStore(str(tmp_path / "a.json")).import_legacy() == 0
        bad = tmp_path / "b.json"
        bad.write_text("not json at all")
        assert ResultStore(str(bad)).get("anything") is None


class TestConcurrency:
    def test_concurrent_writers(self, tmp_path):
        """Many threads writing distinct and shared keys must not corrupt."""
        store = ResultStore(str(tmp_path / "store"))
        errors = []

        def writer(tid):
            try:
                for n in range(20):
                    store.put(f"aa{tid:02d}{n:04d}", {"tid": tid, "n": n})
                    store.put("shared00", {"same": "content"})
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        fresh = ResultStore(str(tmp_path / "store"))  # disk-only view
        assert fresh.get("shared00") == {"same": "content"}
        for tid in range(8):
            for n in range(20):
                assert fresh.get(f"aa{tid:02d}{n:04d}") == {"tid": tid, "n": n}
        assert len(fresh) == 8 * 20 + 1

    def test_no_leftover_temp_files(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        for n in range(10):
            store.put(f"aa{n:04d}", {"n": n})
        leftovers = [
            name
            for _, _, files in os.walk(tmp_path / "store")
            for name in files
            if name.endswith(".tmp")
        ]
        assert leftovers == []


class TestDefaultStore:
    def test_respects_repro_cache_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "env_store" / "cache.json"))
        set_default_store(None)
        store = default_store()
        assert store.root == str(tmp_path / "env_store" / "cache")
        assert default_store() is store  # singleton until reset

    def test_set_default_store_returns_previous(self, tmp_path):
        mine = ResultStore(str(tmp_path / "mine"))
        previous = set_default_store(mine)
        try:
            assert default_store() is mine
        finally:
            set_default_store(previous)
