"""Tests for multi-seed analysis."""

import pytest

from repro.experiments.analysis import (
    SeedStats,
    compare,
    multi_seed,
    significant_speedup,
    summarize_grid,
)
from repro.experiments.runner import RunSpec


SMALL = dict(cycles=150, warmup=40, mesh=4, warps_per_core=4)


class TestSeedStats:
    def test_basic_stats(self):
        s = SeedStats("ipc", [1.0, 2.0, 3.0])
        assert s.mean == 2.0
        assert s.std == pytest.approx(1.0)
        assert s.min == 1.0 and s.max == 3.0
        assert s.n == 3

    def test_single_value_no_std(self):
        s = SeedStats("ipc", [5.0])
        assert s.std == 0.0
        assert s.ci95() == 0.0

    def test_empty(self):
        s = SeedStats("ipc", [])
        assert s.mean == 0.0

    def test_significance(self):
        tight = SeedStats("r", [1.5, 1.52, 1.48])
        assert significant_speedup(tight, 1.0)
        noisy = SeedStats("r", [0.8, 1.6])
        assert not significant_speedup(noisy, 1.0)


class TestMultiSeed:
    def test_runs_per_seed(self):
        stats = multi_seed(
            RunSpec("binomialOptions", "xy-baseline", **SMALL),
            seeds=[1, 2, 3],
            use_cache=False,
        )
        assert stats["ipc"].n == 3
        assert stats["ipc"].mean > 0

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            multi_seed(RunSpec("bfs", "xy-baseline"), seeds=[])


class TestCompare:
    def test_paired_ratio(self):
        stats = compare(
            RunSpec("bfs", "ada-baseline", **SMALL),
            RunSpec("bfs", "ada-ari", **SMALL),
            seeds=[1, 2],
            use_cache=False,
        )
        assert stats.n == 2
        assert stats.mean > 0.8  # ARI never collapses IPC

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            compare(RunSpec("bfs", "a"), RunSpec("bfs", "b"), seeds=[])


class TestSummarizeGrid:
    def test_geomean_per_scheme(self):
        from repro.gpu.system import SimulationResult

        def res(ipc):
            return SimulationResult(
                benchmark="b", scheme="s", cycles=1, core_cycles=1,
                instructions=1, ipc=ipc, mc_stall_cycles=0,
                request_latency=0, reply_latency=0, reply_traffic_share=0,
            )

        grid = {
            "bm1": {"a": res(2.0), "b": res(4.0)},
            "bm2": {"a": res(8.0), "b": res(4.0)},
        }
        out = summarize_grid(grid)
        assert out["a"] == pytest.approx(4.0)
        assert out["b"] == pytest.approx(4.0)
