"""Shared --axis grammar (repro sweep / repro faults) and its consumers."""

import pytest

from repro.experiments.specgrid import (
    SPEC_FIELDS,
    SpecGridError,
    coerce_value,
    expand_token,
    parse_axes,
    parse_axis,
    parse_ints,
)
from repro.faults.campaign import CampaignConfig, CampaignRunner


class TestCoercion:
    def test_scalar_coercions(self):
        assert coerce_value("none") is None
        assert coerce_value("True") is True
        assert coerce_value("false") is False
        assert coerce_value("4") == 4
        assert coerce_value("0.25") == 0.25
        assert coerce_value("ada-ari") == "ada-ari"


class TestParseAxis:
    def test_parses_name_and_values(self):
        assert parse_axis("num_vcs=2,4") == ("num_vcs", [2, 4])
        assert parse_axis("scheme=xy-baseline,ada-ari") == (
            "scheme", ["xy-baseline", "ada-ari"]
        )

    def test_unknown_field_rejected_up_front(self):
        with pytest.raises(SpecGridError, match="unknown RunSpec field"):
            parse_axis("clock_speed=1,2")

    def test_malformed_text_rejected(self):
        for text in ("num_vcs", "=2,4", "num_vcs=", "num_vcs=,,"):
            with pytest.raises(SpecGridError):
                parse_axis(text)

    def test_kernel_is_a_valid_axis(self):
        # The kernel= field is part of the spec schema, so it can be swept
        # (e.g. for equivalence spot-checks from the CLI).
        assert "kernel" in SPEC_FIELDS
        assert parse_axis("kernel=reference,activity") == (
            "kernel", ["reference", "activity"]
        )


class TestParseAxes:
    def test_later_repeats_win(self):
        axes = parse_axes(["seed=1,2", "num_vcs=4", "seed=9"])
        assert axes == {"seed": [9], "num_vcs": [4]}

    def test_empty_sequence_is_empty_dict(self):
        assert parse_axes([]) == {}


class TestRangeShorthand:
    def test_expand_token_scalar_passthrough(self):
        assert expand_token("4") == [4]
        assert expand_token("ada-ari") == ["ada-ari"]

    def test_ascending_range_is_inclusive(self):
        assert expand_token("1..4") == [1, 2, 3, 4]

    def test_descending_range_defaults_to_step_minus_one(self):
        assert expand_token("4..1") == [4, 3, 2, 1]
        assert expand_token("4..1:-1") == [4, 3, 2, 1]

    def test_explicit_step(self):
        assert expand_token("16..64:16") == [16, 32, 48, 64]

    def test_step_overshoot_stops_inside_bound(self):
        assert expand_token("1..10:4") == [1, 5, 9]

    def test_parse_axis_mixes_ranges_and_scalars(self):
        assert parse_axis("injection_speedup=1..3,6") == (
            "injection_speedup", [1, 2, 3, 6]
        )
        assert parse_axis("starvation_threshold=16,64..66") == (
            "starvation_threshold", [16, 64, 65, 66]
        )

    def test_negative_bounds(self):
        assert expand_token("-2..1") == [-2, -1, 0, 1]

    def test_non_integer_bounds_rejected(self):
        for text in ("1.5..3", "a..b", "1..2:x"):
            with pytest.raises(SpecGridError, match="integers"):
                expand_token(text)

    def test_unreachable_ranges_rejected(self):
        for text in ("1..4:-1", "4..1:2", "1..4:0"):
            with pytest.raises(SpecGridError, match="never reaches"):
                expand_token(text)


class TestParseInts:
    def test_parses_comma_list(self):
        assert parse_ints("0,1,2") == (0, 1, 2)
        assert parse_ints("5") == (5,)

    def test_rejects_non_ints(self):
        with pytest.raises(SpecGridError, match="integers"):
            parse_ints("1,two")


class TestCampaignAxes:
    def test_axes_expand_cartesian_and_override(self):
        cfg = CampaignConfig(
            schemes=("xy-baseline",),
            dead_links=(0,),
            seeds=(3,),
            axes=(("num_vcs", (2, 4)), ("seed", (11,))),
        )
        cells = CampaignRunner(cfg).specs()
        assert len(cells) == 2
        specs = [spec for (_, _, _, spec) in cells]
        assert sorted(s.num_vcs for s in specs) == [2, 4]
        # Axis values win over the campaign's own seed list.
        assert all(s.seed == 11 for s in specs)

    def test_kernel_threads_into_every_cell(self):
        cfg = CampaignConfig(
            schemes=("xy-baseline",), dead_links=(0, 1), kernel="activity"
        )
        for (_, _, _, spec) in CampaignRunner(cfg).specs():
            assert spec.kernel == "activity"


class TestCLIParser:
    def _parser(self):
        from repro.cli import build_parser

        return build_parser()

    def test_kernel_flag_on_commands(self):
        p = self._parser()
        for argv in (
            ["run", "bfs", "ada-ari", "--kernel", "activity"],
            ["compare", "bfs", "--kernel", "activity"],
            ["sweep", "bfs", "ada-ari", "--axis", "seed=1,2",
             "--kernel", "activity"],
            ["faults", "--kernel", "activity"],
        ):
            args = p.parse_args(argv)
            assert args.kernel == "activity", argv

    def test_faults_axis_flag_repeats(self):
        p = self._parser()
        args = p.parse_args(
            ["faults", "--axis", "num_vcs=2,4", "--axis", "seed=1"]
        )
        assert args.axis == ["num_vcs=2,4", "seed=1"]

    def test_check_kernel_equiv_depths(self):
        p = self._parser()
        assert p.parse_args(["check"]).kernel_equiv is None
        assert p.parse_args(["check", "--kernel-equiv"]).kernel_equiv == "quick"
        assert (
            p.parse_args(["check", "--kernel-equiv", "full"]).kernel_equiv
            == "full"
        )
