"""Legacy cache entries (pre-schema-change records) must degrade to
cache misses with a warning, never crash a run."""

import dataclasses

import pytest

from repro.experiments import api
from repro.experiments.runner import RunSpec
from repro.experiments.store import ResultStore, coerce_record

SPEC = RunSpec(
    "binomialOptions", "xy-baseline", cycles=80, warmup=20, mesh=4,
    warps_per_core=4,
)

LEGACY_RECORD = {"ipc": 1.0, "cycles_simulated": 100, "retired": "yes"}


def store_with_legacy_hit(tmp_path):
    store = ResultStore(str(tmp_path / "s"))
    store.put(SPEC.key(), LEGACY_RECORD)
    return store


class TestCoerceRecord:
    def test_valid_record_roundtrips(self):
        result = api.run(SPEC, use_cache=False)
        restored = coerce_record(dataclasses.asdict(result))
        assert dataclasses.asdict(restored) == dataclasses.asdict(result)

    def test_unknown_field_is_none(self):
        assert coerce_record(LEGACY_RECORD) is None

    def test_empty_record_is_none(self):
        assert coerce_record({}) is None


class TestScanLegacy:
    def test_lists_only_bad_keys(self, tmp_path):
        store = ResultStore(str(tmp_path / "s"))
        good = api.run(SPEC, store=store)
        store.put("bad0000001", LEGACY_RECORD)
        assert store.scan_legacy() == ["bad0000001"]
        restored = coerce_record(store.get(SPEC.key()))
        assert dataclasses.asdict(restored) == dataclasses.asdict(good)

    def test_empty_store_is_clean(self, tmp_path):
        assert ResultStore(str(tmp_path / "s")).scan_legacy() == []


class TestRunPath:
    def test_run_warns_and_resimulates(self, tmp_path):
        store = store_with_legacy_hit(tmp_path)
        with pytest.warns(RuntimeWarning, match="legacy-format cache entry"):
            result = api.run(SPEC, store=store)
        assert result.instructions > 0
        # The fresh result replaced the stale record.
        restored = coerce_record(store.get(SPEC.key()))
        assert dataclasses.asdict(restored) == dataclasses.asdict(result)
        assert store.scan_legacy() == []

    def test_run_many_warns_and_resimulates(self, tmp_path):
        store = store_with_legacy_hit(tmp_path)
        with pytest.warns(RuntimeWarning, match="legacy-format cache entry"):
            results = api.run_many([SPEC], store=store)
        assert results[0].instructions > 0
        assert store.scan_legacy() == []


class TestCacheCommand:
    def test_cache_reports_legacy_entries(self, capsys):
        from repro.cli import main
        from repro.experiments.store import default_store

        default_store().put("bad0000001", LEGACY_RECORD)
        assert main(["cache"]) == 0
        err = capsys.readouterr().err
        assert "1 legacy-format entry" in err
        assert "bad0000001" in err

    def test_clean_cache_no_warning(self, capsys):
        from repro.cli import main

        assert main(["cache"]) == 0
        assert "legacy-format" not in capsys.readouterr().err
