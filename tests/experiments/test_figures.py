"""Smoke tests for the figure drivers (micro scale, isolated cache)."""

import pytest

import repro.experiments.figures as figures


@pytest.fixture(autouse=True)
def micro_scale(monkeypatch):
    """Shrink the smoke budget for these tests.

    The result store is already isolated per-test by conftest's autouse
    ``_isolated_result_store`` fixture.
    """
    monkeypatch.setitem(figures.SCALES, "smoke", {"cycles": 150, "warmup": 50})
    yield


BMS = ["bfs"]


def _check_shape(result):
    assert set(result) >= {"rows", "summary", "paper", "table"}
    assert isinstance(result["table"], str) and result["table"]


class TestDrivers:
    def test_fig3(self):
        r = figures.fig3_request_vs_reply_latency("smoke", benchmarks=BMS)
        _check_shape(r)
        assert r["rows"]["bfs"]["request"] > 0

    def test_fig4(self):
        r = figures.fig4_link_width_sweep("smoke", benchmarks=BMS)
        _check_shape(r)
        assert "ipc_256bit_reply" in r["summary"]

    def test_fig5(self):
        r = figures.fig5_packet_type_mix("smoke", benchmarks=BMS)
        _check_shape(r)
        total = sum(r["rows"]["bfs"].values())
        assert total == pytest.approx(1.0, abs=0.01)

    def test_fig6(self):
        r = figures.fig6_queue_occupancy("smoke", benchmarks=BMS,
                                         capacities_pkts=(4, 8))
        _check_shape(r)
        assert set(r["rows"]["bfs"]) == {"4", "8"}

    def test_sec3(self):
        r = figures.sec3_link_utilization("smoke", benchmarks=BMS)
        _check_shape(r)
        assert r["summary"]["mean_injection_util"] > 0

    def test_fig9(self):
        r = figures.fig9_priority_levels("smoke", benchmarks=BMS, levels=(1, 2))
        _check_shape(r)
        assert set(r["rows"]["bfs"]) == {"1", "2"}

    def test_fig10(self):
        r = figures.fig10_supply_consume_ablation("smoke", benchmarks=BMS)
        _check_shape(r)
        assert set(r["summary"]) >= set(figures._FIG10_SCHEMES)

    def test_fig11(self):
        r = figures.fig11_scheme_comparison("smoke", benchmarks=BMS)
        _check_shape(r)
        assert r["summary"]["xy-baseline"] == pytest.approx(1.0)

    def test_fig12(self):
        r = figures.fig12_mc_stall_time("smoke", benchmarks=BMS)
        _check_shape(r)
        assert "ada_ari_stall_reduction" in r["summary"]

    def test_fig13(self):
        r = figures.fig13_latency_decomposition("smoke", benchmarks=BMS)
        _check_shape(r)
        assert "ada-ari.req" in r["rows"]["bfs"]

    def test_fig14(self):
        r = figures.fig14_energy("smoke", benchmarks=BMS)
        _check_shape(r)
        assert r["rows"]["bfs"]["baseline"] == 1.0

    def test_fig15(self):
        r = figures.fig15_vc_sensitivity("smoke", benchmarks=BMS)
        _check_shape(r)
        assert r["rows"]["bfs"]["2VC-base"] == pytest.approx(1.0)

    def test_fig16(self):
        r = figures.fig16_da2mesh("smoke", benchmarks=BMS)
        _check_shape(r)
        assert r["rows"]["bfs"]["da2mesh"] == pytest.approx(1.0)

    def test_sec61(self):
        r = figures.sec61_area()
        _check_shape(r)

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            figures.fig3_request_vs_reply_latency("galactic")

    def test_figures_share_sweeps_via_cache(self):
        """Figs. 11 and 12 consume the same scheme x benchmark grid; after
        running fig11 the fig12 driver must not simulate anything new."""
        from repro.experiments.store import default_store

        figures.fig11_scheme_comparison("smoke", benchmarks=BMS)
        entries = len(default_store())
        figures.fig12_mc_stall_time("smoke", benchmarks=BMS)
        assert len(default_store()) == entries

    def test_all_figures_registry(self):
        assert len(figures.ALL_FIGURES) == 20
        for name, fn in figures.ALL_FIGURES.items():
            assert callable(fn)

    def test_ext_placement(self):
        r = figures.ext_mc_placement("smoke", benchmarks=BMS)
        _check_shape(r)
        assert set(r["rows"]) == {"diamond", "edge", "column"}

    def test_ext_request_ari(self):
        r = figures.ext_request_side_ari("smoke", benchmarks=BMS)
        _check_shape(r)
        assert set(r["summary"]) == {"ada-ari", "ada-ari-both"}

    def test_ext_hop_latency(self):
        r = figures.ext_hop_latency("smoke", benchmarks=BMS, latencies=(1, 2))
        _check_shape(r)
        assert set(r["rows"]) == {"1cyc/hop", "2cyc/hop"}

    def test_ext_scheduler(self):
        r = figures.ext_warp_scheduler("smoke", benchmarks=BMS)
        _check_shape(r)
        assert set(r["rows"]) == {"gto", "lrr"}

    def test_ext_intensity(self):
        r = figures.ext_intensity_sweep("smoke", multipliers=(0.5, 1.0))
        _check_shape(r)
        assert set(r["rows"]) == {"x0.5", "x1.0"}
        for row in r["rows"].values():
            assert row["gain"] > 0
