"""Tests for the process-pool sweep executor.

The simulation budget is tiny (one run ~30ms) so the parallel paths are
exercised for real — actual ProcessPoolExecutor workers — without
slowing the suite down.
"""

import dataclasses

import pytest

from repro.experiments.executor import (
    ExecutorError,
    SweepExecutor,
    resolve_workers,
    simulate_spec,
)
from repro.experiments.runner import RunSpec
from repro.experiments.store import ResultStore

BASE = dict(cycles=80, warmup=20, mesh=4, warps_per_core=4)


def _specs(n=4, scheme="xy-baseline"):
    return [
        RunSpec("binomialOptions", scheme, seed=s, **BASE)
        for s in range(1, n + 1)
    ]


def _strip_wall(result):
    d = dataclasses.asdict(result)
    for k in ("build_wall_s", "sim_wall_s", "sim_cycles_per_sec"):
        d["extras"].pop(k, None)
    return d


class TestResolveWorkers:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(3) == 3

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers(None) == 5
        monkeypatch.delenv("REPRO_WORKERS")
        assert resolve_workers(None) == 1

    def test_zero_means_all_cores(self):
        import os

        assert resolve_workers(0) == (os.cpu_count() or 1)

    def test_garbage_env_is_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        assert resolve_workers(None) == 1


class TestDeterminism:
    def test_parallel_identical_to_serial(self, tmp_path):
        """Same grid, workers=1 vs workers=4: record-for-record identical."""
        specs = _specs(8)
        serial = SweepExecutor(
            workers=1, store=ResultStore(str(tmp_path / "serial"))
        ).run_many(specs)
        parallel = SweepExecutor(
            workers=4, store=ResultStore(str(tmp_path / "parallel"))
        ).run_many(specs)
        assert [_strip_wall(r) for r in serial] == [
            _strip_wall(r) for r in parallel
        ]

    def test_results_in_input_order(self, tmp_path):
        specs = _specs(6)
        results = SweepExecutor(
            workers=3, store=ResultStore(str(tmp_path / "s")), chunk_size=1
        ).run_many(list(reversed(specs)))
        # seed is the only varying field; order must match the input.
        assert [r.extras is not None for r in results] == [True] * 6
        direct = [simulate_spec(s) for s in reversed(specs)]
        assert [_strip_wall(r) for r in results] == [
            _strip_wall(r) for r in direct
        ]


class TestCacheAndDedup:
    def test_cache_hits_on_second_batch(self, tmp_path):
        store = ResultStore(str(tmp_path / "s"))
        specs = _specs(3)
        first = SweepExecutor(workers=1, store=store)
        first.run_many(specs)
        assert first.report.executed == 3
        second = SweepExecutor(workers=1, store=store)
        second.run_many(specs)
        assert second.report.cache_hits == 3
        assert second.report.executed == 0

    def test_cache_misses_and_hit_fraction(self, tmp_path):
        store = ResultStore(str(tmp_path / "s"))
        specs = _specs(4)
        first = SweepExecutor(workers=1, store=store)
        first.run_many(specs)
        assert first.report.cache_misses == 4
        assert first.report.cache_hit_fraction() == 0.0
        second = SweepExecutor(workers=1, store=store)
        second.run_many(specs + _specs(6)[4:])
        assert second.report.cache_hits == 4
        assert second.report.cache_misses == 2
        assert second.report.cache_hit_fraction() == pytest.approx(4 / 6)
        summary = second.report.summary()
        assert summary["cache_misses"] == 2
        assert summary["cache_hit_fraction"] == pytest.approx(4 / 6)

    def test_duplicate_specs_run_once(self, tmp_path):
        store = ResultStore(str(tmp_path / "s"))
        spec = _specs(1)[0]
        ex = SweepExecutor(workers=1, store=store)
        results = ex.run_many([spec, spec, spec])
        assert len(results) == 3
        assert ex.report.executed == 1
        assert ex.report.deduplicated == 2
        assert _strip_wall(results[0]) == _strip_wall(results[2])

    def test_use_cache_false_never_touches_store(self, tmp_path):
        store = ResultStore(str(tmp_path / "s"))
        ex = SweepExecutor(workers=1, store=store, use_cache=False)
        ex.run_many(_specs(2))
        assert len(store) == 0


class TestRetry:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_injected_crash_is_retried(self, tmp_path, monkeypatch, workers):
        """Every spec's first attempt raises; retries recover all of them."""
        fault_dir = tmp_path / "faults"
        fault_dir.mkdir()
        monkeypatch.setenv("REPRO_EXECUTOR_FAULT_DIR", str(fault_dir))
        specs = _specs(3)
        ex = SweepExecutor(
            workers=workers, store=ResultStore(str(tmp_path / "s")), retries=2
        )
        results = ex.run_many(specs)
        assert len(results) == 3
        assert all(r.instructions > 0 for r in results)
        assert ex.report.retried >= 1
        # Recovered output matches an unfaulted serial run.
        monkeypatch.delenv("REPRO_EXECUTOR_FAULT_DIR")
        clean = [simulate_spec(s) for s in specs]
        assert [_strip_wall(r) for r in results] == [
            _strip_wall(r) for r in clean
        ]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_permanent_failure_raises_with_spec(self, tmp_path, workers):
        bad = RunSpec("no-such-benchmark", "ada-ari", **BASE)
        ex = SweepExecutor(
            workers=workers, store=ResultStore(str(tmp_path / "s")), retries=1
        )
        with pytest.raises(ExecutorError) as excinfo:
            ex.run_many([bad] + _specs(1))
        assert excinfo.value.spec.benchmark == "no-such-benchmark"


class TestObservability:
    def test_progress_callback_sources(self, tmp_path):
        store = ResultStore(str(tmp_path / "s"))
        specs = _specs(2)
        SweepExecutor(workers=1, store=store).run_many(specs[:1])
        seen = []
        SweepExecutor(
            workers=1,
            store=store,
            progress=lambda done, total, spec, source: seen.append(
                (done, total, source)
            ),
        ).run_many(specs)
        assert (1, 2, "cache") in seen
        assert (2, 2, "run") in seen

    def test_profiler_and_report(self, tmp_path):
        ex = SweepExecutor(workers=1, store=ResultStore(str(tmp_path / "s")))
        ex.run_many(_specs(2))
        summary = ex.report.summary()
        assert summary["total"] == 2
        assert summary["executed"] == 2
        assert summary["sim_cycles"] == 2 * (80 + 20)
        assert summary["cycles_per_sec"] > 0
        assert ex.profiler.phase_seconds("sweep") > 0
        assert ex.profiler.counters["runs"] == 2

    def test_telemetry_sink_receives_exec_channels(self, tmp_path):
        from repro.telemetry import MemorySink

        sink = MemorySink()
        SweepExecutor(
            workers=1, store=ResultStore(str(tmp_path / "s")), sink=sink
        ).run_many(_specs(2))
        assert len(sink.samples) == 2
        last = sink.samples[-1].channels
        assert last["exec.done"] == 2
        assert last["exec.total"] == 2

    def test_empty_batch(self, tmp_path):
        ex = SweepExecutor(workers=4, store=ResultStore(str(tmp_path / "s")))
        assert ex.run_many([]) == []
        assert ex.report.total == 0
