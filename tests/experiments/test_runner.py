"""Tests for the experiment runner and cache."""

import pytest

from repro.experiments.runner import (
    RunSpec,
    build_system,
    cache_info,
    clear_cache,
    geometric_mean,
    normalized,
)


class TestRunSpec:
    def test_key_stable(self):
        a = RunSpec("bfs", "xy-baseline")
        b = RunSpec("bfs", "xy-baseline")
        assert a.key() == b.key()

    def test_key_differs_on_any_field(self):
        base = RunSpec("bfs", "xy-baseline")
        assert base.key() != RunSpec("bfs", "xy-ari").key()
        assert base.key() != RunSpec("bfs", "xy-baseline", cycles=999).key()
        assert base.key() != RunSpec("bfs", "xy-baseline", seed=4).key()
        assert base.key() != RunSpec("bfs", "xy-baseline", mesh=8).key()


class TestBuildSystem:
    def test_spec_overrides_applied(self):
        spec = RunSpec(
            "bfs", "ada-ari", mesh=4, num_vcs=2, ni_queue_flits=18,
            priority_levels=3, injection_speedup=2, warps_per_core=4,
        )
        sys_ = build_system(spec)
        assert sys_.config.mesh_width == 4
        assert sys_.config.warps_per_core == 4
        assert sys_.reply_net.config.num_vcs == 2
        assert sys_.reply_net.config.ni_queue_flits == 18
        assert sys_.reply_net.config.priority_levels == 3
        assert sys_.reply_net.config.injection_speedup == 2

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            build_system(RunSpec("quake", "xy-baseline"))


class TestRunAndCache:
    # The default store is isolated per-test by the autouse
    # ``_isolated_result_store`` fixture in conftest.py.

    def test_result_cached(self):
        from repro.experiments.api import run
        from repro.experiments.store import default_store

        spec = RunSpec("binomialOptions", "xy-baseline", cycles=120, warmup=30,
                       mesh=4, warps_per_core=4)
        r1 = run(spec)
        store = default_store()
        import os

        assert os.path.exists(
            os.path.join(store.root, spec.key()[:2], spec.key() + ".json")
        )
        r2 = run(spec)
        assert r1.instructions == r2.instructions
        assert r1.extras == r2.extras

    def test_cache_bypass(self):
        from repro.experiments.api import run
        from repro.experiments.store import default_store

        spec = RunSpec("binomialOptions", "xy-baseline", cycles=120, warmup=30,
                       mesh=4, warps_per_core=4)
        r1 = run(spec, use_cache=False)
        assert len(default_store()) == 0
        assert r1.instructions > 0

    def test_cache_info_and_clear(self):
        from repro.experiments.api import run

        spec = RunSpec("binomialOptions", "xy-baseline", cycles=120, warmup=30,
                       mesh=4, warps_per_core=4)
        run(spec)
        info = cache_info()
        assert info["entries"] == 1
        clear_cache(disk=True)
        assert cache_info()["entries"] == 0


class TestAggregation:
    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([1.0, 1.0]) == 1.0

    def test_geometric_mean_skips_nonpositive(self):
        assert geometric_mean([0.0, 4.0]) == 4.0

    def test_normalized(self):
        from repro.gpu.system import SimulationResult

        def res(ipc):
            return SimulationResult(
                benchmark="b", scheme="s", cycles=1, core_cycles=1,
                instructions=1, ipc=ipc, mc_stall_cycles=0,
                request_latency=0, reply_latency=0, reply_traffic_share=0,
            )

        grid = {"bm": {"base": res(2.0), "ari": res(3.0)}}
        out = normalized(grid, "ipc", "base")
        assert out["bm"]["ari"] == pytest.approx(1.5)
        assert out["bm"]["base"] == 1.0
