"""Tests for the ASCII table renderer."""

from repro.experiments.report import render_grid, render_kv, render_table


class TestRenderTable:
    def test_alignment(self):
        out = render_table(["name", "v"], [["a", 1.0], ["longer", 2.5]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "1.000" in out and "2.500" in out

    def test_custom_float_format(self):
        out = render_table(["v"], [[0.123456]], floatfmt="{:.1f}")
        assert "0.1" in out

    def test_non_float_cells(self):
        out = render_table(["a", "b"], [[1, "x"]])
        assert "1" in out and "x" in out

    def test_empty_rows(self):
        out = render_table(["h"], [])
        assert "h" in out


class TestRenderKV:
    def test_basic(self):
        out = render_kv({"alpha": 1.5, "b": "text"})
        assert "alpha" in out
        assert "1.5000" in out
        assert "text" in out

    def test_empty(self):
        assert render_kv({}) == ""


class TestRenderGrid:
    def test_grid_with_summary(self):
        grid = {"bm1": {"a": 1.0, "b": 2.0}, "bm2": {"a": 3.0, "b": 4.0}}
        out = render_grid(grid, ["a", "b"], summary={"a": 2.0, "b": 3.0})
        assert "geomean" in out
        assert "bm1" in out and "bm2" in out

    def test_columns_inferred(self):
        grid = {"bm": {"x": 1.0}}
        out = render_grid(grid)
        assert "x" in out

    def test_missing_cell_is_nan(self):
        grid = {"bm": {"a": 1.0}}
        out = render_grid(grid, ["a", "b"])
        assert "nan" in out


class TestMarkdownExport:
    def test_structure(self):
        from repro.experiments.report import to_markdown

        out = to_markdown(["a", "b"], [[1.0, "x"]])
        lines = out.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1.000 | x |"

    def test_empty_rows(self):
        from repro.experiments.report import to_markdown

        assert to_markdown(["h"], []).count("\n") == 1


class TestCSVExport:
    def test_basic(self):
        from repro.experiments.report import to_csv

        out = to_csv(["a", "b"], [[1.5, "x"]])
        assert out.splitlines() == ["a,b", "1.5,x"]

    def test_quoting(self):
        from repro.experiments.report import to_csv

        out = to_csv(["v"], [['has,comma'], ['has"quote']])
        assert '"has,comma"' in out
        assert '"has""quote"' in out


class TestGridRows:
    def test_flatten(self):
        from repro.experiments.report import grid_rows

        h, r = grid_rows({"bm": {"x": 1.0, "y": 2.0}}, columns=["y", "x"])
        assert h == ["name", "y", "x"]
        assert r == [["bm", 2.0, 1.0]]

    def test_missing_cell_nan(self):
        import math

        from repro.experiments.report import grid_rows

        _, r = grid_rows({"bm": {"x": 1.0}}, columns=["x", "z"])
        assert math.isnan(r[0][2])
