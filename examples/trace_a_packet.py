#!/usr/bin/env python
"""Trace reply packets through a congested injection point.

Attaches a :class:`~repro.noc.trace.PacketTracer` to a reply network under
heavy few-to-many load, prints the full lifecycle of the slowest packet
(offer -> injection -> delivery), and compares the NI-wait / in-network
latency distributions between the enhanced baseline and ARI — showing that
nearly all the baseline's tail latency accrues *waiting to inject*.

Run:  python examples/trace_a_packet.py
"""

from repro.noc import Network, NetworkConfig, PacketTracer
from repro.noc.ni import NIKind
from repro.noc.topology import default_placement
from repro.workloads.traffic import ReplyTrafficPattern, SyntheticTrafficGenerator

CYCLES = 1500
RATE = 0.20


def run(label: str, **variant):
    mcs, ccs = default_placement(6, 6, 8)
    net = Network(
        NetworkConfig(
            width=6, height=6, routing="adaptive",
            accelerated_nodes=set(mcs), **variant,
        )
    )
    tracer = PacketTracer.attach(net)
    pattern = ReplyTrafficPattern(mcs, ccs, seed=21)
    gen = SyntheticTrafficGenerator(net, pattern, rate=RATE, seed=23)
    gen.run(CYCLES)
    net.drain(30000)

    summary = tracer.lifecycle_summary()
    print(f"--- {label} ---")
    for metric, stats in summary.items():
        print(
            f"  {metric:16s} mean={stats['mean']:7.1f}  "
            f"p50={stats['p50']:7.1f}  p99={stats['p99']:8.1f}  "
            f"max={stats['max']:7.0f}"
        )
    print(f"  NI wait distribution:")
    for line in tracer.ni_wait.ascii_plot(width=30).splitlines():
        print(f"    {line}")

    # The slowest delivered packet, end to end.
    slowest = max(
        (e for e in tracer.events_of_kind("deliver")),
        key=lambda e: e.cycle,
        default=None,
    )
    if slowest is not None:
        print("  slowest packet timeline:")
        for line in tracer.format_timeline(slowest.pid).splitlines():
            print(f"    {line}")
    print()


def main() -> None:
    print(f"few-to-many reply traffic, {RATE} pkt/cycle/MC, {CYCLES} cycles\n")
    run("enhanced baseline")
    run(
        "full ARI",
        ni_kind=NIKind.SPLIT,
        injection_speedup=4,
        priority_enabled=True,
        priority_levels=2,
    )


if __name__ == "__main__":
    main()
