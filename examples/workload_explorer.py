#!/usr/bin/env python
"""Characterize the 30-benchmark suite (paper Sec. 6.2).

For each benchmark, runs a short baseline simulation and prints the
NoC-relevant signature: IPC, L1/L2 hit rates, reply traffic share, DRAM row
locality, and the per-MC reply demand relative to the baseline injection
capacity — which is what determines a workload's NoC sensitivity class.

Run:  python examples/workload_explorer.py [cycles] [sensitivity]
e.g.  python examples/workload_explorer.py 600 high
"""

import sys

from repro import GPUConfig, GPGPUSystem, benchmark, benchmark_names, scheme

# One narrow injection link drains 1 flit/cycle; a long reply is 9 flits.
BASELINE_CAPACITY_PKT = 1.0 / 9.0


def main() -> None:
    cycles = int(sys.argv[1]) if len(sys.argv) > 1 else 600
    sens = sys.argv[2] if len(sys.argv) > 2 else None
    names = benchmark_names(sens)

    header = (
        f"{'benchmark':16s}{'class':>8s}{'ipc':>8s}{'l1':>7s}{'l2':>7s}"
        f"{'reply%':>8s}{'rowhit':>8s}{'demand/cap':>12s}"
    )
    print(header)
    print("-" * len(header))
    for name in names:
        prof = benchmark(name)
        system = GPGPUSystem(GPUConfig(), scheme("xy-baseline"), prof, seed=9)
        res = system.simulate(cycles=cycles, warmup=cycles // 4)
        l1_acc = sum(c.l1.stats.accesses for c in system.cores)
        l1_hits = sum(c.l1.stats.hits for c in system.cores)
        l1 = l1_hits / l1_acc if l1_acc else 0.0
        demand = (
            res.replies_sent / res.cycles / len(system.mcs)
            if res.cycles
            else 0.0
        )
        print(
            f"{name:16s}{prof.sensitivity:>8s}{res.ipc:>8.2f}{l1:>7.2f}"
            f"{res.l2_hit_rate:>7.2f}{res.reply_traffic_share:>8.2f}"
            f"{res.dram_row_hit_rate:>8.2f}"
            f"{demand / BASELINE_CAPACITY_PKT:>12.2f}"
        )
    print(
        "\ndemand/cap > 1 means the workload offers more reply packets than"
        "\none narrow injection link can carry - the regime where the paper's"
        "\nreply-injection bottleneck binds and ARI pays off."
    )


if __name__ == "__main__":
    main()
