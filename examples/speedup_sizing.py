#!/usr/bin/env python
"""Size the injection-port crossbar speedup with Eqs. (1) and (2).

Reproduces the Sec. 4.2 sizing methodology end-to-end:

1. measure the *ideal* per-MC packet injection rate by running a workload
   against a perfect (infinite-bandwidth) reply network;
2. compute the average reply packet length from the measured type mix;
3. apply Eq. (1) (S >= rate x flits/packet) and the Eq. (2) bound
   (S <= min(N_out, N_VC)), picking the paper's guideline value;
4. check the 95th-percentile peak rate over 100-cycle windows, the
   statistic the paper uses to argue S = 4 is a good trade-off.

Run:  python examples/speedup_sizing.py [benchmark]
"""

import sys
from collections import defaultdict

from repro import GPUConfig, benchmark, scheme
from repro.core.speedup import (
    choose_speedup,
    mean_flits_per_packet,
    peak_injection_rate,
    required_speedup,
    speedup_upper_bound,
)
from repro.gpu.system import GPGPUSystem
from repro.noc.flit import PacketType
from repro.noc.network import PerfectNetwork, NetworkConfig

CYCLES = 2500
INTERVAL = 100


def main() -> None:
    bm = sys.argv[1] if len(sys.argv) > 1 else "hotspot"
    cfg = GPUConfig()

    # Run the full GPU against a *perfect* reply network: the MCs then
    # inject at their raw supply rate (Eq. 1's InjRate).
    system = GPGPUSystem(cfg, scheme("ada-baseline"), benchmark(bm), seed=5)
    system.reply_net = PerfectNetwork(
        NetworkConfig(width=cfg.mesh_width, height=cfg.mesh_height)
    )
    system.reply_net.on_delivery = system._on_reply_delivery
    for mc in system.mcs:
        mc._reply_offer = system.reply_net.offer
        mc._reply_can_accept = system.reply_net.can_accept
    system.prewarm_caches()

    per_interval = defaultdict(int)
    last = {m.node: 0 for m in system.mcs}
    for cyc in range(CYCLES):
        system.step()
        if (cyc + 1) % INTERVAL == 0:
            for node in last:
                cur = system.reply_net.injections_per_node.get(node, 0)
                per_interval[(node, cyc // INTERVAL)] = cur - last[node]
                last[node] = cur

    rates = {m.node: system.reply_net.injection_rate(m.node) for m in system.mcs}
    mean_rate = sum(rates.values()) / len(rates)
    mix = system.reply_net.stats.traffic_mix()
    reply_mix = {
        PacketType.READ_REPLY: mix[PacketType.READ_REPLY],
        PacketType.WRITE_REPLY: mix[PacketType.WRITE_REPLY],
    }
    # traffic_mix is flit-weighted; convert to a packet-count mix.
    pkt_mix = {
        t: (share / (9 if t == PacketType.READ_REPLY else 1))
        for t, share in reply_mix.items()
    }
    n_flits = mean_flits_per_packet(pkt_mix)

    s_req = required_speedup(mean_rate, n_flits)
    bound = speedup_upper_bound(num_nonlocal_outputs=4, num_vcs=cfg.num_vcs)
    s_pick = choose_speedup(mean_rate, n_flits, 4, cfg.num_vcs)
    peak = peak_injection_rate(per_interval.values(), INTERVAL, 0.95)

    print(f"benchmark: {bm}, {CYCLES} cycles against a perfect reply network")
    print(f"  ideal packet injection rate  : {mean_rate:.3f} pkt/cycle/MC")
    print(f"  mean reply packet length     : {n_flits:.2f} flits")
    print(f"  Eq.(1) minimum speedup S_min : {s_req}")
    print(f"  Eq.(2) bound min(N_out,N_VC) : {bound}")
    print(f"  chosen speedup               : {s_pick}")
    print(f"  95th-pct peak rate (100-cyc) : {peak:.3f} pkt/cycle/MC")
    print(
        f"  -> peak demand {peak * n_flits:.2f} flits/cycle vs granted "
        f"{s_pick} switch ports"
    )


if __name__ == "__main__":
    main()
