#!/usr/bin/env python
"""End-to-end perfwatch detector demo on a throwaway ledger.

Fabricates a healthy 6-commit KPI history (a flat-ish ``cycles_per_sec``
series with realistic noise), then appends a head record with the rate
*halved* under a changed config axis — the canonical "my change slowed
the simulator" incident.  The detector flags it as an error naming the
metric, the rolling median+MAD baseline band, and the changed axis; the
markdown report shows the cliff in the sparkline.

Nothing here touches the real ``results/perf_ledger/`` — everything
lives in a temp directory.

Run:  PYTHONPATH=src python examples/perfwatch_demo.py
"""

import shutil
import tempfile

from repro.perfwatch import (
    LedgerRecord,
    PerfLedger,
    data_quality,
    detect,
    findings_report,
    render_markdown,
    sort_findings,
)

# A plausible healthy history: ~100k cycles/sec with a few % of host noise.
HEALTHY = [98_400.0, 101_200.0, 99_700.0, 100_900.0, 99_100.0, 100_300.0]
HOST = {"platform": "demo-linux", "python": "3.12", "cpus": 8}


def build_ledger(root: str) -> PerfLedger:
    ledger = PerfLedger(root)
    records = [
        LedgerRecord(
            bench="simulator_speed",
            metric="full_system.cycles_per_sec",
            value=value,
            sha=f"{i:07d}abcde",
            fingerprint="fp-mesh6",
            ts=f"2026-08-{i + 1:02d}T12:00:00Z",
            seed=3,
            config={"mesh": 6, "scheme": "ada-ari"},
            host=HOST,
        )
        for i, value in enumerate(HEALTHY)
    ]
    # The incident: rate halved at head, and the mesh axis moved with it.
    records.append(LedgerRecord(
        bench="simulator_speed",
        metric="full_system.cycles_per_sec",
        value=HEALTHY[-1] / 2,
        sha="baadf00dcafe",
        fingerprint="fp-mesh8",
        ts="2026-08-07T12:00:00Z",
        seed=3,
        config={"mesh": 8, "scheme": "ada-ari"},
        host=HOST,
    ))
    ledger.append(records)
    return ledger


def main() -> None:
    root = tempfile.mkdtemp(prefix="perfwatch-demo-")
    try:
        ledger = build_ledger(root)
        findings = sort_findings(detect(ledger) + data_quality(ledger))
        report = findings_report(findings)
        print("--- findings ---")
        print(report.render())
        print()
        print("--- markdown report ---")
        print(render_markdown(ledger, findings))
        assert report.failed(strict=False), (
            "the halved cycles_per_sec must gate as an error"
        )
        print("demo ok: the synthetic regression was flagged as an error")
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    main()
