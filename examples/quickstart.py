#!/usr/bin/env python
"""Quickstart: simulate one GPGPU benchmark with and without ARI.

Builds the paper's Table-I system (28 compute clusters + 8 memory
controllers on a 6x6 mesh, two 128-bit NoCs), runs the ``bfs`` workload
under the XY baseline and under full ARI, and prints the headline metrics:
IPC, data stall time in the MCs, and packet latencies.

Run:  python examples/quickstart.py [benchmark] [cycles]
"""

import sys

from repro import GPUConfig, GPGPUSystem, benchmark, scheme


def run_one(scheme_name: str, bm: str, cycles: int):
    system = GPGPUSystem(GPUConfig(), scheme(scheme_name), benchmark(bm), seed=7)
    return system.simulate(cycles=cycles, warmup=cycles // 4)


def main() -> None:
    bm = sys.argv[1] if len(sys.argv) > 1 else "bfs"
    cycles = int(sys.argv[2]) if len(sys.argv) > 2 else 1200

    print(f"benchmark: {bm}  ({benchmark(bm).description})")
    print(f"simulating {cycles} NoC cycles per scheme...\n")

    base = run_one("xy-baseline", bm, cycles)
    ari = run_one("ada-ari", bm, cycles)

    header = f"{'metric':32s}{'xy-baseline':>14s}{'ada-ari':>14s}{'change':>10s}"
    print(header)
    print("-" * len(header))

    def row(name, b, a, fmt="{:.2f}", better_low=False):
        change = (a / b - 1) * 100 if b else 0.0
        arrow = "-" if abs(change) < 0.5 else ("v" if change < 0 else "^")
        print(
            f"{name:32s}{fmt.format(b):>14s}{fmt.format(a):>14s}"
            f"{change:>+8.1f}% {arrow}"
        )

    row("IPC (aggregate)", base.ipc, ari.ipc)
    row("MC data stall / reply (cycles)", base.mc_stall_per_reply, ari.mc_stall_per_reply)
    row("request packet latency", base.request_latency, ari.request_latency)
    row("reply packet latency", base.reply_latency, ari.reply_latency)
    row("reply NI occupancy (packets)", base.mean_ni_occupancy, ari.mean_ni_occupancy)
    row("L2 hit rate", base.l2_hit_rate, ari.l2_hit_rate, fmt="{:.3f}")

    print(
        "\nNote how ARI cuts the *request* latency too, although it changes"
        "\nnothing in the request network — the reply injection point was the"
        "\nbottleneck backing the whole system up (paper Secs. 3 and 7.4)."
    )


if __name__ == "__main__":
    main()
