#!/usr/bin/env python
"""Visualize the reply network's congestion, baseline vs. ARI.

Renders ASCII heatmaps of router occupancy and link utilization plus the
NI injection-queue fill bars under heavy few-to-many reply traffic.  Under
the baseline the paper's "hot region around memory controllers" shows up
directly: saturated injection queues and hot links around the MC diamond.
Under ARI the queues drain and the heat spreads.

Run:  python examples/visualize_congestion.py [rate] [cycles]
"""

import sys

from repro.noc import Network, NetworkConfig
from repro.noc.ni import NIKind
from repro.noc.topology import default_placement
from repro.noc.visual import MeshRenderer
from repro.workloads.traffic import ReplyTrafficPattern, SyntheticTrafficGenerator


def run(label: str, rate: float, cycles: int, **variant) -> None:
    mcs, ccs = default_placement(6, 6, 8)
    net = Network(
        NetworkConfig(
            width=6, height=6, routing="adaptive",
            accelerated_nodes=set(mcs), **variant,
        )
    )
    gen = SyntheticTrafficGenerator(
        net, ReplyTrafficPattern(mcs, ccs, seed=4), rate=rate, seed=6
    )
    gen.run(cycles)
    print(f"######## {label} ########")
    print(MeshRenderer(net, mcs).snapshot())
    print(
        f"\ndelivered {net.stats.packets_delivered} packets, "
        f"mean latency {net.stats.mean_latency():.1f}, "
        f"MC-side backlog {gen.backlog_packets} packets\n"
    )


def main() -> None:
    rate = float(sys.argv[1]) if len(sys.argv) > 1 else 0.2
    cycles = int(sys.argv[2]) if len(sys.argv) > 2 else 600
    run("enhanced baseline", rate, cycles)
    run(
        "full ARI", rate, cycles,
        ni_kind=NIKind.SPLIT, injection_speedup=4,
        priority_enabled=True, priority_levels=2,
    )


if __name__ == "__main__":
    main()
