"""Run one spec through both simulation kernels and compare.

The activity kernel (``kernel="activity"``) skips provably-dead work —
idle routers, stalled cores, quiet NIs — under a byte-identity contract
with the reference kernel: every stat and counter must match exactly.
This demo times the two back-to-back on the same spec, prints the
speedup, and hash-digests both result payloads to show they are the
same bytes.

Run with:  make kernel-demo
"""

import dataclasses
import hashlib
import json
import time

from repro.experiments.equivalence import result_payload
from repro.experiments.executor import simulate_spec
from repro.experiments.runner import RunSpec

SPEC = RunSpec("bfs", "ada-ari", cycles=600, warmup=150, mesh=6)


def run(kernel: str):
    spec = dataclasses.replace(SPEC, kernel=kernel)
    t0 = time.perf_counter()
    result = simulate_spec(spec)
    wall = time.perf_counter() - t0
    payload = result_payload(result)
    digest = hashlib.sha1(
        json.dumps(payload, sort_keys=True, default=repr).encode()
    ).hexdigest()[:16]
    return result, wall, digest


def main() -> None:
    print(f"spec: {SPEC.benchmark}/{SPEC.scheme}, mesh {SPEC.mesh}x"
          f"{SPEC.mesh}, {SPEC.cycles} cycles")
    rows = {}
    for kernel in ("reference", "activity"):
        result, wall, digest = run(kernel)
        rows[kernel] = (wall, digest)
        print(f"  {kernel:9s}  {wall:6.2f} s   ipc={result.ipc:.3f}   "
              f"reply_lat={result.reply_latency:.1f}   digest={digest}")
    ref_wall, ref_digest = rows["reference"]
    act_wall, act_digest = rows["activity"]
    print(f"speedup: {ref_wall / act_wall:.2f}x")
    if ref_digest == act_digest:
        print("results identical (same digest) — byte-identity holds")
    else:
        raise SystemExit("DIGEST MISMATCH: kernels diverged — file a bug")


if __name__ == "__main__":
    main()
