#!/usr/bin/env python
"""NoC-only study of the reply-injection bottleneck (paper Sec. 3 / Fig. 7).

Drives a single reply network with synthetic few-to-many traffic from the
8 diamond-placed MC nodes at increasing rates and measures the saturation
throughput of each injection microarchitecture:

* enhanced baseline (single NI queue, 1 flit/cycle supply),
* MultiPort router [Bakhoda MICRO'10] (more consumption paths, same supply),
* split NI only (ARI supply side alone — note it does NOT help by itself),
* split NI + crossbar speedup (both sides: the ARI win),
* full ARI (adds prioritization).

Run:  python examples/injection_bottleneck.py
"""

from repro.noc import Network, NetworkConfig
from repro.noc.ni import NIKind
from repro.noc.topology import default_placement
from repro.workloads.traffic import ReplyTrafficPattern, SyntheticTrafficGenerator

CYCLES = 3000
RATES = [0.05, 0.10, 0.15, 0.20, 0.30]

VARIANTS = {
    "enhanced-baseline": dict(ni_kind=NIKind.ENHANCED),
    "multiport": dict(ni_kind=NIKind.MULTIPORT, num_injection_ports=2),
    "split-only": dict(ni_kind=NIKind.SPLIT),
    "split+speedup": dict(ni_kind=NIKind.SPLIT, injection_speedup=4),
    "full-ari": dict(
        ni_kind=NIKind.SPLIT,
        injection_speedup=4,
        priority_enabled=True,
        priority_levels=2,
    ),
}


def run(variant: dict, rate: float):
    mcs, ccs = default_placement(6, 6, 8)
    cfg = NetworkConfig(
        width=6, height=6, routing="adaptive", accelerated_nodes=set(mcs),
        **variant,
    )
    net = Network(cfg)
    pattern = ReplyTrafficPattern(mcs, ccs, seed=11)
    gen = SyntheticTrafficGenerator(
        net, pattern, rate=rate,
        priority_levels=cfg.priority_levels if cfg.priority_enabled else 1,
        seed=13,
    )
    gen.run(CYCLES)
    delivered = net.stats.packets_delivered
    lat = net.stats.mean_latency()
    return delivered / CYCLES, lat, gen.stall_cycles


def main() -> None:
    print(f"{CYCLES} cycles, 8 MC injectors, 28 CC sinks, 6x6 adaptive mesh")
    print("cells: delivered pkts/cycle (mean packet latency)\n")
    header = f"{'offered rate/MC':>16s}" + "".join(f"{n:>20s}" for n in VARIANTS)
    print(header)
    print("-" * len(header))
    for rate in RATES:
        cells = []
        for variant in VARIANTS.values():
            tput, lat, _ = run(variant, rate)
            cells.append(f"{tput:6.3f} ({lat:6.1f})")
        print(f"{rate:>16.2f}" + "".join(f"{c:>20s}" for c in cells))
    print(
        "\nReading the bottom row (heavily oversubscribed): the baseline and"
        "\nMultiPort saturate near 8 MCs x 1 flit/cycle / 9 flits = ~0.9"
        "\npkt/cycle total, split-only adds latency without throughput, and"
        "\nsupply+consumption together roughly double the delivered rate."
    )


if __name__ == "__main__":
    main()
