#!/usr/bin/env python
"""Design-space sweep: VC count x injection speedup, exported to CSV.

Uses the parallel sweep API to map ARI's design space on one
benchmark — the Sec. 4.2 trade-off (how much consumption-side speedup a
given number of VCs can exploit) as a grid — and writes
``results/vc_speedup_sweep.csv`` plus a small console pivot table.
Set ``REPRO_WORKERS`` (or pass a worker count) to shard the grid
across processes.

Run:  python examples/design_space_sweep.py [benchmark] [cycles] [workers]
"""

import os
import sys

from repro.experiments.api import sweep
from repro.experiments.runner import RunSpec
from repro.experiments.sweeps import best_by, write_csv

OUT = os.path.join(os.path.dirname(__file__), "..", "results")


def main() -> None:
    bm = sys.argv[1] if len(sys.argv) > 1 else "hotspot"
    cycles = int(sys.argv[2]) if len(sys.argv) > 2 else 700
    workers = int(sys.argv[3]) if len(sys.argv) > 3 else None

    base = RunSpec(bm, "ada-ari", cycles=cycles, warmup=cycles // 4)
    axes = {"num_vcs": [2, 3, 4], "injection_speedup": [1, 2, 3, 4]}

    def progress(done, n, spec, source):
        print(
            f"  [{done}/{n}] vcs={spec.num_vcs} speedup={spec.injection_speedup}"
            f" ({source})",
            flush=True,
        )

    print(f"sweeping {bm}: VCs x speedup ({cycles} cycles per point)")
    records = [
        r
        for r in sweep(base, axes, workers=workers, progress=progress)
        # Eq. (2): speedup may not exceed the VC count.
        if r["injection_speedup"] <= r["num_vcs"]
    ]

    os.makedirs(OUT, exist_ok=True)
    path = os.path.join(OUT, "vc_speedup_sweep.csv")
    write_csv(records, path)
    print(f"\nwrote {path}\n")

    # Pivot: rows = VCs, columns = speedup, cells = IPC.
    speedups = sorted({r["injection_speedup"] for r in records})
    print("IPC pivot (rows = VCs, cols = crossbar speedup):")
    print("       " + "".join(f"S={s:<8}" for s in speedups))
    for vcs in sorted({r["num_vcs"] for r in records}):
        row = [f"VC={vcs:<3}"]
        for s in speedups:
            cell = next(
                (r for r in records
                 if r["num_vcs"] == vcs and r["injection_speedup"] == s),
                None,
            )
            row.append(f"{cell['ipc']:<10.3f}" if cell else " " * 10)
        print("  " + "".join(row))

    best = best_by(records, "ipc")
    print(
        f"\nbest point: {best['num_vcs']} VCs, speedup {best['injection_speedup']} "
        f"(ipc {best['ipc']:.3f}) — the paper's guideline picks "
        f"S = min(N_out, N_VC) (Sec. 4.2)."
    )


if __name__ == "__main__":
    main()
