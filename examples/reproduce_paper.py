#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation.

Runs all experiment drivers (Figs. 3-6, 9-16, the Sec. 3 utilization
analysis, Sec. 6.1 area, Sec. 7.5 scalability) at the requested scale and
writes the tables + paper side-by-sides to stdout and to
``results/figures/<name>.txt``.  Results are cached in the per-run
result store (``results/cache/``), so interrupted runs resume where they
stopped; set ``REPRO_WORKERS`` to shard each figure's grid across
worker processes.

Run:  python examples/reproduce_paper.py [smoke|quick|paper] [fig ...]
e.g.  python examples/reproduce_paper.py quick
      python examples/reproduce_paper.py paper fig11 fig12
"""

import os
import sys
import time

from repro.experiments import figures
from repro.experiments.report import grid_rows, to_csv

OUT_DIR = os.path.join(os.path.dirname(__file__), "..", "results", "figures")


def main() -> None:
    args = sys.argv[1:]
    scale = args[0] if args else "quick"
    wanted = args[1:] or list(figures.ALL_FIGURES)
    os.makedirs(OUT_DIR, exist_ok=True)

    for name in wanted:
        driver = figures.ALL_FIGURES[name]
        t0 = time.time()
        kwargs = {} if name == "sec61_area" else {"scale": scale}
        result = driver(**kwargs)
        dt = time.time() - t0
        block = [
            f"==== {name} ({driver.__doc__.strip().splitlines()[0]}) ====",
            result["table"],
            f"summary : {result['summary']}",
            f"paper   : {result['paper']}",
            f"[{dt:.1f}s at scale={scale}]",
        ]
        text = "\n".join(block)
        print(text + "\n")
        with open(os.path.join(OUT_DIR, f"{name}.txt"), "w") as fh:
            fh.write(text + "\n")
        rows = result.get("rows")
        if isinstance(rows, dict) and rows and all(
            isinstance(v, dict) for v in rows.values()
        ):
            headers, data = grid_rows(rows)
            with open(os.path.join(OUT_DIR, f"{name}.csv"), "w") as fh:
                fh.write(to_csv(headers, data) + "\n")


if __name__ == "__main__":
    main()
