#!/usr/bin/env python
"""Design-space exploration demo: find a better ARI config than the paper's.

Runs the same budgeted search three ways over the default ARI knob
triple (injection speedup x split-queue count x starvation threshold):

1. ``random`` — the honest baseline strategy,
2. ``hillclimb`` — (mu+lambda) evolutionary search,
3. ``surrogate`` — the lightweight model-guided strategy,

each scored on reply latency (the paper's central bottleneck metric)
against the paper-default configuration, with infeasible candidates
(Eq. 2 violations, split-queue/VC mismatches) pruned by the static
checker before they cost any simulation.  All three strategies share the
content-addressed result store, so overlapping proposals are free, and
the hillclimb run persists a trial ledger which is then *resumed* to
show the replay machinery: same trajectory, zero new simulations.

Run:  PYTHONPATH=src python examples/search_demo.py
"""

import os
import shutil
import tempfile

from repro.experiments.runner import RunSpec
from repro.search import (
    Optimizer,
    SearchConfig,
    SearchSpace,
    TrialLedger,
    parse_objective,
)

BASE = RunSpec(
    "bfs", "ada-ari", cycles=300, warmup=75, mesh=4, kernel="activity"
)
BUDGET = 16
OBJECTIVE = "min:reply_latency"


def config(strategy: str) -> SearchConfig:
    return SearchConfig(
        space=SearchSpace.default(BASE),
        objective=parse_objective(OBJECTIVE),
        strategy=strategy,
        seed=0,
        budget=BUDGET,
        batch=8,
    )


def main() -> None:
    space = SearchSpace.default(BASE)
    print(f"space   : {space.size} points over")
    for line in space.describe():
        print(f"          {line}")
    print(f"objective: {OBJECTIVE}, budget {BUDGET} per strategy\n")

    workdir = tempfile.mkdtemp(prefix="search_demo_")
    ledger_path = os.path.join(workdir, "hillclimb.jsonl")
    try:
        for strategy in ("random", "hillclimb", "surrogate"):
            ledger = (
                TrialLedger(ledger_path) if strategy == "hillclimb" else None
            )
            report = Optimizer(config(strategy), ledger=ledger).run()
            verdict = "beats" if report.improved_on_baseline() else "ties"
            knobs = ", ".join(
                f"{k}={v}" for k, v in sorted(report.best_point.items())
            )
            print(f"{strategy:9s}: best {report.best_score:8.4g} "
                  f"(baseline {report.baseline_score:.4g}, {verdict}) "
                  f"[{report.pruned} pruned free] {knobs}")

        print("\nresuming the hillclimb ledger (nothing re-simulates):")
        resumed = Optimizer(
            config("hillclimb"),
            ledger=TrialLedger(ledger_path),
            resume=True,
        ).run()
        print(resumed.render())
        assert resumed.executed == 0, "replay must not re-simulate"
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
