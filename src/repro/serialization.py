"""JSON (de)serialization for configurations and results.

Lets users pin down experiment setups in version-controllable files::

    python -m repro run bfs ada-ari            # built-ins
    cfg = load_gpu_config("my_gpu.json")       # custom silicon

Everything round-trips: ``load_*(dump_*(x)) == x``.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict

from repro.core.ari import ARIConfig
from repro.core.schemes import Scheme
from repro.gpu.config import GDDR5TimingParams, GPUConfig
from repro.gpu.system import SimulationResult
from repro.noc.ni import NIKind


# ---------------------------------------------------------------------------
# GPUConfig
# ---------------------------------------------------------------------------

def gpu_config_to_dict(cfg: GPUConfig) -> Dict[str, Any]:
    d = dataclasses.asdict(cfg)
    return d


def gpu_config_from_dict(d: Dict[str, Any]) -> GPUConfig:
    d = dict(d)
    dram = d.pop("dram", None)
    if dram is not None:
        d["dram"] = GDDR5TimingParams(**dram)
    return GPUConfig(**d)


def dump_gpu_config(cfg: GPUConfig, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(gpu_config_to_dict(cfg), fh, indent=2, sort_keys=True)


def load_gpu_config(path: str) -> GPUConfig:
    with open(path) as fh:
        return gpu_config_from_dict(json.load(fh))


# ---------------------------------------------------------------------------
# Scheme / ARIConfig
# ---------------------------------------------------------------------------

def scheme_to_dict(scheme: Scheme) -> Dict[str, Any]:
    d = dataclasses.asdict(scheme)
    d["ari"] = dataclasses.asdict(scheme.ari)
    if scheme.force_ni_kind is not None:
        d["force_ni_kind"] = scheme.force_ni_kind.value
    return d


def scheme_from_dict(d: Dict[str, Any]) -> Scheme:
    d = dict(d)
    ari = d.pop("ari", None)
    if ari is not None:
        d["ari"] = ARIConfig(**ari)
    kind = d.pop("force_ni_kind", None)
    if kind is not None:
        d["force_ni_kind"] = NIKind(kind)
    return Scheme(**d)


def dump_scheme(scheme: Scheme, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(scheme_to_dict(scheme), fh, indent=2, sort_keys=True)


def load_scheme(path: str) -> Scheme:
    with open(path) as fh:
        return scheme_from_dict(json.load(fh))


# ---------------------------------------------------------------------------
# SimulationResult
# ---------------------------------------------------------------------------

def result_to_dict(result: SimulationResult) -> Dict[str, Any]:
    return dataclasses.asdict(result)


def result_from_dict(d: Dict[str, Any]) -> SimulationResult:
    return SimulationResult(**d)


def dump_result(result: SimulationResult, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(result_to_dict(result), fh, indent=2, sort_keys=True)


def load_result(path: str) -> SimulationResult:
    with open(path) as fh:
        return result_from_dict(json.load(fh))
