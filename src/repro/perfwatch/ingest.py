"""Ingest: flatten bench artifacts (and run extras) into ledger records.

Three sources feed the ledger:

* ``results/bench_tables/BENCH_*.json`` — both the stamped envelope
  format (:mod:`repro.perfwatch.schema`) and the bare pre-envelope
  dicts, so the one-shot *backfill* of the committed history is just an
  ordinary :func:`ingest_tables` call;
* :class:`~repro.gpu.system.SimulationResult` extras — the HostProfiler
  rates (``sim_wall_s`` / ``sim_cycles_per_sec`` / ``build_wall_s``)
  that :mod:`repro.experiments.api` stamps on every live run;
* a raw :class:`~repro.telemetry.HostProfiler` summary.

Every record carries the config/host fingerprint
(:func:`repro.experiments.fingerprint.config_fingerprint` over
``{"config":…, "host":…, "seed":…}``) so the detector's driver analysis
can later diff exactly which axes moved.
"""

from __future__ import annotations

import glob
import json
import os
from typing import Dict, List, Mapping, Optional, Tuple

from repro.experiments.fingerprint import config_fingerprint, flatten_config
from repro.perfwatch import schema
from repro.perfwatch.ledger import LedgerRecord, PerfLedger

_DEFAULT_TABLES = os.path.join(
    os.path.dirname(__file__), "..", "..", "..", "results", "bench_tables"
)


def default_tables_dir() -> str:
    return os.path.abspath(_DEFAULT_TABLES)


def bench_name_of(path: str) -> str:
    """``.../BENCH_simulator_speed.json`` -> ``simulator_speed``."""
    base = os.path.basename(path)
    if base.startswith("BENCH_"):
        base = base[len("BENCH_"):]
    if base.endswith(".json"):
        base = base[: -len(".json")]
    return base


def _fingerprint(config: Mapping, host: Mapping, seed) -> str:
    return config_fingerprint({"config": config, "host": host, "seed": seed})


def _build_records(
    bench: str,
    data: Mapping,
    config: Mapping,
    host: Mapping,
    *,
    sha: str,
    ts: str,
    seed: Optional[int],
) -> List[LedgerRecord]:
    flat_config = flatten_config(dict(config))
    fingerprint = _fingerprint(flat_config, host, seed)
    return [
        LedgerRecord(
            bench=bench,
            metric=metric,
            value=value,
            sha=sha,
            fingerprint=fingerprint,
            ts=ts,
            seed=seed,
            config=flat_config,
            host=dict(host),
        )
        for metric, value in sorted(schema.flatten_metrics(data).items())
    ]


def records_from_payload(
    bench: str,
    payload: Mapping,
    *,
    sha: Optional[str] = None,
    ts: Optional[str] = None,
) -> List[LedgerRecord]:
    """Ledger records for one bench artifact (envelope or bare dict).

    For envelopes, the stamp (sha/timestamp/seed/host/config) comes from
    the artifact itself; ``sha``/``ts`` arguments only fill gaps.  Bare
    legacy dicts are split heuristically (:func:`schema.split_payload`)
    and stamped with the caller's sha/ts and the current host.
    """
    if schema.is_envelope(payload):
        inner_config, data = schema.split_payload(payload["data"])
        config = dict(payload.get("config") or {})
        config.update(inner_config)
        seed = payload.get("seed")
        return _build_records(
            str(payload.get("bench") or bench),
            data,
            config,
            dict(payload.get("host") or {}),
            sha=str(payload.get("git_sha") or sha or "unknown"),
            ts=str(payload.get("generated_utc") or ts or ""),
            seed=int(seed) if isinstance(seed, int) else None,
        )
    config, data = schema.split_payload(payload)
    return _build_records(
        bench,
        data,
        config,
        schema.host_info(),
        sha=sha if sha is not None else schema.git_sha(),
        ts=ts if ts is not None else schema.utc_now(),
        seed=None,
    )


def records_from_extras(
    bench: str,
    extras: Mapping,
    *,
    config: Optional[Mapping] = None,
    sha: Optional[str] = None,
    ts: Optional[str] = None,
    seed: Optional[int] = None,
) -> List[LedgerRecord]:
    """Ledger records from a run's extras (HostProfiler rates etc.)."""
    return _build_records(
        bench,
        dict(extras),
        dict(config or {}),
        schema.host_info(),
        sha=sha if sha is not None else schema.git_sha(),
        ts=ts if ts is not None else schema.utc_now(),
        seed=seed,
    )


def records_from_profiler(
    bench: str,
    profiler,
    *,
    config: Optional[Mapping] = None,
    sha: Optional[str] = None,
    seed: Optional[int] = None,
) -> List[LedgerRecord]:
    """Ledger records from a :class:`HostProfiler` phase/rate summary."""
    return records_from_extras(
        bench, profiler.summary(), config=config, sha=sha, seed=seed
    )


def ingest_tables(
    ledger: PerfLedger,
    tables_dir: Optional[str] = None,
    *,
    sha: Optional[str] = None,
    dry_run: bool = False,
) -> Tuple[int, List[LedgerRecord], Dict[str, str]]:
    """Ingest every ``BENCH_*.json`` under ``tables_dir`` into the ledger.

    Returns ``(appended, records, problems)`` where ``problems`` maps
    file names to the reason they were skipped.  Ingesting the same
    artifacts twice is a no-op thanks to ledger-key dedup — which is
    exactly what makes the one-shot backfill safe to re-run.
    """
    tables_dir = os.path.abspath(tables_dir or default_tables_dir())
    records: List[LedgerRecord] = []
    problems: Dict[str, str] = {}
    for path in sorted(glob.glob(os.path.join(tables_dir, "BENCH_*.json"))):
        name = os.path.basename(path)
        try:
            with open(path) as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            problems[name] = f"unreadable: {exc}"
            continue
        if not isinstance(payload, dict):
            problems[name] = "not a JSON object"
            continue
        recs = records_from_payload(bench_name_of(path), payload, sha=sha)
        if not recs:
            problems[name] = "no numeric metrics found"
            continue
        records.extend(recs)
    appended = 0 if dry_run else ledger.append(records)
    return appended, records, problems
