"""The perf ledger: append-only, schema-versioned JSONL KPI history.

One :class:`LedgerRecord` is one observed value of one metric of one
bench at one commit under one config/host fingerprint.  The ledger file
(``results/perf_ledger/ledger.jsonl`` by default, ``REPRO_PERF_LEDGER``
to relocate) is append-only: ingest never rewrites history, re-ingesting
the same (sha, bench, metric, fingerprint) is a no-op, and unreadable
lines are skipped (and counted) rather than fatal — a merge conflict in
a ledger must never brick the perf gate.

The optional pinned baseline (``baseline.json`` next to the ledger)
stores blessed per-series bands written by ``repro perfwatch baseline
update``; when present for a series it replaces the rolling-window
baseline in :mod:`repro.perfwatch.detect`.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

#: Version of the ledger record format.
LEDGER_SCHEMA = 1

#: Env var naming the ledger directory.
LEDGER_ENV = "REPRO_PERF_LEDGER"

_DEFAULT_ROOT = os.path.join(
    os.path.dirname(__file__), "..", "..", "..", "results", "perf_ledger"
)

SeriesKey = Tuple[str, str]  # (bench, metric)


@dataclass(frozen=True)
class LedgerRecord:
    """One metric observation: what was measured, where, when, under what."""

    bench: str
    metric: str
    value: float
    sha: str = "unknown"
    fingerprint: str = ""
    ts: str = ""
    seed: Optional[int] = None
    config: Dict[str, object] = field(default_factory=dict)
    host: Dict[str, object] = field(default_factory=dict)
    schema: int = LEDGER_SCHEMA

    def key(self) -> Tuple[str, str, str, str]:
        """Dedup identity: commit x bench x metric path x fingerprint."""
        return (self.sha, self.bench, self.metric, self.fingerprint)

    def series(self) -> SeriesKey:
        return (self.bench, self.metric)

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "LedgerRecord":
        if not isinstance(payload, dict):
            raise ValueError("ledger record must be a JSON object")
        schema = payload.get("schema", LEDGER_SCHEMA)
        if not isinstance(schema, int) or schema > LEDGER_SCHEMA:
            raise ValueError(f"unsupported ledger schema {schema!r}")
        try:
            bench = str(payload["bench"])
            metric = str(payload["metric"])
            value = float(payload["value"])  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed ledger record: {exc}") from exc
        seed = payload.get("seed")
        return cls(
            bench=bench,
            metric=metric,
            value=value,
            sha=str(payload.get("sha", "unknown")),
            fingerprint=str(payload.get("fingerprint", "")),
            ts=str(payload.get("ts", "")),
            seed=int(seed) if isinstance(seed, (int, float)) else None,
            config=dict(payload.get("config") or {}),
            host=dict(payload.get("host") or {}),
            schema=schema,
        )


def default_ledger_root() -> str:
    return os.path.abspath(os.environ.get(LEDGER_ENV, _DEFAULT_ROOT))


class PerfLedger:
    """Append-only JSONL history of :class:`LedgerRecord` entries."""

    def __init__(self, root: Optional[str] = None):
        self.root = os.path.abspath(root) if root else default_ledger_root()
        self.path = os.path.join(self.root, "ledger.jsonl")
        self.baseline_path = os.path.join(self.root, "baseline.json")
        self._lock = threading.Lock()
        #: Unparseable/incompatible lines seen by the last :meth:`records`.
        self.skipped_lines = 0

    @property
    def exists(self) -> bool:
        return os.path.exists(self.path)

    # -- read ----------------------------------------------------------------
    def records(self) -> List[LedgerRecord]:
        """All parseable records in file (= ingest) order."""
        out: List[LedgerRecord] = []
        skipped = 0
        try:
            with open(self.path) as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        out.append(LedgerRecord.from_dict(json.loads(line)))
                    except (ValueError, TypeError):
                        skipped += 1
        except OSError:
            pass
        self.skipped_lines = skipped
        return out

    def series(self) -> Dict[SeriesKey, List[LedgerRecord]]:
        """Records grouped per (bench, metric), each series in file order."""
        grouped: Dict[SeriesKey, List[LedgerRecord]] = {}
        for rec in self.records():
            grouped.setdefault(rec.series(), []).append(rec)
        return grouped

    def history(self, bench: str, metric: str) -> List[LedgerRecord]:
        return [
            r for r in self.records() if r.bench == bench and r.metric == metric
        ]

    def shas(self) -> List[str]:
        """Distinct commit SHAs in first-appearance order."""
        seen: Dict[str, None] = {}
        for rec in self.records():
            seen.setdefault(rec.sha)
        return list(seen)

    # -- write ---------------------------------------------------------------
    def append(
        self, records: Iterable[LedgerRecord], dedupe: bool = True
    ) -> int:
        """Append records, skipping keys already present; returns # written."""
        records = list(records)
        if not records:
            return 0
        with self._lock:
            known = (
                {r.key() for r in self.records()} if dedupe else set()
            )
            os.makedirs(self.root, exist_ok=True)
            written = 0
            with open(self.path, "a") as fh:
                for rec in records:
                    if dedupe and rec.key() in known:
                        continue
                    known.add(rec.key())
                    fh.write(json.dumps(rec.to_dict(), sort_keys=True) + "\n")
                    written += 1
        return written

    # -- pinned baseline -----------------------------------------------------
    def load_baseline(self) -> Dict[str, Dict[str, float]]:
        """``{"bench::metric": {"median":..,"lo":..,"hi":..,"n":..}}``."""
        try:
            with open(self.baseline_path) as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return {}
        return payload if isinstance(payload, dict) else {}

    def save_baseline(self, baseline: Dict[str, Dict[str, float]]) -> str:
        os.makedirs(self.root, exist_ok=True)
        with open(self.baseline_path, "w") as fh:
            json.dump(baseline, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return self.baseline_path

    def clear_baseline(self) -> bool:
        try:
            os.remove(self.baseline_path)
            return True
        except OSError:
            return False

    def info(self) -> Dict[str, object]:
        recs = self.records()
        return {
            "path": self.path,
            "records": len(recs),
            "series": len({r.series() for r in recs}),
            "shas": len({r.sha for r in recs}),
            "skipped_lines": self.skipped_lines,
            "baseline_pinned": len(self.load_baseline()),
        }

    def __repr__(self) -> str:  # pragma: no cover
        return f"PerfLedger({self.root!r})"


def series_id(key: SeriesKey) -> str:
    """The flat ``bench::metric`` id used by baseline files and reports."""
    return f"{key[0]}::{key[1]}"
