"""Bench-artifact schema: the stamped envelope and metric flattening.

Every ``results/bench_tables/BENCH_*.json`` artifact is (since schema
version 1) an *envelope*::

    {
      "schema_version": 1,
      "bench": "simulator_speed",
      "generated_utc": "2026-08-07T12:00:00Z",
      "git_sha": "2e8bc1c3a9d4",
      "seed": 3,                 # or null when the bench mixes seeds
      "host": {"platform": ..., "python": ..., "machine": ..., "cpus": 4},
      "config": {...},           # non-metric context (driver-analysis axes)
      "data": {...}              # the actual measurements
    }

Pre-envelope artifacts (bare measurement dicts) remain readable:
:func:`split_payload` separates their metric leaves from config-ish
context, so perfwatch's one-shot backfill ingests the committed history
unchanged.  :func:`flatten_metrics` turns any measurement tree into
dotted metric paths — lists of dicts are labeled by their identifying
keys (``rows[scheme=ada-ari,dead_links=1].ipc``) so a reordered table
never silently remaps a series.
"""

from __future__ import annotations

import os
import platform
import subprocess
from datetime import datetime, timezone
from typing import Dict, Mapping, Optional, Tuple

from repro.experiments.fingerprint import config_fingerprint

#: Version of the BENCH_*.json envelope (and of flattened metric paths).
SCHEMA_VERSION = 1

#: Env var overriding git-SHA discovery (CI can inject the exact commit).
GIT_SHA_ENV = "REPRO_GIT_SHA"

#: Keys that identify a row inside a list-of-dicts measurement table.
_ID_KEYS = ("scheme", "benchmark", "name", "dead_links", "seed", "workers")


def host_info() -> Dict[str, object]:
    """The host axes that make timing numbers (in)comparable."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count() or 1,
    }


def host_fingerprint(info: Optional[Mapping] = None) -> str:
    return config_fingerprint(info if info is not None else host_info())


def git_sha(default: str = "unknown") -> str:
    """The current commit (env override > ``git rev-parse`` > default)."""
    env = os.environ.get(GIT_SHA_ENV)
    if env:
        return env[:12]
    here = os.path.dirname(os.path.abspath(__file__))
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=here,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return default
    sha = out.stdout.strip()
    return sha[:12] if out.returncode == 0 and sha else default


def utc_now() -> str:
    """UTC timestamp in compact ISO form (``...Z``)."""
    now = datetime.now(timezone.utc)  # det: allow(det-wallclock)
    return now.strftime("%Y-%m-%dT%H:%M:%SZ")


def bench_envelope(
    bench: str,
    data: Mapping,
    *,
    seed: Optional[int] = None,
    config: Optional[Mapping] = None,
    sha: Optional[str] = None,
    host: Optional[Mapping] = None,
    ts: Optional[str] = None,
) -> Dict[str, object]:
    """Wrap one bench's measurements in the stamped envelope."""
    return {
        "schema_version": SCHEMA_VERSION,
        "bench": bench,
        "generated_utc": ts if ts is not None else utc_now(),
        "git_sha": sha if sha is not None else git_sha(),
        "seed": seed,
        "host": dict(host) if host is not None else host_info(),
        "config": dict(config) if config else {},
        "data": dict(data),
    }


def is_envelope(payload) -> bool:
    return (
        isinstance(payload, Mapping)
        and isinstance(payload.get("schema_version"), int)
        and isinstance(payload.get("data"), Mapping)
    )


def split_payload(payload: Mapping) -> Tuple[Dict[str, object], Dict[str, object]]:
    """Separate a bare measurement dict into ``(config, data)``.

    A nested ``"config"`` dict and any string/bool scalars are context;
    everything else is measurement data.  Envelopes should be unwrapped
    before calling this (their ``data`` may still carry a config subdict,
    e.g. a campaign report, which this pulls out too).
    """
    config: Dict[str, object] = {}
    data: Dict[str, object] = {}
    for key, value in payload.items():
        if key == "config" and isinstance(value, Mapping):
            config.update(value)
        elif isinstance(value, str) or isinstance(value, bool):
            config[key] = value
        else:
            data[key] = value
    return config, data


def _row_label(name: str, index: int, row: Mapping) -> str:
    ids = [f"{k}={row[k]}" for k in _ID_KEYS if k in row]
    if ids:
        return f"{name}[{','.join(ids)}]"
    return f"{name}[{index}]"


def flatten_metrics(data: Mapping, prefix: str = "") -> Dict[str, float]:
    """Numeric leaves of a measurement tree as dotted metric paths.

    Dicts nest with ``.``; lists of dicts label rows by their identifying
    keys (falling back to the index); numeric lists index their items.
    Strings and booleans are context, not metrics, and are skipped.
    """
    out: Dict[str, float] = {}
    for key, value in data.items():
        name = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, Mapping):
            out.update(flatten_metrics(value, name))
        elif isinstance(value, (list, tuple)):
            for i, item in enumerate(value):
                if isinstance(item, Mapping):
                    out.update(flatten_metrics(item, _row_label(name, i, item)))
                elif _is_number(item):
                    out[f"{name}[{i}]"] = float(item)
        elif _is_number(value):
            out[name] = float(value)
    return out


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)
