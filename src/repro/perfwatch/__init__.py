"""repro.perfwatch — continuous performance intelligence over bench tables.

The layer has four pieces, mirroring how a perf regression is actually
hunted down:

* **ledger** (:mod:`~repro.perfwatch.ledger`) — an append-only,
  schema-versioned JSONL KPI store under ``results/perf_ledger/``, keyed
  by commit SHA, bench, metric path, and config/host fingerprint;
* **ingest** (:mod:`~repro.perfwatch.ingest`) — flattens the
  ``BENCH_*.json`` tables (stamped envelopes and legacy bare dicts
  alike) plus run extras / HostProfiler summaries into ledger records;
* **detect** (:mod:`~repro.perfwatch.detect`) — noise-aware
  regression/improvement detection against a rolling median+MAD
  baseline, with per-metric direction policies and a min-samples guard,
  plus driver analysis (:mod:`~repro.perfwatch.drivers`) attributing
  deltas to changed config axes and flagging data-quality rot;
* **report** (:mod:`~repro.perfwatch.report`) — markdown/JSON reports
  with sparkline trends, and a CLI/CI gate
  (:mod:`~repro.perfwatch.cli`) riding the staticcheck severity model.
"""

from repro.perfwatch.detect import (
    COUNTER,
    DEFAULT_POLICIES,
    EITHER,
    HIGHER_BETTER,
    LOWER_BETTER,
    MetricPolicy,
    detect,
    detect_series,
    pin_baseline,
    policy_for,
    robust_band,
)
from repro.perfwatch.drivers import attribute_axes, data_quality, format_axes
from repro.perfwatch.findings import PerfFinding, findings_report, sort_findings
from repro.perfwatch.ingest import (
    ingest_tables,
    records_from_extras,
    records_from_payload,
    records_from_profiler,
)
from repro.perfwatch.ledger import LedgerRecord, PerfLedger, series_id
from repro.perfwatch.report import render_json, render_markdown, series_rows
from repro.perfwatch.schema import (
    SCHEMA_VERSION,
    bench_envelope,
    flatten_metrics,
    git_sha,
    host_fingerprint,
    host_info,
    is_envelope,
    split_payload,
    utc_now,
)

__all__ = [
    "COUNTER",
    "DEFAULT_POLICIES",
    "EITHER",
    "HIGHER_BETTER",
    "LOWER_BETTER",
    "LedgerRecord",
    "MetricPolicy",
    "PerfFinding",
    "PerfLedger",
    "SCHEMA_VERSION",
    "attribute_axes",
    "bench_envelope",
    "data_quality",
    "detect",
    "detect_series",
    "findings_report",
    "flatten_metrics",
    "format_axes",
    "git_sha",
    "host_fingerprint",
    "host_info",
    "ingest_tables",
    "is_envelope",
    "pin_baseline",
    "policy_for",
    "records_from_extras",
    "records_from_payload",
    "records_from_profiler",
    "render_json",
    "render_markdown",
    "robust_band",
    "series_id",
    "series_rows",
    "sort_findings",
    "split_payload",
    "utc_now",
]
