"""Markdown/JSON perf-intelligence reports over the ledger.

The markdown report reads like the telemetry summary tables: one row per
KPI series with min/median/last plus a sparkline trend rendered by the
same :func:`repro.telemetry.render.series_sparkline` the ``repro
telemetry`` CLI uses, followed by the findings grouped by severity.  The
JSON report is the same content machine-readable, for dashboards or a
PR-comment bot.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.perfwatch.detect import COUNTER, Policies, policy_for, robust_band
from repro.perfwatch.findings import PerfFinding
from repro.perfwatch.ledger import PerfLedger, series_id
from repro.telemetry.render import series_sparkline

_SEVERITY_MARK = {"error": "✗", "warning": "!", "info": "·"}


def series_rows(
    ledger: PerfLedger, *, policies: Optional[Policies] = None
) -> List[Dict[str, object]]:
    """One summary row per (bench, metric) series, in ledger order."""
    rows: List[Dict[str, object]] = []
    for key, records in ledger.series().items():
        values = [r.value for r in records]
        policy = policy_for(key[1], policies)
        if len(values) > 1:
            center, lo, hi = robust_band(values, policy)
        else:
            center, lo, hi = values[0], values[0], values[0]
        rows.append({
            "series": series_id(key),
            "bench": key[0],
            "metric": key[1],
            "n": len(values),
            "first": values[0],
            "median": center,
            "band": [lo, hi],
            "last": values[-1],
            "last_sha": records[-1].sha,
            "direction": policy.direction,
            "values": values,
        })
    return rows


def _fmt(v: float) -> str:
    return f"{v:.6g}"


def render_markdown(
    ledger: PerfLedger,
    findings: Sequence[PerfFinding],
    *,
    policies: Optional[Policies] = None,
    width: int = 24,
    max_series: Optional[int] = None,
) -> str:
    """The human-facing report: findings first, then per-series trends."""
    rows = series_rows(ledger, policies=policies)
    info = ledger.info()
    lines = [
        "# perfwatch report",
        "",
        f"ledger: `{info['path']}` — {info['records']} record(s), "
        f"{info['series']} series, {info['shas']} commit(s)"
        + (f", {info['skipped_lines']} skipped line(s)"
           if info["skipped_lines"] else ""),
        "",
        "## Findings",
        "",
    ]
    if findings:
        for f in findings:
            mark = _SEVERITY_MARK.get(f.severity.label, "·")
            lines.append(f"- {mark} **{f.severity.label}** `{f.rule}` "
                         f"[{f.location}]: {f.message}")
    else:
        lines.append("- none — every tracked KPI is inside its baseline band")
    lines += [
        "",
        "## Trends",
        "",
        "| series | n | median | last | Δ | trend |",
        "|---|---|---|---|---|---|",
    ]
    shown = rows if max_series is None else rows[:max_series]
    for row in shown:
        med = float(row["median"])
        last = float(row["last"])
        if row["direction"] == COUNTER:
            delta = "counter"
        elif med:
            delta = f"{(last - med) / abs(med):+.1%}"
        else:
            delta = "n/a"
        spark = series_sparkline(row["values"], width=width)
        lines.append(
            f"| `{row['series']}` | {row['n']} | {_fmt(med)} "
            f"| {_fmt(last)} | {delta} | `{spark}` |"
        )
    dropped = len(rows) - len(shown)
    if dropped > 0:
        lines.append(f"| … {dropped} more series not shown | | | | | |")
    lines.append("")
    return "\n".join(lines)


def render_json(
    ledger: PerfLedger,
    findings: Sequence[PerfFinding],
    *,
    policies: Optional[Policies] = None,
) -> Dict[str, object]:
    """Machine-readable mirror of the markdown report."""
    counts = {"error": 0, "warning": 0, "info": 0}
    for f in findings:
        counts[f.severity.label] += 1
    return {
        "schema_version": 1,
        "ledger": ledger.info(),
        "findings": [f.to_dict() for f in findings],
        "counts": counts,
        "ok": counts["error"] == 0,
        "series": [
            {k: v for k, v in row.items() if k != "values"}
            for row in series_rows(ledger, policies=policies)
        ],
    }
