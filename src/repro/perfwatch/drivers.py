"""Driver analysis and data-quality checks over the perf ledger.

*Driver analysis* answers "what changed?" when a metric moves: the
latest record's config/host axes are diffed (via
:func:`repro.experiments.fingerprint.diff_config`) against the nearest
earlier record with a different fingerprint.  An empty diff is itself
the answer — same config, same host, so the delta is code (or raw host
noise).

*Data quality* answers "can the history be trusted?":

``pw-missing-bench``
    A bench with ledger history reported nothing at the latest commit —
    its table silently stopped regenerating.
``pw-stale-table``
    A bench's newest record is more than N distinct commits behind the
    ledger head.
``pw-counter-drift``
    A workload-size counter (simulated cycles, grid size) changed
    between records with the *same* fingerprint — the bench definition
    moved under the series, so rate comparisons across that edge are
    invalid.  Non-monotonic cycle counts are the canonical case.
``pw-uningested-table`` / ``pw-ledger-skip``
    A ``BENCH_*.json`` on disk that the ledger has never seen; ledger
    lines that failed to parse.
"""

from __future__ import annotations

import glob
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.fingerprint import diff_config
from repro.perfwatch.findings import PerfFinding
from repro.perfwatch.ledger import LedgerRecord, PerfLedger
from repro.staticcheck.diagnostics import Severity

#: Default staleness horizon, in distinct ledger commits.
STALE_AFTER_SHAS = 5


def _axes_payload(record: LedgerRecord) -> Dict[str, object]:
    return {
        "config": record.config,
        "host": record.host,
        "seed": record.seed,
    }


def attribute_axes(
    records: Sequence[LedgerRecord],
) -> Dict[str, Tuple[object, object]]:
    """Config/host axes separating the latest record from its history.

    Diffs against the nearest earlier record with a *different*
    fingerprint; an empty dict means no tracked axis changed (the delta
    is code or environment drift the fingerprint cannot see).
    """
    if len(records) < 2:
        return {}
    latest = records[-1]
    for prev in reversed(records[:-1]):
        if prev.fingerprint != latest.fingerprint:
            return diff_config(_axes_payload(prev), _axes_payload(latest))
    return {}


def format_axes(axes: Dict[str, Tuple[object, object]], limit: int = 6) -> str:
    """Human-readable axis diff for finding messages."""
    if not axes:
        return "no config/host axes changed"
    parts = [
        f"{axis}: {old!r} -> {new!r}"
        for axis, (old, new) in list(axes.items())[:limit]
    ]
    more = len(axes) - limit
    if more > 0:
        parts.append(f"(+{more} more)")
    return "changed axes: " + ", ".join(parts)


def data_quality(
    ledger: PerfLedger,
    *,
    tables_dir: Optional[str] = None,
    stale_after: int = STALE_AFTER_SHAS,
    policies=None,
) -> List[PerfFinding]:
    """All data-quality findings for the current ledger + tables dir."""
    from repro.perfwatch.detect import COUNTER, policy_for

    records = ledger.records()
    findings: List[PerfFinding] = []
    if ledger.skipped_lines:
        findings.append(PerfFinding(
            rule="pw-ledger-skip",
            severity=Severity.WARNING,
            bench="ledger",
            metric="",
            message=(
                f"{ledger.skipped_lines} unparseable ledger line(s) skipped"
            ),
            hint="inspect ledger.jsonl for merge damage",
        ))
    if not records:
        return findings

    shas = ledger.shas()
    sha_index = {sha: i for i, sha in enumerate(shas)}
    head = shas[-1]

    last_sha_per_bench: Dict[str, str] = {}
    for rec in records:
        last_sha_per_bench[rec.bench] = rec.sha

    for bench, sha in sorted(last_sha_per_bench.items()):
        if len(shas) < 2:
            break
        behind = sha_index[head] - sha_index[sha]
        if sha != head:
            findings.append(PerfFinding(
                rule="pw-missing-bench",
                severity=Severity.WARNING,
                bench=bench,
                metric="",
                message=(
                    f"no record at ledger head {head}; "
                    f"last seen at {sha} ({behind} commit(s) behind)"
                ),
                sha=head,
                hint="re-run the bench and `repro perfwatch ingest`",
            ))
        if behind >= stale_after:
            findings.append(PerfFinding(
                rule="pw-stale-table",
                severity=Severity.WARNING,
                bench=bench,
                metric="",
                message=(
                    f"bench table is stale: newest record is {behind} "
                    f"distinct commit(s) behind the ledger head "
                    f"(threshold {stale_after})"
                ),
                sha=sha,
                hint="regenerate the bench table or retire the series",
            ))

    # Counter drift: a workload-size counter must not move while the
    # fingerprint stands still (non-monotonic cycle counts etc.).
    for key, series in ledger.series().items():
        policy = policy_for(key[1], policies)
        if policy.direction != COUNTER:
            continue
        for prev, cur in zip(series, series[1:]):
            if prev.fingerprint == cur.fingerprint and prev.value != cur.value:
                findings.append(PerfFinding(
                    rule="pw-counter-drift",
                    severity=Severity.WARNING,
                    bench=key[0],
                    metric=key[1],
                    message=(
                        f"workload counter moved {prev.value:g} -> "
                        f"{cur.value:g} between {prev.sha} and {cur.sha} "
                        "with an unchanged config/host fingerprint; rate "
                        "series across this edge are not comparable"
                    ),
                    value=cur.value,
                    sha=cur.sha,
                    hint="bench workload changed without a config bump",
                ))
                break  # one finding per series is enough signal

    if tables_dir and os.path.isdir(tables_dir):
        known = {rec.bench for rec in records}
        pattern = os.path.join(tables_dir, "BENCH_*.json")
        for path in sorted(glob.glob(pattern)):
            name = os.path.basename(path)[len("BENCH_"):-len(".json")]
            if name not in known:
                findings.append(PerfFinding(
                    rule="pw-uningested-table",
                    severity=Severity.INFO,
                    bench=name,
                    metric="",
                    message=f"{os.path.basename(path)} has never been "
                            "ingested into the perf ledger",
                    hint="run `repro perfwatch ingest`",
                ))
    return findings
