"""PerfFinding: the structured output record of every perfwatch analysis.

Perfwatch grades findings on the same severity ladder as the static
checker and projects them onto :class:`~repro.staticcheck.diagnostics.
Diagnostic` records, so one report/gate model (``CheckReport`` rendering,
``failed(strict)`` exit policy) serves lint findings and perf findings
alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.staticcheck.diagnostics import CheckReport, Diagnostic, Severity


@dataclass
class PerfFinding:
    """One detector/driver-analysis finding, staticcheck-severity graded."""

    rule: str
    severity: Severity
    bench: str
    metric: str
    message: str
    value: Optional[float] = None
    baseline_median: Optional[float] = None
    band: Optional[Tuple[float, float]] = None
    rel_delta: Optional[float] = None
    changed_axes: Dict[str, Tuple[object, object]] = field(default_factory=dict)
    sha: str = ""
    hint: str = ""

    @property
    def location(self) -> str:
        loc = f"{self.bench}:{self.metric}" if self.metric else self.bench
        return f"{loc}@{self.sha}" if self.sha else loc

    def to_diagnostic(self) -> Diagnostic:
        return Diagnostic(
            rule=self.rule,
            severity=self.severity,
            location=self.location,
            message=self.message,
            hint=self.hint,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity.label,
            "bench": self.bench,
            "metric": self.metric,
            "message": self.message,
            "value": self.value,
            "baseline_median": self.baseline_median,
            "band": list(self.band) if self.band else None,
            "rel_delta": self.rel_delta,
            "changed_axes": {
                axis: list(pair) for axis, pair in self.changed_axes.items()
            },
            "sha": self.sha,
            "hint": self.hint,
        }


def findings_report(findings: Sequence[PerfFinding]) -> CheckReport:
    """Project findings onto the staticcheck report/gate model."""
    return CheckReport([f.to_diagnostic() for f in findings])


def sort_findings(findings: Sequence[PerfFinding]) -> list:
    """Most-severe first, then stable by bench/metric."""
    return sorted(findings, key=lambda f: (-int(f.severity), f.bench, f.metric))
