"""The ``repro perfwatch`` subcommand: ingest / check / report / baseline.

Wired into :mod:`repro.cli` as one subparser with nested actions::

    repro perfwatch ingest [--tables DIR] [--ledger DIR] [--sha SHA]
    repro perfwatch check  [--strict] [--json -] [--no-improvements]
    repro perfwatch report [--json] [--out FILE] [--width N]
    repro perfwatch baseline update|show|clear

``check`` is the CI gate: exit 1 on error-severity findings (warnings
too with ``--strict``), reusing the staticcheck ``CheckReport`` policy.
"""

from __future__ import annotations

import json
import sys
from typing import List

from repro.perfwatch.ledger import PerfLedger


def add_perfwatch_parser(sub) -> None:
    """Register the ``perfwatch`` subparser on the main CLI."""
    pw = sub.add_parser(
        "perfwatch",
        help="continuous performance intelligence over the bench tables: "
             "ledger ingest, noise-aware regression detection with driver "
             "analysis, markdown/JSON reports, CI gate",
    )
    actions = pw.add_subparsers(dest="action", required=True)

    def common(p):
        p.add_argument("--ledger", default=None, metavar="DIR",
                       help="perf-ledger directory (default: "
                            "results/perf_ledger, env REPRO_PERF_LEDGER)")

    ing = actions.add_parser(
        "ingest",
        help="flatten results/bench_tables/BENCH_*.json into ledger records "
             "(idempotent; also the one-shot backfill of committed history)",
    )
    common(ing)
    ing.add_argument("--tables", default=None, metavar="DIR",
                     help="bench-tables directory "
                          "(default: results/bench_tables)")
    ing.add_argument("--sha", default=None,
                     help="commit SHA to stamp on legacy (un-enveloped) "
                          "artifacts (default: git HEAD)")
    ing.add_argument("--dry-run", action="store_true",
                     help="parse and report, but append nothing")

    chk = actions.add_parser(
        "check",
        help="detect regressions/improvements vs the rolling (or pinned) "
             "baseline, attribute them to changed config axes, and run "
             "data-quality checks; exit 1 on errors",
    )
    common(chk)
    chk.add_argument("--tables", default=None, metavar="DIR",
                     help="bench-tables directory for data-quality checks")
    chk.add_argument("--strict", action="store_true",
                     help="exit non-zero on warnings too")
    chk.add_argument("--no-improvements", action="store_true",
                     help="suppress info-severity improvement findings")
    chk.add_argument("--no-pinned", action="store_true",
                     help="ignore any pinned baseline.json")
    chk.add_argument("--stale-after", type=int, default=None, metavar="N",
                     help="flag benches more than N ledger commits stale "
                          "(default: 5)")
    chk.add_argument("--json", default=None, metavar="FILE",
                     help="write the findings as JSON ('-' for stdout)")
    chk.add_argument("--quiet", action="store_true",
                     help="hide info-severity findings in text output")

    rep = actions.add_parser(
        "report",
        help="render the KPI history as markdown (sparkline trends + "
             "findings) or JSON",
    )
    common(rep)
    rep.add_argument("--tables", default=None, metavar="DIR")
    rep.add_argument("--json", action="store_true",
                     help="emit the JSON report instead of markdown")
    rep.add_argument("--out", default=None, metavar="FILE",
                     help="write the report to a file instead of stdout")
    rep.add_argument("--width", type=int, default=24,
                     help="sparkline width in characters")
    rep.add_argument("--max-series", type=int, default=None,
                     help="truncate the trend table to the first N series")

    bas = actions.add_parser(
        "baseline",
        help="manage the pinned per-series baseline bands "
             "(baseline.json next to the ledger)",
    )
    common(bas)
    bas.add_argument("op", choices=("update", "show", "clear"),
                     help="update: pin the current history as the blessed "
                          "bands; show: print the pinned file; clear: "
                          "remove it (fall back to rolling baselines)")


def _ledger(args) -> PerfLedger:
    return PerfLedger(args.ledger)


def _all_findings(ledger: PerfLedger, args) -> List:
    from repro.perfwatch.detect import detect
    from repro.perfwatch.drivers import STALE_AFTER_SHAS, data_quality
    from repro.perfwatch.findings import sort_findings
    from repro.perfwatch.ingest import default_tables_dir

    findings = detect(
        ledger,
        use_pinned=not getattr(args, "no_pinned", False),
        include_improvements=not getattr(args, "no_improvements", False),
    )
    stale_after = getattr(args, "stale_after", None)
    findings += data_quality(
        ledger,
        tables_dir=getattr(args, "tables", None) or default_tables_dir(),
        stale_after=stale_after if stale_after is not None else STALE_AFTER_SHAS,
    )
    return sort_findings(findings)


def _cmd_ingest(args) -> int:
    from repro.perfwatch.ingest import ingest_tables

    ledger = _ledger(args)
    appended, records, problems = ingest_tables(
        ledger, args.tables, sha=args.sha, dry_run=args.dry_run
    )
    benches = sorted({r.bench for r in records})
    origin = f"{len(benches)} bench(es): {', '.join(benches) or '-'}"
    if args.dry_run:
        print(f"dry run: parsed {len(records)} record(s) from {origin}")
    else:
        print(
            f"appended {appended} record(s) ({len(records)} parsed, "
            f"{len(records) - appended} duplicate(s) skipped) from {origin}"
        )
    for name, reason in sorted(problems.items()):
        print(f"warning: {name}: {reason}", file=sys.stderr)
    print(f"ledger: {ledger.path}")
    return 0


def _cmd_check(args) -> int:
    from repro.perfwatch.findings import findings_report
    from repro.perfwatch.report import render_json
    from repro.staticcheck.diagnostics import Severity

    ledger = _ledger(args)
    if not ledger.exists:
        print(
            f"no ledger at {ledger.path}; run `repro perfwatch ingest` first",
            file=sys.stderr,
        )
        return 2
    findings = _all_findings(ledger, args)
    report = findings_report(findings)
    failed = report.failed(strict=args.strict)
    if args.json is not None:
        payload = render_json(ledger, findings)
        payload["failed"] = failed
        text = json.dumps(payload, indent=2)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w") as fh:
                fh.write(text + "\n")
            print(f"wrote {args.json}")
            print(report.summary())
    else:
        min_severity = Severity.WARNING if args.quiet else Severity.INFO
        print(report.render(min_severity))
    return 1 if failed else 0


def _cmd_report(args) -> int:
    from repro.perfwatch.report import render_json, render_markdown

    ledger = _ledger(args)
    if not ledger.exists:
        print(
            f"no ledger at {ledger.path}; run `repro perfwatch ingest` first",
            file=sys.stderr,
        )
        return 2
    findings = _all_findings(ledger, args)
    if args.json:
        text = json.dumps(render_json(ledger, findings), indent=2)
    else:
        text = render_markdown(
            ledger, findings, width=args.width, max_series=args.max_series
        )
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + ("\n" if not text.endswith("\n") else ""))
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _cmd_baseline(args) -> int:
    from repro.perfwatch.detect import pin_baseline

    ledger = _ledger(args)
    if args.op == "update":
        if not ledger.exists:
            print(
                f"no ledger at {ledger.path}; nothing to pin", file=sys.stderr
            )
            return 2
        baseline = pin_baseline(ledger)
        path = ledger.save_baseline(baseline)
        print(f"pinned {len(baseline)} series band(s) into {path}")
        return 0
    if args.op == "show":
        baseline = ledger.load_baseline()
        print(json.dumps(baseline, indent=2, sort_keys=True))
        return 0
    removed = ledger.clear_baseline()
    print("removed pinned baseline" if removed else "no pinned baseline")
    return 0


def cmd_perfwatch(args) -> int:
    handlers = {
        "ingest": _cmd_ingest,
        "check": _cmd_check,
        "report": _cmd_report,
        "baseline": _cmd_baseline,
    }
    return handlers[args.action](args)
