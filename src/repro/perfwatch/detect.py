"""Noise-aware regression/improvement detection over ledger series.

For each (bench, metric) series the latest record is compared against a
robust rolling baseline of the preceding records: the baseline center is
the median, the acceptance band is ``median +/- max(k * 1.4826 * MAD,
noise_floor * |median|)``.  MAD makes one historical outlier harmless; a
genuinely high-variance series grows a wide band and suppresses itself;
the multiplicative noise floor keeps a perfectly flat history from
flagging on the first 1-ulp wiggle.

Per-metric :class:`MetricPolicy` entries (matched by ``fnmatch`` pattern,
first match wins) decide the *direction* that counts as a regression,
the relative-delta threshold that escalates a finding to ``error``
severity, and the min-samples guard — a two-point history never gates.

Findings are :class:`~repro.perfwatch.findings.PerfFinding` records
carrying the metric, the baseline band, and the changed config axes
(driver analysis, :mod:`repro.perfwatch.drivers`), graded on the
:mod:`repro.staticcheck` severity ladder so the CLI/CI gate reuses
``CheckReport`` rendering and exit policy unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatch
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.perfwatch.drivers import attribute_axes, format_axes
from repro.perfwatch.findings import PerfFinding, sort_findings
from repro.perfwatch.ledger import (
    LedgerRecord,
    PerfLedger,
    SeriesKey,
    series_id,
)
from repro.staticcheck.diagnostics import Severity

#: Regression direction vocabulary.
HIGHER_BETTER = "higher_better"
LOWER_BETTER = "lower_better"
EITHER = "either"       # direction unknown: any move is suspect, max WARNING
COUNTER = "counter"     # workload-size counter: data-quality only, never perf


@dataclass(frozen=True)
class MetricPolicy:
    """How one metric series is judged."""

    direction: str = EITHER
    rel_threshold: float = 0.10   # relative delta that makes a move an error
    min_samples: int = 4          # min series length before any gating
    mad_scale: float = 3.5        # band half-width in (scaled-MAD) sigmas
    noise_floor: float = 0.05     # band half-width floor, relative to median
    window: int = 20              # rolling baseline size


#: Wall-clock rates/times are host-noisy: wide floor, high threshold.
_TIMING = dict(rel_threshold=0.25, noise_floor=0.10)

#: Default policy table; first ``fnmatch`` hit wins, order matters.
DEFAULT_POLICIES: Tuple[Tuple[str, MetricPolicy], ...] = (
    ("*cycles_per_sec", MetricPolicy(HIGHER_BETTER, **_TIMING)),
    ("*packets_per_sec", MetricPolicy(HIGHER_BETTER, **_TIMING)),
    ("*trials_per_sec", MetricPolicy(HIGHER_BETTER, **_TIMING)),
    # Search-service KPIs (BENCH_search.json): the cache-hit fraction of
    # the warm pass and the objective scores are deterministic on a fixed
    # seed, so even small moves are signal, not host noise.
    ("*cache_hit_fraction", MetricPolicy(HIGHER_BETTER, rel_threshold=0.02,
                                         noise_floor=0.01)),
    ("*best_objective", MetricPolicy(HIGHER_BETTER, rel_threshold=0.02,
                                     noise_floor=0.01)),
    ("*best_at_*", MetricPolicy(HIGHER_BETTER, rel_threshold=0.02,
                                noise_floor=0.01)),
    ("*baseline_objective", MetricPolicy(EITHER)),
    ("*space_points", MetricPolicy(COUNTER)),
    ("*.budget", MetricPolicy(COUNTER)),
    ("*.evaluated", MetricPolicy(COUNTER)),
    ("*.pruned", MetricPolicy(COUNTER)),
    ("*.executed", MetricPolicy(COUNTER)),
    ("*runs_per_sec", MetricPolicy(HIGHER_BETTER, **_TIMING)),
    ("*wall_s", MetricPolicy(LOWER_BETTER, **_TIMING)),
    # Activity-kernel speedup over the reference kernel, measured in one
    # process back-to-back — a ratio of two same-host rates, so much less
    # host-noisy than either raw rate.
    ("*kernel_speedup", MetricPolicy(HIGHER_BETTER, rel_threshold=0.20,
                                     noise_floor=0.08)),
    ("*speedup", MetricPolicy(HIGHER_BETTER, **_TIMING)),
    ("*ipc", MetricPolicy(HIGHER_BETTER, rel_threshold=0.10)),
    ("*latency*", MetricPolicy(LOWER_BETTER, rel_threshold=0.10)),
    ("*stall*", MetricPolicy(LOWER_BETTER, rel_threshold=0.15)),
    ("*delivered_fraction", MetricPolicy(HIGHER_BETTER, rel_threshold=0.02,
                                         noise_floor=0.01)),
    ("*invariant_violations", MetricPolicy(LOWER_BETTER, noise_floor=0.0)),
    ("*dead_links", MetricPolicy(COUNTER)),
    ("*.cycles", MetricPolicy(COUNTER)),
    ("*.packets", MetricPolicy(COUNTER)),
    ("*dropped", MetricPolicy(COUNTER)),
    ("*host_cpus", MetricPolicy(COUNTER)),
    ("*grid_runs", MetricPolicy(COUNTER)),
    ("*sim_cycles_per_run", MetricPolicy(COUNTER)),
    ("*workers", MetricPolicy(COUNTER)),
    ("*.count", MetricPolicy(COUNTER)),
)

#: Fallback when nothing matches: unknown direction, advisory only.
DEFAULT_POLICY = MetricPolicy(EITHER)

Policies = Sequence[Tuple[str, MetricPolicy]]


def policy_for(metric: str, policies: Optional[Policies] = None) -> MetricPolicy:
    table = policies if policies is not None else DEFAULT_POLICIES
    for pattern, policy in table:
        if fnmatch(metric, pattern):
            return policy
    return DEFAULT_POLICY


# -- robust statistics -------------------------------------------------------

def median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        raise ValueError("median of empty sequence")
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def robust_band(
    values: Sequence[float], policy: MetricPolicy
) -> Tuple[float, float, float]:
    """``(median, lo, hi)`` of the MAD band around the baseline values."""
    center = median(values)
    mad = median([abs(v - center) for v in values])
    half = max(
        policy.mad_scale * 1.4826 * mad,
        policy.noise_floor * abs(center),
    )
    return center, center - half, center + half


# -- detection ---------------------------------------------------------------

def _fmt(v: float) -> str:
    return f"{v:.6g}"


def detect_series(
    key: SeriesKey,
    records: Sequence[LedgerRecord],
    policy: MetricPolicy,
    pinned: Optional[Mapping] = None,
    include_improvements: bool = True,
) -> List[PerfFinding]:
    """Judge the latest record of one series; ``[]`` when nothing moved.

    ``pinned`` (a ``baseline.json`` entry) replaces the rolling baseline:
    the blessed band gates even short histories, which is what an
    explicit ``baseline update`` opts into.
    """
    if policy.direction == COUNTER or not records:
        return []
    latest = records[-1]
    if pinned is not None:
        try:
            center = float(pinned["median"])
            lo = float(pinned["lo"])
            hi = float(pinned["hi"])
            n = int(pinned.get("n", 0))
        except (KeyError, TypeError, ValueError):
            return []
        source = "pinned baseline"
    else:
        if len(records) < policy.min_samples:
            return []  # min-samples guard: a 2-point history never gates
        baseline = records[:-1][-policy.window:]
        center, lo, hi = robust_band([r.value for r in baseline], policy)
        n = len(baseline)
        source = "rolling baseline"
    value = latest.value
    if lo <= value <= hi:
        return []
    if center:
        rel = (value - center) / abs(center)
    else:
        rel = float("inf") if value > 0 else float("-inf")

    worse = value < lo if policy.direction == HIGHER_BETTER else (
        value > hi if policy.direction == LOWER_BETTER else True
    )
    better = policy.direction in (HIGHER_BETTER, LOWER_BETTER) and not worse
    bench, metric = key
    axes = attribute_axes(records)
    axes_text = format_axes(axes)
    band_text = (
        f"{source} median {_fmt(center)}, "
        f"band [{_fmt(lo)}, {_fmt(hi)}], n={n}"
    )
    common = dict(
        bench=bench,
        metric=metric,
        value=value,
        baseline_median=center,
        band=(lo, hi),
        rel_delta=rel,
        changed_axes=axes,
        sha=latest.sha,
    )
    if better:
        if not include_improvements:
            return []
        return [PerfFinding(
            rule="pw-improvement",
            severity=Severity.INFO,
            message=(
                f"{metric} improved to {_fmt(value)} "
                f"({rel:+.1%}) vs {band_text}; {axes_text}"
            ),
            hint="bless the new level with `repro perfwatch baseline update`",
            **common,
        )]
    if policy.direction == EITHER:
        severity = Severity.WARNING
        kind = "moved"
    elif abs(rel) >= policy.rel_threshold:
        severity = Severity.ERROR
        kind = "regressed"
    else:
        severity = Severity.WARNING
        kind = "drifted"
    return [PerfFinding(
        rule="pw-regression",
        severity=severity,
        message=(
            f"{metric} {kind} to {_fmt(value)} "
            f"({rel:+.1%}) vs {band_text}; {axes_text}"
        ),
        hint=(
            "bisect the changed axes, or accept the new level with "
            "`repro perfwatch baseline update`"
        ),
        **common,
    )]


def detect(
    ledger: PerfLedger,
    *,
    policies: Optional[Policies] = None,
    use_pinned: bool = True,
    include_improvements: bool = True,
) -> List[PerfFinding]:
    """Run the detector over every series in the ledger.

    Findings come back most-severe first, then in series order.
    """
    pinned_all = ledger.load_baseline() if use_pinned else {}
    findings: List[PerfFinding] = []
    for key, records in ledger.series().items():
        policy = policy_for(key[1], policies)
        pinned = pinned_all.get(series_id(key))
        findings.extend(detect_series(
            key,
            records,
            policy,
            pinned=pinned,
            include_improvements=include_improvements,
        ))
    return sort_findings(findings)


def pin_baseline(
    ledger: PerfLedger, *, policies: Optional[Policies] = None
) -> Dict[str, Dict[str, float]]:
    """Compute a pinned baseline from the current history (not saved)."""
    baseline: Dict[str, Dict[str, float]] = {}
    for key, records in ledger.series().items():
        policy = policy_for(key[1], policies)
        if policy.direction == COUNTER:
            continue
        window = records[-policy.window:]
        center, lo, hi = robust_band([r.value for r in window], policy)
        baseline[series_id(key)] = {
            "median": center,
            "lo": lo,
            "hi": hi,
            "n": len(window),
            "sha": window[-1].sha,
        }
    return baseline
