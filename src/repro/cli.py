"""Command-line interface.

Usage::

    python -m repro list                         # benchmarks + schemes
    python -m repro run bfs ada-ari [--cycles N] [--mesh 6] [--seed S]
    python -m repro compare bfs [--cycles N]     # all 5 main schemes
    python -m repro figure fig11 [--scale quick]
    python -m repro area                         # Sec. 6.1 overheads
    python -m repro viz bfs ada-ari [--cycles N] # congestion heatmaps
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.schemes import scheme_names
from repro.experiments import figures
from repro.experiments.runner import RunSpec, run_system
from repro.workloads.suite import benchmark_names, by_sensitivity

MAIN_SCHEMES = [
    "xy-baseline", "xy-ari", "ada-baseline", "ada-multiport", "ada-ari",
]


def _cmd_list(args: argparse.Namespace) -> int:
    print("benchmarks (by NoC sensitivity):")
    for cls, names in by_sensitivity().items():
        print(f"  {cls:7s}: {', '.join(names)}")
    print("\nschemes:")
    for name in scheme_names():
        print(f"  {name}")
    print("\nfigures:")
    print("  " + ", ".join(figures.ALL_FIGURES))
    return 0


def _print_result(res) -> None:
    print(f"benchmark   : {res.benchmark}")
    print(f"scheme      : {res.scheme}")
    print(f"IPC         : {res.ipc:.3f}")
    print(f"MC stall/rep: {res.mc_stall_per_reply:.1f} cycles")
    print(f"request lat : {res.request_latency:.1f}")
    print(f"reply lat   : {res.reply_latency:.1f}")
    print(f"reply share : {res.reply_traffic_share:.2f}")
    print(f"L2 hit rate : {res.l2_hit_rate:.2f}")


def _cmd_run(args: argparse.Namespace) -> int:
    spec = RunSpec(
        benchmark=args.benchmark,
        scheme=args.scheme,
        cycles=args.cycles,
        warmup=args.cycles // 4,
        seed=args.seed,
        mesh=args.mesh,
    )
    res = run_system(spec, use_cache=not args.no_cache)
    _print_result(res)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    rows = []
    base_ipc = None
    for sch in MAIN_SCHEMES:
        res = run_system(
            RunSpec(
                benchmark=args.benchmark,
                scheme=sch,
                cycles=args.cycles,
                warmup=args.cycles // 4,
                seed=args.seed,
                mesh=args.mesh,
            ),
            use_cache=not args.no_cache,
        )
        if base_ipc is None:
            base_ipc = res.ipc or 1.0
        rows.append((sch, res.ipc, res.ipc / base_ipc, res.mc_stall_per_reply))
    print(f"{'scheme':16s}{'ipc':>8s}{'vs base':>9s}{'stall/rep':>11s}")
    for sch, ipc, rel, stall in rows:
        print(f"{sch:16s}{ipc:>8.3f}{rel:>8.2f}x{stall:>11.1f}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    driver = figures.ALL_FIGURES.get(args.name)
    if driver is None:
        print(f"unknown figure {args.name!r}; options: "
              f"{', '.join(figures.ALL_FIGURES)}", file=sys.stderr)
        return 2
    kwargs = {} if args.name == "sec61_area" else {"scale": args.scale}
    result = driver(**kwargs)
    print(result["table"])
    print(f"\nsummary : {result['summary']}")
    print(f"paper   : {result['paper']}")
    return 0


def _cmd_viz(args: argparse.Namespace) -> int:
    from repro.experiments.runner import RunSpec, build_system
    from repro.noc.visual import MeshRenderer

    system = build_system(
        RunSpec(
            benchmark=args.benchmark,
            scheme=args.scheme,
            cycles=args.cycles,
            seed=args.seed,
            mesh=args.mesh,
        )
    )
    system.prewarm_caches()
    system.run(args.cycles)
    print(f"benchmark={args.benchmark} scheme={args.scheme}")
    print("\n--- request network ---")
    print(MeshRenderer(system.request_net, system.mc_nodes).snapshot())
    reply = system.reply_net
    if hasattr(reply, "routers"):
        print("\n--- reply network ---")
        print(MeshRenderer(reply, system.mc_nodes).snapshot())
    else:
        print("\n--- reply overlay (DA2mesh): no mesh to render ---")
    return 0


def _cmd_area(args: argparse.Namespace) -> int:
    result = figures.sec61_area()
    print(result["table"])
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="ARI GPGPU-NoC reproduction (Li & Chen, IPPS 2020)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks, schemes and figures")

    run = sub.add_parser("run", help="simulate one benchmark under one scheme")
    run.add_argument("benchmark", choices=benchmark_names(), metavar="benchmark")
    run.add_argument("scheme", choices=scheme_names(), metavar="scheme")

    cmp_ = sub.add_parser("compare", help="compare the five main schemes")
    cmp_.add_argument("benchmark", choices=benchmark_names(), metavar="benchmark")

    for sp in (run, cmp_):
        sp.add_argument("--cycles", type=int, default=1500)
        sp.add_argument("--mesh", type=int, default=6, choices=(4, 6, 8))
        sp.add_argument("--seed", type=int, default=3)
        sp.add_argument("--no-cache", action="store_true")

    viz = sub.add_parser("viz", help="render congestion heatmaps after a run")
    viz.add_argument("benchmark", choices=benchmark_names(), metavar="benchmark")
    viz.add_argument("scheme", choices=scheme_names(), metavar="scheme")
    viz.add_argument("--cycles", type=int, default=800)
    viz.add_argument("--mesh", type=int, default=6, choices=(4, 6, 8))
    viz.add_argument("--seed", type=int, default=3)

    fig = sub.add_parser("figure", help="regenerate one paper figure")
    fig.add_argument("name")
    fig.add_argument("--scale", default="quick", choices=sorted(figures.SCALES))

    sub.add_parser("area", help="Sec. 6.1 area overheads")
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "compare": _cmd_compare,
        "figure": _cmd_figure,
        "area": _cmd_area,
        "viz": _cmd_viz,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
