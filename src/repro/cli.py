"""Command-line interface.

Usage::

    python -m repro list                         # benchmarks + schemes
    python -m repro run bfs ada-ari [--cycles N] [--mesh 6] [--seed S] \\
        [--kernel activity]                      # fast-path kernel backend
    python -m repro compare bfs [--cycles N]     # all 5 main schemes
    python -m repro figure fig11 [--scale quick] [--workers N]
    python -m repro sweep bfs ada-ari --axis num_vcs=2,4 \\
        --axis injection_speedup=1,2 --workers 4 # parallel design-space sweep
    python -m repro search bfs ada-ari --strategy hillclimb --budget 32 \\
        --objective min:reply_latency            # design-space exploration
    python -m repro cache [--clear]              # result-store info
    python -m repro area                         # Sec. 6.1 overheads
    python -m repro viz bfs ada-ari [--cycles N] # congestion heatmaps
    python -m repro telemetry --benchmark bfs --scheme ari \\
        --interval 100 --out out.jsonl           # time-series telemetry
    python -m repro faults --benchmark bfs --dead-links 0,1,2 \\
        --workers 2 [--json report.json]         # degradation campaign
    python -m repro check --all-schemes          # pre-run static checks
    python -m repro check --kernel-equiv         # reference vs activity
                                                 # kernel, byte-for-byte
    python -m repro check --scheme ada-ari --faults link:r7.E@100 \\
        --json - [--strict] [--rule cdg-cycle]   # one config, JSON out
    python -m repro check --code src/repro       # determinism lint
    python -m repro perfwatch ingest             # bench tables -> KPI ledger
    python -m repro perfwatch check --strict     # perf regression gate
    python -m repro perfwatch report             # sparkline trend report
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.core.schemes import scheme_names
from repro.experiments import figures
from repro.experiments.api import run, run_live, run_many, sweep
from repro.experiments.runner import RunSpec, cache_info, clear_cache
from repro.workloads.suite import benchmark_names, by_sensitivity

MAIN_SCHEMES = [
    "xy-baseline", "xy-ari", "ada-baseline", "ada-multiport", "ada-ari",
]


def _cmd_list(args: argparse.Namespace) -> int:
    print("benchmarks (by NoC sensitivity):")
    for cls, names in by_sensitivity().items():
        print(f"  {cls:7s}: {', '.join(names)}")
    print("\nschemes:")
    for name in scheme_names():
        print(f"  {name}")
    print("\nfigures:")
    print("  " + ", ".join(figures.ALL_FIGURES))
    return 0


def _print_result(res) -> None:
    print(f"benchmark   : {res.benchmark}")
    print(f"scheme      : {res.scheme}")
    print(f"IPC         : {res.ipc:.3f}")
    print(f"MC stall/rep: {res.mc_stall_per_reply:.1f} cycles")
    print(f"request lat : {res.request_latency:.1f}")
    print(f"reply lat   : {res.reply_latency:.1f}")
    print(f"reply share : {res.reply_traffic_share:.2f}")
    print(f"L2 hit rate : {res.l2_hit_rate:.2f}")


def _cmd_run(args: argparse.Namespace) -> int:
    spec = RunSpec(
        benchmark=args.benchmark,
        scheme=args.scheme,
        cycles=args.cycles,
        warmup=args.cycles // 4,
        seed=args.seed,
        mesh=args.mesh,
        kernel=args.kernel,
    )
    res = run(spec, use_cache=not args.no_cache)
    _print_result(res)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    specs = [
        RunSpec(
            benchmark=args.benchmark,
            scheme=sch,
            cycles=args.cycles,
            warmup=args.cycles // 4,
            seed=args.seed,
            mesh=args.mesh,
            kernel=args.kernel,
        )
        for sch in MAIN_SCHEMES
    ]
    results = run_many(
        specs, workers=args.workers, use_cache=not args.no_cache
    )
    base_ipc = results[0].ipc or 1.0
    print(f"{'scheme':16s}{'ipc':>8s}{'vs base':>9s}{'stall/rep':>11s}")
    for sch, res in zip(MAIN_SCHEMES, results):
        print(
            f"{sch:16s}{res.ipc:>8.3f}{res.ipc / base_ipc:>8.2f}x"
            f"{res.mc_stall_per_reply:>11.1f}"
        )
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    driver = figures.ALL_FIGURES.get(args.name)
    if driver is None:
        print(f"unknown figure {args.name!r}; options: "
              f"{', '.join(figures.ALL_FIGURES)}", file=sys.stderr)
        return 2
    kwargs = (
        {}
        if args.name == "sec61_area"
        else {"scale": args.scale, "workers": args.workers}
    )
    result = driver(**kwargs)
    print(result["table"])
    print(f"\nsummary : {result['summary']}")
    print(f"paper   : {result['paper']}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.specgrid import SpecGridError, parse_axes
    from repro.experiments.sweeps import best_by, records_to_csv

    try:
        axes = parse_axes(args.axis)
    except SpecGridError as exc:
        raise SystemExit(str(exc))
    base = RunSpec(
        benchmark=args.benchmark,
        scheme=args.scheme,
        cycles=args.cycles,
        warmup=args.cycles // 4,
        seed=args.seed,
        mesh=args.mesh,
        kernel=args.kernel,
    )
    total = 1
    for values in axes.values():
        total *= len(values)
    print(
        f"sweeping {args.benchmark}/{args.scheme}: "
        f"{' x '.join(f'{n}[{len(v)}]' for n, v in axes.items()) or 'base only'}"
        f" = {total} runs, workers={args.workers or 'auto'}"
    )

    def progress(done, n, spec, source):
        marker = {"cache": "cached", "run": "ran", "retry": "retrying"}[source]
        print(f"  [{done}/{n}] {marker}: "
              + " ".join(f"{k}={getattr(spec, k)}" for k in axes),
              flush=True)

    reports = []
    records = sweep(
        base,
        axes,
        workers=args.workers,
        use_cache=not args.no_cache,
        progress=progress if not args.quiet else None,
        on_report=reports.append,
    )
    csv = records_to_csv(records)
    print()
    print(csv)
    for rep in reports:
        print(
            f"\ncache   : {rep.cache_hits} hit(s), {rep.cache_misses} "
            f"miss(es) ({rep.cache_hit_fraction():.0%} of unique runs "
            "served from the result store)"
        )
    best = best_by(records, args.best_metric)
    if best is not None:
        print(f"\nbest by {args.best_metric}: "
              + " ".join(f"{k}={v}" for k, v in best.items()))
    if args.csv:
        with open(args.csv, "w") as fh:
            fh.write(csv + "\n")
        print(f"\nwrote {args.csv}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.experiments.store import default_store

    if args.clear:
        clear_cache(disk=True)
        print("cleared result store")
    info = cache_info()
    for k, v in info.items():
        print(f"{k:12s}: {v}")
    legacy = default_store().scan_legacy()
    if legacy:
        print(
            f"warning: {len(legacy)} legacy-format entr"
            f"{'y' if len(legacy) == 1 else 'ies'} no longer match the "
            "result schema and will be re-simulated on use "
            "(--clear purges them):",
            file=sys.stderr,
        )
        for key in legacy[:10]:
            print(f"  {key}", file=sys.stderr)
        if len(legacy) > 10:
            print(f"  ... and {len(legacy) - 10} more", file=sys.stderr)
    return 0


def _cmd_viz(args: argparse.Namespace) -> int:
    from repro.experiments.runner import build_system
    from repro.noc.visual import MeshRenderer

    system = build_system(
        RunSpec(
            benchmark=args.benchmark,
            scheme=args.scheme,
            cycles=args.cycles,
            seed=args.seed,
            mesh=args.mesh,
        )
    )
    system.prewarm_caches()
    system.run(args.cycles)
    print(f"benchmark={args.benchmark} scheme={args.scheme}")
    print("\n--- request network ---")
    print(MeshRenderer(system.request_net, system.mc_nodes).snapshot())
    reply = system.reply_net
    if hasattr(reply, "routers"):
        print("\n--- reply network ---")
        print(MeshRenderer(reply, system.mc_nodes).snapshot())
    else:
        print("\n--- reply overlay (DA2mesh): no mesh to render ---")
    return 0


def _cmd_area(args: argparse.Namespace) -> int:
    result = figures.sec61_area()
    print(result["table"])
    return 0


def _resolve_scheme(name: str) -> str:
    """Accept short scheme aliases: ``ari`` -> ``ada-ari`` etc."""
    names = scheme_names()
    if name in names:
        return name
    for prefix in ("ada", "xy"):
        candidate = f"{prefix}-{name}"
        if candidate in names:
            return candidate
    raise SystemExit(
        f"unknown scheme {name!r}; available: {', '.join(names)}"
    )


def _cmd_telemetry(args: argparse.Namespace) -> int:
    from repro.telemetry import occupancy_heatmap, summary_table

    if args.interval < 1:
        raise SystemExit("--interval must be >= 1 cycle")
    spec = RunSpec(
        benchmark=args.benchmark,
        scheme=_resolve_scheme(args.scheme),
        cycles=args.cycles,
        warmup=args.cycles // 4,
        seed=args.seed,
        mesh=args.mesh,
        kernel=args.kernel,
    )
    live = run_live(
        spec,
        interval=args.interval,
        jsonl_path=args.out,
        csv_path=args.csv,
    )
    result, collector, system = live.result, live.collector, live.system
    mem = collector.memory
    print(
        f"benchmark={result.benchmark} scheme={result.scheme} "
        f"cycles={args.cycles} interval={collector.interval} "
        f"samples={collector.samples_taken}"
    )
    print("\n--- channel summaries ---")
    key_channels = [
        "rep.ni_occ_flits", "rep.inj_link_util", "rep.mesh_link_util",
        "rep.in_flight", "rep.lat_mean", "rep.lat_p95",
        "rep.speedup_extra_flits", "rep.starvation_demotions",
        "rep.priority_decays", "req.in_flight",
        "sys.mc_reply_backlog", "sys.instructions",
    ]
    present = set()
    for s in mem.samples:
        present.update(s.channels)
    print(summary_table(mem, [c for c in key_channels if c in present]))
    print("\n--- reply NI queue occupancy over time (Fig. 6 dynamic) ---")
    print(occupancy_heatmap(mem, "rep.ni_occ_flits", mc_nodes=system.mc_nodes))
    if "rep.router_occ" in present:
        print("\n--- reply router occupancy over time (hot region) ---")
        print(
            occupancy_heatmap(mem, "rep.router_occ", mc_nodes=system.mc_nodes)
        )
    print("\n--- host profiling ---")
    print(collector.profiler.format())
    if args.out:
        print(f"\nwrote JSONL telemetry to {args.out}")
    if args.csv:
        print(f"wrote CSV telemetry to {args.csv}")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.specgrid import (
        SpecGridError,
        parse_axes,
        parse_ints,
    )
    from repro.faults import (
        CampaignConfig,
        FaultPlan,
        describe,
        run_campaign,
    )

    schemes = tuple(
        _resolve_scheme(s) for s in args.schemes.split(",") if s
    )
    try:
        axes = tuple(
            (name, tuple(values))
            for name, values in parse_axes(args.axis).items()
        )
        cfg = CampaignConfig(
            benchmark=args.benchmark,
            schemes=schemes,
            dead_links=parse_ints(args.dead_links),
            seeds=parse_ints(args.seeds),
            cycles=args.cycles,
            warmup=args.cycles // 3,
            mesh=args.mesh,
            fault_seed=args.fault_seed,
            fault_cycle=args.fault_cycle,
            duration=args.duration,
            detour=not args.no_detour,
            check_invariants=(
                None if args.invariants == "off" else args.invariants
            ),
            kernel=args.kernel,
            axes=axes,
        )
    except SpecGridError as exc:
        raise SystemExit(str(exc))
    if args.describe is not None:
        for line in describe(FaultPlan.parse(args.describe)):
            print(line)
        return 0
    for n in cfg.dead_links:
        plan = cfg.plan_for(n)
        if not plan.empty:
            print(f"dead_links={n}: {plan.format()}")

    def progress(done, total, spec, source):
        marker = {"cache": "cached", "run": "ran", "retry": "retrying"}[source]
        faults = spec.faults or "-"
        print(f"  [{done}/{total}] {marker}: {spec.scheme} faults={faults}",
              flush=True)

    report = run_campaign(
        cfg,
        workers=args.workers,
        use_cache=not args.no_cache,
        progress=progress if not args.quiet else None,
    )
    print()
    print(report.render())
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2)
        print(f"\nwrote {args.json}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    import dataclasses
    import json

    from repro.staticcheck import CheckRunner, ModelInputs, Severity
    from repro.staticcheck.runner import RULES

    if args.list_rules:
        width = max(len(rid) for rid in RULES)
        for rid, (family, desc) in sorted(RULES.items()):
            print(f"{rid:{width}s}  [{family:5s}] {desc}")
        return 0

    if args.kernel_equiv is not None:
        from repro.experiments.equivalence import run_equivalence

        def progress(case):
            mark = "ok  " if case.ok else "FAIL"
            print(f"  {mark} {case.name}", flush=True)

        print(f"kernel-equivalence grid ({args.kernel_equiv}):")
        report = run_equivalence(
            quick=args.kernel_equiv == "quick",
            progress=None if args.quiet else progress,
        )
        print()
        print(report.render())
        if args.json is not None:
            payload = {
                "cases": [dataclasses.asdict(c) for c in report.cases],
                "failed": not report.ok,
            }
            text = json.dumps(payload, indent=2)
            if args.json == "-":
                print(text)
            else:
                with open(args.json, "w") as fh:
                    fh.write(text + "\n")
                print(f"wrote {args.json}")
        return 0 if report.ok else 1

    TAINT_RULES = ["cachekey-unsound", "overhead-not-free", "det-taint"]
    rules = list(args.rule)
    if args.taint:
        rules.extend(r for r in TAINT_RULES if r not in rules)
    try:
        runner = CheckRunner(rules=rules or None, strict=args.strict)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    report = None
    selected = False
    if args.all_schemes or args.scheme:
        selected = True
        names = (
            scheme_names()
            if args.all_schemes
            else [
                _resolve_scheme(s)
                for group in args.scheme
                for s in group.split(",")
                if s
            ]
        )
        kwargs = dict(
            mesh=args.mesh,
            cycles=args.cycles,
            num_vcs=args.num_vcs,
            priority_levels=args.priority_levels,
            injection_speedup=args.injection_speedup,
            num_split_queues=args.num_split_queues,
            starvation_threshold=args.starvation_threshold,
            mc_placement=args.mc_placement,
            noc_hop_latency=args.noc_hop_latency,
            faults=args.faults,
            fault_detour=not args.no_detour,
        )
        from repro.staticcheck.diagnostics import CheckReport

        report = CheckReport()
        for name in names:
            report.extend(runner.check_inputs(
                ModelInputs(scheme=name, **kwargs)
            ))
        report = report.filter(rules or None)
    if args.code:
        from repro.staticcheck import baseline as baseline_mod

        selected = True
        code_report = runner.check_paths(args.code)
        if args.update_baseline:
            target = args.baseline or baseline_mod.DEFAULT_BASELINE
            count, pruned = baseline_mod.update(target, code_report)
            print(f"wrote {target} with {count} grandfathered finding(s)")
            if pruned:
                print(f"pruned {len(pruned)} stale fingerprint(s):")
                for fp in pruned:
                    print(f"  {fp}")
            code_report = code_report.__class__()
        elif not args.no_baseline:
            source = args.baseline or baseline_mod.DEFAULT_BASELINE
            if args.baseline or os.path.exists(source):
                try:
                    grandfathered = baseline_mod.load(source)
                except ValueError as exc:
                    print(str(exc), file=sys.stderr)
                    return 2
                code_report, matched, stale = baseline_mod.apply(
                    code_report, grandfathered
                )
                if matched and not args.quiet:
                    print(
                        f"baseline {source}: {matched} grandfathered "
                        "finding(s) suppressed",
                        file=sys.stderr,
                    )
                for fp in stale:
                    print(
                        f"baseline {source}: stale entry {fp!r} no longer "
                        "matches (run --update-baseline)",
                        file=sys.stderr,
                    )
        if report is None:
            report = code_report
        else:
            report.extend(code_report)
    elif args.update_baseline:
        print("--update-baseline requires --code", file=sys.stderr)
        return 2
    if not selected:
        print(
            "nothing to check: pass --scheme/--all-schemes and/or --code "
            "(see also --list-rules)",
            file=sys.stderr,
        )
        return 2

    failed = runner.failed(report)
    if args.json is not None:
        payload = report.to_dict()
        payload["failed"] = failed
        text = json.dumps(payload, indent=2)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w") as fh:
                fh.write(text + "\n")
            print(f"wrote {args.json}")
            print(report.summary())
    else:
        min_severity = Severity.WARNING if args.quiet else Severity.INFO
        print(report.render(min_severity))
    return 1 if failed else 0


def _cmd_perfwatch(args: argparse.Namespace) -> int:
    from repro.perfwatch.cli import cmd_perfwatch

    return cmd_perfwatch(args)


def _cmd_search(args: argparse.Namespace) -> int:
    from repro.search.cli import cmd_search

    return cmd_search(args)


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="ARI GPGPU-NoC reproduction (Li & Chen, IPPS 2020)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks, schemes and figures")

    run_ = sub.add_parser("run", help="simulate one benchmark under one scheme")
    run_.add_argument("benchmark", choices=benchmark_names(), metavar="benchmark")
    run_.add_argument("scheme", choices=scheme_names(), metavar="scheme")

    cmp_ = sub.add_parser("compare", help="compare the five main schemes")
    cmp_.add_argument("benchmark", choices=benchmark_names(), metavar="benchmark")
    cmp_.add_argument("--workers", type=int, default=None,
                      help="parallel workers (0 = all cores)")

    swp = sub.add_parser(
        "sweep",
        help="cartesian design-space sweep over RunSpec axes, "
             "sharded across worker processes",
    )
    swp.add_argument("benchmark", choices=benchmark_names(), metavar="benchmark")
    swp.add_argument("scheme", choices=scheme_names(), metavar="scheme")
    swp.add_argument(
        "--axis", action="append", default=[], metavar="name=v1,v2",
        help="RunSpec field and values; repeatable (cartesian product)",
    )
    swp.add_argument("--workers", type=int, default=None,
                     help="parallel workers (0 = all cores)")
    swp.add_argument("--csv", default=None, help="also write records as CSV")
    swp.add_argument("--best-metric", default="ipc",
                     help="metric highlighted as the best record")
    swp.add_argument("--quiet", action="store_true",
                     help="suppress per-run progress lines")

    for sp in (run_, cmp_, swp):
        sp.add_argument("--cycles", type=int, default=1500)
        sp.add_argument("--mesh", type=int, default=6, choices=(4, 6, 8))
        sp.add_argument("--seed", type=int, default=3)
        sp.add_argument("--no-cache", action="store_true")
        sp.add_argument(
            "--kernel", default=None, choices=("reference", "activity"),
            help="simulation kernel backend (default: REPRO_KERNEL env "
                 "var, then 'reference'); results are byte-identical",
        )

    cache = sub.add_parser("cache", help="result-store info")
    cache.add_argument("--clear", action="store_true",
                       help="delete every stored run record")

    viz = sub.add_parser("viz", help="render congestion heatmaps after a run")
    viz.add_argument("benchmark", choices=benchmark_names(), metavar="benchmark")
    viz.add_argument("scheme", choices=scheme_names(), metavar="scheme")
    viz.add_argument("--cycles", type=int, default=800)
    viz.add_argument("--mesh", type=int, default=6, choices=(4, 6, 8))
    viz.add_argument("--seed", type=int, default=3)

    fig = sub.add_parser(
        "figure",
        help="regenerate one paper figure (set REPRO_KERNEL=activity to "
             "run its grid on the fast kernel)",
    )
    fig.add_argument("name")
    fig.add_argument("--scale", default="quick", choices=sorted(figures.SCALES))
    fig.add_argument("--workers", type=int, default=None,
                     help="parallel workers (0 = all cores)")

    sub.add_parser("area", help="Sec. 6.1 area overheads")

    tel = sub.add_parser(
        "telemetry",
        help="run one benchmark with periodic telemetry sampling and "
             "render time-series summaries + occupancy heatmaps",
    )
    tel.add_argument(
        "--benchmark", required=True, choices=benchmark_names(),
        metavar="benchmark",
    )
    tel.add_argument(
        "--scheme", default="ada-ari", metavar="scheme",
        help="scheme name; short aliases allowed (ari -> ada-ari)",
    )
    tel.add_argument("--interval", type=int, default=100,
                     help="cycles between samples")
    tel.add_argument("--cycles", type=int, default=1500)
    tel.add_argument("--mesh", type=int, default=6, choices=(4, 6, 8))
    tel.add_argument("--seed", type=int, default=3)
    tel.add_argument("--out", default=None,
                     help="write the sample stream as JSONL")
    tel.add_argument("--csv", default=None,
                     help="write the sample stream as CSV")
    tel.add_argument(
        "--kernel", default=None, choices=("reference", "activity"),
        help="simulation kernel backend (telemetry sampling runs on "
             "schedule in both)",
    )

    flt = sub.add_parser(
        "faults",
        help="fault-injection degradation campaign: kill reply-mesh links "
             "and compare how gracefully each scheme degrades",
    )
    flt.add_argument(
        "--benchmark", default="bfs", choices=benchmark_names(),
        metavar="benchmark",
    )
    flt.add_argument(
        "--schemes", default="xy-baseline,ada-ari",
        help="comma-separated scheme names (short aliases allowed)",
    )
    flt.add_argument("--dead-links", default="0,1,2", metavar="N1,N2",
                     help="fault intensities: dead reply-mesh links per cell")
    flt.add_argument("--seeds", default="3", metavar="S1,S2",
                     help="workload seeds averaged per cell")
    flt.add_argument("--cycles", type=int, default=600)
    flt.add_argument("--mesh", type=int, default=4, choices=(4, 6, 8))
    flt.add_argument("--fault-seed", type=int, default=7,
                     help="seed picking which links die (same for all schemes)")
    flt.add_argument("--fault-cycle", type=int, default=0,
                     help="onset cycle of every link fault")
    flt.add_argument("--duration", type=int, default=None,
                     help="repair faults after this many cycles (default: "
                          "permanent)")
    flt.add_argument("--no-detour", action="store_true",
                     help="disable fault-aware detour routing")
    flt.add_argument("--invariants", default="collect",
                     choices=("off", "collect", "raise"),
                     help="per-cycle flow-control auditing mode")
    flt.add_argument("--workers", type=int, default=None,
                     help="parallel workers (0 = all cores)")
    flt.add_argument("--no-cache", action="store_true")
    flt.add_argument("--json", default=None,
                     help="also write the degradation report as JSON")
    flt.add_argument("--quiet", action="store_true",
                     help="suppress per-run progress lines")
    flt.add_argument("--describe", default=None, metavar="PLAN",
                     help="explain a fault-plan DSL string and exit")
    flt.add_argument(
        "--kernel", default=None, choices=("reference", "activity"),
        help="simulation kernel backend for every campaign cell "
             "(faulted cells fall back to reference-order visiting)",
    )
    flt.add_argument(
        "--axis", action="append", default=[], metavar="name=v1,v2",
        help="extra RunSpec axis applied to every cell (cartesian, "
             "aggregated per row like extra seeds); repeatable — same "
             "syntax as `repro sweep --axis`",
    )

    chk = sub.add_parser(
        "check",
        help="pre-simulation static checks: escape-network deadlock "
             "freedom (CDG), Eq. 1/2 sizing, queue/credit sanity, plus "
             "AST code lints (determinism, unit inference, credit "
             "conservation, pool-worker captures) over simulator sources",
    )
    chk.add_argument(
        "--scheme", action="append", default=[], metavar="NAME[,NAME]",
        help="scheme(s) to model-check; repeatable, aliases allowed",
    )
    chk.add_argument("--all-schemes", action="store_true",
                     help="model-check every registered scheme")
    chk.add_argument("--mesh", type=int, default=6, choices=(4, 6, 8))
    chk.add_argument("--cycles", type=int, default=1500,
                     help="run horizon used by threshold sanity rules")
    chk.add_argument("--num-vcs", type=int, default=None)
    chk.add_argument("--injection-speedup", type=int, default=None)
    chk.add_argument("--num-split-queues", type=int, default=None)
    chk.add_argument("--priority-levels", type=int, default=None)
    chk.add_argument("--starvation-threshold", type=int, default=None)
    chk.add_argument("--mc-placement", default=None,
                     choices=("diamond", "edge", "column"))
    chk.add_argument("--noc-hop-latency", type=int, default=None)
    chk.add_argument("--faults", default=None, metavar="PLAN",
                     help="fault-plan DSL to analyze per fault epoch")
    chk.add_argument("--no-detour", action="store_true",
                     help="analyze faulted epochs without detour routing")
    chk.add_argument(
        "--code", action="append", default=[], metavar="PATH",
        help="run the code lints (det/unit/proto/pool plus the "
             "kernel-soundness prover) over these files/dirs; repeatable",
    )
    chk.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="grandfathered-findings file for --code (default: "
             "staticcheck-baseline.json when present)",
    )
    chk.add_argument("--no-baseline", action="store_true",
                     help="ignore any baseline file; report every finding")
    chk.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline file from the current --code findings "
             "and treat them all as grandfathered",
    )
    chk.add_argument("--rule", action="append", default=[], metavar="ID",
                     help="only report these rule ids; repeatable")
    chk.add_argument(
        "--taint", action="store_true",
        help="select the interprocedural taint rules (cachekey-unsound, "
             "overhead-not-free, det-taint) for --code; combines with "
             "--rule",
    )
    chk.add_argument("--strict", action="store_true",
                     help="exit non-zero on warnings too")
    chk.add_argument("--json", default=None, metavar="FILE",
                     help="write the report as JSON ('-' for stdout)")
    chk.add_argument("--quiet", action="store_true",
                     help="hide info-severity findings in text output")
    chk.add_argument("--list-rules", action="store_true",
                     help="print the rule catalog and exit")
    chk.add_argument(
        "--kernel-equiv", nargs="?", const="quick",
        choices=("quick", "full"), default=None, metavar="DEPTH",
        help="run the kernel-equivalence grid (reference vs activity, "
             "byte-for-byte) and exit; DEPTH is 'quick' (default) or "
             "'full'",
    )

    from repro.perfwatch.cli import add_perfwatch_parser
    from repro.search.cli import add_search_parser

    add_perfwatch_parser(sub)
    add_search_parser(sub)
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "compare": _cmd_compare,
        "sweep": _cmd_sweep,
        "cache": _cmd_cache,
        "figure": _cmd_figure,
        "area": _cmd_area,
        "viz": _cmd_viz,
        "telemetry": _cmd_telemetry,
        "faults": _cmd_faults,
        "check": _cmd_check,
        "perfwatch": _cmd_perfwatch,
        "search": _cmd_search,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
