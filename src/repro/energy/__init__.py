"""Energy and area models (Sec. 6.1 and Fig. 14 substitutes).

The paper estimates area from an RTL implementation (Synopsys DC, 45 nm
NanGate) and energy from GPUWattch plus Cadence power numbers.  We replace
both with analytical models exposing the same knobs and calibrated to the
paper's reported totals: ARI adds 5.4% to an NI + MC-router pair and 0.7%
amortized over the whole network, and ARI's energy win (~4%) comes from
reduced static energy over a shorter execution.
"""

from repro.energy.area import AreaBreakdown, AreaModel, ari_area_overhead
from repro.energy.gpuwattch import EnergyBreakdown, EnergyModel

__all__ = [
    "AreaModel",
    "AreaBreakdown",
    "ari_area_overhead",
    "EnergyModel",
    "EnergyBreakdown",
]
