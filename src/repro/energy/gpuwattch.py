"""Energy model (GPUWattch + Cadence substitute, Fig. 14).

The paper's Fig. 14 finding is structural, not numeric: ARI's *dynamic*
energy is essentially unchanged (same data moved, slightly more switch
activity at MC-routers), while *static* energy shrinks proportionally to
the reduced execution time; with the low static fraction modeled by the
tools, overall energy drops ~4% on average.

``EnergyModel`` has exactly that structure: per-activity dynamic costs
(instructions, cache accesses, DRAM accesses, NoC flit-hops) plus a static
power term integrated over execution time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

# Dynamic energy per activity (arbitrary units).
E_INSTRUCTION = 1.0
E_L1_ACCESS = 0.4
E_L2_ACCESS = 0.8
E_DRAM_ACCESS = 8.0
E_FLIT_HOP = 0.22
E_INJECTION_EXTRA_ARI = 0.02   # extra crossbar/mux activity per injected flit

# Static power per cycle for the whole chip (arbitrary units).  Calibrated
# so static energy is a ~25% share for a mid-IPC workload: the paper's ~4%
# overall saving from a ~15% runtime reduction implies roughly that
# fraction ("due to the low static energy percentage modeled in the
# current simulation tools, the overall energy is reduced by around 4%").
P_STATIC = 40.0


@dataclass
class EnergyBreakdown:
    dynamic: float
    static: float

    @property
    def total(self) -> float:
        return self.dynamic + self.static

    def as_dict(self) -> Dict[str, float]:
        return {
            "dynamic": self.dynamic,
            "static": self.static,
            "total": self.total,
        }


@dataclass
class ActivityCounts:
    """Activity inputs to the energy model (one run's worth of work)."""

    instructions: int = 0
    l1_accesses: int = 0
    l2_accesses: int = 0
    dram_accesses: int = 0
    flit_hops: int = 0
    injected_flits: int = 0
    cycles: int = 0


class EnergyModel:
    def __init__(self, ari_enabled: bool = False) -> None:
        self.ari_enabled = ari_enabled

    def evaluate(self, a: ActivityCounts) -> EnergyBreakdown:
        dyn = (
            a.instructions * E_INSTRUCTION
            + a.l1_accesses * E_L1_ACCESS
            + a.l2_accesses * E_L2_ACCESS
            + a.dram_accesses * E_DRAM_ACCESS
            + a.flit_hops * E_FLIT_HOP
        )
        if self.ari_enabled:
            dyn += a.injected_flits * E_INJECTION_EXTRA_ARI
        return EnergyBreakdown(dynamic=dyn, static=P_STATIC * a.cycles)


def activity_from_system(system) -> ActivityCounts:
    """Collect activity counts from a finished :class:`GPGPUSystem` run."""
    a = ActivityCounts()
    a.instructions = sum(c.stats.instructions for c in system.cores)
    a.l1_accesses = sum(
        c.l1.stats.accesses + c.l1.stats.writes for c in system.cores
    )
    a.l2_accesses = sum(
        m.l2.stats.accesses + m.l2.stats.writes for m in system.mcs
    )
    a.dram_accesses = sum(m.dram.requests_served for m in system.mcs)
    # Work-proportional hop counts: charged at request issue (request +
    # reply over the same minimal path), so the dynamic share has no
    # in-flight-backlog bias in finite measurement windows.
    a.flit_hops = system.expected_flit_hops
    a.injected_flits = sum(
        system.reply_net.stats.flits_delivered.values()
    )
    a.cycles = system.now
    return a


def energy_per_work(system, ari_enabled: bool = False) -> float:
    """Total energy divided by instructions executed (equal-work metric).

    The paper compares energy for the *same benchmark run to completion*;
    for fixed-cycle simulations the equal-work equivalent is energy per
    instruction: ARI executes the same work in fewer cycles, so its static
    share per instruction shrinks.
    """
    a = activity_from_system(system)
    if a.instructions == 0:
        return 0.0
    e = EnergyModel(ari_enabled).evaluate(a)
    return e.total / a.instructions
