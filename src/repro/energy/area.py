"""Analytical area model for routers and NIs (Sec. 6.1 substitute).

The paper implements ARI in Verilog and reports, after synthesis and P&R in
a 45 nm flow, a **5.4%** area overhead for one revised NI + MC-router pair
and **0.7%** amortized over the whole network (only MC-routers of the reply
network change).

The model below builds router/NI area from first-order component costs
(buffers dominate; crossbars grow with port product; allocators and wiring
are small) in arbitrary units calibrated so the paper's two headline
numbers are reproduced by the default 6x6 / 8-MC configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

# Component cost coefficients (arbitrary units; buffers per flit-slot of
# 128 bits, crossbar per port-pair, etc.).  Chosen so that the default
# configuration reproduces the paper's 5.4% / 0.7% overheads.
BUFFER_UNIT_PER_FLIT = 1.0        # one 128-bit flit slot of SRAM
CROSSBAR_UNIT_PER_PORT2 = 0.46    # per (input switch-port x output) pair
ALLOCATOR_UNIT_PER_ARB = 0.09     # per arbiter entry
LINK_DRIVER_UNIT = 0.35           # per narrow link endpoint
WIDE_LINK_FACTOR = 4.4            # wide (W-bit) vs narrow (N-bit) driver cost
MUX_UNIT = 0.42                   # per added multiplexer/demultiplexer
NI_LOGIC_UNIT = 10.0              # NI core (packetization) logic
PRIORITY_LOGIC_UNIT = 0.8         # priority field compare/decrement logic


@dataclass
class AreaBreakdown:
    """Area of one router + NI tile, by component (arbitrary units)."""

    input_buffers: float = 0.0
    crossbar: float = 0.0
    allocators: float = 0.0
    ni_queues: float = 0.0
    ni_logic: float = 0.0
    links: float = 0.0
    muxes: float = 0.0
    priority_logic: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.input_buffers
            + self.crossbar
            + self.allocators
            + self.ni_queues
            + self.ni_logic
            + self.links
            + self.muxes
            + self.priority_logic
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "input_buffers": self.input_buffers,
            "crossbar": self.crossbar,
            "allocators": self.allocators,
            "ni_queues": self.ni_queues,
            "ni_logic": self.ni_logic,
            "links": self.links,
            "muxes": self.muxes,
            "priority_logic": self.priority_logic,
        }


class AreaModel:
    """Computes router+NI tile areas for baseline and ARI configurations."""

    def __init__(
        self,
        num_vcs: int = 4,
        vc_capacity_flits: int = 9,
        ni_queue_flits: int = 36,
        mesh_ports: int = 4,
    ) -> None:
        self.num_vcs = num_vcs
        self.vc_capacity = vc_capacity_flits
        self.ni_queue_flits = ni_queue_flits
        self.mesh_ports = mesh_ports

    # ------------------------------------------------------------------
    def baseline_tile(self) -> AreaBreakdown:
        """Enhanced-baseline NI + router (Fig. 7a): 5 in x 5 out crossbar."""
        n_in = self.mesh_ports + 1   # 4 directions + injection
        n_out = self.mesh_ports + 1  # 4 directions + ejection
        b = AreaBreakdown()
        b.input_buffers = (
            n_in * self.num_vcs * self.vc_capacity * BUFFER_UNIT_PER_FLIT
        )
        b.crossbar = n_in * n_out * CROSSBAR_UNIT_PER_PORT2
        b.allocators = (
            n_in * self.num_vcs + n_out * n_in
        ) * ALLOCATOR_UNIT_PER_ARB
        b.ni_queues = self.ni_queue_flits * BUFFER_UNIT_PER_FLIT
        b.ni_logic = NI_LOGIC_UNIT
        # Enhanced baseline already has a wide MC->NI link + 1 narrow
        # injection link.
        b.links = WIDE_LINK_FACTOR * LINK_DRIVER_UNIT + LINK_DRIVER_UNIT
        b.muxes = MUX_UNIT  # injection-port VC mux
        return b

    def ari_tile(
        self,
        num_split_queues: int = 4,
        injection_speedup: int = 4,
        priority_levels: int = 2,
    ) -> AreaBreakdown:
        """ARI NI + MC-router (Fig. 7b + Sec. 4.2 + Sec. 5)."""
        n_out = self.mesh_ports + 1
        # Injection port now occupies `speedup` switch ports.
        n_in_sw = self.mesh_ports + injection_speedup
        b = AreaBreakdown()
        b.input_buffers = (
            (self.mesh_ports + 1)
            * self.num_vcs
            * self.vc_capacity
            * BUFFER_UNIT_PER_FLIT
        )
        b.crossbar = n_in_sw * n_out * CROSSBAR_UNIT_PER_PORT2
        b.allocators = (
            (self.mesh_ports + 1) * self.num_vcs + n_out * n_in_sw
        ) * ALLOCATOR_UNIT_PER_ARB
        # Same total NI buffering, split into `num_split_queues` structures
        # (split structures cost a little extra periphery per queue).
        b.ni_queues = (
            self.ni_queue_flits * BUFFER_UNIT_PER_FLIT
            + num_split_queues * 0.6
        )
        b.ni_logic = NI_LOGIC_UNIT
        # Wide MC->NI link, wide core-logic->queue fan, one narrow link per
        # split queue.
        b.links = (
            WIDE_LINK_FACTOR * LINK_DRIVER_UNIT
            + WIDE_LINK_FACTOR * LINK_DRIVER_UNIT * 0.5
            + num_split_queues * LINK_DRIVER_UNIT
        )
        # Distribution mux before the split queues; per-VC demuxes are
        # removed (Fig. 7b) but the speedup needs output-side demuxes when
        # speedup < NVC.
        b.muxes = MUX_UNIT + max(0, self.num_vcs - injection_speedup) * MUX_UNIT
        if priority_levels > 1:
            b.priority_logic = PRIORITY_LOGIC_UNIT
        return b

    # ------------------------------------------------------------------
    def pair_overhead(self, **ari_kwargs) -> float:
        """Fractional area overhead of one revised NI + MC-router pair."""
        base = self.baseline_tile().total
        ari = self.ari_tile(**ari_kwargs).total
        return (ari - base) / base

    def network_overhead(
        self,
        num_routers: int = 72,
        num_mc_routers: int = 8,
        **ari_kwargs,
    ) -> float:
        """Amortized overhead over both networks (only reply MC tiles change).

        ``num_routers`` counts the request + reply networks (2 x 36 in the
        paper's 6x6 configuration); only the reply network's MC-routers are
        modified.
        """
        base = self.baseline_tile().total
        ari = self.ari_tile(**ari_kwargs).total
        total_base = num_routers * base
        total_ari = (num_routers - num_mc_routers) * base + num_mc_routers * ari
        return (total_ari - total_base) / total_base


def ari_area_overhead() -> Dict[str, float]:
    """The paper's two headline numbers from the default configuration."""
    model = AreaModel()
    return {
        "pair_overhead": model.pair_overhead(),
        "network_overhead": model.network_overhead(),
    }
