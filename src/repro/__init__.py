"""repro — reproduction of "Accelerated Reply Injection for Removing NoC
Bottleneck in GPGPUs" (Li & Chen, IPPS 2020).

A cycle-level GPGPU + NoC simulator (GPGPU-Sim/BookSim substitute) with the
paper's Accelerated Reply Injection scheme, the comparison baselines, a
30-benchmark synthetic workload suite, energy/area models, and an
experiment harness that regenerates every figure in the evaluation.

Quick start::

    from repro import GPUConfig, GPGPUSystem, scheme, benchmark

    system = GPGPUSystem(GPUConfig(), scheme("ada-ari"), benchmark("bfs"))
    result = system.simulate(cycles=2000, warmup=500)
    print(result.ipc, result.mc_stall_per_reply)
"""

__version__ = "1.0.0"

from repro.core import (
    SCHEMES,
    ARIConfig,
    Scheme,
    choose_speedup,
    required_speedup,
    scheme,
    scheme_names,
    speedup_upper_bound,
)
from repro.gpu import GPGPUSystem, GPUConfig, SimulationResult
from repro.noc import Network, NetworkConfig, Packet, PacketType
from repro.workloads import SUITE, benchmark, benchmark_names, by_sensitivity

__all__ = [
    "__version__",
    "ARIConfig",
    "Scheme",
    "SCHEMES",
    "scheme",
    "scheme_names",
    "choose_speedup",
    "required_speedup",
    "speedup_upper_bound",
    "GPUConfig",
    "GPGPUSystem",
    "SimulationResult",
    "Network",
    "NetworkConfig",
    "Packet",
    "PacketType",
    "SUITE",
    "benchmark",
    "benchmark_names",
    "by_sensitivity",
]
