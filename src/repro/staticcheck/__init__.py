"""repro.staticcheck — pre-simulation model verification + determinism lint.

Proves, before a single cycle runs, the properties the simulator
otherwise only observes at runtime: escape-network deadlock freedom
(channel-dependency-graph acyclicity + reachability, per fault epoch),
the paper's Eq. 1 / Eq. 2 injection-speedup sizing, queue/credit/VC
partition sanity — plus an AST determinism lint over the simulator
sources.  See ``docs/staticcheck.md`` for the rule catalog and the
``repro check`` CLI subcommand for the command-line front end.
"""

from repro.staticcheck.cdg import (
    EscapeGraph,
    EscapeTrace,
    all_pairs_unreachable,
    build_escape_cdg,
    channel_name,
    trace_escape,
)
from repro.staticcheck.diagnostics import (
    CheckReport,
    Diagnostic,
    Severity,
    StaticCheckError,
    StaticCheckWarning,
)
from repro.staticcheck.modelcheck import ModelInputs, check_model
from repro.staticcheck.runner import (
    RULES,
    STATICCHECK_ENV,
    CheckRunner,
    clear_validation_cache,
    resolve_mode,
    rule_ids,
    validate_spec,
)

__all__ = [
    "RULES",
    "STATICCHECK_ENV",
    "CheckReport",
    "CheckRunner",
    "Diagnostic",
    "EscapeGraph",
    "EscapeTrace",
    "ModelInputs",
    "Severity",
    "StaticCheckError",
    "StaticCheckWarning",
    "all_pairs_unreachable",
    "build_escape_cdg",
    "channel_name",
    "check_model",
    "clear_validation_cache",
    "resolve_mode",
    "rule_ids",
    "trace_escape",
    "validate_spec",
]
