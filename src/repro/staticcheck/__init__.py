"""repro.staticcheck — pre-simulation model verification + determinism lint.

Proves, before a single cycle runs, the properties the simulator
otherwise only observes at runtime: escape-network deadlock freedom
(channel-dependency-graph acyclicity + reachability, per fault epoch),
the paper's Eq. 1 / Eq. 2 injection-speedup sizing, queue/credit/VC
partition sanity — plus AST/dataflow code lints over the simulator
sources and an interprocedural effect analysis whose flagship client
proves the ActivityKernel's byte-identity contract against the
ReferenceKernel.  See ``docs/staticcheck.md`` for the rule catalog and
the ``repro check`` CLI subcommand for the command-line front end.
"""

from repro.staticcheck.baseline import DEFAULT_BASELINE
from repro.staticcheck.baseline import apply as apply_baseline
from repro.staticcheck.baseline import load as load_baseline
from repro.staticcheck.baseline import save as save_baseline
from repro.staticcheck.callgraph import (
    CallGraph,
    CallSite,
    FunctionNode,
    build_call_graph,
)
from repro.staticcheck.effects import EffectEngine, EffectSummary, Write
from repro.staticcheck.flow import (
    CFG,
    BasicBlock,
    BranchCondition,
    ForwardAnalysis,
    build_cfg,
)
from repro.staticcheck.kernellint import (
    KernelPair,
    find_kernel_pairs,
)
from repro.staticcheck.cdg import (
    EscapeGraph,
    EscapeTrace,
    all_pairs_unreachable,
    build_escape_cdg,
    channel_name,
    trace_escape,
)
from repro.staticcheck.diagnostics import (
    CheckReport,
    Diagnostic,
    Severity,
    StaticCheckError,
    StaticCheckWarning,
)
from repro.staticcheck.modelcheck import ModelInputs, check_model
from repro.staticcheck.runner import (
    RULES,
    STATICCHECK_ENV,
    CheckRunner,
    clear_validation_cache,
    resolve_mode,
    rule_ids,
    validate_spec,
)

__all__ = [
    "CFG",
    "DEFAULT_BASELINE",
    "RULES",
    "STATICCHECK_ENV",
    "BasicBlock",
    "BranchCondition",
    "CallGraph",
    "CallSite",
    "CheckReport",
    "CheckRunner",
    "Diagnostic",
    "EffectEngine",
    "EffectSummary",
    "ForwardAnalysis",
    "FunctionNode",
    "EscapeGraph",
    "EscapeTrace",
    "KernelPair",
    "ModelInputs",
    "Severity",
    "StaticCheckError",
    "StaticCheckWarning",
    "Write",
    "all_pairs_unreachable",
    "apply_baseline",
    "build_call_graph",
    "build_cfg",
    "build_escape_cdg",
    "channel_name",
    "check_model",
    "clear_validation_cache",
    "find_kernel_pairs",
    "load_baseline",
    "save_baseline",
    "resolve_mode",
    "rule_ids",
    "trace_escape",
    "validate_spec",
]
