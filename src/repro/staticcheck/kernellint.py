"""Kernel-soundness prover: the byte-identity contract, checked statically.

:class:`~repro.noc.kernel.ActivityKernel` promises byte-identical results
to :class:`~repro.noc.kernel.ReferenceKernel` while skipping quiescent
components.  ``repro check --kernel-equiv`` samples that promise
dynamically on a config grid; this pass turns it into a *static proof
obligation* that runs before a single cycle is simulated:

1. build the repo call graph and the interprocedural effect summaries
   (:mod:`repro.staticcheck.callgraph` / :mod:`~repro.staticcheck.effects`);
2. collect every state path mutated anywhere reachable from the
   reference kernel's advance method (``cycle``);
3. diff it against the paths the activity kernel replicates (mutates in
   its own closure), wake-schedules, or declares inert.

A reference-side mutation the activity side cannot observe is a
``kernel-skip-unsound`` ERROR: some traffic pattern will eventually make
the skipped work visible and break byte-identity.

Annotation vocabulary (source comments, checked by this pass):

``# kernel: inert(pat, ...)``
    The named state paths need no activity-side counterpart (e.g. a
    diagnostic counter that byte-identity does not cover).  Patterns are
    ``attr``, ``Owner.attr``, or ``Owner.*``.

``# kernel: private(pat, ...)``
    Component state owned by the activity kernel's bookkeeping (wiring
    tables, stall markers); exempt from ``kernel-state-untracked``.

``# kernel: unreached``  (on a call line)
    This reference-side call is provably not part of the gated fast
    path (e.g. fault/auditor hooks force a full fallback cycle), so its
    callee's mutations are excluded from the obligation.

``# kernel: fallback``  (on a call line)
    This activity-side call delegates to the reference kernel; the edge
    is excluded so delegation cannot vacuously discharge the proof.

Rules
-----
``kernel-skip-unsound`` (ERROR)
    A state path mutated on the reference advance path is invisible to
    the activity kernel: not replicated, wake-scheduled, or inert.

``kernel-wake-unscheduled`` (WARNING)
    The activity kernel reads a wake/live agenda it never re-arms —
    everything it drains must be written somewhere in its closure.

``kernel-state-untracked`` (WARNING)
    The activity closure mutates component state the reference kernel
    never touches (byte-identity drift in the other direction).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.staticcheck.callgraph import (
    CallGraph,
    CallSite,
    ClassInfo,
    build_call_graph,
)
from repro.staticcheck.diagnostics import CheckReport, Severity
from repro.staticcheck.effects import EffectEngine, Write

__all__ = [
    "RECEIVER_HINTS",
    "KernelPair",
    "find_kernel_pairs",
    "lint_graph",
    "lint_paths",
    "lint_source",
]

#: Receiver-chain terminal segments -> candidate component classes, used
#: to type the untyped attribute calls inside the kernel loops
#: (``net.routers[r].step(...)``, ``ni.step(...)``).  Subclass overrides
#: are added automatically by the call-graph resolver.
RECEIVER_HINTS: Dict[str, Tuple[str, ...]] = {
    "routers[]": ("Router",),
    "router": ("Router",),
    "nis[]": ("InjectionInterface",),
    "vcs": ("VirtualChannel",),
    "ni": ("InjectionInterface",),
    "ejectors[]": ("EjectionInterface",),
    "ejector": ("EjectionInterface",),
    "ejection_links[]": ("Link",),
    "input_links[]": ("Link",),
    "links[]": ("Link",),
    "link": ("Link",),
    "telemetry": ("TelemetryCollector",),
    "faults": ("FaultInjector",),
    "auditor": ("InvariantChecker",),
    "net": ("Network",),
    "allocator": ("SwitchAllocator",),
    "stats": ("NetworkStats",),
}

_ANNOTATION_RE = re.compile(
    r"#\s*kernel:\s*(inert|private|unreached|fallback)"
    r"(?:\s*\(([^)]*)\))?"
)

#: Attribute names that look like a wake/liveness agenda.
_AGENDA_RE = re.compile(
    r"^_?(wake|live|due|stall|pending|eject|agenda|armed)", re.IGNORECASE
)


class _Annotations:
    """All ``# kernel:`` annotations across the analyzed modules."""

    def __init__(self) -> None:
        self.inert: List[str] = []
        self.private: List[str] = []
        #: (path, lineno) of annotated call lines
        self.unreached: Set[Tuple[str, int]] = set()
        self.fallback: Set[Tuple[str, int]] = set()

    @staticmethod
    def collect(graph: CallGraph) -> "_Annotations":
        out = _Annotations()
        for info in graph.modules.values():
            for lineno, line in enumerate(info.lines, start=1):
                m = _ANNOTATION_RE.search(line)
                if m is None:
                    continue
                kind, arg = m.group(1), m.group(2)
                if kind == "inert":
                    out.inert.extend(_split_patterns(arg))
                elif kind == "private":
                    out.private.extend(_split_patterns(arg))
                elif kind == "unreached":
                    out.unreached.add((info.path, lineno))
                elif kind == "fallback":
                    out.fallback.add((info.path, lineno))
        return out


def _split_patterns(arg: Optional[str]) -> List[str]:
    if not arg:
        return []
    return [p.strip() for p in arg.split(",") if p.strip()]


def _matches(write: Write, patterns: Iterable[str]) -> bool:
    """Does a write match any ``attr`` / ``Owner.attr`` / ``Owner.*``?"""
    for pattern in patterns:
        if "." in pattern:
            owner, attr = pattern.rsplit(".", 1)
            if write.owner != owner:
                continue
            if attr == "*" or attr == write.attr:
                return True
        elif pattern == write.attr:
            return True
    return False


class KernelPair:
    """One reference/activity kernel pair with its advance roots."""

    def __init__(
        self,
        reference: ClassInfo,
        activity: ClassInfo,
        graph: CallGraph,
    ) -> None:
        self.reference = reference
        self.activity = activity
        self.graph = graph

    def _advance_qname(self, cls: ClassInfo) -> Optional[str]:
        methods = self.graph.flattened_methods(cls.qname)
        for name in ("cycle", "advance"):
            node = methods.get(name)
            if node is not None:
                return node.qname
        return None

    @property
    def reference_root(self) -> Optional[str]:
        return self._advance_qname(self.reference)

    @property
    def activity_roots(self) -> List[str]:
        roots = []
        adv = self._advance_qname(self.activity)
        if adv is not None:
            roots.append(adv)
        methods = self.graph.flattened_methods(self.activity.qname)
        hook = methods.get("on_offer")
        if hook is not None and hook.qname not in roots:
            roots.append(hook.qname)
        return roots


def _kernel_role(cls: ClassInfo) -> Optional[str]:
    """'reference' / 'activity' if the class is a kernel backend."""
    for stmt in cls.node.body:
        if isinstance(stmt, ast.Assign) and isinstance(
            stmt.value, ast.Constant
        ):
            for target in stmt.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "name"
                    and stmt.value.value in ("reference", "activity")
                ):
                    return str(stmt.value.value)
    if cls.name.startswith("Reference"):
        return "reference"
    if cls.name.startswith("Activity"):
        return "activity"
    return None


def find_kernel_pairs(graph: CallGraph) -> List[KernelPair]:
    """Reference/activity class pairs present in the graph.

    A class is a kernel when it carries ``name = "reference"`` /
    ``name = "activity"`` (or a ``Reference*``/``Activity*`` name) *and*
    defines an advance method (``cycle`` or ``advance``).  Pairing is by
    stripped name suffix (``ReferenceKernel``/``ActivityKernel``), with
    a same-module singleton fallback.
    """
    refs: List[ClassInfo] = []
    acts: List[ClassInfo] = []
    for qname in sorted(graph.classes):
        cls = graph.classes[qname]
        role = _kernel_role(cls)
        if role is None:
            continue
        methods = graph.flattened_methods(qname)
        if "cycle" not in methods and "advance" not in methods:
            continue
        (refs if role == "reference" else acts).append(cls)

    def suffix(cls: ClassInfo) -> str:
        for prefix in ("Reference", "Activity"):
            if cls.name.startswith(prefix):
                return cls.name[len(prefix):]
        return cls.name

    pairs: List[KernelPair] = []
    used: Set[str] = set()
    for act in acts:
        match = None
        for ref in refs:
            if ref.qname in used:
                continue
            if suffix(ref) == suffix(act):
                match = ref
                break
        if match is None:
            same_module = [
                r for r in refs
                if r.module == act.module and r.qname not in used
            ]
            if len(same_module) == 1:
                match = same_module[0]
        if match is not None:
            used.add(match.qname)
            pairs.append(KernelPair(match, act, graph))
    return pairs


def _chain_hint(chains: Dict[str, List[str]], qname: str) -> str:
    chain = chains.get(qname)
    if not chain or len(chain) < 2:
        return ""
    bare = [q.split(".", 1)[-1] for q in chain]
    return "reached via " + " -> ".join(bare)


def _location(graph: CallGraph, write: Write) -> str:
    node = graph.functions.get(write.qname)
    path = node.path if node is not None else "<unknown>"
    return f"{path}:{write.lineno}"


def _reportable(write: Write, kernel_owners: Set[str]) -> bool:
    """Writes that participate in the contract diff.

    Unknown-root writes (owner ``?``) still *cover* the other side but
    are never reported themselves — an under-resolved alias must not
    fabricate a proof obligation.  Kernel-internal bookkeeping
    (``self._wake`` on the kernels themselves) is not component state.
    """
    return write.owner != "?" and write.owner not in kernel_owners


def lint_graph(graph: CallGraph) -> CheckReport:
    """Run the kernel-soundness rules over a built call graph."""
    report = CheckReport()
    pairs = find_kernel_pairs(graph)
    if not pairs:
        return report
    annotations = _Annotations.collect(graph)
    engine = EffectEngine(graph)

    def skip_at(marks: Set[Tuple[str, int]]):
        def skip(caller: str, site: CallSite) -> bool:
            node = graph.functions.get(caller)
            if node is None:
                return False
            return (node.path, site.lineno) in marks
        return skip

    for pair in pairs:
        ref_root = pair.reference_root
        act_roots = pair.activity_roots
        if ref_root is None or not act_roots:
            continue
        kernel_owners = {pair.reference.name, pair.activity.name}

        ref_writes, ref_chains = engine.collect(
            [ref_root], skip=skip_at(annotations.unreached)
        )
        act_writes, act_chains = engine.collect(
            act_roots, skip=skip_at(annotations.fallback)
        )
        act_attrs = {w.attr for w in act_writes}
        ref_attrs = {w.attr for w in ref_writes}

        # -- kernel-skip-unsound: REF mutations invisible to ACT -------------
        missing: Dict[str, Write] = {}
        for w in sorted(
            ref_writes, key=lambda w: (_location(graph, w), w.path)
        ):
            if not _reportable(w, kernel_owners):
                continue
            if w.attr in act_attrs:
                continue
            if _matches(w, annotations.inert):
                continue
            missing.setdefault(w.attr, w)
        for attr, w in sorted(missing.items()):
            report.add(
                "kernel-skip-unsound",
                Severity.ERROR,
                _location(graph, w),
                f"reference kernel mutates '{w.path}' (attribute "
                f"'{attr}' on {w.owner}) but the activity kernel "
                "never replicates, wake-schedules, or declares it inert",
                f"replicate the mutation in {pair.activity.name}'s "
                "closure, schedule a wakeup that makes it observable, "
                f"or annotate '# kernel: inert({w.owner}.{attr})'; "
                + _chain_hint(ref_chains, w.qname),
            )

        # -- kernel-wake-unscheduled: agenda drained but never re-armed ------
        act_methods = {
            node.qname
            for node in graph.flattened_methods(
                pair.activity.qname
            ).values()
        }
        agenda_reads: Set[str] = set()
        agenda_writes: Set[str] = set()
        for qname in act_chains:
            if qname not in act_methods:
                continue
            summary = engine.direct(qname)
            for attr in summary.reads:
                if _AGENDA_RE.match(attr):
                    agenda_reads.add(attr)
            for w in summary.writes:
                if w.owner == pair.activity.name and _AGENDA_RE.match(
                    w.attr
                ):
                    agenda_writes.add(w.attr)
        unarmed = sorted(agenda_reads - agenda_writes)
        if agenda_reads and not agenda_writes:
            adv = graph.functions.get(act_roots[0])
            location = (
                f"{adv.path}:{adv.lineno}" if adv is not None else ""
            )
            report.add(
                "kernel-wake-unscheduled",
                Severity.WARNING,
                location,
                f"{pair.activity.name} gates on agenda state "
                f"({', '.join(unarmed)}) but nothing in its closure "
                "ever re-arms it",
                "schedule wakeups (write the agenda) from the advance "
                "path or the on_offer hook",
            )

        # -- kernel-state-untracked: ACT-only component mutations ------------
        drifted: Dict[str, Write] = {}
        for w in sorted(
            act_writes, key=lambda w: (_location(graph, w), w.path)
        ):
            if not _reportable(w, kernel_owners):
                continue
            if w.attr in ref_attrs:
                continue
            if _matches(w, annotations.private) or _matches(
                w, annotations.inert
            ):
                continue
            drifted.setdefault(w.attr, w)
        for attr, w in sorted(drifted.items()):
            report.add(
                "kernel-state-untracked",
                Severity.WARNING,
                _location(graph, w),
                f"activity kernel mutates '{w.path}' (attribute "
                f"'{attr}' on {w.owner}) that the reference kernel "
                "never touches — byte-identity drift",
                "mirror the mutation on the reference path or annotate "
                f"'# kernel: private({attr})' if it is kernel "
                "bookkeeping; " + _chain_hint(act_chains, w.qname),
            )
    return report


def lint_source(
    text: str, path: str = "<string>", graph: Optional[CallGraph] = None
) -> CheckReport:
    """Lint one module (with an optional pre-built repo-wide graph)."""
    if graph is None:
        graph = build_call_graph([(path, text)], RECEIVER_HINTS)
        exc = graph.errors.get(path)
        if exc is not None:
            report = CheckReport()
            report.add(
                "kernel-skip-unsound",
                Severity.ERROR,
                f"{path}:{exc.lineno or 0}",
                f"cannot parse module: {exc.msg}",
                "fix the syntax error first",
            )
            return report
    return lint_graph(graph)


def lint_paths(paths: Iterable[str]) -> CheckReport:
    """Build one graph over every ``.py`` file and run the pass."""
    from repro.staticcheck.detlint import iter_python_files

    sources: List[Tuple[str, str]] = []
    for path in iter_python_files(paths):
        with open(path, encoding="utf-8") as fh:
            sources.append((path, fh.read()))
    graph = build_call_graph(sources, RECEIVER_HINTS)
    return lint_graph(graph)
