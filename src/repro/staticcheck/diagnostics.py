"""Structured diagnostics for the pre-simulation static checker.

Every analysis in :mod:`repro.staticcheck` reports findings as
:class:`Diagnostic` records — rule id, severity, location, message, fix
hint — collected into a :class:`CheckReport`.  One record format serves
all consumers: the ``repro check`` CLI renders text or JSON from it, the
:func:`~repro.staticcheck.runner.validate_spec` gate raises
:class:`StaticCheckError` from its error subset, and tests assert on rule
ids instead of message strings.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence


class Severity(enum.IntEnum):
    """Ordered severity levels (comparable: ``ERROR > WARNING > INFO``)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one rule at one location.

    ``location`` is free-form but conventionally ``scheme=... mesh=...``
    for model checks and ``path:line`` for code checks; ``hint`` is a
    short actionable fix suggestion.
    """

    rule: str
    severity: Severity
    location: str
    message: str
    hint: str = ""

    def format(self) -> str:
        loc = f" [{self.location}]" if self.location else ""
        text = f"{self.severity.label}: {self.rule}{loc}: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> Dict[str, str]:
        return {
            "rule": self.rule,
            "severity": self.severity.label,
            "location": self.location,
            "message": self.message,
            "hint": self.hint,
        }


class StaticCheckError(ValueError):
    """A static check found blocking problems.

    Subclasses :class:`ValueError` so callers that guarded configuration
    errors with ``except ValueError`` keep working when the gate catches
    the problem earlier.  Carries the offending diagnostics.
    """

    def __init__(self, diagnostics: Sequence[Diagnostic]):
        self.diagnostics = list(diagnostics)
        lines = [d.format() for d in self.diagnostics]
        super().__init__(
            "static check failed with "
            f"{len(lines)} finding(s):\n  " + "\n  ".join(lines)
        )


class StaticCheckWarning(UserWarning):
    """Non-blocking static-check findings surfaced via ``warnings.warn``."""


@dataclass
class CheckReport:
    """An ordered collection of diagnostics plus pass/fail helpers."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(
        self,
        rule: str,
        severity: Severity,
        location: str,
        message: str,
        hint: str = "",
    ) -> Diagnostic:
        diag = Diagnostic(rule, severity, location, message, hint)
        self.diagnostics.append(diag)
        return diag

    def extend(self, other: "CheckReport") -> "CheckReport":
        self.diagnostics.extend(other.diagnostics)
        return self

    # -- views ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def at_least(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.at_least(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return [
            d for d in self.diagnostics if d.severity == Severity.WARNING
        ]

    @property
    def ok(self) -> bool:
        """No error-severity findings (warnings/infos allowed)."""
        return not self.errors

    def failed(self, strict: bool = False) -> bool:
        """Blocking per the gate policy: errors always, warnings if strict."""
        threshold = Severity.WARNING if strict else Severity.ERROR
        return bool(self.at_least(threshold))

    def rules_hit(self) -> List[str]:
        seen: Dict[str, None] = {}
        for d in self.diagnostics:
            seen.setdefault(d.rule, None)
        return list(seen)

    def filter(self, rules: Optional[Iterable[str]]) -> "CheckReport":
        """A new report keeping only diagnostics of the given rule ids."""
        if rules is None:
            return self
        keep = set(rules)
        return CheckReport(
            [d for d in self.diagnostics if d.rule in keep]
        )

    # -- rendering -----------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        out = {"error": 0, "warning": 0, "info": 0}
        for d in self.diagnostics:
            out[d.severity.label] += 1
        return out

    def summary(self) -> str:
        c = self.counts()
        return (
            f"{len(self.diagnostics)} finding(s): {c['error']} error(s), "
            f"{c['warning']} warning(s), {c['info']} info(s)"
        )

    def render(self, min_severity: Severity = Severity.INFO) -> str:
        lines = [
            d.format() for d in self.diagnostics if d.severity >= min_severity
        ]
        lines.append(self.summary())
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "counts": self.counts(),
            "ok": self.ok,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)
