"""Model-level static checks: routing deadlock freedom + configuration sizing.

Two analysis groups run over a resolved :class:`ModelInputs` (scheme +
overrides + mesh geometry, i.e. everything a
:class:`~repro.experiments.runner.RunSpec` contributes to network
construction):

* **Routing checks** build the escape-channel dependency graph
  (:mod:`repro.staticcheck.cdg`) for each physical network and prove it
  acyclic and all-pairs reachable — on the pristine mesh (errors) and,
  when a :class:`~repro.faults.model.FaultPlan` is attached, once per
  distinct fault epoch with the same detour routing the simulator would
  use (warnings: the runtime degrades gracefully via drops and the
  deadlock recorder, so campaigns must not be blocked).
* **Config checks** validate the paper's sizing rules — Eq. 1
  (``S >= InjRate_pkt x N_flits``), Eq. 2 (``S <= min(N_out, N_VC)``),
  split-queue count vs. injection VCs, credit round trip vs. VC depth,
  req/reply VC-class separation, starvation-threshold sanity — and flag
  overridden knobs the selected scheme ignores.

Severity policy mirrors the builder in :mod:`repro.gpu.system`: where the
builder silently clamps a *scheme default* (speedup / split queues vs. a
small ``num_vcs``) the finding is a WARNING; the same overflow requested
*explicitly* on a spec is an ERROR, because the run would not measure what
was asked for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.schemes import Scheme, scheme as get_scheme
from repro.core.speedup import required_speedup, speedup_upper_bound
from repro.gpu.config import GPUConfig
from repro.noc.credit import credit_round_trip_cycles
from repro.noc.routing import (
    DIRECTION_NAMES,
    RoutingAlgorithm,
    make_routing,
    opposite,
)
from repro.noc.topology import MeshTopology, default_placement
from repro.staticcheck.cdg import (
    EMPTY_LINKS,
    LinkSet,
    all_pairs_unreachable,
    build_escape_cdg,
)
from repro.staticcheck.diagnostics import CheckReport, Severity

#: Non-local router output ports on a 2D mesh (Eq. 2's N_out at an
#: interior router; edge/corner MCs are flagged separately by mc-degree).
MESH_NONLOCAL_OUTPUTS = 4

#: Reply overlays the builder knows how to construct.
KNOWN_OVERLAYS = ("mesh", "da2mesh")

#: Cap on per-rule pair listings so huge cuts stay readable.
_MAX_LISTED = 4


@dataclass(frozen=True)
class ModelInputs:
    """Everything the model checks need, decoupled from RunSpec itself."""

    scheme: str
    mesh: int = 6
    cycles: int = 1500
    warmup: int = 400
    num_vcs: Optional[int] = None
    priority_levels: Optional[int] = None
    injection_speedup: Optional[int] = None
    num_split_queues: Optional[int] = None
    starvation_threshold: Optional[int] = None
    mc_placement: Optional[str] = None
    noc_hop_latency: Optional[int] = None
    faults: Optional[str] = None
    fault_detour: bool = True

    @classmethod
    def from_spec(cls, spec) -> "ModelInputs":
        """Project a :class:`~repro.experiments.runner.RunSpec`."""
        return cls(
            scheme=spec.scheme,
            mesh=spec.mesh,
            cycles=spec.cycles,
            warmup=spec.warmup,
            num_vcs=spec.num_vcs,
            priority_levels=spec.priority_levels,
            injection_speedup=spec.injection_speedup,
            num_split_queues=spec.num_split_queues,
            starvation_threshold=spec.starvation_threshold,
            mc_placement=spec.mc_placement,
            noc_hop_latency=spec.noc_hop_latency,
            faults=spec.faults,
            fault_detour=(
                True if spec.fault_detour is None else spec.fault_detour
            ),
        )

    @property
    def explicit(self) -> FrozenSet[str]:
        """ARI knob names explicitly overridden on this spec."""
        return frozenset(
            name
            for name in (
                "priority_levels",
                "injection_speedup",
                "num_split_queues",
                "starvation_threshold",
            )
            if getattr(self, name) is not None
        )


@dataclass
class ResolvedModel:
    """The constructed-but-not-simulated view the checks run against."""

    inputs: ModelInputs
    config: GPUConfig
    scheme: Scheme
    topology: MeshTopology
    mc_nodes: List[int]
    cc_nodes: List[int]
    num_vcs: int
    routing: RoutingAlgorithm

    @property
    def location(self) -> str:
        return f"scheme={self.scheme.name} mesh={self.inputs.mesh}"


def resolve(inputs: ModelInputs, report: CheckReport) -> Optional[ResolvedModel]:
    """Build the checked view; config-resolve errors end the model pass."""
    loc = f"scheme={inputs.scheme} mesh={inputs.mesh}"
    try:
        overrides = {}
        if inputs.mc_placement is not None:
            overrides["mc_placement"] = inputs.mc_placement
        if inputs.noc_hop_latency is not None:
            overrides["noc_hop_latency"] = inputs.noc_hop_latency
        config = GPUConfig.scaled(inputs.mesh, **overrides)
    except ValueError as exc:
        report.add(
            "config-resolve", Severity.ERROR, loc, str(exc),
            "use a supported mesh size (4/6/8) and placement",
        )
        return None
    sch = get_scheme(inputs.scheme)  # unknown scheme: KeyError, as elsewhere
    try:
        if inputs.priority_levels is not None:
            sch = sch.with_priority_levels(inputs.priority_levels)
        if inputs.injection_speedup is not None:
            sch = sch.with_speedup(inputs.injection_speedup)
        if inputs.num_split_queues is not None:
            sch = sch.with_split_queues(inputs.num_split_queues)
        if inputs.starvation_threshold is not None:
            sch = sch.with_starvation_threshold(inputs.starvation_threshold)
    except ValueError as exc:
        report.add(
            "config-resolve", Severity.ERROR, loc, str(exc),
            "ARI overrides must be positive integers",
        )
        return None
    try:
        routing = make_routing(sch.routing)
    except ValueError as exc:
        report.add(
            "config-resolve", Severity.ERROR, loc, str(exc),
            "fix the scheme's routing name",
        )
        return None
    if sch.reply_overlay not in KNOWN_OVERLAYS:
        report.add(
            "config-resolve", Severity.ERROR, loc,
            f"unknown reply overlay {sch.reply_overlay!r}",
            f"known overlays: {', '.join(KNOWN_OVERLAYS)}",
        )
        return None
    num_vcs = inputs.num_vcs if inputs.num_vcs is not None else config.num_vcs
    if num_vcs < 1:
        report.add(
            "config-resolve", Severity.ERROR, loc,
            f"num_vcs must be >= 1, got {num_vcs}",
            "every port needs at least one virtual channel",
        )
        return None
    topology = MeshTopology(config.mesh_width, config.mesh_height)
    mcs, ccs = default_placement(
        config.mesh_width,
        config.mesh_height,
        config.num_mcs,
        config.mc_placement,
    )
    return ResolvedModel(
        inputs=inputs,
        config=config,
        scheme=sch,
        topology=topology,
        mc_nodes=mcs,
        cc_nodes=ccs[: config.num_cores],
        num_vcs=num_vcs,
        routing=routing,
    )


# -- configuration rules ------------------------------------------------------

def check_config(model: ResolvedModel, report: CheckReport) -> None:
    """Eq. 1 / Eq. 2 sizing, queue/credit/VC-class/starvation sanity."""
    inputs = model.inputs
    ari = model.scheme.ari
    cfg = model.config
    loc = model.location
    explicit = inputs.explicit
    num_vcs = model.num_vcs
    bound = speedup_upper_bound(MESH_NONLOCAL_OUTPUTS, num_vcs)

    # vc-class: Duato's partition needs a real escape VC next to at least
    # one adaptive VC; and the req/reply protocol classes must stay on
    # their separate physical networks (structural, but a 1-VC adaptive
    # mesh is the one configuration that silently merges the classes'
    # escape paths with their adaptive paths).
    if model.scheme.routing.startswith("ada") and num_vcs < 2:
        report.add(
            "vc-class", Severity.ERROR, loc,
            f"adaptive routing with num_vcs={num_vcs}: no VC remains "
            "adaptive once VC 0 is reserved as the escape class",
            "use num_vcs >= 2 or switch the scheme to xy routing",
        )

    # eq2-bound / eq1-speedup: only meaningful when the consumption side
    # (injection crossbar speedup) is enabled.
    if ari.consume:
        requested = ari.injection_speedup
        built = min(requested, bound)
        if requested > bound:
            severity = (
                Severity.ERROR
                if "injection_speedup" in explicit
                else Severity.WARNING
            )
            report.add(
                "eq2-bound", severity, loc,
                f"injection speedup S={requested} exceeds Eq. 2 bound "
                f"min(N_out={MESH_NONLOCAL_OUTPUTS}, N_VC={num_vcs})={bound}"
                + ("" if severity is Severity.ERROR
                   else f"; builder will clamp to {built}"),
                f"request S <= {bound} or raise num_vcs",
            )
        rate = dram_injection_rate(cfg)
        needed = required_speedup(rate, cfg.long_packet_flits)
        if built < needed:
            report.add(
                "eq1-speedup", Severity.WARNING, loc,
                f"injection speedup S={built} is below the Eq. 1 floor "
                f"{needed} (DRAM can supply ~{rate:.3f} pkt/cycle x "
                f"{cfg.long_packet_flits} flits/pkt)",
                "the consumption side will lag the accelerated supply; "
                f"use S >= {needed}",
            )
        # mc-degree: edge/corner MCs have N_out < 4, so Eq. 2 binds
        # tighter there than the mesh-wide bound suggests.
        for mc in model.mc_nodes:
            degree = model.topology.degree(mc)
            if degree < built:
                x, y = model.topology.coords(mc)
                report.add(
                    "mc-degree", Severity.INFO, loc,
                    f"MC r{mc}@({x},{y}) has {degree} mesh outputs < "
                    f"speedup {built}; Eq. 2 caps the effective speedup "
                    f"at {degree} on this router",
                    "prefer placements keeping MCs off edges (diamond)",
                )

    # split-queues: supply-side split NI is hard-wired one queue per
    # injection VC.
    if ari.supply and model.scheme.force_ni_kind is None:
        queues = ari.num_split_queues
        if queues > num_vcs:
            severity = (
                Severity.ERROR
                if "num_split_queues" in explicit
                else Severity.WARNING
            )
            report.add(
                "split-queues", severity, loc,
                f"{queues} split NI queues > {num_vcs} injection VCs"
                + ("" if severity is Severity.ERROR
                   else f"; builder will clamp to {num_vcs}"),
                "split queues map one-per-VC; match num_split_queues "
                "to num_vcs",
            )
        elif queues < num_vcs:
            report.add(
                "split-queues", Severity.INFO, loc,
                f"{queues} split NI queues < {num_vcs} injection VCs: "
                f"{num_vcs - queues} VC(s) never receive supplied flits",
                "raise num_split_queues to num_vcs for full supply",
            )

    # credit-rtt: a VC buffer must cover the credit round trip or the
    # link stalls with a ready sender.
    link_latency = cfg.noc_hop_latency
    rtt = credit_round_trip_cycles(link_latency)
    vc_capacity = cfg.long_packet_flits  # builder: one long packet per VC
    if vc_capacity < rtt:
        report.add(
            "credit-rtt", Severity.WARNING, loc,
            f"VC buffer of {vc_capacity} flits is shallower than the "
            f"{rtt}-cycle credit round trip at link latency "
            f"{link_latency}",
            "deepen VC buffers or reduce noc_hop_latency to keep links "
            "busy under backpressure",
        )

    # starvation: promotion threshold sanity when prioritization is on.
    if ari.priority_enabled:
        threshold = ari.starvation_threshold
        horizon = inputs.cycles + inputs.warmup
        if threshold < 2 * cfg.long_packet_flits:
            report.add(
                "starvation", Severity.WARNING, loc,
                f"starvation threshold {threshold} is shorter than two "
                f"long-packet drain times ({2 * cfg.long_packet_flits} "
                "cycles): low-priority traffic promotes almost "
                "immediately, erasing the priority classes",
                "use a threshold of at least a few packet drain times",
            )
        elif threshold >= horizon:
            report.add(
                "starvation", Severity.INFO, loc,
                f"starvation threshold {threshold} >= run horizon "
                f"{horizon} (cycles + warmup): promotion can never fire "
                "in this run",
                "lower the threshold or lengthen the run to exercise "
                "starvation control",
            )

    # inert-knob: explicit overrides the chosen scheme ignores.
    inert = [
        ("injection_speedup", not ari.consume,
         "consumption acceleration is off in this scheme"),
        ("num_split_queues", not ari.supply,
         "supply acceleration (split NI) is off in this scheme"),
        ("starvation_threshold", not ari.priority_enabled,
         "prioritization is off in this scheme"),
    ]
    for knob, is_inert, why in inert:
        if knob in explicit and is_inert:
            report.add(
                "inert-knob", Severity.INFO, loc,
                f"override {knob}={getattr(inputs, knob)} has no effect: "
                f"{why}",
                "drop the override or pick a scheme with the feature "
                "enabled",
            )


def dram_injection_rate(config: GPUConfig) -> float:
    """Static upper estimate of reply packets/cycle one MC can supply.

    DRAM bandwidth bound: ``bus_bytes_per_cycle x mem_clock_ratio``
    bytes per NoC cycle, one long reply packet per ``line_bytes``.  This
    is the zero-knowledge stand-in for Eq. 1's measured
    ``InjRate_pkt`` (cf. :func:`repro.core.speedup.
    estimate_ideal_injection_rate`, which measures it dynamically).
    """
    bytes_per_cycle = (
        config.dram.bus_bytes_per_cycle * config.mem_clock_ratio
    )
    return bytes_per_cycle / config.line_bytes


# -- routing (CDG) rules ------------------------------------------------------

def check_routing_model(model: ResolvedModel, report: CheckReport) -> None:
    """Escape-network acyclicity + reachability, pristine and per epoch."""
    # Pristine mesh first: findings here are hard errors.
    _check_network_pair(model, report, model.routing,
                        EMPTY_LINKS, EMPTY_LINKS, Severity.ERROR, epoch=None)
    if not model.inputs.faults:
        return
    _check_fault_epochs(model, report)


def _networks(model: ResolvedModel) -> List[Tuple[str, List[int], List[int]]]:
    """(label, sources, dests) per physical mesh network to analyze."""
    nets = [("req", model.cc_nodes, model.mc_nodes)]
    if model.scheme.reply_overlay == "mesh":
        nets.append(("rep", model.mc_nodes, model.cc_nodes))
    # da2mesh replies bypass the mesh entirely; nothing to prove there.
    return nets


def _check_network_pair(
    model: ResolvedModel,
    report: CheckReport,
    routing: RoutingAlgorithm,
    dead_links: LinkSet,
    dead_escape_vcs: LinkSet,
    severity: Severity,
    epoch: Optional[int],
    nets: Optional[Sequence[str]] = None,
) -> None:
    for label, sources, dests in _networks(model):
        if nets is not None and label not in nets:
            continue
        loc = model.location + f" net={label}"
        if epoch is not None:
            loc += f" cycle={epoch}"
        _check_one_network(
            model, report, routing, sources, dests,
            dead_links, dead_escape_vcs, severity, loc, label,
        )


def _check_one_network(
    model: ResolvedModel,
    report: CheckReport,
    routing: RoutingAlgorithm,
    sources: Sequence[int],
    dests: Sequence[int],
    dead_links: LinkSet,
    dead_escape_vcs: LinkSet,
    severity: Severity,
    loc: str,
    label: str,
) -> None:
    topology = model.topology
    graph = build_escape_cdg(
        routing, topology, dests, dead_links, dead_escape_vcs
    )
    cycle = graph.find_cycle()
    if cycle is not None:
        report.add(
            "cdg-cycle", severity, loc,
            f"{label} escape network has a channel-dependency cycle: "
            f"{graph.format_cycle(cycle)}",
            "restrict escape (VC 0) hops to an acyclic order, e.g. "
            "dimension-ordered XY",
        )
    for vc, port in sorted(set(graph.inadmissible)):
        report.add(
            "cdg-escape-vc", severity, loc,
            f"{label}: VC {vc} refuses its own escape hop via port "
            f"{DIRECTION_NAMES[port]} (vc_allowed returned False)",
            "the escape VC must admit every escape_port direction",
        )
    off_mesh = sorted(set(graph.off_mesh_hops))
    for router, dest in off_mesh[:_MAX_LISTED]:
        report.add(
            "cdg-reach", severity, loc,
            f"{label}: escape hop at r{router} toward r{dest} points off "
            "the mesh",
            "escape_port must return a direction with a physical link",
        )
    if len(off_mesh) > _MAX_LISTED:
        report.add(
            "cdg-reach", severity, loc,
            f"{label}: {len(off_mesh) - _MAX_LISTED} more off-mesh "
            "escape hops suppressed",
        )
    failures = all_pairs_unreachable(
        routing, topology, sources, dests, dead_links, dead_escape_vcs
    )
    for src, dest, trace in failures[:_MAX_LISTED]:
        report.add(
            "cdg-reach", severity, loc,
            f"{label}: r{src} cannot reach r{dest}: "
            f"{trace.describe(topology)}",
            "unreachable pairs are written off at the source at runtime "
            "(drops), so results undercount this traffic",
        )
    if len(failures) > _MAX_LISTED:
        report.add(
            "cdg-reach", severity, loc,
            f"{label}: {len(failures) - _MAX_LISTED} more unreachable "
            "pairs suppressed "
            f"({len(failures)} of {len(sources) * len(dests)} total)",
        )


def _check_fault_epochs(model: ResolvedModel, report: CheckReport) -> None:
    """Re-run the CDG analysis for every distinct active-fault set.

    Imports :mod:`repro.faults` lazily: the package pulls in the campaign
    layer (and through it :mod:`repro.experiments.api`), and the no-fault
    path must keep its zero-import-overhead contract.
    """
    from repro.faults.injector import FaultState
    from repro.faults.model import FaultPlan, validate_plan
    from repro.noc.routing import FaultAwareRouting

    loc = model.location
    try:
        plan = FaultPlan.parse(model.inputs.faults)
        validate_plan(plan, model.topology, model.num_vcs)
    except ValueError as exc:
        report.add(
            "config-resolve", Severity.ERROR, loc, str(exc),
            "fix the fault-plan token (see repro.faults.model)",
        )
        return
    for net in ("req", "rep"):
        events = plan.for_net(net).events
        if not events:
            continue
        for start, dead_links, dead_vcs in fault_epochs(
            events, model.topology
        ):
            routing = model.routing
            if model.inputs.fault_detour and dead_links:
                state = FaultState(model.topology)
                state.dead_links = set(dead_links)
                routing = FaultAwareRouting(
                    model.routing, model.topology, state
                )
            _check_network_pair(
                model, report, routing, dead_links, dead_vcs,
                Severity.WARNING, epoch=start, nets=(net,),
            )


def fault_epochs(
    events: Sequence,
    topology: MeshTopology,
) -> List[Tuple[int, LinkSet, LinkSet]]:
    """Distinct (start_cycle, dead_links, dead_escape_vcs) fault states.

    Epoch boundaries are the fault and repair cycles; consecutive
    boundaries with identical surviving graphs collapse into one entry,
    and the fault-free state is skipped (the pristine analysis covers
    it).  Port faults kill the upstream neighbour's opposite output link,
    matching the injector's admin-down semantics; only VC-0 faults affect
    the escape network.
    """
    from repro.faults.model import FaultKind

    boundaries: Set[int] = set()
    for event in events:
        boundaries.add(event.cycle)
        if event.repair_cycle is not None:
            boundaries.add(event.repair_cycle)
    seen: Set[Tuple[LinkSet, LinkSet]] = set()
    epochs: List[Tuple[int, LinkSet, LinkSet]] = []
    for start in sorted(boundaries):
        links: Set[Tuple[int, int]] = set()
        escape_vcs: Set[Tuple[int, int]] = set()
        for event in events:
            if event.cycle > start:
                continue
            if event.repair_cycle is not None and start >= event.repair_cycle:
                continue
            if event.kind is FaultKind.LINK:
                links.add((event.router, event.direction))
            elif event.kind is FaultKind.PORT:
                upstream = topology.neighbors(event.router).get(
                    event.direction
                )
                if upstream is not None:
                    links.add((upstream, opposite(event.direction)))
            elif event.kind is FaultKind.VC and event.vc == 0:
                escape_vcs.add((event.router, event.direction))
        key = (frozenset(links), frozenset(escape_vcs))
        if key in seen or key == (EMPTY_LINKS, EMPTY_LINKS):
            continue
        seen.add(key)
        epochs.append((start, key[0], key[1]))
    return epochs


# -- entry point --------------------------------------------------------------

def check_model(inputs: ModelInputs) -> CheckReport:
    """Run every model-level rule for one resolved configuration."""
    report = CheckReport()
    model = resolve(inputs, report)
    if model is None:
        return report
    check_config(model, report)
    check_routing_model(model, report)
    return report
