"""Worker-capture race detection — rules ``pool-global-write`` and
``pool-capture``.

The parallel sweep executor promises record-for-record parallel==serial
determinism.  That promise dies quietly when a function shipped to a
``ProcessPoolExecutor`` mutates state it does not own:

``pool-global-write``
    A worker function (or anything it calls in the same module) writes a
    module-global — rebinding through ``global``, assigning into a
    module-level container (``CACHE[key] = ...``), or calling a mutating
    method (``append``/``update``/``setdefault``/...) on one.  In the
    parent process that write is shared state; in a pool worker it lands
    in a forked copy and silently diverges between serial and parallel
    runs (the exact bug class the result-store migration removed from
    the old module-global cache by hand).

``pool-capture``
    The callable submitted to the pool is itself suspect: a ``lambda``
    or locally-defined closure (captured state is pickled per task — a
    write to it is lost), or a bound method (``self`` is *copied* into
    the worker, so mutations never reach the parent's instance).

Submission sites are calls to ``submit``/``map`` on a pool object (a
name bound from ``ProcessPoolExecutor(...)``, or named
``pool``/``executor``).  The submitted function and its transitive
callees are scanned through the shared
:mod:`repro.staticcheck.callgraph` — following plain function-call
edges only, so an imported worker's helpers in *other* modules are
checked against their own module's globals too.  Writes to
*documented* side channels can be excused with a trailing
``# pool: allow`` (optionally ``# pool: allow(rule-id)``) comment.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.staticcheck.callgraph import CallGraph, build_call_graph
from repro.staticcheck.diagnostics import CheckReport, Severity

_ALLOW_RE = re.compile(r"#\s*pool:\s*allow(?:\(([a-z0-9_,\- ]+)\))?")

#: Container methods that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append", "extend", "insert", "remove", "clear", "add", "discard",
        "update", "setdefault", "popitem", "appendleft", "extendleft",
        "sort", "reverse",
    }
)

#: Pool variable names recognized even without a visible constructor.
_POOL_NAMES = frozenset({"pool", "executor"})

#: Constructor names that mark a variable as a process pool.
_POOL_CTORS = frozenset({"ProcessPoolExecutor", "Pool"})


def _suppressed(lines: Sequence[str], lineno: int, rule: str) -> bool:
    if not (0 < lineno <= len(lines)):
        return False
    m = _ALLOW_RE.search(lines[lineno - 1])
    if m is None:
        return False
    named = m.group(1)
    return named is None or rule in {t.strip() for t in named.split(",")}


def _module_mutable_globals(tree: ast.Module) -> Set[str]:
    """Module-level names bound to mutable containers."""
    out: Set[str] = set()
    for stmt in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        if _is_mutable_ctor(value):
            for target in targets:
                if isinstance(target, ast.Name):
                    out.add(target.id)
    return out


def _is_mutable_ctor(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        fn = node.func
        name = (
            fn.id if isinstance(fn, ast.Name)
            else fn.attr if isinstance(fn, ast.Attribute) else ""
        )
        return name in (
            "list", "dict", "set", "deque", "defaultdict", "OrderedDict",
            "Counter",
        )
    return False


class _ModuleIndex:
    """Module-level functions, mutable globals and pool variables."""

    def __init__(self, tree: ast.Module) -> None:
        self.tree = tree
        self.functions: Dict[str, ast.FunctionDef] = {}
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[stmt.name] = stmt
        self.mutable_globals = _module_mutable_globals(tree)
        self.module_names = self._module_level_names(tree)

    @staticmethod
    def _module_level_names(tree: ast.Module) -> Set[str]:
        out: Set[str] = set()
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        out.add(target.id)
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name):
                    out.add(stmt.target.id)
        return out


def _pool_variables(fn: ast.AST) -> Set[str]:
    """Names bound (anywhere inside ``fn``) to a process-pool constructor."""
    pools: Set[str] = set(_POOL_NAMES)
    for node in ast.walk(fn):
        value: Optional[ast.expr] = None
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            targets, value = [node.optional_vars], node.context_expr
        if value is None or not isinstance(value, ast.Call):
            continue
        fn_node = value.func
        name = (
            fn_node.id if isinstance(fn_node, ast.Name)
            else fn_node.attr if isinstance(fn_node, ast.Attribute) else ""
        )
        if name in _POOL_CTORS:
            for target in targets:
                if isinstance(target, ast.Name):
                    pools.add(target.id)
    return pools


class _Submission:
    """One ``pool.submit(fn, ...)`` / ``pool.map(fn, ...)`` site."""

    __slots__ = ("node", "target")

    def __init__(self, node: ast.Call, target: ast.expr) -> None:
        self.node = node
        self.target = target

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 0)


def _find_submissions(tree: ast.Module) -> List[_Submission]:
    out: List[_Submission] = []
    pools = _pool_variables(tree)
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr not in ("submit", "map"):
            continue
        base = node.func.value
        if not (isinstance(base, ast.Name) and base.id in pools):
            continue
        if not node.args:
            continue
        out.append(_Submission(node, node.args[0]))
    return out


class _WorkerScan:
    """Scans one worker function (+ transitive callees) for shared writes.

    Callees are followed through the call graph's plain function-call
    edges (``kind == "function"``) — methods, hinted and heuristic
    edges are excluded so the scan stays anchored to what a pool worker
    provably executes.  Each function is checked against *its own*
    module's globals, so cross-module helpers are covered too.
    """

    def __init__(self, graph: CallGraph, report: CheckReport) -> None:
        self.graph = graph
        self.report = report
        self._visited: Set[str] = set()
        self._indexes: Dict[str, Tuple[_ModuleIndex, str, Sequence[str]]] = {}
        # Per-scan frame, rebound by scan() for each function visited.
        self.index: Optional[_ModuleIndex] = None
        self.path = "<string>"
        self.lines: Sequence[str] = ()

    def _frame_for(self, module: str) -> Tuple[_ModuleIndex, str, Sequence[str]]:
        frame = self._indexes.get(module)
        if frame is None:
            info = self.graph.modules[module]
            frame = (_ModuleIndex(info.tree), info.path, info.lines)
            self._indexes[module] = frame
        return frame

    def scan(self, qname: str, worker_name: str) -> None:
        if qname in self._visited:
            return
        self._visited.add(qname)
        node = self.graph.functions.get(qname)
        if node is None or not isinstance(
            node.node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            return
        self.index, self.path, self.lines = self._frame_for(node.module)
        fn = node.node
        local_names = self._local_bindings(fn)
        for sub in ast.walk(fn):
            self._check_global_stmt(sub, fn, worker_name)
            self._check_write(sub, fn, worker_name, local_names)
            self._check_mutator_call(sub, fn, worker_name, local_names)
        # Recurse into callees, cross-module, via function-call edges.
        for site in self.graph.calls.get(qname, []):
            if site.kind != "function":
                continue
            for target in site.targets:
                self.scan(target, worker_name)

    # -- binding classification ----------------------------------------------
    @staticmethod
    def _local_bindings(fn: ast.FunctionDef) -> Set[str]:
        local: Set[str] = set()
        args = fn.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            local.add(arg.arg)
        if args.vararg:
            local.add(args.vararg.arg)
        if args.kwarg:
            local.add(args.kwarg.arg)
        def bind(target: ast.expr) -> None:
            # A subscript/attribute target mutates an object, it does not
            # bind a local — only plain names (and tuple unpacks of them)
            # create bindings.
            if isinstance(target, ast.Name):
                local.add(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for elt in target.elts:
                    bind(elt)
            elif isinstance(target, ast.Starred):
                bind(target.value)

        for node in ast.walk(fn):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    bind(target)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(node.target, ast.Name):
                    local.add(node.target.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for sub in ast.walk(node.target):
                    if isinstance(sub, ast.Name):
                        local.add(sub.id)
            elif isinstance(node, ast.withitem) and node.optional_vars:
                for sub in ast.walk(node.optional_vars):
                    if isinstance(sub, ast.Name):
                        local.add(sub.id)
            elif isinstance(node, ast.Global):
                # global declarations make the name shared, not local
                local.difference_update(node.names)
            elif isinstance(node, ast.comprehension):
                for sub in ast.walk(node.target):
                    if isinstance(sub, ast.Name):
                        local.add(sub.id)
        return local

    def _is_shared(self, name: str, local_names: Set[str]) -> bool:
        if name in local_names:
            return False
        return (
            name in self.index.mutable_globals
            or name in self.index.module_names
        )

    # -- the three write shapes ----------------------------------------------
    def _check_global_stmt(
        self, node: ast.AST, fn: ast.FunctionDef, worker: str
    ) -> None:
        if not isinstance(node, ast.Global):
            return
        self._emit(
            "pool-global-write",
            node,
            f"worker {worker!r} (via {fn.name!r}) declares "
            f"'global {', '.join(node.names)}' — rebinding a module "
            "global inside a pool worker diverges from the parent process",
            "pass state through the task payload and return results "
            "instead of writing globals",
        )

    def _check_write(
        self,
        node: ast.AST,
        fn: ast.FunctionDef,
        worker: str,
        local_names: Set[str],
    ) -> None:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        for target in targets:
            base = target
            # peel subscripts/attributes down to the root name
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
            if not isinstance(base, ast.Name) or base is target:
                # plain name rebinds are local unless declared global
                # (handled by _check_global_stmt)
                continue
            if self._is_shared(base.id, local_names):
                self._emit(
                    "pool-global-write",
                    node,
                    f"worker {worker!r} (via {fn.name!r}) writes into "
                    f"module-global {base.id!r} — the write lands in the "
                    "worker's copy and is lost to the parent",
                    "return the value from the worker and merge in the "
                    "parent, or use a content-addressed store",
                )

    def _check_mutator_call(
        self,
        node: ast.AST,
        fn: ast.FunctionDef,
        worker: str,
        local_names: Set[str],
    ) -> None:
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATORS
        ):
            return
        base = node.func.value
        while isinstance(base, (ast.Subscript, ast.Attribute)):
            base = base.value
        if isinstance(base, ast.Name) and self._is_shared(
            base.id, local_names
        ):
            self._emit(
                "pool-global-write",
                node,
                f"worker {worker!r} (via {fn.name!r}) calls "
                f".{node.func.attr}() on module-global {base.id!r} — "
                "mutation is invisible to the parent process and "
                "order-dependent under fork",
                "return results instead of mutating shared containers",
            )

    def _emit(
        self, rule: str, node: ast.AST, message: str, hint: str
    ) -> None:
        lineno = getattr(node, "lineno", 0)
        if _suppressed(self.lines, lineno, rule):
            return
        self.report.add(
            rule, Severity.WARNING, f"{self.path}:{lineno}", message, hint
        )


def lint_source(
    text: str, path: str = "<string>", graph: Optional[CallGraph] = None
) -> CheckReport:
    """Worker-capture lint over one module's source text.

    With a repo-wide ``graph``, workers imported from other modules
    resolve and their helpers are scanned against their own globals;
    without one, a single-module graph is built on the fly.
    """
    report = CheckReport()
    if graph is None:
        graph = build_call_graph([(path, text)])
    exc = graph.errors.get(path)
    if exc is not None:
        report.add(
            "pool-capture",
            Severity.ERROR,
            f"{path}:{exc.lineno or 0}",
            f"cannot parse module: {exc.msg}",
            "fix the syntax error first",
        )
        return report
    modname = graph.module_by_path.get(path)
    if modname is None:
        return report
    tree = graph.modules[modname].tree
    lines = graph.modules[modname].lines
    submissions = _find_submissions(tree)
    if not submissions:
        return report

    nested_defs = {
        id(node)
        for parent in ast.walk(tree)
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef))
        for node in ast.walk(parent)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and node is not parent
    }
    nested_by_name = {}
    for parent in ast.walk(tree):
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for node in ast.walk(parent):
                if (
                    isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node is not parent
                ):
                    nested_by_name[node.name] = node

    for sub in submissions:
        target = sub.target
        if isinstance(target, ast.Lambda):
            if not _suppressed(lines, sub.lineno, "pool-capture"):
                report.add(
                    "pool-capture",
                    Severity.WARNING,
                    f"{path}:{sub.lineno}",
                    "lambda submitted to a process pool — captured "
                    "variables are pickled per task; writes to them are "
                    "lost and the closure may not pickle at all",
                    "hoist the worker to a module-level function",
                )
            continue
        if isinstance(target, ast.Attribute):
            if not _suppressed(lines, sub.lineno, "pool-capture"):
                report.add(
                    "pool-capture",
                    Severity.WARNING,
                    f"{path}:{sub.lineno}",
                    f"bound method {target.attr!r} submitted to a process "
                    "pool — the instance is copied into the worker, so "
                    "attribute writes never reach the parent object",
                    "submit a module-level function taking explicit "
                    "arguments",
                )
            continue
        if not isinstance(target, ast.Name):
            continue
        qname = graph.resolve_name(modname, target.id)
        if qname is None:
            nested = nested_by_name.get(target.id)
            if nested is not None and id(nested) in nested_defs:
                if not _suppressed(lines, sub.lineno, "pool-capture"):
                    report.add(
                        "pool-capture",
                        Severity.WARNING,
                        f"{path}:{sub.lineno}",
                        f"closure {target.id!r} submitted to a process "
                        "pool — closed-over state is pickled per task; "
                        "writes to it are silently dropped",
                        "hoist the worker to a module-level function and "
                        "pass state explicitly",
                    )
            continue
        _WorkerScan(graph, report).scan(qname, target.id)
    return report


def lint_paths(paths) -> CheckReport:
    """Worker-capture lint over files/directories of Python code."""
    from repro.staticcheck.detlint import iter_python_files

    sources = []
    for path in iter_python_files(paths):
        with open(path, encoding="utf-8") as fh:
            sources.append((path, fh.read()))
    graph = build_call_graph(sources)
    report = CheckReport()
    for path, text in sources:
        report.extend(lint_source(text, path, graph=graph))
    return report


__all__ = ["lint_paths", "lint_source"]
