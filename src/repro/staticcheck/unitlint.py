"""Unit (dimension) inference lint — rule ``unit-mix``.

The simulator mixes five base quantities with incompatible meanings:
**bits**, **bytes**, **flits**, **packets** and **cycles** (plus derived
per-cycle rates such as ``flits/cycle``).  The paper's sizing math lives
exactly at their conversion points — ``W``-bit wide MC→NI links feeding
``N``-flit packets, flits-per-packet factors in the Eq. 1 speedup, cycle
counts from :func:`repro.noc.credit.credit_round_trip_cycles` — and a
silent ``bits + flits`` or ``cycles < packets`` corrupts every result
downstream.

This pass infers a dimension for every value from three sources:

1. **Names.** Parameter/variable/attribute names carry units by
   convention: ``*_cycles``, ``*_latency``, ``*_at``, ``now`` are
   cycles; ``*_flits``, ``occ``, ``occupancy``, ``capacity`` are flits;
   ``*_bytes``, ``*_bits``, ``*_packets`` likewise.
2. **Annotations.** A trailing ``# unit: <dim>`` comment on a statement
   both *casts* the statement's value to ``<dim>`` and suppresses mix
   findings on it — the sanctioned spelling for a deliberate conversion
   (e.g. a narrow link streaming one flit per cycle turns a flit count
   into a cycle count).  ``# unit: ignore`` suppresses without binding.
3. **Known APIs.** Calls such as ``packet_size_for(...)`` (flits) and
   ``credit_round_trip_cycles(...)`` (cycles), and attributes such as
   ``packet.size`` (flits) or ``link.latency`` (cycles).

Dimensions propagate forward through assignments and arithmetic using
the CFG dataflow framework in :mod:`repro.staticcheck.flow`: ``+``/``-``
preserve a dimension (adding a dimensionless literal is fine), ``*`` by
a dimensionless factor preserves it, ``X / cycles`` forms the rate
``X/cycle`` and ``X/cycle * cycles`` collapses back to ``X``.  A ``+``,
``-`` or comparison whose two sides carry *different known* dimensions
is reported as ``unit-mix``; anything involving an unknown dimension is
silently accepted (the lint only fires on provable mixes).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.staticcheck.diagnostics import CheckReport, Severity
from repro.staticcheck.flow import (
    BranchCondition,
    ForwardAnalysis,
    build_cfg,
    iter_function_defs,
)

#: The base dimension vocabulary (rates are spelled ``<dim>/cycle``).
DIMENSIONS = ("bits", "bytes", "flits", "packets", "cycles")

#: Dimensionless marker (integer literals, ratios of like quantities).
DIMLESS = "1"

_UNIT_RE = re.compile(r"#\s*unit:\s*([a-z0-9_/]+)")

#: Exact (lowercased) names that imply a dimension.
_EXACT_NAME_DIMS: Dict[str, str] = {
    "now": "cycles",
    "cycle": "cycles",
    "cycles": "cycles",
    "warmup": "cycles",
    "latency": "cycles",
    "horizon": "cycles",
    "deadline": "cycles",
    "occ": "flits",
    "occupancy": "flits",
    "capacity": "flits",
    "vc_capacity": "flits",
    "capacity_flits": "flits",
    "free_space": "flits",
}

#: Name suffixes that imply a dimension.
_SUFFIX_NAME_DIMS: Tuple[Tuple[str, str], ...] = (
    ("_cycles", "cycles"),
    ("_cycle", "cycles"),
    ("_latency", "cycles"),
    ("_at", "cycles"),
    ("_since", "cycles"),
    ("_until", "cycles"),
    ("_flits", "flits"),
    ("_packets", "packets"),
    ("_pkts", "packets"),
    ("_bits", "bits"),
    ("_bytes", "bytes"),
)

#: Name prefixes that imply a dimension (counters like ``flits_sent``).
_PREFIX_NAME_DIMS: Tuple[Tuple[str, str], ...] = (
    ("flits_", "flits"),
    ("packets_", "packets"),
    ("bits_", "bits"),
    ("bytes_", "bytes"),
)

#: Known function names -> dimension of their return value.
_KNOWN_CALL_DIMS: Dict[str, str] = {
    "packet_size_for": "flits",
    "credit_round_trip_cycles": "cycles",
}

#: Attribute names -> dimension, independent of the base object.  Only
#: names that are unambiguous across the codebase belong here.
_KNOWN_ATTR_DIMS: Dict[str, str] = {
    "size": "flits",          # Packet.size is "number of flits"
    "latency": "cycles",      # Link.latency / CreditChannel.latency
    "vc_capacity": "flits",
    "capacity": "flits",
    "occ": "flits",
    "occupancy": "flits",
    "free_space": "flits",
}

#: ``min``/``max``/``abs``/``int`` and friends preserve their operand dim.
_DIM_PRESERVING_CALLS = frozenset({"int", "abs", "round", "min", "max"})


def name_dim(name: str) -> Optional[str]:
    """Dimension implied by an identifier, or None."""
    low = name.lower()
    hit = _EXACT_NAME_DIMS.get(low)
    if hit is not None:
        return hit
    for suffix, dim in _SUFFIX_NAME_DIMS:
        if low.endswith(suffix):
            return dim
    for prefix, dim in _PREFIX_NAME_DIMS:
        if low.startswith(prefix):
            return dim
    return None


def parse_unit_comment(line: str) -> Optional[str]:
    """The dimension named by a ``# unit:`` comment on ``line``, if any."""
    m = _UNIT_RE.search(line)
    if m is None:
        return None
    return m.group(1)


class _Env:
    """Immutable-ish mapping name -> dimension (absence = unknown)."""

    __slots__ = ("dims",)

    def __init__(self, dims: Optional[Dict[str, str]] = None) -> None:
        self.dims = dims or {}

    def get(self, name: str) -> Optional[str]:
        return self.dims.get(name)

    def bind(self, name: str, dim: Optional[str]) -> "_Env":
        new = dict(self.dims)
        if dim is None:
            new.pop(name, None)
        else:
            new[name] = dim
        return _Env(new)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Env) and self.dims == other.dims

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Env({self.dims})"


def _join_dim(a: Optional[str], b: Optional[str]) -> Optional[str]:
    if a == b:
        return a
    if a == DIMLESS:
        return b
    if b == DIMLESS:
        return a
    return None


class _UnitAnalysis(ForwardAnalysis):
    """Forward dimension propagation over one function's CFG."""

    def __init__(self, cfg, params: Dict[str, str], linter: "_UnitLinter"):
        super().__init__(cfg)
        self.params = params
        self.linter = linter
        self.emit = False  # diagnostics only during the final replay

    # -- lattice -------------------------------------------------------------
    def initial_state(self):
        return _Env(dict(self.params))

    def join(self, a: _Env, b: _Env) -> _Env:
        # DIMLESS joins with any concrete dimension (a zero-initialized
        # accumulator adopts the dimension fed into it); disagreeing
        # concrete dimensions become unknown.
        dims = {}
        for k in a.dims:
            if k in b.dims:
                joined = _join_dim(a.dims[k], b.dims[k])
                if joined is not None:
                    dims[k] = joined
        return _Env(dims)

    # -- transfer ------------------------------------------------------------
    def transfer(self, state: _Env, stmt) -> _Env:
        if isinstance(stmt, BranchCondition):
            self._expr_dim(state, stmt.expr)
            return state
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return state  # nested scopes are analyzed separately
        if isinstance(stmt, ast.Assign):
            return self._assign(state, stmt)
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is None:
                return state
            dim = self._stmt_value_dim(state, stmt, stmt.value)
            if isinstance(stmt.target, ast.Name):
                return state.bind(stmt.target.id, dim)
            return state
        if isinstance(stmt, ast.AugAssign):
            return self._aug_assign(state, stmt)
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._expr_dim(state, stmt.value)
            return state
        if isinstance(stmt, ast.Expr):
            self._expr_dim(state, stmt.value)
            return state
        if isinstance(stmt, (ast.Assert, ast.Raise, ast.Delete)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr_dim(state, child)
            return state
        return state

    # -- statement helpers ---------------------------------------------------
    def _stmt_value_dim(self, state: _Env, stmt, value: ast.expr):
        """Dimension of a statement's RHS, honoring ``# unit:`` casts."""
        cast = self.linter.unit_cast_for(stmt)
        if cast is not None:
            # The cast also suppresses mix findings inside the statement.
            was = self.emit
            self.emit = False
            self._expr_dim(state, value)
            self.emit = was
            return None if cast == "ignore" else cast
        return self._expr_dim(state, value)

    def _assign(self, state: _Env, stmt: ast.Assign) -> _Env:
        dim = self._stmt_value_dim(state, stmt, stmt.value)
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                state = state.bind(target.id, dim)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for elt in target.elts:
                    if isinstance(elt, ast.Name):
                        state = state.bind(elt.id, None)
        return state

    def _aug_assign(self, state: _Env, stmt: ast.AugAssign) -> _Env:
        cast = self.linter.unit_cast_for(stmt)
        value_dim = None
        if cast is None:
            value_dim = self._expr_dim(state, stmt.value)
        target_dim = self._target_dim(state, stmt.target)
        if cast is None and isinstance(stmt.op, (ast.Add, ast.Sub)):
            self._check_mix(stmt, target_dim, value_dim, "augmented assignment")
        if isinstance(stmt.target, ast.Name):
            if cast is not None and cast != "ignore":
                return state.bind(stmt.target.id, cast)
            if target_dim is None and value_dim not in (None, DIMLESS):
                if isinstance(stmt.op, (ast.Add, ast.Sub)):
                    return state.bind(stmt.target.id, value_dim)
        return state

    def _target_dim(self, state: _Env, target: ast.expr) -> Optional[str]:
        if isinstance(target, ast.Name):
            return state.get(target.id) or name_dim(target.id)
        if isinstance(target, ast.Attribute):
            return self._attr_dim(target)
        if isinstance(target, ast.Subscript):
            return self._subscript_dim(state, target)
        return None

    # -- expression evaluation -----------------------------------------------
    def _expr_dim(self, state: _Env, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(
                node.value, (int, float)
            ):
                return None
            return DIMLESS
        if isinstance(node, ast.Name):
            return state.get(node.id) or name_dim(node.id)
        if isinstance(node, ast.Attribute):
            self._expr_dim(state, node.value)
            return self._attr_dim(node)
        if isinstance(node, ast.Subscript):
            return self._subscript_dim(state, node)
        if isinstance(node, ast.BinOp):
            return self._binop_dim(state, node)
        if isinstance(node, ast.UnaryOp):
            return self._expr_dim(state, node.operand)
        if isinstance(node, ast.Compare):
            return self._compare(state, node)
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self._expr_dim(state, value)
            return None
        if isinstance(node, ast.Call):
            return self._call_dim(state, node)
        if isinstance(node, ast.IfExp):
            self._expr_dim(state, node.test)
            a = self._expr_dim(state, node.body)
            b = self._expr_dim(state, node.orelse)
            return _join_dim(a, b)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                self._expr_dim(state, elt)
            return None
        if isinstance(node, ast.Dict):
            for sub in list(node.keys) + list(node.values):
                if sub is not None:
                    self._expr_dim(state, sub)
            return None
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            for gen in node.generators:
                self._expr_dim(state, gen.iter)
            return None
        if isinstance(node, ast.Lambda):
            return None
        if isinstance(node, (ast.JoinedStr, ast.FormattedValue)):
            return None
        return None

    def _attr_dim(self, node: ast.Attribute) -> Optional[str]:
        hit = _KNOWN_ATTR_DIMS.get(node.attr)
        if hit is not None:
            return hit
        return name_dim(node.attr)

    def _subscript_dim(self, state: _Env, node: ast.Subscript) -> Optional[str]:
        # ``credits[(port, vc)]`` counts free downstream slots, i.e. flits.
        base = node.value
        if isinstance(base, (ast.Name, ast.Attribute)):
            last = base.id if isinstance(base, ast.Name) else base.attr
            if "credit" in last.lower():
                return "flits"
        return None

    def _call_dim(self, state: _Env, node: ast.Call) -> Optional[str]:
        for arg in node.args:
            self._expr_dim(state, arg)
        for kw in node.keywords:
            if kw.value is not None:
                self._expr_dim(state, kw.value)
        fn = node.func
        fn_name = None
        if isinstance(fn, ast.Name):
            fn_name = fn.id
        elif isinstance(fn, ast.Attribute):
            fn_name = fn.attr
            self._expr_dim(state, fn.value)
        if fn_name is None:
            return None
        hit = _KNOWN_CALL_DIMS.get(fn_name)
        if hit is not None:
            return hit
        if fn_name in _DIM_PRESERVING_CALLS and node.args:
            dims = [self._peek_dim(state, a) for a in node.args]
            out = dims[0]
            for d in dims[1:]:
                out = _join_dim(out, d)
            return out
        if fn_name == "range" and node.args:
            out = None
            for a in node.args:
                out = _join_dim(out, self._peek_dim(state, a))
            return out
        return name_dim(fn_name)

    def _peek_dim(self, state: _Env, node: ast.expr) -> Optional[str]:
        """Like :meth:`_expr_dim` but never emits (re-evaluation)."""
        was = self.emit
        self.emit = False
        try:
            return self._expr_dim(state, node)
        finally:
            self.emit = was

    def _binop_dim(self, state: _Env, node: ast.BinOp) -> Optional[str]:
        left = self._expr_dim(state, node.left)
        right = self._expr_dim(state, node.right)
        op = node.op
        if isinstance(op, (ast.Add, ast.Sub)):
            self._check_mix(node, left, right, "arithmetic")
            return _join_dim(left, right)
        if isinstance(op, ast.Mult):
            if left == DIMLESS:
                return right
            if right == DIMLESS:
                return left
            # rate * time collapses: (X/cycle) * cycles -> X
            for a, b in ((left, right), (right, left)):
                if a is not None and a.endswith("/cycle") and b == "cycles":
                    return a[: -len("/cycle")]
            return None
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            if left is None or right is None:
                return None
            if left == right:
                return DIMLESS
            if right == DIMLESS:
                return left
            if right == "cycles" and "/" not in left and left != DIMLESS:
                return f"{left}/cycle"
            return None
        if isinstance(op, ast.Mod):
            return left
        return None

    def _compare(self, state: _Env, node: ast.Compare) -> Optional[str]:
        dims = [self._expr_dim(state, node.left)]
        for comparator in node.comparators:
            dims.append(self._expr_dim(state, comparator))
        ops_ok = all(
            isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq))
            for op in node.ops
        )
        if ops_ok:
            for a, b in zip(dims, dims[1:]):
                self._check_mix(node, a, b, "comparison")
        return None

    # -- reporting -----------------------------------------------------------
    def _check_mix(
        self,
        node: ast.AST,
        left: Optional[str],
        right: Optional[str],
        context: str,
    ) -> None:
        if not self.emit:
            return
        if left is None or right is None:
            return
        if left == right or DIMLESS in (left, right):
            return
        self.linter.report_mix(node, left, right, context)


class _UnitLinter:
    """Runs the unit analysis over every scope of one module."""

    def __init__(self, path: str, lines: Sequence[str], report: CheckReport):
        self.path = path
        self.lines = lines
        self.report = report
        self._seen: Dict[Tuple[int, int, str], None] = {}

    # -- annotations ---------------------------------------------------------
    def _line(self, lineno: int) -> str:
        if 0 < lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def unit_cast_for(self, stmt) -> Optional[str]:
        """The ``# unit:`` cast on a statement's first or last line."""
        for lineno in (getattr(stmt, "lineno", 0), getattr(stmt, "end_lineno", 0)):
            cast = parse_unit_comment(self._line(lineno))
            if cast is not None:
                return cast
        return None

    def _suppressed(self, node: ast.AST) -> bool:
        lineno = getattr(node, "lineno", 0)
        return parse_unit_comment(self._line(lineno)) is not None

    # -- reporting -----------------------------------------------------------
    def report_mix(
        self, node: ast.AST, left: str, right: str, context: str
    ) -> None:
        if self._suppressed(node):
            return
        lineno = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        key = (lineno, col, f"{left}|{right}|{context}")
        if key in self._seen:
            return
        self._seen[key] = None
        self.report.add(
            "unit-mix",
            Severity.WARNING,
            f"{self.path}:{lineno}",
            f"{context} mixes {left} with {right}",
            "convert explicitly or annotate the intended result "
            "with '# unit: <dim>'",
        )

    # -- driving -------------------------------------------------------------
    def run(self, tree: ast.Module) -> None:
        self._run_scope(tree, params={})
        for fn in iter_function_defs(tree):
            self._run_scope(fn, params=self._param_dims(fn))

    def _param_dims(self, fn) -> Dict[str, str]:
        params: Dict[str, str] = {}
        args = fn.args
        all_args = (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
        )
        for arg in all_args:
            dim = name_dim(arg.arg)
            if dim is not None:
                params[arg.arg] = dim
        # A ``# unit:`` comment on the def line annotates the return, not
        # the params; per-parameter dims come from the name vocabulary.
        return params

    def _run_scope(self, node, params: Dict[str, str]) -> None:
        cfg = build_cfg(node)
        analysis = _UnitAnalysis(cfg, params, self)
        analysis.run()
        # Replay every block from its fixpoint input state, now emitting.
        analysis.emit = True
        for bid in sorted(cfg.blocks):
            state = analysis.block_in.get(bid)
            if state is None:
                state = analysis.initial_state()
            for stmt in cfg.blocks[bid].stmts:
                state = analysis.transfer(state, stmt)


def lint_source(text: str, path: str = "<string>") -> CheckReport:
    """Unit-inference lint over one module's source text."""
    report = CheckReport()
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError as exc:
        report.add(
            "unit-mix",
            Severity.ERROR,
            f"{path}:{exc.lineno or 0}",
            f"cannot parse module: {exc.msg}",
            "fix the syntax error first",
        )
        return report
    _UnitLinter(path, text.splitlines(), report).run(tree)
    return report


def lint_paths(paths) -> CheckReport:
    """Unit-inference lint over files/directories of Python code."""
    from repro.staticcheck.detlint import iter_python_files

    report = CheckReport()
    for path in iter_python_files(paths):
        with open(path, encoding="utf-8") as fh:
            report.extend(lint_source(fh.read(), path))
    return report


__all__ = [
    "DIMENSIONS",
    "DIMLESS",
    "lint_paths",
    "lint_source",
    "name_dim",
    "parse_unit_comment",
]
