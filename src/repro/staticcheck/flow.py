"""Intraprocedural dataflow framework over Python ASTs.

The code-level analyses in :mod:`repro.staticcheck` (unit inference,
credit-conservation conformance, worker-capture detection) all need the
same substrate: a control-flow graph per function and a forward
abstract-value propagation over it.  This module provides both, kept
deliberately small and dependency-free:

:class:`BasicBlock` / :class:`CFG`
    Basic blocks of *simple* statements connected by directed edges.
    Compound statements (``if``/``while``/``for``/``try``/``with``) are
    split into their constituent blocks; their test/iter expressions are
    recorded as :class:`BranchCondition` pseudo-statements so transfer
    functions still see every expression exactly once.

:func:`build_cfg`
    CFG construction for a function body (or a module body).  Handles
    ``break``/``continue``, ``while``/``for`` ``else`` clauses,
    ``match`` statements (one block per case, capture-pattern bindings
    materialized as synthetic assignments), ``assert`` (the failing
    path raises, so following code is only reached on the passing
    path), and ``try``/``except``/``else``/``finally`` — every
    statement inside a ``try`` body may raise, so each gets an edge to
    the handlers, and every exit route (fallthrough, return, break,
    continue) is funneled through the ``finally`` suite when one
    exists.

:class:`ForwardAnalysis`
    A worklist fixpoint engine.  Subclasses define the lattice through
    :meth:`ForwardAnalysis.initial_state`, :meth:`ForwardAnalysis.join`
    and :meth:`ForwardAnalysis.transfer`; the engine iterates block
    states to a fixpoint and exposes the input state of every block.

The framework itself is *intra*procedural; interprocedural reasoning
(effect summaries, the kernel-soundness prover, cross-module lint
logic) layers on top through the shared call graph in
``callgraph.py``/``effects.py`` rather than widening this engine into
a whole-program analysis.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "BasicBlock",
    "BranchCondition",
    "CFG",
    "ForwardAnalysis",
    "build_cfg",
    "iter_function_defs",
]


class BranchCondition:
    """Pseudo-statement carrying a branch/loop test expression.

    ``expr`` is the test (``if``/``while``), iterable (``for``),
    context manager (``with``), or match subject (``match``)
    expression; ``kind`` is one of ``"if"``, ``"while"``, ``"for"``,
    ``"with"``, ``"match"``.  Transfer functions receive these like
    ordinary statements so every expression in the function is visited
    once.
    """

    __slots__ = ("expr", "kind")

    def __init__(self, expr: ast.expr, kind: str) -> None:
        self.expr = expr
        self.kind = kind

    @property
    def lineno(self) -> int:
        return getattr(self.expr, "lineno", 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BranchCondition({self.kind}@{self.lineno})"


class BasicBlock:
    """A straight-line run of statements with one entry and one exit set."""

    __slots__ = ("bid", "stmts", "succs", "preds", "label")

    def __init__(self, bid: int, label: str = "") -> None:
        self.bid = bid
        self.stmts: List[object] = []  # ast.stmt | BranchCondition
        self.succs: List[int] = []
        self.preds: List[int] = []
        self.label = label

    @property
    def first_line(self) -> int:
        for stmt in self.stmts:
            line = getattr(stmt, "lineno", 0)
            if line:
                return line
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BasicBlock(b{self.bid} {self.label!r} "
            f"stmts={len(self.stmts)} -> {self.succs})"
        )


class CFG:
    """A control-flow graph: blocks, a distinguished entry and exit."""

    def __init__(self) -> None:
        self.blocks: Dict[int, BasicBlock] = {}
        self.entry: int = 0
        self.exit: int = 0

    def new_block(self, label: str = "") -> BasicBlock:
        bid = len(self.blocks)
        block = BasicBlock(bid, label)
        self.blocks[bid] = block
        return block

    def add_edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)
            self.blocks[dst].preds.append(src)

    # -- queries -------------------------------------------------------------
    def reachable_from(self, bid: int) -> List[int]:
        """Block ids reachable from ``bid`` (inclusive), DFS preorder."""
        seen: Dict[int, None] = {}
        stack = [bid]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen[cur] = None
            stack.extend(reversed(self.blocks[cur].succs))
        return list(seen)

    def paths_to_exit(
        self, bid: int, limit: int = 64
    ) -> List[List[int]]:
        """Up to ``limit`` acyclic block-id paths from ``bid`` to the exit."""
        out: List[List[int]] = []

        def walk(cur: int, path: List[int]) -> None:
            if len(out) >= limit:
                return
            path = path + [cur]
            if cur == self.exit:
                out.append(path)
                return
            for succ in self.blocks[cur].succs:
                if succ not in path:
                    walk(succ, path)

        walk(bid, [])
        return out

    def statements(self) -> Iterable[Tuple[int, object]]:
        """Every (block id, statement) pair, in block-id order."""
        for bid in sorted(self.blocks):
            for stmt in self.blocks[bid].stmts:
                yield bid, stmt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CFG(blocks={len(self.blocks)}, entry=b{self.entry}, exit=b{self.exit})"


class _LoopFrame:
    """Break/continue targets while building a loop's body."""

    __slots__ = ("continue_target", "break_target")

    def __init__(self, continue_target: int, break_target: int) -> None:
        self.continue_target = continue_target
        self.break_target = break_target


class _CFGBuilder:
    """Recursive-descent CFG construction for one statement suite."""

    def __init__(self) -> None:
        self.cfg = CFG()
        entry = self.cfg.new_block("entry")
        self.cfg.entry = entry.bid
        self._exit = self.cfg.new_block("exit")
        self.cfg.exit = self._exit.bid
        self.loops: List[_LoopFrame] = []
        # Innermost enclosing handler entry blocks (any statement in the
        # guarded try body may transfer there).
        self.handlers: List[List[int]] = []
        # Innermost enclosing finally suite builders: a callable that
        # routes an abrupt exit (return/break/continue) through the
        # finally body and returns the block to continue from.
        self.finallies: List[Callable[[int], int]] = []

    # -- suite-level ---------------------------------------------------------
    def build(self, body: List[ast.stmt]) -> CFG:
        last = self._suite(body, self.cfg.entry)
        if last is not None:
            self.cfg.add_edge(last, self.cfg.exit)
        return self.cfg

    def _suite(self, stmts: List[ast.stmt], current: int) -> Optional[int]:
        """Thread ``stmts`` starting at block ``current``.

        Returns the fallthrough block id, or None when control never
        falls out of the suite (ends in return/raise/break/continue).
        """
        for stmt in stmts:
            if current is None:
                # Unreachable code after an abrupt exit: still give it a
                # block (analyses may want to lint it) with no preds.
                current = self.cfg.new_block("unreachable").bid
            current = self._statement(stmt, current)
        return current

    # -- statement dispatch --------------------------------------------------
    def _statement(self, stmt: ast.stmt, current: int) -> Optional[int]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, current)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, current)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, current)
        if isinstance(stmt, ast.Assert):
            return self._assert(stmt, current)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self._append(current, stmt)
            self._raise_edges(current)
            target = self._through_finallies(current)
            self.cfg.add_edge(target, self.cfg.exit)
            return None
        if isinstance(stmt, ast.Break):
            self._append(current, stmt)
            if self.loops:
                target = self._through_finallies(current)
                self.cfg.add_edge(target, self.loops[-1].break_target)
            return None
        if isinstance(stmt, ast.Continue):
            self._append(current, stmt)
            if self.loops:
                target = self._through_finallies(current)
                self.cfg.add_edge(target, self.loops[-1].continue_target)
            return None
        # Simple statement (including nested def/class, which the
        # analyses recurse into separately).
        self._append(current, stmt)
        self._raise_edges(current)
        return current

    def _append(self, bid: int, stmt: object) -> None:
        self.cfg.blocks[bid].stmts.append(stmt)

    def _raise_edges(self, bid: int) -> None:
        """Any statement inside a try body may transfer to its handlers."""
        if self.handlers:
            for handler_bid in self.handlers[-1]:
                self.cfg.add_edge(bid, handler_bid)

    def _through_finallies(self, bid: int) -> int:
        """Route an abrupt exit through every enclosing finally suite."""
        for route in reversed(list(self.finallies)):
            bid = route(bid)
        return bid

    # -- compound statements -------------------------------------------------
    def _if(self, stmt: ast.If, current: int) -> Optional[int]:
        self._append(current, BranchCondition(stmt.test, "if"))
        self._raise_edges(current)
        join: Optional[int] = None

        then_entry = self.cfg.new_block("then")
        self.cfg.add_edge(current, then_entry.bid)
        then_exit = self._suite(stmt.body, then_entry.bid)

        if stmt.orelse:
            else_entry = self.cfg.new_block("else")
            self.cfg.add_edge(current, else_entry.bid)
            else_exit = self._suite(stmt.orelse, else_entry.bid)
        else:
            else_exit = current  # falls straight through

        if then_exit is None and else_exit is None:
            return None
        join = self.cfg.new_block("join").bid
        if then_exit is not None:
            self.cfg.add_edge(then_exit, join)
        if else_exit is not None:
            self.cfg.add_edge(else_exit, join)
        return join

    def _loop(self, stmt, current: int) -> Optional[int]:
        head = self.cfg.new_block("loop-head")
        self.cfg.add_edge(current, head.bid)
        if isinstance(stmt, ast.While):
            self._append(head.bid, BranchCondition(stmt.test, "while"))
        else:
            # The for target binds on each iteration: record both the
            # iterable expression and a synthetic binding statement.
            self._append(head.bid, BranchCondition(stmt.iter, "for"))
            bind = ast.Assign(targets=[stmt.target], value=stmt.iter)
            ast.copy_location(bind, stmt)
            self._append(head.bid, bind)
        self._raise_edges(head.bid)

        after = self.cfg.new_block("loop-after")
        # The else suite runs when the loop exhausts without break.
        if stmt.orelse:
            else_entry = self.cfg.new_block("loop-else")
            self.cfg.add_edge(head.bid, else_entry.bid)
            else_exit = self._suite(stmt.orelse, else_entry.bid)
            if else_exit is not None:
                self.cfg.add_edge(else_exit, after.bid)
        else:
            self.cfg.add_edge(head.bid, after.bid)

        self.loops.append(_LoopFrame(head.bid, after.bid))
        body_entry = self.cfg.new_block("loop-body")
        self.cfg.add_edge(head.bid, body_entry.bid)
        body_exit = self._suite(stmt.body, body_entry.bid)
        if body_exit is not None:
            self.cfg.add_edge(body_exit, head.bid)
        self.loops.pop()
        return after.bid

    def _assert(self, stmt: ast.Assert, current: int) -> Optional[int]:
        # A failing assert raises AssertionError: the failure route goes
        # to the handlers / through finallies to the exit, and the code
        # after the assert is reached only on the passing path.
        self._append(current, stmt)
        self._raise_edges(current)
        target = self._through_finallies(current)
        self.cfg.add_edge(target, self.cfg.exit)
        ok = self.cfg.new_block("assert-ok")
        self.cfg.add_edge(current, ok.bid)
        return ok.bid

    def _match(self, stmt: ast.Match, current: int) -> Optional[int]:
        self._append(current, BranchCondition(stmt.subject, "match"))
        self._raise_edges(current)

        exits: List[int] = []
        irrefutable = False
        for case in stmt.cases:
            entry = self.cfg.new_block("case")
            self.cfg.add_edge(current, entry.bid)
            # Capture patterns bind names on entry to the case body;
            # materialize them as synthetic assignments from the subject
            # so transfer functions see the bindings.
            for name, pattern in _pattern_captures(case.pattern):
                bind = ast.Assign(
                    targets=[ast.Name(id=name, ctx=ast.Store())],
                    value=stmt.subject,
                )
                ast.copy_location(bind, pattern)
                ast.fix_missing_locations(bind)
                self._append(entry.bid, bind)
            if case.guard is not None:
                self._append(entry.bid, BranchCondition(case.guard, "if"))
            case_exit = self._suite(case.body, entry.bid)
            if case_exit is not None:
                exits.append(case_exit)
            if case.guard is None and _pattern_irrefutable(case.pattern):
                irrefutable = True
        if not irrefutable:
            # No case matched: control falls past the whole statement.
            exits.append(current)
        if not exits:
            return None
        join = self.cfg.new_block("match-join").bid
        for e in exits:
            self.cfg.add_edge(e, join)
        return join

    def _with(self, stmt, current: int) -> Optional[int]:
        for item in stmt.items:
            self._append(current, BranchCondition(item.context_expr, "with"))
            if item.optional_vars is not None:
                bind = ast.Assign(
                    targets=[item.optional_vars], value=item.context_expr
                )
                ast.copy_location(bind, stmt)
                self._append(current, bind)
        self._raise_edges(current)
        # A `with` statement is an implicit try/finally: a raise anywhere
        # in the body runs __exit__ and then propagates.  Model that with
        # a synthetic handler block active for the body — every body
        # statement gets an edge to it — which routes onward to the
        # enclosing handlers (when inside a try) or through the enclosing
        # finally suites to the function exit.
        propagate = self.cfg.new_block("with-raise")
        body_entry = self.cfg.new_block("with-body")
        self.cfg.add_edge(current, body_entry.bid)
        self.handlers.append([propagate.bid])
        try:
            body_exit = self._suite(stmt.body, body_entry.bid)
        finally:
            self.handlers.pop()
        self._raise_edges(propagate.bid)
        target = self._through_finallies(propagate.bid)
        self.cfg.add_edge(target, self.cfg.exit)
        return body_exit

    def _try(self, stmt: ast.Try, current: int) -> Optional[int]:
        finally_route = self._make_finally_router(stmt)

        handler_entries: List[int] = [
            self.cfg.new_block("except").bid for _ in stmt.handlers
        ]

        # Build the guarded body with handler edges active.
        body_entry = self.cfg.new_block("try")
        self.cfg.add_edge(current, body_entry.bid)
        if handler_entries:
            self.handlers.append(handler_entries)
        if finally_route is not None:
            self.finallies.append(finally_route)
        body_exit = self._suite(stmt.body, body_entry.bid)
        if finally_route is not None:
            self.finallies.pop()
        if handler_entries:
            self.handlers.pop()

        # else suite runs only on clean body completion.
        if stmt.orelse and body_exit is not None:
            body_exit = self._suite(stmt.orelse, body_exit)

        exits: List[int] = []
        if body_exit is not None:
            exits.append(body_exit)

        for handler, entry_bid in zip(stmt.handlers, handler_entries):
            if handler.type is not None:
                self._append(entry_bid, BranchCondition(handler.type, "if"))
            if finally_route is not None:
                self.finallies.append(finally_route)
            handler_exit = self._suite(handler.body, entry_bid)
            if finally_route is not None:
                self.finallies.pop()
            if handler_exit is not None:
                exits.append(handler_exit)

        if not stmt.finalbody:
            if not exits:
                return None
            join = self.cfg.new_block("try-join").bid
            for e in exits:
                self.cfg.add_edge(e, join)
            return join

        # Normal completion also flows through the finally suite.
        fin_entry = self.cfg.new_block("finally")
        for e in exits:
            self.cfg.add_edge(e, fin_entry.bid)
        fin_exit = self._suite(stmt.finalbody, fin_entry.bid)
        return fin_exit

    def _make_finally_router(self, stmt: ast.Try):
        """A callable routing abrupt exits through this try's finally."""
        if not stmt.finalbody:
            return None

        def route(from_bid: int) -> int:
            # A return inside the finally copy must not re-enter this
            # router (infinite recursion); mask it while building.
            idx = self.finallies.index(route) if route in self.finallies else -1
            if idx >= 0:
                self.finallies.pop(idx)
            try:
                fin_entry = self.cfg.new_block("finally-abrupt")
                self.cfg.add_edge(from_bid, fin_entry.bid)
                fin_exit = self._suite(list(stmt.finalbody), fin_entry.bid)
            finally:
                if idx >= 0:
                    self.finallies.insert(idx, route)
            return fin_exit if fin_exit is not None else fin_entry.bid

        return route


def _pattern_captures(pattern) -> List[Tuple[str, ast.AST]]:
    """(name, node) for every capture binding inside a match pattern."""
    out: List[Tuple[str, ast.AST]] = []
    for node in ast.walk(pattern):
        if isinstance(node, ast.MatchAs) and node.name is not None:
            out.append((node.name, node))
        elif isinstance(node, ast.MatchStar) and node.name is not None:
            out.append((node.name, node))
        elif isinstance(node, ast.MatchMapping) and node.rest is not None:
            out.append((node.rest, node))
    return out


def _pattern_irrefutable(pattern) -> bool:
    """Does the pattern match any subject (``case _:`` / bare capture)?"""
    if isinstance(pattern, ast.MatchAs):
        return pattern.pattern is None or _pattern_irrefutable(
            pattern.pattern
        )
    if isinstance(pattern, ast.MatchOr):
        return any(_pattern_irrefutable(p) for p in pattern.patterns)
    return False


def build_cfg(node) -> CFG:
    """Build the CFG of a function/module body.

    ``node`` may be an ``ast.FunctionDef`` / ``AsyncFunctionDef``, an
    ``ast.Module``, or a plain list of statements.
    """
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
        body = node.body
    else:
        body = list(node)
    return _CFGBuilder().build(body)


def iter_function_defs(tree: ast.AST):
    """Yield every (possibly nested) function definition in the tree."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


class ForwardAnalysis:
    """Worklist forward dataflow over a :class:`CFG`.

    Subclasses provide the lattice and transfer function:

    ``initial_state()``
        The state entering the CFG entry block.
    ``join(a, b)``
        Least upper bound of two states (must be monotone).
    ``transfer(state, stmt)``
        New state after one statement (``stmt`` is an ``ast.stmt`` or a
        :class:`BranchCondition`).  Must not mutate ``state``.

    :meth:`run` iterates to a fixpoint and returns ``{block id: input
    state}``; :meth:`state_before` replays a block's prefix to recover
    the state at a particular statement.
    """

    #: Safety valve: iterations are bounded by ``len(blocks) * _MAX_VISITS``.
    _MAX_VISITS = 64

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self.block_in: Dict[int, object] = {}

    # -- lattice hooks (override) -------------------------------------------
    def initial_state(self):
        raise NotImplementedError

    def join(self, a, b):
        raise NotImplementedError

    def transfer(self, state, stmt):
        raise NotImplementedError

    # -- engine --------------------------------------------------------------
    def _block_out(self, bid: int, state):
        for stmt in self.cfg.blocks[bid].stmts:
            state = self.transfer(state, stmt)
        return state

    def run(self) -> Dict[int, object]:
        cfg = self.cfg
        self.block_in = {cfg.entry: self.initial_state()}
        visits: Dict[int, int] = {}
        worklist: List[int] = [cfg.entry]
        while worklist:
            bid = worklist.pop(0)
            visits[bid] = visits.get(bid, 0) + 1
            if visits[bid] > self._MAX_VISITS:
                continue
            out = self._block_out(bid, self.block_in[bid])
            for succ in cfg.blocks[bid].succs:
                if succ not in self.block_in:
                    self.block_in[succ] = out
                    worklist.append(succ)
                else:
                    joined = self.join(self.block_in[succ], out)
                    if joined != self.block_in[succ]:
                        self.block_in[succ] = joined
                        if succ not in worklist:
                            worklist.append(succ)
        return self.block_in

    def state_before(self, bid: int, stmt: object):
        """The state immediately before ``stmt`` inside block ``bid``."""
        state = self.block_in.get(bid)
        if state is None:
            state = self.initial_state()
        for s in self.cfg.blocks[bid].stmts:
            if s is stmt:
                return state
            state = self.transfer(state, s)
        return state
