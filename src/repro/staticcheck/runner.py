"""CheckRunner — one front door for every static analysis, plus the gate.

:class:`CheckRunner` exposes the model checks (scheme/spec level) and the
code checks (determinism/unit/protocol/pool lints plus the
kernel-soundness prover) behind one object that filters by rule id and
renders one :class:`~repro.staticcheck.diagnostics.CheckReport`.  The
code checks share a single interprocedural call graph per invocation.

:func:`validate_spec` is the enforcement point wired into
:mod:`repro.experiments.api`: it runs the model checks for a
:class:`~repro.experiments.runner.RunSpec` *before* any worker spawns,
raising :class:`~repro.staticcheck.diagnostics.StaticCheckError` on
blocking findings.  The mode ladder (argument > ``REPRO_STATICCHECK``
env > default):

``off``
    Skip entirely (emergency hatch; also spelled ``0`` / ``false``).
``warn`` (default)
    Errors raise; warnings surface once via ``warnings.warn``.
``strict``
    Warnings raise too (also spelled ``error``).

Validation is memoized per distinct model signature, so sweeping 500
specs over 8 schemes costs 8 analyses, not 500.
"""

from __future__ import annotations

import os
import warnings
from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.schemes import scheme_names
from repro.staticcheck.diagnostics import (
    CheckReport,
    Severity,
    StaticCheckError,
    StaticCheckWarning,
)
from repro.staticcheck.modelcheck import ModelInputs, check_model

#: Environment variable controlling the pre-run gate.
STATICCHECK_ENV = "REPRO_STATICCHECK"

_MODES = ("off", "warn", "strict")

#: Rule catalog: id -> (family, one-line description).  The ids are the
#: stable public contract — tests and ``--rule`` filters key on them.
RULES: Dict[str, tuple] = {
    "cdg-cycle": (
        "model",
        "escape-network channel-dependency graph must be acyclic "
        "(Duato's protocol)",
    ),
    "cdg-reach": (
        "model",
        "every CC->MC and MC->CC pair must be reachable along escape hops "
        "on the surviving graph",
    ),
    "cdg-escape-vc": (
        "model",
        "the escape VC must admit every escape_port direction it is "
        "routed through",
    ),
    "eq1-speedup": (
        "model",
        "injection speedup covers the supplied packet rate: "
        "S >= InjRate_pkt x N_flits (Eq. 1)",
    ),
    "eq2-bound": (
        "model",
        "injection speedup within S <= min(N_out, N_VC) (Eq. 2)",
    ),
    "mc-degree": (
        "model",
        "per-MC router degree caps the effective speedup below the "
        "mesh-wide Eq. 2 bound",
    ),
    "split-queues": (
        "model",
        "split NI queue count matches the injection VC count "
        "(hard-wired one-per-VC)",
    ),
    "credit-rtt": (
        "model",
        "VC buffer depth covers the credit round trip of the link",
    ),
    "vc-class": (
        "model",
        "adaptive routing keeps a separate escape VC (num_vcs >= 2)",
    ),
    "starvation": (
        "model",
        "starvation-promotion threshold is neither trivial nor "
        "unreachable for the run horizon",
    ),
    "inert-knob": (
        "model",
        "explicit ARI overrides must affect the selected scheme",
    ),
    "config-resolve": (
        "model",
        "spec resolves to a constructible configuration "
        "(mesh/placement/routing/overlay/fault plan)",
    ),
    "det-random": (
        "code",
        "no global-RNG random calls in simulator code (seeded "
        "random.Random only)",
    ),
    "det-wallclock": (
        "code",
        "no wall-clock reads (time.time/perf_counter/datetime.now) in "
        "simulator code",
    ),
    "det-set-iter": (
        "code",
        "no iteration over unordered sets feeding simulation decisions",
    ),
    "det-float-cycle": (
        "code",
        "no float accumulation in cycle arithmetic",
    ),
    "unit-mix": (
        "code",
        "no mixed-dimension arithmetic (bits/bytes/flits/packets/cycles "
        "inferred via dataflow; convert explicitly or annotate '# unit:')",
    ),
    "proto-credit-return": (
        "code",
        "every buffer pop path in credit-owning classes reaches a "
        "credit-return call (wormhole conservation)",
    ),
    "proto-push-guard": (
        "code",
        "every buffer push path is dominated by a capacity/credit check",
    ),
    "pool-global-write": (
        "code",
        "pool worker functions must not write module-global mutable "
        "state (parallel==serial determinism)",
    ),
    "pool-capture": (
        "code",
        "no lambdas, closures, or bound methods submitted to the "
        "process pool (captured state is copied, not shared)",
    ),
    "kernel-skip-unsound": (
        "code",
        "every state path mutated on the reference kernel's advance path "
        "must be replicated, wake-scheduled, or declared inert by the "
        "activity kernel",
    ),
    "kernel-wake-unscheduled": (
        "code",
        "an activity kernel that gates on a wake agenda must also re-arm "
        "it (something must write the agenda it drains)",
    ),
    "kernel-state-untracked": (
        "code",
        "the activity kernel must not mutate component state the "
        "reference kernel never touches (byte-identity drift)",
    ),
    "cachekey-unsound": (
        "code",
        "no RunSpec field excluded from key() may influence the cached "
        "payload (always-excluded: any flow; when-None-excluded: any "
        "unguarded flow)",
    ),
    "overhead-not-free": (
        "code",
        "with telemetry/faults off, no ungated path from the simulation "
        "entry points may reach a collector/injector/probe method",
    ),
    "det-taint": (
        "code",
        "no wall-clock or unseeded-RNG value may flow into returned "
        "results or stats state (interprocedural; '# taint: sanitize' "
        "discharges diagnostic-only flows)",
    ),
}


def rule_ids(family: Optional[str] = None) -> List[str]:
    """All rule ids, optionally restricted to ``"model"`` or ``"code"``."""
    return [
        rid
        for rid, (fam, _desc) in RULES.items()
        if family is None or fam == family
    ]


class CheckRunner:
    """Runs static analyses and collects filtered diagnostics.

    ``rules`` restricts which rule ids may appear in reports (None = all);
    ``strict`` marks warnings as blocking in :meth:`failed`.
    """

    def __init__(
        self,
        rules: Optional[Iterable[str]] = None,
        strict: bool = False,
    ) -> None:
        if rules is not None:
            rules = list(rules)
            unknown = sorted(set(rules) - set(RULES))
            if unknown:
                raise ValueError(
                    f"unknown rule id(s): {', '.join(unknown)}; "
                    f"known: {', '.join(sorted(RULES))}"
                )
        self.rules = rules
        self.strict = strict

    def _filtered(self, report: CheckReport) -> CheckReport:
        return report.filter(self.rules)

    # -- model checks --------------------------------------------------------
    def check_inputs(self, inputs: ModelInputs) -> CheckReport:
        """Model checks for one resolved configuration."""
        return self._filtered(check_model(inputs))

    def check_spec(self, spec) -> CheckReport:
        """Model checks for a :class:`~repro.experiments.runner.RunSpec`."""
        return self.check_inputs(ModelInputs.from_spec(spec))

    def check_scheme(self, name: str, **inputs_kwargs) -> CheckReport:
        """Model checks for one registered scheme under default geometry."""
        return self.check_inputs(ModelInputs(scheme=name, **inputs_kwargs))

    def check_all_schemes(self, **inputs_kwargs) -> CheckReport:
        """Model checks for every scheme registered in ``core/schemes.py``."""
        report = CheckReport()
        for name in scheme_names():
            report.extend(self.check_scheme(name, **inputs_kwargs))
        return self._filtered(report)

    # -- code checks ---------------------------------------------------------
    def _code_reports(self, items: Sequence[tuple]) -> CheckReport:
        """All code lints over ``(path, text)`` pairs sharing one graph.

        One call graph (with the kernel receiver hints) serves every
        graph-aware lint: det/pool run per file against it, while the
        protocol and kernel-soundness passes are inherently whole-graph
        and run once.
        """
        from repro.staticcheck import (
            cachelint,
            detlint,
            kernellint,
            poollint,
            protolint,
            unitlint,
        )
        from repro.staticcheck.callgraph import build_call_graph

        graph = build_call_graph(
            items, receiver_hints=kernellint.RECEIVER_HINTS
        )
        report = CheckReport()
        for path, text in items:
            report.extend(detlint.lint_source(text, path, graph=graph))
            report.extend(unitlint.lint_source(text, path))
            report.extend(poollint.lint_source(text, path, graph=graph))
        report.extend(protolint.lint_graph(graph))
        report.extend(kernellint.lint_graph(graph))
        report.extend(cachelint.lint_graph(graph))
        return self._filtered(report)

    def check_source(self, text: str, path: str = "<string>") -> CheckReport:
        """All code lints (det/unit/proto/pool/kernel) over one module."""
        return self._code_reports([(path, text)])

    def check_paths(self, paths: Sequence[str]) -> CheckReport:
        """All code lints over files/directories of Python code."""
        from repro.staticcheck import detlint

        items = []
        for path in detlint.iter_python_files(paths):
            with open(path, encoding="utf-8") as fh:
                items.append((path, fh.read()))
        return self._code_reports(items)

    # -- verdict -------------------------------------------------------------
    def failed(self, report: CheckReport) -> bool:
        return report.failed(strict=self.strict)


# -- the pre-run gate ---------------------------------------------------------

def resolve_mode(mode: Optional[str] = None) -> str:
    """Gate mode: explicit argument > REPRO_STATICCHECK env > ``warn``."""
    raw = mode if mode is not None else os.environ.get(STATICCHECK_ENV, "")
    raw = raw.strip().lower()
    if raw in ("", "warn", "1", "true", "on", "default"):
        return "warn"
    if raw in ("off", "0", "false", "none"):
        return "off"
    if raw in ("strict", "error", "errors", "2"):
        return "strict"
    raise ValueError(
        f"bad static-check mode {raw!r}; expected one of {_MODES}"
    )


@lru_cache(maxsize=256)
def _cached_model_report(inputs: ModelInputs) -> CheckReport:
    return check_model(inputs)


def clear_validation_cache() -> None:
    """Drop memoized model reports (tests; scheme registry mutation)."""
    _cached_model_report.cache_clear()


def validate_spec(spec, mode: Optional[str] = None) -> CheckReport:
    """Gate one RunSpec: model-check it and enforce the resolved mode.

    Returns the (possibly empty) report; raises
    :class:`StaticCheckError` when findings are blocking for the mode.
    Called by :mod:`repro.experiments.api` before any simulation work.
    """
    resolved = resolve_mode(mode)
    if resolved == "off":
        return CheckReport()
    report = _cached_model_report(ModelInputs.from_spec(spec))
    if report.failed(strict=(resolved == "strict")):
        threshold = (
            Severity.WARNING if resolved == "strict" else Severity.ERROR
        )
        raise StaticCheckError(report.at_least(threshold))
    if report.warnings:
        warnings.warn(
            "static check: " + "; ".join(
                d.format() for d in report.warnings
            ),
            StaticCheckWarning,
            stacklevel=2,
        )
    return report
