"""Interprocedural influence (taint) summaries over the call graph.

For every function in a :class:`~repro.staticcheck.callgraph.CallGraph`
this engine computes where *values* can flow: which parameters (and
one level of parameter fields) influence the return value, which
attribute paths are written with which influences, and which external
source kinds (wallclock, module-level RNG) leak in.  Summaries compose
to a fixpoint over the strongly connected components of the call graph
— the same discipline :mod:`repro.staticcheck.effects` uses for
mutation footprints, applied to information flow.

Tokens
------
Taint is a set of string tokens:

``p:<param>``
    The whole value of a formal parameter (``p:spec``).
``p:<param>.<field>``
    One attribute of a parameter (``p:spec.telemetry``).  Field
    sensitivity is one level deep; deeper accesses collapse onto the
    first field, which keeps the token universe finite.
``src:<kind>``
    An environmental source: ``src:wallclock`` (``time.perf_counter``
    and friends) or ``src:rng`` (module-level ``random.*`` /
    ``numpy.random.*`` — a locally seeded ``random.Random`` instance is
    *not* a source).

A trailing ``!`` marks a **guarded** flow: every read on the token's
chain passed through a syntactic non-``None`` guard (``if x.f is not
None:``, alias-resolved, including early-return narrowing and
``a if a is not None else b``).  Rules use the mark to separate "flows
only when the field is set" from "flows unconditionally".

Annotations
-----------
Mirroring the ``# kernel:`` idiom, a ``# taint:`` comment discharges a
flow where a human proof exists:

``# taint: sanitize(<pat>, ...)``
    Tokens matching a pattern are dropped from values produced on this
    line (and from assignments spanning it).  Patterns: a source kind
    (``wallclock``/``rng``), a field name (``kernel``), a dotted
    ``root.field`` (``spec.kernel``), a bare root (``spec``), or ``*``.
``# taint: gated``
    Marks a call edge as guarded for reachability rules even when the
    guard is not syntactically recognizable.
``# taint: source(<kind>)``
    Declares calls on this line to produce ``src:<kind>``.

The provers built on this engine live in
:mod:`repro.staticcheck.cachelint`.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.staticcheck.callgraph import (
    CallGraph,
    FunctionNode,
    _FunctionResolver,
    chain_of,
    final_attr,
)
from repro.staticcheck.effects import MUTATOR_METHODS

__all__ = [
    "TaintAnnotations",
    "TaintEngine",
    "TaintSummary",
    "guard_token",
    "is_guarded",
    "token_base",
    "token_field",
    "token_matches",
    "token_root",
]

#: Call chains that read the host clock.
WALLCLOCK_CALLS = frozenset(
    {
        "time.time", "time.perf_counter", "time.monotonic",
        "time.process_time", "time.thread_time", "time.time_ns",
        "time.perf_counter_ns", "time.monotonic_ns",
        "time.process_time_ns", "datetime.now", "datetime.utcnow",
        "datetime.datetime.now", "datetime.datetime.utcnow",
    }
)

#: Module roots whose bare calls are unseeded RNG sources.
RNG_ROOTS = frozenset({"random"})

#: ``numpy.random`` style chains (``np.random.rand`` -> src:rng).
_RNG_SEGMENT = "random"

_MAX_LOCAL_PASSES = 10
_MAX_SCC_PASSES = 6
_MAX_HEAP_ROUNDS = 3


# -- token helpers -----------------------------------------------------------

def is_guarded(tok: str) -> bool:
    return tok.endswith("!")


def token_base(tok: str) -> str:
    return tok[:-1] if tok.endswith("!") else tok


def guard_token(tok: str) -> str:
    return tok if tok.endswith("!") else tok + "!"


def token_root(tok: str) -> Optional[str]:
    """``p:spec.kernel!`` -> ``spec``; None for source tokens."""
    b = token_base(tok)
    if not b.startswith("p:"):
        return None
    return b[2:].split(".", 1)[0]


def token_field(tok: str) -> Optional[str]:
    """``p:spec.kernel!`` -> ``kernel``; None without a field."""
    b = token_base(tok)
    if not b.startswith("p:") or "." not in b:
        return None
    return b.split(".", 1)[1]


def token_matches(tok: str, pattern: str) -> bool:
    """Does a sanitizer/report pattern select this token?"""
    b = token_base(tok)
    if pattern == "*":
        return True
    if b == f"src:{pattern}":
        return True
    if not b.startswith("p:"):
        return False
    body = b[2:]
    if body == pattern:
        return True
    root, _, field = body.partition(".")
    return pattern in (root, field)


# -- annotations -------------------------------------------------------------

_TAINT_RE = re.compile(
    r"#\s*taint:\s*(sanitize|gated|source)\b\s*(?:\(([^)]*)\))?"
)


class TaintAnnotations:
    """``# taint:`` markers collected per (path, line)."""

    def __init__(self) -> None:
        #: (path, lineno) -> sanitizer patterns active on that line
        self.sanitize: Dict[Tuple[str, int], FrozenSet[str]] = {}
        #: (path, lineno) pairs whose call edges count as guarded
        self.gated: Set[Tuple[str, int]] = set()
        #: (path, lineno) -> declared source kinds for calls on the line
        self.sources: Dict[Tuple[str, int], FrozenSet[str]] = {}

    @classmethod
    def collect(cls, graph: CallGraph) -> "TaintAnnotations":
        out = cls()
        for module in graph.modules.values():
            for lineno, line in enumerate(module.lines, start=1):
                if "# taint:" not in line and "#taint:" not in line:
                    continue
                for match in _TAINT_RE.finditer(line):
                    kind, rawargs = match.group(1), match.group(2) or ""
                    args = frozenset(
                        a.strip() for a in rawargs.split(",") if a.strip()
                    )
                    key = (module.path, lineno)
                    if kind == "sanitize":
                        prev = out.sanitize.get(key, frozenset())
                        out.sanitize[key] = prev | (args or frozenset({"*"}))
                    elif kind == "gated":
                        out.gated.add(key)
                    elif kind == "source":
                        prev = out.sources.get(key, frozenset())
                        out.sources[key] = prev | args
        return out

    def sanitizers_in(
        self, path: str, first: int, last: int
    ) -> FrozenSet[str]:
        """Union of sanitizer patterns on any line of ``[first, last]``."""
        if not self.sanitize:
            return frozenset()
        out: Set[str] = set()
        for lineno in range(first, last + 1):
            out |= self.sanitize.get((path, lineno), frozenset())
        return frozenset(out)


# -- summaries ---------------------------------------------------------------

class TaintSummary:
    """Information-flow footprint of one function."""

    __slots__ = ("ret", "writes", "param_writes", "origins")

    def __init__(
        self,
        ret: Iterable[str] = (),
        writes: Optional[Dict[Tuple[str, str], FrozenSet[str]]] = None,
        param_writes: Optional[Dict[str, FrozenSet[str]]] = None,
        origins: Optional[Dict[str, Tuple[str, int]]] = None,
    ) -> None:
        #: tokens influencing the return (and yield) values
        self.ret: FrozenSet[str] = frozenset(ret)
        #: (owner label, final attr) -> influencing tokens
        self.writes = writes or {}
        #: formal parameter -> tokens written into the argument object
        self.param_writes = param_writes or {}
        #: base token -> (path, lineno) where it first arose
        self.origins = origins or {}

    def _key(self):
        return (
            self.ret,
            tuple(sorted(
                (k, frozenset(v)) for k, v in self.writes.items()
            )),
            tuple(sorted(
                (k, frozenset(v)) for k, v in self.param_writes.items()
            )),
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TaintSummary) and self._key() == other._key()
        )

    def __hash__(self) -> int:  # pragma: no cover - dict compat
        return hash(self.ret)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TaintSummary(ret={sorted(self.ret)}, "
            f"writes={sorted(self.writes)})"
        )


# -- guard-fact computation --------------------------------------------------

def split_facts(
    test: ast.expr, aliases: Dict[str, str]
) -> Tuple[FrozenSet[str], FrozenSet[str]]:
    """(facts when true, facts when false): chains known non-``None``.

    Handles ``x is (not) None``, plain truthiness, ``not``, ``and``
    (facts accumulate left to right on the true side) and ``or`` (all
    disjuncts' false-facts hold on the false side).
    """
    empty: FrozenSet[str] = frozenset()
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        left, op, right = test.left, test.ops[0], test.comparators[0]
        operand = None
        if isinstance(right, ast.Constant) and right.value is None:
            operand = left
        elif isinstance(left, ast.Constant) and left.value is None:
            operand = right
        if operand is not None:
            chain = chain_of(operand, aliases)
            if chain is None:
                return empty, empty
            if isinstance(op, ast.Is) or isinstance(op, ast.Eq):
                return empty, frozenset({chain})
            if isinstance(op, ast.IsNot) or isinstance(op, ast.NotEq):
                return frozenset({chain}), empty
        return empty, empty
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        t, f = split_facts(test.operand, aliases)
        return f, t
    if isinstance(test, ast.BoolOp):
        if isinstance(test.op, ast.And):
            true_facts: Set[str] = set()
            for value in test.values:
                t, _ = split_facts(value, aliases)
                true_facts |= t
            return frozenset(true_facts), empty
        false_facts: Set[str] = set()
        for value in test.values:
            _, f = split_facts(value, aliases)
            false_facts |= f
        return empty, frozenset(false_facts)
    if isinstance(test, (ast.Name, ast.Attribute, ast.Subscript)):
        chain = chain_of(test, aliases)
        if chain is not None:
            return frozenset({chain}), empty
    if isinstance(test, ast.NamedExpr):
        # ``if (x := e):`` — truthiness of the bound value
        chain = chain_of(test, aliases)
        target = (
            test.target.id if isinstance(test.target, ast.Name) else None
        )
        facts = {c for c in (chain, target) if c}
        return frozenset(facts), empty
    return empty, empty


def _alias_state(
    graph: CallGraph, fn: FunctionNode
) -> Tuple[Dict[str, str], Dict[str, str]]:
    """(aliases, instances) for one function via the shared resolver scan.

    ``aliases`` maps local name -> normalized chain; ``instances`` maps
    local name -> bare class name for ``x = ClassName(...)`` bindings.
    """
    res = _FunctionResolver.__new__(_FunctionResolver)
    res.graph = graph
    res.fn = fn
    res.module = graph.modules[fn.module]
    res.aliases = {}
    res.bound = {}
    res.instances = {}
    res.sites = []
    res._scan_aliases(fn.node)
    instances = {
        name: qname.rsplit(".", 1)[-1]
        for name, qname in res.instances.items()
    }
    return res.aliases, instances


def _terminates(stmts: List[ast.stmt]) -> bool:
    if not stmts:
        return False
    return isinstance(
        stmts[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


# -- per-function interpretation ---------------------------------------------

class _FunctionTaint:
    """Flow-insensitive taint interpretation of one function body.

    Locals map to token sets; statements are executed in source order,
    repeatedly, to a local fixpoint (loops and use-before-redef feed
    back through the repetition).  Guard facts are carried down the
    recursive walk, so every expression evaluates under the non-None
    chains active at its program point.
    """

    def __init__(
        self,
        engine: "TaintEngine",
        fn: FunctionNode,
        summaries: Dict[str, TaintSummary],
    ) -> None:
        self.engine = engine
        self.graph = engine.graph
        self.annotations = engine.annotations
        self.fn = fn
        self.summaries = summaries
        self.aliases, self.instances = _alias_state(self.graph, fn)
        self.params = self._formals()
        self.env: Dict[str, Set[str]] = {
            p: {f"p:{p}"} for p in self.params
        }
        self.ret: Set[str] = set()
        self.writes: Dict[Tuple[str, str], Set[str]] = {}
        self.param_writes: Dict[str, Set[str]] = {}
        self.origins: Dict[str, Tuple[str, int]] = {}
        #: (lineno, called name) -> intersection of guard facts at site
        self.call_guards: Dict[Tuple[int, str], FrozenSet[str]] = {}
        #: id(expr node) -> observed tokens (sink probes)
        self.probes: Dict[int, Set[str]] = {}
        self._site_index: Dict[Tuple[int, str], List] = {}
        for site in self.graph.calls.get(fn.qname, []):
            if site.kind == "property":
                continue
            self._site_index.setdefault(
                (site.lineno, site.attr), []
            ).append(site)

    # -- setup ---------------------------------------------------------------
    def _formals(self) -> List[str]:
        node = self.fn.node
        args = node.args
        names = [
            a.arg
            for a in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
            )
        ]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names

    def _size(self) -> int:
        return (
            sum(len(v) for v in self.env.values())
            + sum(len(v) for v in self.writes.values())
            + sum(len(v) for v in self.param_writes.values())
            + len(self.ret)
        )

    def run(self, probe_nodes: Iterable[ast.expr] = ()) -> TaintSummary:
        for node in probe_nodes:
            self.probes[id(node)] = set()
        body = getattr(self.fn.node, "body", None)
        for _ in range(_MAX_LOCAL_PASSES):
            before = self._size()
            if isinstance(self.fn.node, ast.Lambda):
                self.ret |= self._eval(self.fn.node.body, frozenset())
            elif isinstance(body, list):
                self._suite(body, frozenset())
            if self._size() == before:
                break
        return TaintSummary(
            frozenset(self.ret),
            {k: frozenset(v) for k, v in self.writes.items()},
            {k: frozenset(v) for k, v in self.param_writes.items()},
            dict(self.origins),
        )

    # -- statements ----------------------------------------------------------
    def _suite(
        self, stmts: List[ast.stmt], facts: FrozenSet[str]
    ) -> FrozenSet[str]:
        for stmt in stmts:
            facts = self._stmt(stmt, facts)
        return facts

    def _stmt(
        self, stmt: ast.stmt, facts: FrozenSet[str]
    ) -> FrozenSet[str]:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = stmt.value
            if value is None:
                return facts
            toks = self._eval(value, facts)
            toks = self._sanitize_stmt(toks, stmt)
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for target in targets:
                self._assign(target, toks, facts)
            return facts
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                toks = self._sanitize_stmt(
                    self._eval(stmt.value, facts), stmt
                )
                self.ret |= toks
            return facts
        if isinstance(stmt, ast.Expr):
            toks = self._eval(stmt.value, facts)
            self._sanitize_stmt(toks, stmt)
            return facts
        if isinstance(stmt, ast.If):
            t, f = split_facts(stmt.test, self.aliases)
            self._eval(stmt.test, facts)
            self._suite(stmt.body, facts | t)
            if stmt.orelse:
                self._suite(stmt.orelse, facts | f)
            # Early-exit narrowing: past an `if x is None: return`,
            # the else-facts hold for the rest of the suite.
            if _terminates(stmt.body) and not _terminates(stmt.orelse):
                return facts | f
            if stmt.orelse and _terminates(stmt.orelse) and \
                    not _terminates(stmt.body):
                return facts | t
            return facts
        if isinstance(stmt, (ast.While,)):
            t, _ = split_facts(stmt.test, self.aliases)
            self._eval(stmt.test, facts)
            self._suite(stmt.body, facts | t)
            self._suite(stmt.orelse, facts)
            return facts
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            toks = self._eval(stmt.iter, facts)
            self._assign(stmt.target, toks, facts)
            self._suite(stmt.body, facts)
            self._suite(stmt.orelse, facts)
            return facts
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                toks = self._eval(item.context_expr, facts)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, toks, facts)
            self._suite(stmt.body, facts)
            return facts
        if isinstance(stmt, ast.Try):
            self._suite(stmt.body, facts)
            for handler in stmt.handlers:
                self._suite(handler.body, facts)
            self._suite(stmt.orelse, facts)
            self._suite(stmt.finalbody, facts)
            return facts
        if isinstance(stmt, ast.Assert):
            self._eval(stmt.test, facts)
            t, _ = split_facts(stmt.test, self.aliases)
            return facts | t
        if isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc, facts)
            return facts
        if isinstance(stmt, ast.Match):
            self._eval(stmt.subject, facts)
            subject_toks = self._eval(stmt.subject, facts)
            for case in stmt.cases:
                for name in _match_captures(case.pattern):
                    self.env.setdefault(name, set()).update(subject_toks)
                if case.guard is not None:
                    self._eval(case.guard, facts)
                self._suite(case.body, facts)
            return facts
        # Delete / Pass / Import / Global / nested defs: no value flow.
        return facts

    # -- assignment targets --------------------------------------------------
    def _assign(
        self, target: ast.expr, toks: Set[str], facts: FrozenSet[str]
    ) -> None:
        if isinstance(target, ast.Name):
            self.env.setdefault(target.id, set()).update(toks)
            return
        if isinstance(target, ast.Starred):
            self._assign(target.value, toks, facts)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(elt, toks, facts)
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            self._write_through(
                target, toks, getattr(target, "lineno", 0)
            )

    def _write_through(
        self, target: ast.expr, toks: Set[str], lineno: int
    ) -> None:
        """Record a write through an attribute/subscript chain."""
        if not toks:
            return
        chain = chain_of(target, self.aliases)
        if chain is None:
            # Unresolvable base (call result, etc.): taint the root
            # local if there is one, so the object carries the flow.
            root = target
            while isinstance(root, (ast.Attribute, ast.Subscript)):
                root = root.value
            if isinstance(root, ast.Name):
                self.env.setdefault(root.id, set()).update(toks)
            return
        root = chain.split(".", 1)[0].replace("[]", "")
        attr = final_attr(chain) or chain
        owner = self._owner_label(chain, root)
        if "." in chain and owner is not None:
            entry = self.writes.setdefault((owner, attr), set())
            entry.update(toks)
            for tok in toks:
                self.origins.setdefault(
                    token_base(tok), (self.fn.path, lineno)
                )
            # Source tokens written into object attributes enter the
            # owner-scoped heap so attribute reads on the same class
            # (or same-labeled instance) elsewhere see them.  Scoping
            # by owner keeps e.g. a profiler's wallclock out of every
            # unrelated class that happens to share an attribute name.
            srcs = {
                token_base(t) for t in toks
                if token_base(t).startswith("src:")
            }
            if srcs:
                self.engine.note_heap(
                    owner, attr, srcs, (self.fn.path, lineno)
                )
        if root in self.params:
            self.param_writes.setdefault(root, set()).update(toks)
        elif root != "self":
            # Writes through a local: the object (and whatever it is
            # later returned/stored as) carries the taint.
            self.env.setdefault(root, set()).update(toks)

    def _owner_label(self, chain: str, root: str) -> Optional[str]:
        segments = [
            s.replace("[]", "") for s in chain.split(".") if s
        ]
        if len(segments) >= 3:
            return segments[-2]
        if root == "self":
            return self.fn.cls_bare or "self"
        if root in self.instances:
            return self.instances[root]
        return root

    # -- expressions ---------------------------------------------------------
    def _eval(self, node: ast.expr, facts: FrozenSet[str]) -> Set[str]:
        toks = self._eval_inner(node, facts)
        probe = self.probes.get(id(node))
        if probe is not None:
            probe.update(toks)
        return toks

    def _eval_inner(
        self, node: ast.expr, facts: FrozenSet[str]
    ) -> Set[str]:
        if isinstance(node, ast.Name):
            return set(self.env.get(node.id, ()))
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node, facts)
        if isinstance(node, ast.Subscript):
            toks = self._eval(node.value, facts)
            toks |= self._eval(node.slice, facts)
            return toks
        if isinstance(node, ast.Call):
            return self._eval_call(node, facts)
        if isinstance(node, ast.IfExp):
            t, f = split_facts(node.test, self.aliases)
            # The test is evaluated (call guards, probes) but its taint
            # is an *implicit* flow and not part of the value: tracking
            # it would mark every `x if x is not None else d` guard
            # idiom as an unguarded read of x.
            self._eval(node.test, facts)
            toks = self._eval(node.body, facts | t)
            toks |= self._eval(node.orelse, facts | f)
            return toks
        if isinstance(node, ast.NamedExpr):
            toks = self._eval(node.value, facts)
            if isinstance(node.target, ast.Name):
                self.env.setdefault(node.target.id, set()).update(toks)
            return toks
        if isinstance(node, ast.BoolOp):
            toks: Set[str] = set()
            acc = facts
            for value in node.values:
                toks |= self._eval(value, acc)
                if isinstance(node.op, ast.And):
                    t, _ = split_facts(value, self.aliases)
                    acc = acc | t
            return toks
        if isinstance(node, ast.Lambda):
            return set()
        if isinstance(
            node,
            (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp),
        ):
            for gen in node.generators:
                src = self._eval(gen.iter, facts)
                self._assign(gen.target, src, facts)
                for cond in gen.ifs:
                    self._eval(cond, facts)
            toks = set()
            if isinstance(node, ast.DictComp):
                toks |= self._eval(node.key, facts)
                toks |= self._eval(node.value, facts)
            else:
                toks |= self._eval(node.elt, facts)
            return toks
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                self.ret |= self._eval(node.value, facts)
            return set()
        if isinstance(node, ast.Await):
            return self._eval(node.value, facts)
        if isinstance(node, ast.Constant):
            return set()
        # Generic fold: BinOp/UnaryOp/Compare/Tuple/List/Dict/Set/
        # JoinedStr/Starred/Slice — union of child expression taints.
        toks = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                toks |= self._eval(child, facts)
        return toks

    def _eval_attribute(
        self, node: ast.Attribute, facts: FrozenSet[str]
    ) -> Set[str]:
        base_toks = self._eval(node.value, facts)
        toks: Set[str] = set()
        for tok in base_toks:
            b = token_base(tok)
            g = is_guarded(tok)
            if b.startswith("p:") and "." not in b[2:]:
                nb = f"{b}.{node.attr}"
                self.origins.setdefault(
                    nb, (self.fn.path, getattr(node, "lineno", 0))
                )
            else:
                nb = b  # one-level field sensitivity: deeper collapses
            toks.add(guard_token(nb) if g else nb)
        chain = chain_of(node, self.aliases)
        if chain is not None:
            root = chain.split(".", 1)[0].replace("[]", "")
            owner = self._owner_label(chain, root)
            heap = (
                self.engine.heap.get((owner, node.attr))
                if owner is not None else None
            )
            if heap:
                toks |= set(heap)
                for tok in heap:
                    self.origins.setdefault(
                        tok, self.engine.heap_origins.get(
                            tok,
                            (self.fn.path, getattr(node, "lineno", 0)),
                        )
                    )
            if chain in facts:
                toks = set(map(guard_token, toks))
        return toks

    # -- calls ---------------------------------------------------------------
    def _arg_tokens(
        self, node: ast.Call, facts: FrozenSet[str]
    ) -> Set[str]:
        toks: Set[str] = set()
        for arg in node.args:
            toks |= self._eval(arg, facts)
        for kw in node.keywords:
            toks |= self._eval(kw.value, facts)
        return toks

    def _src_kind(self, func: ast.expr) -> Optional[str]:
        chain = chain_of(func)
        if chain is None:
            return None
        if chain in WALLCLOCK_CALLS:
            return "wallclock"
        segments = [s.replace("[]", "") for s in chain.split(".")]
        name = segments[-1]
        if name[:1].isupper():
            # Constructor (random.Random(seed)): deterministic once
            # seeded, and instance methods root at the local, not here.
            return None
        if segments[0] in RNG_ROOTS and len(segments) > 1:
            return "rng"
        if _RNG_SEGMENT in segments[:-1]:
            return "rng"
        return None

    def _eval_call(
        self, node: ast.Call, facts: FrozenSet[str]
    ) -> Set[str]:
        func = node.func
        lineno = getattr(node, "lineno", 0)
        name = (
            func.attr if isinstance(func, ast.Attribute)
            else func.id if isinstance(func, ast.Name)
            else None
        )
        if name is not None:
            key = (lineno, name)
            prev = self.call_guards.get(key)
            self.call_guards[key] = (
                facts if prev is None else prev & facts
            )
        arg_toks = self._arg_tokens(node, facts)
        recv_toks: Set[str] = set()
        if isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Call)
                and isinstance(func.value.func, ast.Name)
                and func.value.func.id == "super"
            ):
                recv_toks = set(self.env.get("self", ()))
            else:
                recv_toks = self._eval(func.value, facts)

        out: Set[str] = set()
        kind = self._src_kind(func)
        declared = self.annotations.sources.get((self.fn.path, lineno))
        kinds = set(declared or ())
        if kind is not None:
            kinds.add(kind)
        for k in sorted(kinds):
            tok = f"src:{k}"
            out.add(tok)
            self.origins.setdefault(tok, (self.fn.path, lineno))

        sites = self._site_index.get((lineno, name)) if name else None
        resolved = False
        if sites:
            for site in sites:
                if site.kind == "init":
                    out |= arg_toks
                if site.kind == "heuristic" and len(site.targets) > 1:
                    # A name-only match over several unrelated classes:
                    # instantiating all of them would union flows from
                    # code the receiver can never be.  Fall back to the
                    # unresolved passthrough instead.
                    continue
                for target in site.targets:
                    summary = self.summaries.get(target)
                    tnode = self.graph.functions.get(target)
                    if summary is None or tnode is None:
                        continue
                    resolved = True
                    out |= self._instantiate(
                        tnode, summary, node, recv_toks, facts
                    )
        if not resolved and not kinds:
            # Unknown external call: arguments and receiver flow through.
            out |= arg_toks | recv_toks
            if (
                isinstance(func, ast.Attribute)
                and name in MUTATOR_METHODS
                and arg_toks
            ):
                self._write_through(func.value, arg_toks, lineno)
        return self._sanitize_line(out, lineno)

    def _instantiate(
        self,
        tnode: FunctionNode,
        summary: TaintSummary,
        call: ast.Call,
        recv_toks: Set[str],
        facts: FrozenSet[str],
    ) -> Set[str]:
        """Substitute a callee summary into this call site."""
        args = tnode.node.args if hasattr(tnode.node, "args") else None
        if args is None:
            return set()
        positional = [
            a.arg for a in (list(args.posonlyargs) + list(args.args))
        ]
        kwonly = [a.arg for a in args.kwonlyargs]
        actual: Dict[str, Set[str]] = {}
        arg_nodes: Dict[str, ast.expr] = {}
        method_call = (
            tnode.cls is not None
            and positional
            and positional[0] in ("self", "cls")
            and isinstance(call.func, ast.Attribute)
        )
        if method_call:
            actual[positional[0]] = recv_toks
            positional = positional[1:]
        idx = 0
        for arg in call.args:
            if isinstance(arg, ast.Starred):
                toks = self._eval(arg.value, facts)
                target = (
                    args.vararg.arg if args.vararg
                    else positional[idx] if idx < len(positional)
                    else None
                )
                if target is not None:
                    actual.setdefault(target, set()).update(toks)
                continue
            if idx < len(positional):
                formal = positional[idx]
            elif args.vararg is not None:
                formal = args.vararg.arg
            else:
                formal = None
            if formal is not None:
                actual.setdefault(formal, set()).update(
                    self._eval(arg, facts)
                )
                arg_nodes.setdefault(formal, arg)
            idx += 1
        for kw in call.keywords:
            toks = self._eval(kw.value, facts)
            if kw.arg is None:
                # **kwargs splat: conservatively feeds every keyword
                for formal in kwonly + positional:
                    actual.setdefault(formal, set()).update(toks)
                continue
            formal = (
                kw.arg
                if kw.arg in positional or kw.arg in kwonly
                or (method_call and kw.arg in actual)
                else args.kwarg.arg if args.kwarg is not None
                else None
            )
            if formal is not None:
                actual.setdefault(formal, set()).update(toks)
                arg_nodes.setdefault(formal, kw.value)

        out: Set[str] = set()
        for tok in summary.ret:
            out |= self._subst(tok, actual, summary, tnode, call)
        lineno = getattr(call, "lineno", 0)
        for key, toks in summary.writes.items():
            merged: Set[str] = set()
            for tok in toks:
                merged |= self._subst(tok, actual, summary, tnode, call)
            merged = self._sanitize_line(merged, lineno)
            if merged:
                self.writes.setdefault(key, set()).update(merged)
        for formal, toks in summary.param_writes.items():
            merged = set()
            for tok in toks:
                merged |= self._subst(tok, actual, summary, tnode, call)
            merged = self._sanitize_line(merged, lineno)
            if not merged:
                continue
            anode = arg_nodes.get(formal)
            if anode is not None:
                self._assign(anode, merged, facts)
            elif formal in ("self", "cls") and isinstance(
                call.func, ast.Attribute
            ):
                self._write_through(call.func.value, merged,
                                    getattr(call, "lineno", 0))
        return out

    def _subst(
        self,
        tok: str,
        actual: Dict[str, Set[str]],
        summary: TaintSummary,
        tnode: FunctionNode,
        call: ast.Call,
    ) -> Set[str]:
        b = token_base(tok)
        g = is_guarded(tok)
        origin = summary.origins.get(
            b, (tnode.path, getattr(call, "lineno", 0))
        )
        if b.startswith("src:"):
            self.origins.setdefault(b, origin)
            return {guard_token(b) if g else b}
        body = b[2:]
        root, _, field = body.partition(".")
        actuals = actual.get(root)
        if not actuals:
            return set()
        out: Set[str] = set()
        for a in sorted(actuals):
            ab = token_base(a)
            ag = is_guarded(a)
            if field and ab.startswith("p:") and "." not in ab[2:]:
                nb = f"{ab}.{field}"
            else:
                nb = ab
            self.origins.setdefault(nb, origin)
            out.add(guard_token(nb) if (g or ag) else nb)
        return out

    # -- sanitizers ----------------------------------------------------------
    def _sanitize_line(self, toks: Set[str], lineno: int) -> Set[str]:
        patterns = self.annotations.sanitize.get((self.fn.path, lineno))
        if not patterns or not toks:
            return toks
        return {
            t for t in toks
            if not any(token_matches(t, p) for p in patterns)
        }

    def _sanitize_stmt(self, toks: Set[str], stmt: ast.stmt) -> Set[str]:
        if not toks:
            return toks
        first = getattr(stmt, "lineno", 0)
        last = getattr(stmt, "end_lineno", first)
        patterns = self.annotations.sanitizers_in(
            self.fn.path, first, last
        )
        if not patterns:
            return toks
        return {
            t for t in toks
            if not any(token_matches(t, p) for p in patterns)
        }


def _match_captures(pattern) -> List[str]:
    out: List[str] = []
    for sub in ast.walk(pattern):
        if isinstance(sub, ast.MatchAs) and sub.name is not None:
            out.append(sub.name)
        elif isinstance(sub, ast.MatchStar) and sub.name is not None:
            out.append(sub.name)
    return out


# -- the engine --------------------------------------------------------------

class TaintEngine:
    """Per-function taint summaries, fixpoint over call-graph SCCs.

    ``only`` restricts summarization to a set of qnames (typically the
    functions reachable from a rule's roots) — the engine is linear in
    the number of summarized functions, so rules should scope it.
    """

    def __init__(
        self,
        graph: CallGraph,
        annotations: Optional[TaintAnnotations] = None,
        only: Optional[Set[str]] = None,
    ) -> None:
        self.graph = graph
        self.annotations = (
            annotations if annotations is not None
            else TaintAnnotations.collect(graph)
        )
        self.only = only
        #: (owner label, attribute) -> src tokens stored there
        self.heap: Dict[Tuple[str, str], FrozenSet[str]] = {}
        self.heap_origins: Dict[str, Tuple[str, int]] = {}
        self._heap_dirty = False
        self._summaries: Optional[Dict[str, TaintSummary]] = None
        #: qname -> {(lineno, name): guard facts} per call site
        self.call_guards: Dict[
            str, Dict[Tuple[int, str], FrozenSet[str]]
        ] = {}

    def note_heap(
        self,
        owner: str,
        attr: str,
        srcs: Set[str],
        origin: Tuple[str, int],
    ) -> None:
        key = (owner, attr)
        prev = self.heap.get(key, frozenset())
        merged = prev | srcs
        if merged != prev:
            self.heap[key] = merged
            for tok in srcs:
                self.heap_origins.setdefault(tok, origin)
            self._heap_dirty = True

    def _in_scope(self, qname: str) -> bool:
        return self.only is None or qname in self.only

    def summaries(self) -> Dict[str, TaintSummary]:
        if self._summaries is not None:
            return self._summaries
        components = [
            [q for q in comp if self._in_scope(q)
             and q in self.graph.functions]
            for comp in self.graph.sccs()
        ]
        summs: Dict[str, TaintSummary] = {}
        for _ in range(_MAX_HEAP_ROUNDS):
            self._heap_dirty = False
            summs = {}
            self.call_guards = {}
            for comp in components:
                if not comp:
                    continue
                recursive = len(comp) > 1 or any(
                    comp[0] in site.targets
                    for site in self.graph.calls.get(comp[0], [])
                )
                passes = _MAX_SCC_PASSES if recursive else 1
                for _ in range(passes):
                    changed = False
                    for qname in comp:
                        fn = self.graph.functions[qname]
                        ft = _FunctionTaint(self, fn, summs)
                        new = ft.run()
                        if summs.get(qname) != new:
                            changed = True
                        summs[qname] = new
                        self.call_guards[qname] = ft.call_guards
                    if not changed:
                        break
            if not self._heap_dirty:
                break
        self._summaries = summs
        return summs

    def taint_of(
        self, qname: str, nodes: List[ast.expr]
    ) -> Dict[int, FrozenSet[str]]:
        """Tokens observed at specific expression nodes of a function.

        Runs one more local pass with the converged summaries and
        records every evaluation of the given nodes (keyed by ``id``).
        """
        summs = self.summaries()
        fn = self.graph.functions.get(qname)
        if fn is None:
            return {}
        ft = _FunctionTaint(self, fn, summs)
        ft.run(probe_nodes=nodes)
        self._last_probe = ft
        return {k: frozenset(v) for k, v in ft.probes.items()}

    def origin_of(self, qname: str, tok: str) -> Optional[Tuple[str, int]]:
        """Best-known source location for a token seen in ``qname``."""
        summary = self.summaries().get(qname)
        base = token_base(tok)
        if summary is not None and base in summary.origins:
            return summary.origins[base]
        probe = getattr(self, "_last_probe", None)
        if probe is not None and base in probe.origins:
            return probe.origins[base]
        return self.heap_origins.get(base)
