"""Channel-dependency-graph (CDG) analysis of the escape network.

Deadlock freedom of the simulator's adaptive routing rests on Duato's
protocol: as long as the *escape* sub-network — VC 0 restricted to the
routing algorithm's ``escape_port`` hops — is free of cyclic channel
dependencies and reaches every destination, packets on the fully
adaptive VCs can always drain through it.  This module proves those two
properties *statically*, before a single cycle is simulated, using the
same CDG cycle-detection discipline that gem5 topologies encode through
link weights.

The graph is built over *escape channels*: one node per live
unidirectional mesh link, an edge ``c1 -> c2`` whenever some routed
destination lets a packet occupy ``c1`` while requesting ``c2`` next.
Faults enter as a set of dead links (removed channels, detour routing
consulted instead) and dead escape VCs (channel present for adaptive
traffic but unusable by VC 0).

Everything here is pure graph code over the public
:class:`~repro.noc.routing.RoutingAlgorithm` interface — it imports
neither the simulator hot path nor :mod:`repro.faults`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.noc.routing import DIRECTION_NAMES, LOCAL, RoutingAlgorithm
from repro.noc.topology import MeshTopology

#: An escape channel: the (router, direction) pair naming one output link.
Channel = Tuple[int, int]

#: (router, direction) pairs of dead links / dead escape VCs.
LinkSet = FrozenSet[Channel]

EMPTY_LINKS: LinkSet = frozenset()


def channel_name(topology: MeshTopology, channel: Channel) -> str:
    """Human-readable channel label, e.g. ``r5-E>r6``."""
    router, direction = channel
    dst = topology.neighbors(router).get(direction)
    arrow = f">{'' if dst is None else f'r{dst}'}"
    return f"r{router}-{DIRECTION_NAMES[direction]}{arrow}"


@dataclass
class EscapeGraph:
    """The escape-channel dependency graph plus construction hazards."""

    topology: MeshTopology
    #: adjacency: channel -> set of channels it may wait on next
    edges: Dict[Channel, Set[Channel]] = field(default_factory=dict)
    #: (router, dest, channel) triples where the escape hop is unusable
    dead_escape_hops: List[Tuple[int, int, Channel]] = field(
        default_factory=list
    )
    #: (router, dest) pairs whose escape hop leaves the mesh entirely
    off_mesh_hops: List[Tuple[int, int]] = field(default_factory=list)
    #: (vc, port) pairs where VC 0 refuses the escape hop it must accept
    inadmissible: List[Tuple[int, int]] = field(default_factory=list)

    def find_cycle(self) -> Optional[List[Channel]]:
        """One dependency cycle as a channel list, or None if acyclic.

        Iterative colored DFS; the returned list is the cycle in order
        (first element repeated implicitly by the closing edge).
        """
        WHITE, GREY, BLACK = 0, 1, 2
        color: Dict[Channel, int] = {c: WHITE for c in self.edges}
        for root in self.edges:
            if color[root] != WHITE:
                continue
            stack: List[Tuple[Channel, List[Channel]]] = [
                (root, sorted(self.edges.get(root, ())))
            ]
            path: List[Channel] = [root]
            color[root] = GREY
            while stack:
                node, succs = stack[-1]
                if succs:
                    nxt = succs.pop(0)
                    state = color.setdefault(nxt, WHITE)
                    if state == GREY:
                        return path[path.index(nxt):]
                    if state == WHITE:
                        color[nxt] = GREY
                        path.append(nxt)
                        stack.append(
                            (nxt, sorted(self.edges.get(nxt, ())))
                        )
                else:
                    color[node] = BLACK
                    path.pop()
                    stack.pop()
        return None

    def format_cycle(self, cycle: Sequence[Channel]) -> str:
        names = [channel_name(self.topology, c) for c in cycle]
        names.append(names[0])
        return " -> ".join(names)


def build_escape_cdg(
    routing: RoutingAlgorithm,
    topology: MeshTopology,
    dests: Sequence[int],
    dead_links: LinkSet = EMPTY_LINKS,
    dead_escape_vcs: LinkSet = EMPTY_LINKS,
) -> EscapeGraph:
    """Construct the escape-channel CDG for a routed destination set.

    For every destination and every router that could hold a packet bound
    for it, the escape hop defines an occupied channel; an edge is added
    to the escape channel requested at the next router.  Channels on dead
    links or dead escape VCs are recorded as hazards instead of nodes —
    a routing function that still *points* at them is a finding, not a
    crash.
    """
    graph = EscapeGraph(topology)
    unusable = dead_links | dead_escape_vcs
    for dest in dests:
        dest_xy = topology.coords(dest)
        for router in range(topology.num_routers):
            if router == dest:
                continue
            cur_xy = topology.coords(router)
            direction = routing.escape_port(cur_xy, dest_xy)
            if direction == LOCAL:
                # Escape routing gives up before reaching the
                # destination; surfaces as a reachability finding.
                continue
            channel = (router, direction)
            nxt = topology.neighbors(router).get(direction)
            if nxt is None:
                graph.off_mesh_hops.append((router, dest))
                continue
            if channel in unusable:
                graph.dead_escape_hops.append((router, dest, channel))
                continue
            if not routing.vc_allowed(0, direction, direction):
                graph.inadmissible.append((0, direction))
            graph.edges.setdefault(channel, set())
            if nxt == dest:
                continue
            nxt_dir = routing.escape_port(topology.coords(nxt), dest_xy)
            if nxt_dir == LOCAL:
                continue
            nxt_channel = (nxt, nxt_dir)
            if (
                topology.neighbors(nxt).get(nxt_dir) is not None
                and nxt_channel not in unusable
            ):
                graph.edges[channel].add(nxt_channel)
                graph.edges.setdefault(nxt_channel, set())
    return graph


@dataclass(frozen=True)
class EscapeTrace:
    """Result of walking escape hops from one source to one destination."""

    status: str                  # "ok" | "loop" | "dead" | "off-mesh" | "stuck"
    path: Tuple[int, ...]        # router ids visited, source first
    blocker: Optional[Channel] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def describe(self, topology: MeshTopology) -> str:
        hops = "->".join(f"r{r}" for r in self.path)
        if self.status == "ok":
            return f"reaches via {hops}"
        if self.status == "loop":
            return f"escape path loops: {hops}"
        if self.status == "dead":
            assert self.blocker is not None
            return (
                f"escape path {hops} enters dead channel "
                f"{channel_name(topology, self.blocker)}"
            )
        if self.status == "off-mesh":
            return f"escape path {hops} points off the mesh"
        return f"escape path stalls at r{self.path[-1]} ({hops})"


def trace_escape(
    routing: RoutingAlgorithm,
    topology: MeshTopology,
    src: int,
    dest: int,
    dead_links: LinkSet = EMPTY_LINKS,
    dead_escape_vcs: LinkSet = EMPTY_LINKS,
) -> EscapeTrace:
    """Follow escape hops from ``src`` until ``dest``, a loop, or a wall."""
    unusable = dead_links | dead_escape_vcs
    dest_xy = topology.coords(dest)
    path: List[int] = [src]
    seen = {src}
    cur = src
    for _ in range(topology.num_routers + 1):
        if cur == dest:
            return EscapeTrace("ok", tuple(path))
        direction = routing.escape_port(topology.coords(cur), dest_xy)
        if direction == LOCAL:
            return EscapeTrace("stuck", tuple(path))
        channel = (cur, direction)
        nxt = topology.neighbors(cur).get(direction)
        if nxt is None:
            return EscapeTrace("off-mesh", tuple(path), channel)
        if channel in unusable:
            return EscapeTrace("dead", tuple(path), channel)
        if nxt in seen and nxt != dest:
            path.append(nxt)
            return EscapeTrace("loop", tuple(path))
        path.append(nxt)
        seen.add(nxt)
        cur = nxt
    return EscapeTrace("loop", tuple(path))


def all_pairs_unreachable(
    routing: RoutingAlgorithm,
    topology: MeshTopology,
    sources: Sequence[int],
    dests: Sequence[int],
    dead_links: LinkSet = EMPTY_LINKS,
    dead_escape_vcs: LinkSet = EMPTY_LINKS,
) -> List[Tuple[int, int, EscapeTrace]]:
    """Every (src, dest) pair whose escape walk fails, with its trace."""
    failures: List[Tuple[int, int, EscapeTrace]] = []
    for src in sources:
        for dest in dests:
            if src == dest:
                continue
            trace = trace_escape(
                routing, topology, src, dest, dead_links, dead_escape_vcs
            )
            if not trace.ok:
                failures.append((src, dest, trace))
    return failures
