"""Credit-handshake conformance lint — rules ``proto-credit-return`` and
``proto-push-guard``.

Wormhole flow control is a conservation law: every buffer slot freed by a
pop must eventually send exactly one credit upstream, and every flit
admitted into a credit-backed buffer must have been covered by a
capacity/credit check.  The runtime ``InvariantChecker`` audits this
per-cycle; this pass proves the *code shape* before a single cycle runs,
catching the unpaired-pop class of bug (a drain path that forgets the
refund — the exact hazard ``Router.purge_front_packet`` handles by
mirroring ``_traverse``'s per-flit credit return).

The analysis is per class: for every class that owns credit machinery
(it references ``on_credit`` / ``credit_out`` / ``restore`` / a
``credits`` view), the method table is flattened through the shared
:mod:`repro.staticcheck.callgraph` — inherited methods resolve across
modules, overrides win — and two contracts are checked:

``proto-credit-return``
    Every buffer **pop site** (``vc.pop(...)``, ``*.fifo.popleft()``)
    must be followed — in execution order within its method, or in every
    in-class caller after the call site — by a **credit-return site**
    (``on_credit``, ``restore``, a ``send`` on a credit channel, or an
    increment of a ``credits`` view).  The diagnostic renders the
    statement path from the pop to the method exit that lacks a refund.

``proto-push-guard``
    Every raw **push site** (``append`` on a ``queue``/``fifo``, a
    decrement of a ``credits`` view) must be dominated by a
    **guard** — a capacity/credit predicate (``can_accept*``,
    ``has_credit``, ``vc_claimable``, a comparison over a
    credits/free/space expression) appearing as an enclosing test or as
    an earlier early-exit check — either locally or at every in-class
    call site of the containing method.

Buffer primitives themselves (``VirtualChannel.pop``/``push``) live in
classes with no credit machinery and are exempt: the contract binds the
layer that owns both the buffer *and* the credit wires.  A deliberate
exception (e.g. capacity reserved in an earlier cycle) is annotated
``# proto: allow`` (optionally ``# proto: allow(rule-id)``), mirroring
the ``# det: allow`` vocabulary.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.staticcheck.callgraph import CallGraph, build_call_graph
from repro.staticcheck.diagnostics import CheckReport, Severity

_ALLOW_RE = re.compile(r"#\s*proto:\s*allow(?:\(([a-z0-9_,\- ]+)\))?")

#: Class-body substrings marking a class as owning credit machinery.
_CREDIT_MARKERS = ("on_credit", "credit_out", "credits", "restore")

#: Guard call names that establish capacity/credit before a push.
_GUARD_CALLS = frozenset(
    {
        "has_credit",
        "vc_claimable",
        "can_accept",
        "can_accept_packet",
        "can_accept_flit",
        "free_space",
        "free_slots",
        "_free_flits",
    }
)

#: Substrings in a compared expression that make it a capacity guard.
_GUARD_NAME_HINTS = ("credit", "free", "space", "capacity", "claimable")


def _attr_chain(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    if isinstance(node, ast.Subscript):
        inner = _attr_chain(node.value)
        return f"{inner}[]" if inner else None
    return None


def _suppressed(lines: Sequence[str], lineno: int, rule: str) -> bool:
    for candidate in (lineno, lineno - 1):
        if not (0 < candidate <= len(lines)):
            continue
        m = _ALLOW_RE.search(lines[candidate - 1])
        if m is None:
            continue
        named = m.group(1)
        if named is None or rule in {t.strip() for t in named.split(",")}:
            return True
    return False


class _Site:
    """One pop/push/credit/guard site inside a method."""

    __slots__ = ("node", "stmt", "kind", "detail")

    def __init__(self, node: ast.AST, stmt: ast.stmt, kind: str, detail: str):
        self.node = node
        self.stmt = stmt
        self.kind = kind
        self.detail = detail

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 0)


def _is_pop_call(node: ast.Call) -> Optional[str]:
    fn = node.func
    if not isinstance(fn, ast.Attribute):
        return None
    chain = _attr_chain(fn) or fn.attr
    if fn.attr == "popleft" and "fifo" in chain:
        return chain
    if fn.attr == "pop":
        base = _attr_chain(fn.value) or ""
        last = base.split(".")[-1].rstrip("[]")
        if last == "vc" or last.endswith("vc") or last == "vcs[]":
            return chain
    return None


def _is_credit_return(
    node: ast.AST, aliases: Optional[Set[str]] = None
) -> Optional[str]:
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        fn = node.func
        chain = _attr_chain(fn) or fn.attr
        if fn.attr in ("on_credit", "restore"):
            return chain
        if fn.attr == "send":
            if "credit" in chain.lower():
                return chain
            base = _attr_chain(fn.value)
            if aliases and base in aliases:
                return chain
    if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
        chain = _attr_chain(node.target) or ""
        if "credit" in chain.lower():
            return chain
    return None


def _credit_aliases(fn: ast.FunctionDef) -> Set[str]:
    """Local names bound from a credit-channel expression."""
    aliases: Set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Assign):
            continue
        chain = _attr_chain(node.value)
        if chain is None or "credit" not in chain.lower():
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                aliases.add(target.id)
    return aliases


def _is_push(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        fn = node.func
        chain = _attr_chain(fn) or fn.attr
        base = chain.rsplit(".", 1)[0].lower() if "." in chain else ""
        if fn.attr == "append" and ("queue" in base or "fifo" in base):
            return chain
    if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Sub):
        chain = _attr_chain(node.target) or ""
        if "credit" in chain.lower():
            return chain
    return None


def _is_guard_expr(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            fn = sub.func
            fn_name = (
                fn.attr if isinstance(fn, ast.Attribute)
                else fn.id if isinstance(fn, ast.Name) else ""
            )
            if fn_name in _GUARD_CALLS:
                return True
        if isinstance(sub, ast.Compare):
            text_parts = []
            for piece in [sub.left] + list(sub.comparators):
                chain = _attr_chain(piece)
                if chain:
                    text_parts.append(chain.lower())
            text = " ".join(text_parts)
            if any(hint in text for hint in _GUARD_NAME_HINTS):
                return True
    return False


def _has_early_exit(stmt: ast.If) -> bool:
    for sub in ast.walk(stmt):
        if isinstance(sub, (ast.Return, ast.Raise, ast.Continue, ast.Break)):
            return True
    return False


class _MethodInfo:
    """Sites and structure of one method, for the class-level checks.

    Carries its own ``path``/``lines`` because flattened method tables
    may mix methods defined in different modules.
    """

    def __init__(
        self,
        cls_name: str,
        fn: ast.FunctionDef,
        path: str,
        lines: Sequence[str],
    ) -> None:
        self.cls_name = cls_name
        self.fn = fn
        self.path = path
        self.lines = lines
        self.name = fn.name
        self.pops: List[_Site] = []
        self.credit_returns: List[_Site] = []
        self.pushes: List[_Site] = []
        self.self_calls: Set[str] = set()
        self.self_call_sites: Dict[str, List[ast.stmt]] = {}
        self._collect()

    def _collect(self) -> None:
        # Associate every node with its *innermost* enclosing statement,
        # so "what follows this site" walks the right suite chain.
        stmt_of: Dict[int, ast.stmt] = {}

        def index(node: ast.AST, current: Optional[ast.stmt]) -> None:
            for child in ast.iter_child_nodes(node):
                inner = child if isinstance(child, ast.stmt) else current
                if inner is not None:
                    stmt_of[id(child)] = inner
                index(child, inner)

        index(self.fn, None)
        aliases = _credit_aliases(self.fn)

        for node in ast.walk(self.fn):
            if node is self.fn:
                continue
            stmt = stmt_of.get(id(node))
            if stmt is None:
                continue
            if isinstance(node, ast.Call):
                detail = _is_pop_call(node)
                if detail:
                    self.pops.append(_Site(node, stmt, "pop", detail))
                fn = node.func
                if (
                    isinstance(fn, ast.Attribute)
                    and isinstance(fn.value, ast.Name)
                    and fn.value.id == "self"
                ):
                    self.self_calls.add(fn.attr)
                    sites = self.self_call_sites.setdefault(fn.attr, [])
                    if stmt not in sites:
                        sites.append(stmt)
            detail = _is_credit_return(node, aliases)
            if detail:
                self.credit_returns.append(_Site(node, stmt, "credit", detail))
            detail = _is_push(node)
            if detail:
                self.pushes.append(_Site(node, stmt, "push", detail))


def _suite_paths(fn: ast.FunctionDef) -> Dict[int, Tuple[ast.stmt, ...]]:
    """Map id(stmt) -> chain of enclosing statements (outermost first)."""
    paths: Dict[int, Tuple[ast.stmt, ...]] = {}

    def walk(stmts: List[ast.stmt], chain: Tuple[ast.stmt, ...]) -> None:
        for stmt in stmts:
            paths[id(stmt)] = chain + (stmt,)
            for attr in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, attr, None)
                if isinstance(sub, list) and sub and isinstance(
                    sub[0], ast.stmt
                ):
                    walk(sub, chain + (stmt,))
            for handler in getattr(stmt, "handlers", []) or []:
                walk(handler.body, chain + (stmt,))

    walk(fn.body, ())
    return paths


def _following_statements(
    fn: ast.FunctionDef, stmt: ast.stmt
) -> List[ast.stmt]:
    """Statements that execute after ``stmt`` finishes, in source order.

    Includes the suffix of every enclosing suite and — when the
    statement sits inside a loop — the whole loop body (a later
    iteration runs the statements *before* it too).
    """
    paths = _suite_paths(fn)
    chain = paths.get(id(stmt))
    if chain is None:
        return []
    out: List[ast.stmt] = []

    def suite_suffix(stmts: List[ast.stmt], after: ast.stmt) -> None:
        try:
            idx = stmts.index(after)
        except ValueError:
            return
        out.extend(stmts[idx + 1 :])

    # Walk up the enclosure chain collecting each suite's suffix.
    containers = (fn,) + chain
    for parent, child in zip(containers, containers[1:]):
        for attr in ("body", "orelse", "finalbody"):
            sub = getattr(parent, attr, None)
            if isinstance(sub, list):
                suite_suffix(sub, child)
        for handler in getattr(parent, "handlers", []) or []:
            suite_suffix(handler.body, child)
        if isinstance(parent, (ast.For, ast.While)):
            out.extend(parent.body)
    return out


def _contains_site(stmts: List[ast.stmt], sites: List[_Site]) -> bool:
    wanted = {id(s.stmt) for s in sites}
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.stmt) and id(node) in wanted:
                return True
        if id(stmt) in wanted:
            return True
    return False


class _ClassAnalysis:
    """Checks the handshake contract over one (flattened) class."""

    def __init__(
        self,
        methods: Dict[str, _MethodInfo],
        report: CheckReport,
    ) -> None:
        self.report = report
        self.methods = methods

    # -- transitive credit behaviour ----------------------------------------
    def _returns_credit(self, name: str, seen: Optional[Set[str]] = None) -> bool:
        info = self.methods.get(name)
        if info is None:
            return False
        if info.credit_returns:
            return True
        seen = seen or set()
        seen.add(name)
        return any(
            self._returns_credit(callee, seen)
            for callee in info.self_calls
            if callee not in seen
        )

    def _callers_of(self, name: str) -> List[Tuple[_MethodInfo, ast.stmt]]:
        out = []
        for info in self.methods.values():
            for stmt in info.self_call_sites.get(name, []):
                out.append((info, stmt))
        return out

    # -- proto-credit-return -------------------------------------------------
    def check_credit_returns(self) -> None:
        for info in self.methods.values():
            for pop in info.pops:
                if self._pop_refunded(info, pop):
                    continue
                if _suppressed(
                    info.lines, pop.lineno, "proto-credit-return"
                ):
                    continue
                trail = self._render_trail(info, pop)
                self.report.add(
                    "proto-credit-return",
                    Severity.WARNING,
                    f"{info.path}:{pop.lineno}",
                    f"{info.cls_name}.{info.name} pops {pop.detail} but no "
                    f"credit return follows on the path to exit{trail}",
                    "send the freed slot upstream (on_credit/credit "
                    "channel send) after the pop, or annotate a "
                    "deliberate exception with '# proto: allow'",
                )

    def _pop_refunded(self, info: _MethodInfo, pop: _Site) -> bool:
        following = _following_statements(info.fn, pop.stmt)
        # The popping statement itself may combine pop and refund.
        candidates = [pop.stmt] + following
        if _contains_site(candidates, info.credit_returns):
            return True
        # A later self-call that transitively returns credits counts.
        for stmt in candidates:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                    and self._returns_credit(node.func.attr)
                ):
                    return True
        # Otherwise every in-class caller must refund after calling us.
        callers = self._callers_of(info.name)
        if callers:
            return all(
                _contains_site(
                    [call_stmt] + _following_statements(c.fn, call_stmt),
                    c.credit_returns,
                )
                for c, call_stmt in callers
            )
        return False

    def _render_trail(self, info: _MethodInfo, pop: _Site) -> str:
        following = _following_statements(info.fn, pop.stmt)
        linenos = []
        for stmt in [pop.stmt] + following:
            line = getattr(stmt, "lineno", 0)
            if line and line not in linenos:
                linenos.append(line)
            if len(linenos) >= 6:
                break
        if not linenos:
            return ""
        return " (path: line " + " -> ".join(str(n) for n in linenos) + ")"

    # -- proto-push-guard ----------------------------------------------------
    def check_push_guards(self) -> None:
        for info in self.methods.values():
            for push in info.pushes:
                if self._push_guarded(info, push):
                    continue
                if _suppressed(info.lines, push.lineno, "proto-push-guard"):
                    continue
                self.report.add(
                    "proto-push-guard",
                    Severity.WARNING,
                    f"{info.path}:{push.lineno}",
                    f"{info.cls_name}.{info.name} pushes via {push.detail} "
                    "without a dominating capacity/credit check",
                    "guard the push with has_credit/can_accept/"
                    "free-space logic, or annotate a capacity "
                    "reservation made elsewhere with '# proto: allow'",
                )

    def _push_guarded(
        self, info: _MethodInfo, push: _Site, seen: Optional[Set[str]] = None
    ) -> bool:
        paths = _suite_paths(info.fn)
        chain = paths.get(id(push.stmt), ())
        # (a) an enclosing if/while whose test is a guard predicate
        for parent in chain:
            if isinstance(parent, (ast.If, ast.While)) and _is_guard_expr(
                parent.test
            ):
                return True
        # (b) an earlier early-exit guard in any enclosing suite
        containers = (info.fn,) + tuple(chain)
        for parent, child in zip(containers, containers[1:]):
            for attr in ("body", "orelse", "finalbody"):
                sub = getattr(parent, attr, None)
                if not isinstance(sub, list) or child not in sub:
                    continue
                for earlier in sub[: sub.index(child)]:
                    if (
                        isinstance(earlier, ast.If)
                        and _is_guard_expr(earlier.test)
                        and _has_early_exit(earlier)
                    ):
                        return True
        # (c) every in-class caller dominates the call with a guard
        seen = seen or set()
        if info.name in seen:
            return False
        seen.add(info.name)
        callers = self._callers_of(info.name)
        if callers:
            return all(
                self._push_guarded(
                    c, _Site(call_stmt, call_stmt, "push", push.detail), seen
                )
                for c, call_stmt in callers
            )
        return False


def _class_owns_credits(methods: Dict[str, _MethodInfo]) -> bool:
    for info in methods.values():
        text = ast.dump(info.fn)
        if any(marker in text for marker in _CREDIT_MARKERS):
            return True
    return False


def _flattened_method_infos(
    graph: CallGraph, class_qname: str
) -> Dict[str, _MethodInfo]:
    """The class's merged method table as :class:`_MethodInfo` records.

    Methods flattened in from bases keep the *defining* class's name,
    path, and source lines — they may live in a different module than
    the leaf class.
    """
    methods: Dict[str, _MethodInfo] = {}
    for name, node in graph.flattened_methods(class_qname).items():
        if not isinstance(node.node, ast.FunctionDef):
            continue
        info = graph.modules.get(node.module)
        lines: Sequence[str] = info.lines if info is not None else ()
        methods[name] = _MethodInfo(
            node.cls_bare or "?", node.node, node.path, lines
        )
    return methods


def lint_graph(graph: CallGraph, only_module: Optional[str] = None) -> CheckReport:
    """Credit-handshake conformance lint over a built call graph.

    ``only_module`` restricts analysis to classes defined in one module
    (used by :func:`lint_source`); by default every leaf class in the
    graph is checked, with inherited methods resolved cross-module.
    """
    report = CheckReport()
    merged = CheckReport()
    for qname in sorted(graph.classes):
        cls = graph.classes[qname]
        if only_module is not None and cls.module != only_module:
            continue
        # Bases with subclasses are analyzed through each flattened
        # leaf, where their callers are visible.
        if graph.subclasses(qname):
            continue
        methods = _flattened_method_infos(graph, qname)
        if not _class_owns_credits(methods):
            continue
        analysis = _ClassAnalysis(methods, merged)
        analysis.check_credit_returns()
        analysis.check_push_guards()

    # Leaf classes sharing a base produce identical findings for
    # inherited sites; keep the first of each.
    seen: Set[Tuple[str, str, str]] = set()
    for diag in merged:
        key = (diag.rule, diag.location, diag.message)
        if key in seen:
            continue
        seen.add(key)
        report.diagnostics.append(diag)
    return report


def lint_source(
    text: str, path: str = "<string>", graph: Optional[CallGraph] = None
) -> CheckReport:
    """Credit-handshake conformance lint over one module's source text."""
    if graph is None:
        graph = build_call_graph([(path, text)])
    exc = graph.errors.get(path)
    if exc is not None:
        report = CheckReport()
        report.add(
            "proto-credit-return",
            Severity.ERROR,
            f"{path}:{exc.lineno or 0}",
            f"cannot parse module: {exc.msg}",
            "fix the syntax error first",
        )
        return report
    return lint_graph(graph, only_module=graph.module_by_path.get(path))


def lint_paths(paths) -> CheckReport:
    """Credit-handshake lint over files/directories of Python code."""
    from repro.staticcheck.detlint import iter_python_files

    sources = []
    for path in iter_python_files(paths):
        with open(path, encoding="utf-8") as fh:
            sources.append((path, fh.read()))
    graph = build_call_graph(sources)
    return lint_graph(graph)


__all__ = ["lint_graph", "lint_paths", "lint_source"]
