"""Interprocedural side-effect summaries over the call graph.

For every function in a :class:`~repro.staticcheck.callgraph.CallGraph`
this engine computes which *state paths* it mutates — attribute chains
rooted at ``self``, a parameter, or a module global — which mutable
attributes it reads, and whether it is pure.  Summaries compose to a
fixpoint over the strongly connected components of the call graph, so
``transitive(f)`` covers everything reachable from ``f`` even through
recursion.

Alias resolution is flow-sensitive: a must-alias analysis built on the
:mod:`repro.staticcheck.flow` worklist framework tracks which locals are
bound to which chains (``fifo = vcq.fifo`` makes ``fifo.append(x)`` a
write through ``vcq.fifo``), with set-intersection join so only bindings
valid on *every* path survive.

Writes are keyed for comparison by their **final attribute name**
(``self.inports[p].vcs[v].fifo`` and a ``_fast_wiring`` table alias of
the same deque both key as ``fifo``) — coarse enough to survive aliasing
through precomputed wiring tables, precise enough to diff two kernels'
mutation footprints.  The full chain and owning class are kept on each
:class:`Write` for diagnostics.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.staticcheck.callgraph import (
    CallGraph,
    CallSite,
    FunctionNode,
    chain_of,
    final_attr,
)
from repro.staticcheck.flow import BranchCondition, ForwardAnalysis, build_cfg

__all__ = ["EffectEngine", "EffectSummary", "Write"]

#: Container methods that mutate their receiver in place.
MUTATOR_METHODS = frozenset(
    {
        "add", "append", "appendleft", "clear", "discard", "extend",
        "extendleft", "insert", "pop", "popitem", "popleft", "remove",
        "reverse", "rotate", "setdefault", "sort", "update",
    }
)

#: Calls that never mutate simulator state (purity bookkeeping).
_PURE_CALLS = frozenset(
    {
        "abs", "all", "any", "bool", "dict", "divmod", "enumerate",
        "filter", "float", "format", "frozenset", "getattr", "hasattr",
        "id", "int", "isinstance", "issubclass", "iter", "len", "list",
        "map", "max", "min", "range", "repr", "reversed", "round", "set",
        "sorted", "str", "sum", "super", "tuple", "type", "zip",
    }
)

#: Value expressions that create a fresh object owned by the local scope.
_FRESH_CTORS = frozenset(
    {"list", "dict", "set", "deque", "defaultdict", "OrderedDict",
     "Counter", "frozenset", "tuple", "str", "int", "float", "bool"}
)

_FRESH = "~fresh"


class Write:
    """One state mutation: full chain, comparison key, provenance."""

    __slots__ = ("path", "attr", "owner", "qname", "lineno", "kind")

    def __init__(
        self, path: str, owner: str, qname: str, lineno: int, kind: str
    ) -> None:
        self.path = path            # normalized chain, e.g. self._wake[]
        self.attr = final_attr(path) or path  # comparison key
        self.owner = owner          # owning class bare name, or chain root
        self.qname = qname          # function that performs the write
        self.lineno = lineno
        self.kind = kind            # assign | aug | mutator | del

    def key(self) -> Tuple[str, str, str, int]:
        return (self.path, self.qname, self.kind, self.lineno)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Write({self.path} [{self.kind}] in {self.qname})"


class EffectSummary:
    """Mutation footprint of one function (direct or transitive)."""

    __slots__ = ("writes", "reads", "global_writes", "calls_unknown")

    def __init__(
        self,
        writes: Iterable[Write] = (),
        reads: Iterable[str] = (),
        global_writes: Iterable[str] = (),
        calls_unknown: bool = False,
    ) -> None:
        self.writes: Tuple[Write, ...] = tuple(writes)
        self.reads: FrozenSet[str] = frozenset(reads)
        self.global_writes: FrozenSet[str] = frozenset(global_writes)
        self.calls_unknown = calls_unknown

    @property
    def write_attrs(self) -> FrozenSet[str]:
        """Final-attribute comparison keys of every write."""
        return frozenset(w.attr for w in self.writes)

    @property
    def pure(self) -> bool:
        """Provably side-effect-free (no writes, no unknown calls)."""
        return (
            not self.writes
            and not self.global_writes
            and not self.calls_unknown
        )

    def merge(self, *others: "EffectSummary") -> "EffectSummary":
        writes: List[Write] = list(self.writes)
        seen = {w.key() for w in writes}
        reads = set(self.reads)
        global_writes = set(self.global_writes)
        unknown = self.calls_unknown
        for other in others:
            for w in other.writes:
                if w.key() not in seen:
                    seen.add(w.key())
                    writes.append(w)
            reads |= other.reads
            global_writes |= other.global_writes
            unknown = unknown or other.calls_unknown
        return EffectSummary(writes, reads, global_writes, unknown)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EffectSummary(writes={sorted(self.write_attrs)}, "
            f"pure={self.pure})"
        )


class _AliasAnalysis(ForwardAnalysis):
    """Must-alias bindings: frozenset of (local name, chain) pairs."""

    def __init__(self, cfg, params: List[str]) -> None:
        super().__init__(cfg)
        self.params = params
        self._pending_for: Optional[int] = None  # id() of a for-loop iter

    def initial_state(self):
        return frozenset((p, p) for p in self.params)

    def join(self, a, b):
        return a & b

    def transfer(self, state, stmt):
        state = self._walrus_binds(state, stmt)
        if isinstance(stmt, BranchCondition):
            self._pending_for = (
                id(stmt.expr) if stmt.kind in ("for", "with") else None
            )
            return state
        if not isinstance(stmt, ast.Assign):
            if isinstance(stmt, (ast.AugAssign, ast.AnnAssign)) and \
                    isinstance(stmt.target, ast.Name):
                return self._rebind(state, stmt.target.id, None)
            return state
        aliases = dict(state)
        value = stmt.value
        element = (
            self._pending_for is not None
            and id(value) == self._pending_for
        )
        self._pending_for = None
        chain = chain_of(value, aliases)
        if chain is None and _is_fresh(value):
            chain = _FRESH
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                bound = chain
                if bound is not None and element and not _is_with_bind(value):
                    bound = f"{bound}[]"
                state = self._rebind(state, target.id, bound)
            elif isinstance(target, (ast.Tuple, ast.List)):
                suffix = "[]" if not element else "[][]"
                enum = _enumerate_arg(value)
                for i, elt in enumerate(target.elts):
                    if not isinstance(elt, ast.Name):
                        continue
                    if enum is not None and element:
                        # for i, x in enumerate(chain): x is an element
                        bound = (
                            f"{chain_of(enum, aliases)}[]"
                            if i == 1 and chain_of(enum, aliases)
                            else None
                        )
                    elif chain is not None and chain != _FRESH:
                        bound = f"{chain}{suffix}"
                    else:
                        bound = None
                    state = self._rebind(state, elt.id, bound)
        return state

    def _walrus_binds(self, state, stmt):
        """Apply ``(x := expr)`` bindings found anywhere in ``stmt``."""
        node = stmt.expr if isinstance(stmt, BranchCondition) else stmt
        if not isinstance(node, ast.AST):
            return state
        for sub in ast.walk(node):
            if isinstance(sub, ast.NamedExpr) and isinstance(
                sub.target, ast.Name
            ):
                chain = chain_of(sub.value, dict(state))
                if chain is None and _is_fresh(sub.value):
                    chain = _FRESH
                state = self._rebind(state, sub.target.id, chain)
        return state

    @staticmethod
    def _rebind(state, name: str, chain: Optional[str]):
        kept = frozenset(
            (n, c) for n, c in state
            if n != name and not _chain_root_is(c, name)
        )
        if chain is not None:
            kept = kept | {(name, chain)}
        return kept


def _chain_root_is(chain: str, name: str) -> bool:
    root = chain.split(".", 1)[0].replace("[]", "")
    return root == name and chain != name


def _is_with_bind(value: ast.expr) -> bool:
    # with-items bind the context manager itself, not an element
    return isinstance(value, (ast.Call, ast.Attribute, ast.Name))


def _enumerate_arg(value: ast.expr) -> Optional[ast.expr]:
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id == "enumerate"
        and value.args
    ):
        return value.args[0]
    return None


def _is_fresh(value: ast.expr) -> bool:
    if isinstance(value, (ast.Constant, ast.List, ast.Dict, ast.Set,
                          ast.Tuple, ast.ListComp, ast.DictComp,
                          ast.SetComp, ast.GeneratorExp, ast.BinOp,
                          ast.UnaryOp, ast.Compare, ast.BoolOp,
                          ast.JoinedStr)):
        return True
    if isinstance(value, ast.Call):
        fn = value.func
        name = (
            fn.id if isinstance(fn, ast.Name)
            else fn.attr if isinstance(fn, ast.Attribute) else ""
        )
        return name in _FRESH_CTORS
    return False


class EffectEngine:
    """Direct and transitive effect summaries over one call graph."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self._direct: Dict[str, EffectSummary] = {}
        self._transitive: Optional[Dict[str, EffectSummary]] = None

    # -- direct (intraprocedural) effects ------------------------------------
    def direct(self, qname: str) -> EffectSummary:
        cached = self._direct.get(qname)
        if cached is None:
            node = self.graph.functions.get(qname)
            if node is None or not isinstance(
                node.node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                cached = EffectSummary()
            else:
                cached = self._compute_direct(node)
            self._direct[qname] = cached
        return cached

    def _compute_direct(self, fn: FunctionNode) -> EffectSummary:
        node = fn.node
        args = node.args
        params = [a.arg for a in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )]
        if args.vararg:
            params.append(args.vararg.arg)
        if args.kwarg:
            params.append(args.kwarg.arg)
        globals_declared: Set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Global):
                globals_declared.update(sub.names)

        cfg = build_cfg(node)
        analysis = _AliasAnalysis(cfg, params)
        analysis.run()

        # Call sites the graph resolved to real methods: a mutator-named
        # call there (``vc.pop(now)`` -> ``VirtualChannel.pop``) is
        # summarized through the callee, not as a container mutation.
        resolved_calls = {
            (site.lineno, site.attr)
            for site in self.graph.calls.get(fn.qname, [])
            if site.targets
        }
        collector = _WriteCollector(
            fn, params, globals_declared, resolved_calls
        )
        for bid in sorted(cfg.blocks):
            state = analysis.block_in.get(bid)
            if state is None:
                state = analysis.initial_state()
            for stmt in cfg.blocks[bid].stmts:
                collector.visit(stmt, dict(state))
                state = analysis.transfer(state, stmt)
        return EffectSummary(
            collector.writes,
            collector.reads,
            collector.global_writes,
            collector.calls_unknown,
        )

    # -- transitive (interprocedural) effects --------------------------------
    def summaries(self) -> Dict[str, EffectSummary]:
        """Transitive summary per function, fixpoint over call-graph SCCs.

        :meth:`CallGraph.sccs` yields components in reverse topological
        order of the condensation, so one forward pass suffices: by the
        time an SCC is folded, every callee outside it already has its
        transitive summary (members of the SCC share one summary, which
        is the recursion fixpoint).
        """
        if self._transitive is not None:
            return self._transitive
        out: Dict[str, EffectSummary] = {}
        for component in self.graph.sccs():
            members = set(component)
            merged = EffectSummary()
            parts: List[EffectSummary] = []
            for qname in component:
                parts.append(self.direct(qname))
                for site in self.graph.calls.get(qname, []):
                    for target in site.targets:
                        if target in members:
                            continue
                        summary = out.get(target)
                        if summary is not None:
                            parts.append(summary)
            merged = merged.merge(*parts)
            for qname in component:
                out[qname] = merged
        self._transitive = out
        return out

    def transitive(self, qname: str) -> EffectSummary:
        """Everything ``qname`` may mutate, including through callees."""
        return self.summaries().get(qname, EffectSummary())

    def collect(
        self,
        roots: Iterable[str],
        skip=None,
    ) -> Tuple[List[Write], Dict[str, List[str]]]:
        """Writes reachable from ``roots`` with call-chain provenance.

        ``skip(caller_qname, site)`` excludes individual call edges (the
        kernel lint uses it for ``# kernel: unreached`` / ``fallback``
        annotations).  Returns ``(writes, chains)`` where ``chains``
        maps each reached function to its shortest root call chain.
        """
        roots = [r for r in roots if r in self.graph.functions]
        chains: Dict[str, List[str]] = {r: [r] for r in roots}
        queue = list(roots)
        while queue:
            cur = queue.pop(0)
            for site in self.graph.calls.get(cur, []):
                if skip is not None and skip(cur, site):
                    continue
                for target in site.targets:
                    if target in chains or target not in self.graph.functions:
                        continue
                    chains[target] = chains[cur] + [target]
                    queue.append(target)
        writes: List[Write] = []
        seen: Set[Tuple[str, str, str, int]] = set()
        for qname in chains:
            for w in self.direct(qname).writes:
                if w.key() not in seen:
                    seen.add(w.key())
                    writes.append(w)
        return writes, chains


class _WriteCollector:
    """Classifies the mutations of one statement under an alias state."""

    def __init__(
        self,
        fn: FunctionNode,
        params: List[str],
        globals_declared: Set[str],
        resolved_calls: Optional[Set[Tuple[int, str]]] = None,
    ) -> None:
        self.fn = fn
        self.params = set(params)
        self.globals_declared = globals_declared
        self.resolved_calls = resolved_calls or set()
        # Writes to ``self`` inside ``__init__`` initialize a fresh
        # object — construction, not mutation of pre-existing state.
        self.constructing = fn.name == "__init__"
        self.writes: List[Write] = []
        self.reads: Set[str] = set()
        self.global_writes: Set[str] = set()
        self.calls_unknown = False

    # -- chain classification -------------------------------------------------
    def _owner_of(self, chain: str) -> Optional[str]:
        """Owner label for a resolved chain, or None to drop the write."""
        root = chain.split(".", 1)[0].replace("[]", "")
        if root == _FRESH.replace("[]", "") or chain.startswith(_FRESH):
            return None
        if root == "self":
            if self.constructing:
                return None
            return self.fn.cls_bare or "self"
        if root in self.params or root in self.globals_declared:
            segments = [
                s.replace("[]", "") for s in chain.split(".")[:-1]
            ]
            return ".".join(segments) if segments else root
        return "?"

    def _record(
        self, chain: Optional[str], lineno: int, kind: str
    ) -> None:
        if chain is None:
            return
        if "." not in chain:
            # Bare local/subscript with no attribute segment: a local
            # rebind or a write into a fresh container — not state.
            root = chain.replace("[]", "")
            if root in self.globals_declared:
                self.global_writes.add(root)
            return
        owner = self._owner_of(chain)
        if owner is None:
            return
        self.writes.append(
            Write(chain, owner, self.fn.qname, lineno, kind)
        )

    # -- statement dispatch ---------------------------------------------------
    def visit(self, stmt, aliases: Dict[str, str]) -> None:
        if isinstance(stmt, BranchCondition):
            self._visit_expr(stmt.expr, aliases)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._visit_target(target, aliases)
            self._visit_expr(stmt.value, aliases)
            return
        if isinstance(stmt, ast.AugAssign):
            self._visit_target(stmt.target, aliases, kind="aug")
            self._visit_expr(stmt.value, aliases)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._visit_target(stmt.target, aliases)
                self._visit_expr(stmt.value, aliases)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    self._record(
                        chain_of(target, aliases),
                        getattr(target, "lineno", 0),
                        "del",
                    )
            return
        self._visit_expr(stmt, aliases)

    def _visit_target(
        self, target, aliases: Dict[str, str], kind: str = "assign"
    ) -> None:
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            self._record(
                chain_of(target, aliases),
                getattr(target, "lineno", 0),
                kind,
            )
        elif isinstance(target, ast.Name):
            if target.id in self.globals_declared:
                self.global_writes.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._visit_target(elt, aliases, kind)

    def _visit_expr(self, root, aliases: Dict[str, str]) -> None:
        stack = [root]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            if isinstance(node, ast.Call):
                self._visit_call(node, aliases)
            elif isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                chain = chain_of(node, aliases)
                if chain is not None and "." in chain:
                    root_name = chain.split(".", 1)[0].replace("[]", "")
                    if root_name == "self" or root_name in self.params:
                        self.reads.add(final_attr(chain) or chain)
            stack.extend(ast.iter_child_nodes(node))

    def _visit_call(self, call: ast.Call, aliases: Dict[str, str]) -> None:
        fn = call.func
        if isinstance(fn, ast.Attribute):
            lineno = getattr(call, "lineno", 0)
            if (
                fn.attr in MUTATOR_METHODS
                and (lineno, fn.attr) not in self.resolved_calls
            ):
                self._record(
                    chain_of(fn.value, aliases),
                    lineno,
                    "mutator",
                )
            return
        if isinstance(fn, ast.Name):
            if fn.id in _PURE_CALLS:
                return
            # Resolution happens at the graph layer; a plain-name call
            # is either a graph edge (summarized transitively) or an
            # unknown external.
            return
        self.calls_unknown = True
