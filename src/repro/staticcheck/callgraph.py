"""Module-aware call graph over a set of Python sources.

The interprocedural analyses in :mod:`repro.staticcheck` (side-effect
summaries, the kernel-soundness prover, cross-module lint reasoning) all
need the same substrate: *who calls whom*, resolved across modules, with
class inheritance flattened.  This module builds it once per check run:

:class:`FunctionNode`
    One function, method, property getter, or lambda, addressed by a
    qualified name (``module.func`` / ``module.Class.method``).

:class:`CallSite`
    One resolved call: the caller, the (possibly several) callee
    qnames, the receiver chain it was resolved through, and a ``kind``
    tag so consumers can choose how speculative an edge they follow
    (``function``/``self``/``super``/``init``/``instance``/``hint``/
    ``heuristic``/``property``).

:func:`build_call_graph`
    Constructs the graph from ``(path, text)`` pairs.  Resolution
    handles in-package inheritance (``self.m`` dispatches to the
    flattened method table plus subclass overrides), ``super()``,
    import aliases, class instantiation (``Foo()`` edges to
    ``Foo.__init__`` and marks the binding an instance), bound methods
    and lambdas stored in locals, and properties used as values.
    Attribute receivers that cannot be typed locally fall back to
    *receiver hints* — a mapping from the terminal segment of the
    receiver chain (``routers[]``, ``telemetry``) to candidate class
    names — and, failing that, to name-based may-resolution over every
    class defining the method.

The graph is a *may*-call over-approximation: an edge means the call
could reach that target, not that it must.
"""

from __future__ import annotations

import ast
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

__all__ = [
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FunctionNode",
    "ModuleInfo",
    "build_call_graph",
    "chain_of",
    "module_name_for",
]

#: Method names too generic to resolve by name alone — they are almost
#: always container/builtin operations, and a name-based fallback edge
#: to an unrelated class method of the same name would poison closures.
_GENERIC_METHODS = frozenset(
    {
        "add", "append", "appendleft", "clear", "copy", "count", "discard",
        "extend", "extendleft", "format", "get", "index", "insert", "items",
        "join", "keys", "lower", "pop", "popitem", "popleft", "remove",
        "reverse", "rotate", "setdefault", "sort", "split", "startswith",
        "strip", "update", "upper", "values", "write",
    }
)

#: Builtins that pass their first argument's elements through unchanged,
#: so iterating/subscripting their result aliases the argument.
_PASSTHROUGH_CALLS = frozenset(
    {"enumerate", "sorted", "list", "tuple", "reversed", "iter", "set"}
)


def module_name_for(path: str) -> str:
    """Dotted module name derived from a file path.

    Components up to and including a ``src`` directory are stripped, the
    ``.py`` suffix and a trailing ``__init__`` are dropped, and anything
    that is not a Python identifier is discarded.
    """
    norm = path.replace("\\", "/")
    parts = [p for p in norm.split("/") if p not in ("", ".", "..")]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts.pop()
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    parts = [p for p in parts if p.isidentifier()]
    return ".".join(parts) or "module"


class ModuleInfo:
    """One parsed source module."""

    __slots__ = ("name", "path", "text", "lines", "tree", "imports")

    def __init__(self, name: str, path: str, text: str, tree: ast.Module):
        self.name = name
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        self.tree = tree
        #: local name -> dotted target (module or module.attr)
        self.imports: Dict[str, str] = {}


class ClassInfo:
    """One class definition: bases (resolved where possible) and methods."""

    __slots__ = ("qname", "module", "name", "node", "bases", "methods")

    def __init__(self, qname: str, module: str, node: ast.ClassDef):
        self.qname = qname
        self.module = module
        self.name = node.name
        self.node = node
        #: base-class qnames when resolvable, else the bare source name
        self.bases: List[str] = []
        #: method name -> function qname (own definitions only)
        self.methods: Dict[str, str] = {}


class FunctionNode:
    """One function/method/lambda in the graph."""

    __slots__ = (
        "qname", "module", "cls", "name", "node", "path",
        "lineno", "end_lineno", "is_property", "decorators",
    )

    def __init__(
        self,
        qname: str,
        module: str,
        cls: Optional[str],
        node: ast.AST,
        path: str,
    ) -> None:
        self.qname = qname
        self.module = module
        self.cls = cls  # owning class qname, or None
        self.name = qname.rsplit(".", 1)[-1]
        self.node = node
        self.path = path
        self.lineno = getattr(node, "lineno", 0)
        self.end_lineno = getattr(node, "end_lineno", self.lineno)
        decorators = []
        for dec in getattr(node, "decorator_list", []):
            if isinstance(dec, ast.Name):
                decorators.append(dec.id)
            elif isinstance(dec, ast.Attribute):
                decorators.append(dec.attr)
            elif isinstance(dec, ast.Call):
                fn = dec.func
                if isinstance(fn, ast.Name):
                    decorators.append(fn.id)
                elif isinstance(fn, ast.Attribute):
                    decorators.append(fn.attr)
        self.decorators = decorators
        self.is_property = "property" in decorators or "setter" in decorators

    @property
    def cls_bare(self) -> Optional[str]:
        return self.cls.rsplit(".", 1)[-1] if self.cls else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionNode({self.qname})"


class CallSite:
    """One call inside a function, with its resolved targets."""

    __slots__ = ("caller", "attr", "receiver", "lineno", "targets", "kind")

    def __init__(
        self,
        caller: str,
        attr: str,
        receiver: Optional[str],
        lineno: int,
        targets: Tuple[str, ...],
        kind: str,
    ) -> None:
        self.caller = caller
        self.attr = attr          # called name / method name
        self.receiver = receiver  # normalized receiver chain, or None
        self.lineno = lineno
        self.targets = targets    # resolved callee qnames (may-call)
        self.kind = kind

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CallSite({self.caller} -> {self.attr} "
            f"[{self.kind}] @{self.lineno})"
        )


def chain_of(
    expr: ast.AST, aliases: Optional[Dict[str, str]] = None
) -> Optional[str]:
    """Normalized receiver chain of an expression, or None.

    ``net.routers[r]`` becomes ``net.routers[]``; local aliases are
    substituted through ``aliases`` (name -> chain).  ``x.get(k)`` and
    ``x.setdefault(k, d)`` alias an element of ``x`` (``chain(x)[]``);
    the passthrough builtins (``sorted``/``enumerate``/...) alias their
    argument.
    """
    if isinstance(expr, ast.Name):
        if aliases is not None and expr.id in aliases:
            return aliases[expr.id]
        return expr.id
    if isinstance(expr, ast.NamedExpr):
        # (x := expr) evaluates to expr: chains pass through the walrus
        return chain_of(expr.value, aliases)
    if isinstance(expr, ast.Attribute):
        base = chain_of(expr.value, aliases)
        return f"{base}.{expr.attr}" if base else None
    if isinstance(expr, ast.Subscript):
        base = chain_of(expr.value, aliases)
        return f"{base}[]" if base else None
    if isinstance(expr, ast.Call):
        fn = expr.func
        if (
            isinstance(fn, ast.Name)
            and fn.id in _PASSTHROUGH_CALLS
            and expr.args
        ):
            return chain_of(expr.args[0], aliases)
        if (
            isinstance(fn, ast.Attribute)
            and fn.attr in ("get", "setdefault")
            and expr.args
        ):
            base = chain_of(fn.value, aliases)
            return f"{base}[]" if base else None
    return None


def chain_segments(chain: str) -> List[str]:
    """Split a chain into its dotted segments (``[]`` marks retained)."""
    return chain.split(".")


def final_attr(chain: str) -> Optional[str]:
    """The last *attribute* segment of a chain, without ``[]`` marks."""
    for segment in reversed(chain.split(".")):
        name = segment.replace("[]", "")
        if name:
            return name
    return None


class CallGraph:
    """The resolved call graph over a set of modules."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.module_by_path: Dict[str, str] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionNode] = {}
        self.calls: Dict[str, List[CallSite]] = {}
        #: paths that failed to parse: path -> SyntaxError
        self.errors: Dict[str, SyntaxError] = {}
        self._classes_by_name: Dict[str, List[str]] = {}
        self._method_index: Dict[str, List[str]] = {}
        self._subclasses: Dict[str, List[str]] = {}
        self._callers: Optional[Dict[str, List[Tuple[str, CallSite]]]] = None

    # -- indexing ------------------------------------------------------------
    def _index(self) -> None:
        self._classes_by_name = {}
        self._method_index = {}
        self._subclasses = {}
        for qname, cls in self.classes.items():
            self._classes_by_name.setdefault(cls.name, []).append(qname)
            for method, fn_qname in cls.methods.items():
                self._method_index.setdefault(method, []).append(fn_qname)
        for qname, cls in self.classes.items():
            for base in cls.bases:
                if base in self.classes:
                    self._subclasses.setdefault(base, []).append(qname)

    def classes_named(self, bare_name: str) -> List[str]:
        """Class qnames whose bare name matches."""
        return list(self._classes_by_name.get(bare_name, []))

    # -- hierarchy -----------------------------------------------------------
    def subclasses(self, class_qname: str) -> List[str]:
        """Direct subclass qnames."""
        return list(self._subclasses.get(class_qname, []))

    def all_subclasses(self, class_qname: str) -> List[str]:
        """Transitive subclass qnames, preorder."""
        out: List[str] = []
        stack = list(self._subclasses.get(class_qname, []))
        seen: Set[str] = set()
        while stack:
            cur = stack.pop(0)
            if cur in seen:
                continue
            seen.add(cur)
            out.append(cur)
            stack.extend(self._subclasses.get(cur, []))
        return out

    def flattened_methods(self, class_qname: str) -> Dict[str, FunctionNode]:
        """Merged method table with in-package bases, overrides winning."""
        methods: Dict[str, FunctionNode] = {}

        def absorb(qname: str, seen: Set[str]) -> None:
            if qname in seen:
                return
            seen.add(qname)
            cls = self.classes.get(qname)
            if cls is None:
                return
            for base in cls.bases:
                absorb(base, seen)
            for name, fn_qname in cls.methods.items():
                node = self.functions.get(fn_qname)
                if node is not None:
                    methods[name] = node

        absorb(class_qname, set())
        return methods

    # -- edges ---------------------------------------------------------------
    def callees(self, qname: str) -> List[CallSite]:
        return list(self.calls.get(qname, []))

    def callers_of(self, qname: str) -> List[Tuple[str, CallSite]]:
        if self._callers is None:
            callers: Dict[str, List[Tuple[str, CallSite]]] = {}
            for caller, sites in self.calls.items():
                for site in sites:
                    for target in site.targets:
                        callers.setdefault(target, []).append((caller, site))
            self._callers = callers
        return list(self._callers.get(qname, []))

    def reachable(
        self,
        roots: Iterable[str],
        skip: Optional[Callable[[str, CallSite], bool]] = None,
    ) -> List[str]:
        """Function qnames reachable from ``roots`` (inclusive), BFS order.

        ``skip(caller_qname, site)`` excludes individual call edges.
        """
        seen: Dict[str, None] = {}
        queue = [r for r in roots if r in self.functions]
        for r in queue:
            seen.setdefault(r, None)
        while queue:
            cur = queue.pop(0)
            for site in self.calls.get(cur, []):
                if skip is not None and skip(cur, site):
                    continue
                for target in site.targets:
                    if target in self.functions and target not in seen:
                        seen[target] = None
                        queue.append(target)
        return list(seen)

    def call_chain(
        self,
        src: str,
        dst: str,
        skip: Optional[Callable[[str, CallSite], bool]] = None,
    ) -> Optional[List[str]]:
        """Shortest qname path ``src -> ... -> dst``, or None."""
        if src == dst:
            return [src]
        parents: Dict[str, str] = {src: src}
        queue = [src]
        while queue:
            cur = queue.pop(0)
            for site in self.calls.get(cur, []):
                if skip is not None and skip(cur, site):
                    continue
                for target in site.targets:
                    if target in parents or target not in self.functions:
                        continue
                    parents[target] = cur
                    if target == dst:
                        chain = [target]
                        while chain[-1] != src:
                            chain.append(parents[chain[-1]])
                        return list(reversed(chain))
                    queue.append(target)
        return None

    def sccs(self) -> List[List[str]]:
        """Strongly connected components (Tarjan).

        Emitted in reverse topological order of the condensation: every
        SCC appears before any SCC that calls into it, so effect
        summaries can be folded in one forward pass over the result.
        """
        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        out: List[List[str]] = []
        counter = [0]

        def targets_of(qname: str) -> List[str]:
            seen: List[str] = []
            for site in self.calls.get(qname, []):
                for t in site.targets:
                    if t in self.functions:
                        seen.append(t)
            return seen

        def strongconnect(v: str) -> None:
            # Iterative Tarjan: (node, iterator-position) frames.
            work = [(v, 0)]
            while work:
                node, pos = work.pop()
                if pos == 0:
                    index[node] = lowlink[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                succs = targets_of(node)
                for i in range(pos, len(succs)):
                    succ = succs[i]
                    if succ not in index:
                        work.append((node, i + 1))
                        work.append((succ, 0))
                        recurse = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index[succ])
                if recurse:
                    continue
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        component.append(w)
                        if w == node:
                            break
                    out.append(sorted(component))

        for qname in sorted(self.functions):
            if qname not in index:
                strongconnect(qname)
        return out

    # -- lookups -------------------------------------------------------------
    def resolve_name(self, module: str, name: str) -> Optional[str]:
        """Resolve a bare name in ``module`` to a function qname."""
        qname = f"{module}.{name}"
        if qname in self.functions:
            return qname
        info = self.modules.get(module)
        if info is not None:
            dotted = info.imports.get(name)
            if dotted is not None and dotted in self.functions:
                return dotted
        return None

    def resolve_class(self, module: str, name: str) -> Optional[str]:
        """Resolve a bare or dotted class name seen in ``module``."""
        qname = f"{module}.{name}"
        if qname in self.classes:
            return qname
        info = self.modules.get(module)
        if info is not None:
            head = name.split(".", 1)[0]
            dotted = info.imports.get(head)
            if dotted is not None:
                candidate = (
                    dotted
                    if "." not in name
                    else dotted + "." + name.split(".", 1)[1]
                )
                if candidate in self.classes:
                    return candidate
        # Unique bare-name match across the package.
        bare = name.rsplit(".", 1)[-1]
        matches = self._classes_by_name.get(bare, [])
        if len(matches) == 1:
            return matches[0]
        return None

    def function_at(self, path: str, lineno: int) -> Optional[FunctionNode]:
        """The innermost function enclosing ``path:lineno``."""
        module = self.module_by_path.get(path)
        if module is None:
            return None
        best: Optional[FunctionNode] = None
        for node in self.functions.values():
            if node.module != module:
                continue
            if not (node.lineno <= lineno <= (node.end_lineno or 0)):
                continue
            if best is None or node.lineno > best.lineno:
                best = node
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CallGraph(modules={len(self.modules)}, "
            f"classes={len(self.classes)}, "
            f"functions={len(self.functions)})"
        )


# -- construction -------------------------------------------------------------

class _Builder:
    def __init__(
        self,
        receiver_hints: Optional[Dict[str, Sequence[str]]] = None,
    ) -> None:
        self.graph = CallGraph()
        self.hints = dict(receiver_hints or {})

    # pass 1: index modules, classes, functions
    def add_module(self, path: str, text: str) -> None:
        try:
            tree = ast.parse(text, filename=path)
        except SyntaxError as exc:
            self.graph.errors[path] = exc
            return
        name = module_name_for(path)
        # Uniquify collisions (two fixture files both named "module").
        base, n = name, 2
        while name in self.graph.modules:
            name = f"{base}_{n}"
            n += 1
        info = ModuleInfo(name, path, text, tree)
        self._collect_imports(info)
        self.graph.modules[name] = info
        self.graph.module_by_path[path] = name
        self._collect_defs(info)

    def _collect_imports(self, info: ModuleInfo) -> None:
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else alias.name
                    info.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    parts = info.name.split(".")
                    parts = parts[: max(len(parts) - node.level, 0)]
                    base = ".".join(parts + ([node.module] if node.module
                                             else []))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    info.imports[local] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )

    def _collect_defs(self, info: ModuleInfo) -> None:
        graph = self.graph

        def register_fn(
            node: ast.AST, scope: str, cls: Optional[str]
        ) -> FunctionNode:
            name = getattr(node, "name", None)
            if name is None:  # lambda
                name = f"<lambda:{getattr(node, 'lineno', 0)}>"
            qname = f"{scope}.{name}"
            fn = FunctionNode(qname, info.name, cls, node, info.path)
            graph.functions[qname] = fn
            return fn

        def walk_scope(
            body: List[ast.stmt], scope: str, cls: Optional[str]
        ) -> None:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    fn = register_fn(stmt, scope, cls)
                    if cls is not None:
                        graph.classes[cls].methods.setdefault(
                            stmt.name, fn.qname
                        )
                    # nested defs live under the function's scope
                    walk_scope(stmt.body, fn.qname, None)
                elif isinstance(stmt, ast.ClassDef):
                    qname = f"{scope}.{stmt.name}"
                    graph.classes[qname] = ClassInfo(
                        qname, info.name, stmt
                    )
                    walk_scope(stmt.body, qname, qname)
                elif isinstance(stmt, (ast.If, ast.Try, ast.With,
                                       ast.For, ast.While)):
                    # defs behind guards (TYPE_CHECKING, try/except import)
                    for sub in ast.iter_child_nodes(stmt):
                        if isinstance(sub, (ast.FunctionDef, ast.ClassDef,
                                            ast.AsyncFunctionDef)):
                            walk_scope([sub], scope, cls)

        walk_scope(info.tree.body, info.name, None)

    # pass 2: resolve bases, then call edges
    def resolve(self) -> CallGraph:
        graph = self.graph
        graph._index()
        for cls in graph.classes.values():
            resolved: List[str] = []
            for base in cls.node.bases:
                name = None
                if isinstance(base, ast.Name):
                    name = base.id
                elif isinstance(base, ast.Attribute):
                    name = chain_of(base)
                if name is None:
                    continue
                target = graph.resolve_class(cls.module, name)
                resolved.append(target if target else name)
            cls.bases = resolved
        graph._index()  # subclass map needs resolved bases
        for qname in sorted(graph.functions):
            node = graph.functions[qname]
            if isinstance(node.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                graph.calls[qname] = _FunctionResolver(
                    self, node
                ).resolve()
        graph._callers = None
        return graph


class _FunctionResolver:
    """Extracts and resolves the call sites of one function."""

    def __init__(self, builder: _Builder, fn: FunctionNode) -> None:
        self.builder = builder
        self.graph = builder.graph
        self.fn = fn
        self.module = self.graph.modules[fn.module]
        self.aliases: Dict[str, str] = {}
        #: local name -> function qname (lambdas / bound-method values)
        self.bound: Dict[str, str] = {}
        #: local name -> class qname (x = Foo())
        self.instances: Dict[str, str] = {}
        self.sites: List[CallSite] = []

    def resolve(self) -> List[CallSite]:
        self._scan_aliases(self.fn.node)
        self._walk(self.fn.node, top=True)
        return self.sites

    # -- alias scan (source order, flow-insensitive) -------------------------
    def _scan_aliases(self, root: ast.AST) -> None:
        for node in self._iter_scope(root):
            if isinstance(node, ast.Assign):
                self._bind_assign(node.targets, node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._bind_assign([node.target], node.value)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                self._bind_loop(node.target, node.iter)
            elif isinstance(node, ast.withitem):
                if node.optional_vars is not None:
                    self._bind_assign(
                        [node.optional_vars], node.context_expr
                    )
            elif isinstance(node, ast.comprehension):
                self._bind_loop(node.target, node.iter)
            elif isinstance(node, ast.NamedExpr):
                # walrus: (x := expr) binds like an assignment
                self._bind_assign([node.target], node.value)

    def _bind_assign(
        self, targets: List[ast.expr], value: ast.expr
    ) -> None:
        # x = lambda ...  /  x = self.method (bound value)
        if isinstance(value, ast.Lambda):
            qname = f"{self.fn.qname}.<lambda:{value.lineno}>"
            if qname not in self.graph.functions:
                self.graph.functions[qname] = FunctionNode(
                    qname, self.fn.module, self.fn.cls, value, self.fn.path
                )
                self.graph.calls[qname] = []
            for t in targets:
                if isinstance(t, ast.Name):
                    self.bound[t.id] = qname
            return
        if isinstance(value, ast.Attribute):
            bound = self._bound_method_qname(value)
            if bound is not None:
                for t in targets:
                    if isinstance(t, ast.Name):
                        self.bound[t.id] = bound
                # fall through: also record the chain alias
        if isinstance(value, ast.Call):
            cls = self._class_of_call(value)
            if cls is not None:
                for t in targets:
                    if isinstance(t, ast.Name):
                        self.instances[t.id] = cls
                return
        chain = chain_of(value, self.aliases)
        for t in targets:
            if isinstance(t, ast.Name):
                if chain is not None:
                    self.aliases[t.id] = chain
                else:
                    self.aliases.pop(t.id, None)
                    self.instances.pop(t.id, None)
            elif isinstance(t, (ast.Tuple, ast.List)) and chain is not None:
                for elt in t.elts:
                    if isinstance(elt, ast.Name):
                        self.aliases[elt.id] = f"{chain}[]"

    def _bind_loop(self, target: ast.expr, iter_expr: ast.expr) -> None:
        # for x in <chain>  /  for i, x in enumerate(<chain>)
        # for a, b in zip(<chain1>, <chain2>)  — positional element binds
        fn = iter_expr.func if isinstance(iter_expr, ast.Call) else None
        name = fn.id if isinstance(fn, ast.Name) else None
        if name == "enumerate" and iter_expr.args:
            if (
                isinstance(target, (ast.Tuple, ast.List))
                and len(target.elts) == 2
            ):
                self._bind_loop(target.elts[1], iter_expr.args[0])
            return
        if name == "zip" and iter_expr.args:
            if isinstance(target, (ast.Tuple, ast.List)):
                for elt, src in zip(target.elts, iter_expr.args):
                    self._bind_loop(elt, src)
            return
        chain = chain_of(iter_expr, self.aliases)
        if chain is None:
            return
        self._bind_element(target, f"{chain}[]")

    def _bind_element(self, target: ast.expr, element: str) -> None:
        """Bind a (possibly nested tuple) loop target to an element chain."""
        if isinstance(target, ast.Name):
            self.aliases[target.id] = element
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                if isinstance(elt, ast.Starred):
                    # *rest collects remaining items: rest[] is an item,
                    # so rest aliases the unpacked element itself
                    self._bind_element(elt.value, element)
                else:
                    self._bind_element(elt, f"{element}[]")

    def _bound_method_qname(self, node: ast.Attribute) -> Optional[str]:
        """``self.method`` (no call) as a bound-method value."""
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and self.fn.cls is not None
        ):
            flat = self.graph.flattened_methods(self.fn.cls)
            target = flat.get(node.attr)
            if target is not None and not target.is_property:
                return target.qname
        return None

    def _class_of_call(self, call: ast.Call) -> Optional[str]:
        name = None
        if isinstance(call.func, ast.Name):
            name = call.func.id
        elif isinstance(call.func, ast.Attribute):
            name = chain_of(call.func)
        if name is None:
            return None
        return self.graph.resolve_class(self.fn.module, name)

    # -- call extraction ------------------------------------------------------
    def _iter_scope(self, root: ast.AST, top: bool = True):
        """Walk ``root`` preorder, in source order, without descending
        into nested def/lambda bodies.  Source order matters: the alias
        scan is flow-insensitive and lets the source-last binding of a
        reused local win, which is right far more often than an
        arbitrary traversal order."""
        stack: List[ast.AST] = [root]
        first = True
        while stack:
            node = stack.pop()
            if not first and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            first = False
            yield node
            stack.extend(reversed(list(ast.iter_child_nodes(node))))

    def _walk(self, root: ast.AST, top: bool = True) -> None:
        call_funcs: Set[int] = set()
        for node in self._iter_scope(root):
            if isinstance(node, ast.Call):
                call_funcs.add(id(node.func))
                self._resolve_call(node)
        # Properties used as values: attribute loads that are not the
        # func of a call but resolve to a property getter.
        for node in self._iter_scope(root):
            if (
                isinstance(node, ast.Attribute)
                and id(node) not in call_funcs
                and isinstance(node.ctx, ast.Load)
            ):
                self._resolve_property(node)

    def _add(
        self,
        attr: str,
        receiver: Optional[str],
        lineno: int,
        targets: List[str],
        kind: str,
    ) -> None:
        uniq: List[str] = []
        for t in targets:
            if t not in uniq:
                uniq.append(t)
        self.sites.append(
            CallSite(self.fn.qname, attr, receiver, lineno, tuple(uniq), kind)
        )

    def _method_targets(
        self, class_qname: str, method: str, subclasses: bool = True
    ) -> List[str]:
        out: List[str] = []
        node = self.graph.flattened_methods(class_qname).get(method)
        if node is not None:
            out.append(node.qname)
        if subclasses:
            for sub in self.graph.all_subclasses(class_qname):
                own = self.graph.classes[sub].methods.get(method)
                if own is not None:
                    out.append(own)
        return out

    def _resolve_call(self, call: ast.Call) -> None:
        fn = call.func
        lineno = getattr(call, "lineno", 0)

        if isinstance(fn, ast.Name):
            name = fn.id
            # bound value / lambda held in a local
            bound = self.bound.get(name)
            if bound is not None:
                self._add(name, None, lineno, [bound], "function")
                return
            # plain function (local, nested, or imported)
            target = self.graph.resolve_name(self.fn.module, name)
            if target is None:
                nested = f"{self.fn.qname}.{name}"
                if nested in self.graph.functions:
                    target = nested
            if target is not None:
                self._add(name, None, lineno, [target], "function")
                return
            # class instantiation -> __init__
            cls = self.graph.resolve_class(self.fn.module, name)
            if cls is not None:
                self._add(
                    name, None, lineno,
                    self._method_targets(cls, "__init__", subclasses=False),
                    "init",
                )
            return

        if not isinstance(fn, ast.Attribute):
            return
        method = fn.attr

        # super().m(...)
        if (
            isinstance(fn.value, ast.Call)
            and isinstance(fn.value.func, ast.Name)
            and fn.value.func.id == "super"
            and self.fn.cls is not None
        ):
            targets: List[str] = []
            cls = self.graph.classes.get(self.fn.cls)
            for base in (cls.bases if cls else []):
                targets.extend(
                    self._method_targets(base, method, subclasses=False)
                )
            self._add(method, "super()", lineno, targets, "super")
            return

        # self.m(...)
        if (
            isinstance(fn.value, ast.Name)
            and fn.value.id == "self"
            and self.fn.cls is not None
        ):
            self._add(
                method, "self", lineno,
                self._method_targets(self.fn.cls, method), "self",
            )
            return

        # instance local: x = Foo(); x.m(...)
        if isinstance(fn.value, ast.Name):
            cls = self.instances.get(fn.value.id)
            if cls is not None:
                self._add(
                    method, f"instance:{cls}", lineno,
                    self._method_targets(cls, method), "instance",
                )
                return

        # ClassName.m(...) / module.func(...) via imports
        direct = chain_of(fn.value)
        if direct is not None and "[]" not in direct:
            cls = self.graph.resolve_class(self.fn.module, direct)
            if cls is not None:
                self._add(
                    method, direct, lineno,
                    self._method_targets(cls, method, subclasses=False),
                    "instance",
                )
                return
            dotted = self.module.imports.get(direct.split(".", 1)[0])
            if dotted is not None:
                candidate = (
                    dotted + "." + direct.split(".", 1)[1] + "." + method
                    if "." in direct
                    else f"{dotted}.{method}"
                )
                if candidate in self.graph.functions:
                    self._add(
                        method, direct, lineno, [candidate], "function"
                    )
                    return

        # receiver chain + hints
        chain = chain_of(fn.value, self.aliases)
        if chain is not None:
            hinted = self._hinted_classes(chain)
            if hinted:
                targets = []
                for cls in hinted:
                    targets.extend(self._method_targets(cls, method))
                self._add(method, chain, lineno, targets, "hint")
                return

        # name-based fallback: every class defining the method
        if method in _GENERIC_METHODS:
            self._add(method, chain, lineno, [], "heuristic")
            return
        candidates = self.graph._method_index.get(method, [])
        self._add(method, chain, lineno, list(candidates), "heuristic")

    def _hinted_classes(self, chain: str) -> List[str]:
        hints = self.builder.hints
        if not hints:
            return []
        last = chain.split(".")[-1]
        names = hints.get(last)
        if names is None and last.endswith("[]"):
            names = hints.get(last[:-2])
        if names is None:
            return []
        out: List[str] = []
        for name in names:
            out.extend(self.graph.classes_named(name))
        return out

    def _resolve_property(self, node: ast.Attribute) -> None:
        attr = node.attr
        classes: List[str] = []
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and self.fn.cls is not None
        ):
            classes = [self.fn.cls]
        else:
            chain = chain_of(node.value, self.aliases)
            if chain is not None:
                classes = self._hinted_classes(chain)
            if not classes and isinstance(node.value, ast.Name):
                cls = self.instances.get(node.value.id)
                if cls is not None:
                    classes = [cls]
        targets: List[str] = []
        for cls in classes:
            candidate = self.graph.flattened_methods(cls).get(attr)
            if candidate is not None and candidate.is_property:
                targets.append(candidate.qname)
        if targets:
            self._add(
                attr, None, getattr(node, "lineno", 0), targets, "property"
            )


def build_call_graph(
    sources: Iterable[Tuple[str, str]],
    receiver_hints: Optional[Dict[str, Sequence[str]]] = None,
) -> CallGraph:
    """Build a :class:`CallGraph` from ``(path, text)`` pairs.

    ``receiver_hints`` maps terminal receiver-chain segments (e.g.
    ``"routers[]"``, ``"telemetry"``) to candidate class bare names,
    narrowing attribute-call resolution where local typing fails.
    Unparsable modules are recorded in ``graph.errors`` and skipped.
    """
    builder = _Builder(receiver_hints)
    for path, text in sources:
        builder.add_module(path, text)
    return builder.resolve()
