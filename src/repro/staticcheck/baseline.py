"""Grandfathered-findings baseline for the code lints.

New rules should be able to land *strict* in CI on day one without
forcing a same-PR cleanup of every pre-existing finding.  The baseline
file records the findings we have consciously accepted; ``apply``
filters them out of a fresh report so only *new* findings fail the
build.

Fingerprints are deliberately line-number-free — ``rule::path::message``
— so routine edits elsewhere in a file do not churn the baseline.  If
two findings in the same file produce the same rule and message they
share a fingerprint; the baseline then covers however many instances it
recorded, and any excess still fails (a count is stored per
fingerprint).

The file format is versioned JSON, sorted for stable diffs:

.. code-block:: json

    {"version": 1,
     "findings": [{"fingerprint": "...", "count": 1,
                   "rule": "...", "location": "...", "message": "..."}]}
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Tuple

from repro.staticcheck.diagnostics import CheckReport, Diagnostic

#: Default committed baseline, relative to the repository root.
DEFAULT_BASELINE = "staticcheck-baseline.json"

_VERSION = 1


def fingerprint(diag: Diagnostic) -> str:
    """Line-number-independent identity of a finding."""
    path = diag.location.rsplit(":", 1)[0] if ":" in diag.location else diag.location
    return f"{diag.rule}::{path}::{diag.message}"


def save(path: str, report: CheckReport) -> int:
    """Write every finding in ``report`` to ``path``; returns the count."""
    counts: Dict[str, int] = {}
    meta: Dict[str, Diagnostic] = {}
    for diag in report.diagnostics:
        fp = fingerprint(diag)
        counts[fp] = counts.get(fp, 0) + 1
        meta.setdefault(fp, diag)
    findings = [
        {
            "fingerprint": fp,
            "count": counts[fp],
            "rule": meta[fp].rule,
            "location": meta[fp].location,
            "message": meta[fp].message,
        }
        for fp in sorted(counts)
    ]
    payload = {"version": _VERSION, "findings": findings}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(report.diagnostics)


def update(path: str, report: CheckReport) -> Tuple[int, List[str]]:
    """Rewrite ``path`` from ``report``, pruning stale fingerprints.

    Returns ``(count, pruned)`` where *count* is the number of findings
    written (as in :func:`save`) and *pruned* lists the fingerprints
    that were present in the old baseline but no longer match any
    current finding.  A missing or malformed old baseline prunes
    nothing — the rewrite is what matters.
    """
    try:
        old = load(path)
    except ValueError:
        old = {}
    count = save(path, report)
    current = {fingerprint(diag) for diag in report.diagnostics}
    pruned = sorted(fp for fp in old if fp not in current)
    return count, pruned


def load(path: str) -> Dict[str, int]:
    """Read a baseline file into ``{fingerprint: allowed_count}``.

    A missing file is an empty baseline; a malformed or wrong-version
    file raises ``ValueError`` so CI fails loudly rather than silently
    accepting everything.
    """
    if not os.path.exists(path):
        return {}
    with open(path, encoding="utf-8") as fh:
        try:
            payload = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ValueError(f"baseline {path!r} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != _VERSION:
        raise ValueError(
            f"baseline {path!r} has unsupported format "
            f"(expected version {_VERSION})"
        )
    out: Dict[str, int] = {}
    for entry in payload.get("findings", []):
        fp = entry.get("fingerprint")
        if isinstance(fp, str):
            out[fp] = out.get(fp, 0) + int(entry.get("count", 1))
    return out


def apply(
    report: CheckReport, baseline: Dict[str, int]
) -> Tuple[CheckReport, int, List[str]]:
    """Filter grandfathered findings out of ``report``.

    Returns ``(fresh_report, matched_count, stale_fingerprints)`` where
    *fresh_report* contains only findings not covered by the baseline,
    *matched_count* is how many findings the baseline absorbed, and
    *stale_fingerprints* lists baseline entries that no longer match
    anything (candidates for ``--update-baseline``).
    """
    remaining = dict(baseline)
    fresh = CheckReport()
    matched = 0
    for diag in report.diagnostics:
        fp = fingerprint(diag)
        if remaining.get(fp, 0) > 0:
            remaining[fp] -= 1
            matched += 1
        else:
            fresh.diagnostics.append(diag)
    stale = sorted(fp for fp, count in remaining.items() if count > 0)
    return fresh, matched, stale


__all__ = ["DEFAULT_BASELINE", "apply", "fingerprint", "load", "save", "update"]
