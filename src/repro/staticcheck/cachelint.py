"""Cache-key soundness and zero-overhead provers on the taint engine.

Three rules, all built on the interprocedural flow summaries of
:mod:`repro.staticcheck.taint`:

``cachekey-unsound`` (ERROR)
    The result cache stores payloads under ``spec.key()``.  ``key()``
    deliberately excludes some :class:`RunSpec` fields — ``kernel``
    always (two kernels are byte-equivalent by the kernellint proof),
    ``faults``/``fault_detour``/``telemetry`` when ``None``.  The cache
    is only sound if no *excluded* field can influence the cached
    payload: a flow from an always-excluded field, or an unguarded flow
    from a when-``None``-excluded field (one that happens even on the
    ``None`` path), means two specs sharing a key can cache different
    results.

``overhead-not-free`` (ERROR)
    The paper's measurement contract: with telemetry and fault
    injection off, the hot path must not touch a collector, injector,
    or probe.  The prover walks the call graph from the simulation
    entry points following only *ungated* edges — an edge is gated when
    every evaluation of the call site sits under a non-``None`` guard
    on a telemetry/fault chain (or carries ``# taint: gated``) — and
    flags any reachable ``*Collector`` / ``*Injector`` / ``*Probe``
    method.

``det-taint`` (WARNING)
    Wall-clock or unseeded-RNG sources flowing into returned results or
    stats/result attribute state from the simulation entry points.
    Complements ``det-wallclock``/``det-random`` (which flag the *call
    sites* inside simulator modules) by tracking the *values* across
    function boundaries; diagnostic-only flows are discharged with
    ``# taint: sanitize(wallclock)``.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.staticcheck.callgraph import (
    CallGraph,
    CallSite,
    FunctionNode,
    build_call_graph,
    chain_of,
    final_attr,
)
from repro.staticcheck.diagnostics import CheckReport, Severity
from repro.staticcheck.taint import (
    TaintAnnotations,
    TaintEngine,
    is_guarded,
    token_field,
    token_root,
)

__all__ = [
    "CacheSink",
    "SpecClass",
    "find_cache_sinks",
    "find_spec_classes",
    "lint_graph",
    "lint_paths",
    "lint_source",
]

#: Classes whose methods count as optional-subsystem overhead.
COMPONENT_RE = re.compile(r"(Collector|Injector|Probe)$")

#: Guard-chain terminal attributes that gate optional subsystems.
GATE_ATTRS = frozenset(
    {
        "telemetry", "faults", "fault_detour", "faulted", "collector",
        "collectors", "injector", "injectors", "probe", "probes",
        "auditor", "auditors", "profiler", "live", "trace",
    }
)


class SpecClass:
    """A cached-spec class: has ``key()`` built on ``asdict`` + ``del``."""

    __slots__ = ("qname", "name", "always_excluded", "when_none_excluded",
                 "key_qname")

    def __init__(
        self,
        qname: str,
        name: str,
        always_excluded: FrozenSet[str],
        when_none_excluded: FrozenSet[str],
        key_qname: str,
    ) -> None:
        self.qname = qname
        self.name = name
        self.always_excluded = always_excluded
        self.when_none_excluded = when_none_excluded
        self.key_qname = key_qname


class CacheSink:
    """One ``store.put(spec.key(), payload)`` site."""

    __slots__ = ("qname", "param", "payload", "lineno")

    def __init__(
        self, qname: str, param: str, payload: ast.expr, lineno: int
    ) -> None:
        self.qname = qname          #: function containing the sink
        self.param = param          #: formal whose ``.key()`` indexes it
        self.payload = payload      #: the cached-value expression
        self.lineno = lineno


# -- spec-class discovery -----------------------------------------------------

def _uses_asdict(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            fn = sub.func
            name = (
                fn.attr if isinstance(fn, ast.Attribute)
                else fn.id if isinstance(fn, ast.Name) else None
            )
            if name == "asdict":
                return True
    return False


def _key_exclusions(
    node: ast.AST,
) -> Tuple[FrozenSet[str], FrozenSet[str]]:
    """(always-excluded, when-None-excluded) fields deleted in ``key()``.

    Recognizes ``del payload["kernel"]``, the loop idiom
    ``for name in (...): if payload[name] is None: del payload[name]``
    and the direct ``if payload["x"] is None: del payload["x"]``.
    """
    always: Set[str] = set()
    when_none: Set[str] = set()
    loop_values: Dict[str, Tuple[str, ...]] = {}

    def key_names(sub: ast.expr) -> Tuple[str, ...]:
        if not isinstance(sub, ast.Subscript):
            return ()
        sl = sub.slice
        if isinstance(sl, ast.Constant) and isinstance(sl.value, str):
            return (sl.value,)
        if isinstance(sl, ast.Name):
            return loop_values.get(sl.id, ())
        return ()

    def none_guard(test: ast.expr) -> bool:
        return (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], (ast.Is, ast.Eq))
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
            and bool(key_names(test.left))
        )

    def scan(stmts: List[ast.stmt], guarded: bool) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.Delete):
                for target in stmt.targets:
                    for name in key_names(target):
                        (when_none if guarded else always).add(name)
            elif isinstance(stmt, ast.If):
                scan(stmt.body, guarded or none_guard(stmt.test))
                scan(stmt.orelse, guarded)
            elif isinstance(stmt, (ast.For, ast.While)):
                if (
                    isinstance(stmt, ast.For)
                    and isinstance(stmt.target, ast.Name)
                    and isinstance(stmt.iter, (ast.Tuple, ast.List))
                    and all(
                        isinstance(e, ast.Constant)
                        and isinstance(e.value, str)
                        for e in stmt.iter.elts
                    )
                ):
                    loop_values[stmt.target.id] = tuple(
                        e.value for e in stmt.iter.elts
                    )
                scan(stmt.body, guarded)
            elif isinstance(stmt, (ast.With, ast.Try)):
                for field in ("body", "orelse", "finalbody"):
                    scan(getattr(stmt, field, []) or [], guarded)

    body = getattr(node, "body", [])
    scan(body if isinstance(body, list) else [], False)
    return frozenset(always), frozenset(when_none)


def find_spec_classes(graph: CallGraph) -> List[SpecClass]:
    """Classes with an ``asdict``-based ``key()`` and field exclusions."""
    out: List[SpecClass] = []
    for qname, cls in sorted(graph.classes.items()):
        key_qname = cls.methods.get("key")
        fn = graph.functions.get(key_qname) if key_qname else None
        if fn is None or not _uses_asdict(fn.node):
            continue
        always, when_none = _key_exclusions(fn.node)
        out.append(
            SpecClass(qname, cls.name, always, when_none, fn.qname)
        )
    return out


# -- cache-sink discovery -----------------------------------------------------

def _iter_scope(root: ast.AST):
    """Preorder walk that does not descend into nested def/lambda."""
    stack: List[ast.AST] = [root]
    first = True
    while stack:
        node = stack.pop()
        if not first and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        first = False
        yield node
        stack.extend(reversed(list(ast.iter_child_nodes(node))))


def _formals(fn: FunctionNode) -> List[str]:
    args = getattr(fn.node, "args", None)
    if args is None:
        return []
    return [
        a.arg
        for a in (
            list(args.posonlyargs) + list(args.args)
            + list(args.kwonlyargs)
        )
    ]


def find_cache_sinks(graph: CallGraph) -> List[CacheSink]:
    """``*.put(<expr with spec.key()>, payload)`` sites, spec a formal.

    A sink whose keyed object is not a formal parameter of the
    enclosing function (e.g. a closure variable) is skipped: the taint
    summaries are parameter-rooted, so such flows are out of scope.
    """
    from repro.staticcheck.taint import _alias_state

    sinks: List[CacheSink] = []
    for qname, fn in sorted(graph.functions.items()):
        if isinstance(fn.node, ast.Lambda):
            continue
        text_ok = False
        for sub in ast.walk(fn.node):
            if isinstance(sub, ast.Attribute) and sub.attr == "put":
                text_ok = True
                break
        if not text_ok:
            continue
        aliases, _ = _alias_state(graph, fn)
        formals = set(_formals(fn))
        for node in _iter_scope(fn.node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "put"
                and len(node.args) >= 2
            ):
                continue
            key_expr, payload = node.args[0], node.args[1]
            for sub in ast.walk(key_expr):
                if not (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "key"
                ):
                    continue
                chain = chain_of(sub.func.value, aliases)
                if chain is None:
                    continue
                root = chain.split(".", 1)[0].replace("[]", "")
                if root in formals:
                    sinks.append(
                        CacheSink(qname, root, payload, node.lineno)
                    )
                break
    return sinks


# -- entry-point discovery ----------------------------------------------------

def _entry_points(graph: CallGraph) -> List[str]:
    """The simulation entry points the reachability rules start from."""
    roots: List[str] = []
    for qname, fn in sorted(graph.functions.items()):
        module_leaf = fn.module.rsplit(".", 1)[-1]
        if fn.name == "simulate_spec" and fn.cls is None:
            roots.append(qname)
        elif (
            fn.name == "run"
            and fn.cls is None
            and module_leaf == "api"
            and "spec" in _formals(fn)
        ):
            roots.append(qname)
        elif (
            fn.name == "simulate"
            and fn.cls is not None
            and (fn.cls_bare or "").endswith("System")
        ):
            roots.append(qname)
    return roots


# -- reporting helpers --------------------------------------------------------

def _location(graph: CallGraph, qname: str, lineno: int) -> str:
    node = graph.functions.get(qname)
    path = node.path if node is not None else "<unknown>"
    return f"{path}:{lineno}"


def _chain_hint(graph: CallGraph, src: str, dst: str) -> str:
    chain = graph.call_chain(src, dst)
    if not chain or len(chain) < 2:
        return ""
    bare = [q.split(".", 1)[-1] for q in chain]
    return "reached via " + " -> ".join(bare)


def _function_at(
    graph: CallGraph, path: str, lineno: int
) -> Optional[str]:
    """Tightest function qname containing ``path:lineno``."""
    best: Optional[str] = None
    best_span = None
    for qname, fn in graph.functions.items():
        if fn.path != path:
            continue
        end = fn.end_lineno or fn.lineno
        if fn.lineno <= lineno <= end:
            span = end - fn.lineno
            if best_span is None or span < best_span:
                best, best_span = qname, span
    return best


# -- the rules ----------------------------------------------------------------

def _check_cache_keys(
    report: CheckReport,
    graph: CallGraph,
    engine: TaintEngine,
    specs: List[SpecClass],
    sinks: List[CacheSink],
) -> None:
    always: Set[str] = set()
    when_none: Set[str] = set()
    for spec in specs:
        always |= set(spec.always_excluded)
        when_none |= set(spec.when_none_excluded)
    if not (always or when_none):
        return
    for sink in sinks:
        probes = engine.taint_of(sink.qname, [sink.payload])
        tokens = probes.get(id(sink.payload), frozenset())
        seen: Set[str] = set()
        for tok in sorted(tokens):
            if token_root(tok) != sink.param:
                continue
            field = token_field(tok)
            if field is None or field in seen:
                continue
            location = _location(graph, sink.qname, sink.lineno)
            origin = engine.origin_of(sink.qname, tok)
            via = (
                f" (value read at {origin[0]}:{origin[1]})"
                if origin else ""
            )
            if field in always:
                seen.add(field)
                report.add(
                    "cachekey-unsound",
                    Severity.ERROR,
                    location,
                    f"'{sink.param}.{field}' is excluded from the "
                    "cache key but its value can flow into the cached "
                    f"payload{via}; two specs differing only in "
                    f"'{field}' would share a key yet cache different "
                    "results",
                    "make the flow key-invariant, or discharge it with "
                    f"'# taint: sanitize({sink.param}.{field})' citing "
                    "the equivalence proof that makes the field "
                    "payload-irrelevant",
                )
            elif field in when_none and not is_guarded(tok):
                seen.add(field)
                report.add(
                    "cachekey-unsound",
                    Severity.ERROR,
                    location,
                    f"'{sink.param}.{field}' is dropped from the cache "
                    f"key when None, but it influences the cached "
                    f"payload without a non-None guard{via}; the "
                    "None-handling path leaks into results shared by "
                    f"every spec with '{field}=None'",
                    f"dominate every read of '{sink.param}.{field}' on "
                    "the payload path with an 'is not None' check, or "
                    "key the field unconditionally",
                )


def _gated(
    engine: TaintEngine,
    annotations: TaintAnnotations,
    fn: FunctionNode,
    site: CallSite,
) -> bool:
    if (fn.path, site.lineno) in annotations.gated:
        return True
    guards = engine.call_guards.get(fn.qname, {})
    facts = guards.get((site.lineno, site.attr))
    if not facts:
        return False
    for chain in facts:
        attr = final_attr(chain)
        if attr is not None and attr.lower() in GATE_ATTRS:
            return True
    return False


def _receiver_gate_like(site: CallSite) -> bool:
    if site.receiver is None:
        return False
    attr = final_attr(site.receiver)
    return attr is not None and attr.lower() in GATE_ATTRS


def _check_overhead(
    report: CheckReport,
    graph: CallGraph,
    engine: TaintEngine,
    annotations: TaintAnnotations,
    roots: List[str],
) -> None:
    engine.summaries()  # ensure call_guards are populated
    for root in roots:
        if root not in graph.functions:
            continue
        parent: Dict[str, Optional[str]] = {root: None}
        queue: List[str] = [root]
        flagged: Set[str] = set()
        while queue:
            qname = queue.pop(0)
            fn = graph.functions.get(qname)
            if fn is None:
                continue
            for site in graph.calls.get(qname, []):
                if _gated(engine, annotations, fn, site):
                    continue
                for target in site.targets:
                    tnode = graph.functions.get(target)
                    if tnode is None:
                        continue
                    owner = tnode.cls_bare or ""
                    if COMPONENT_RE.search(owner):
                        if site.kind == "heuristic" and \
                                not _receiver_gate_like(site):
                            continue
                        if owner in flagged:
                            continue
                        flagged.add(owner)
                        root_name = root.split(".", 1)[-1]
                        hint = (
                            "gate the call on the subsystem being "
                            "enabled (a non-None check on a "
                            "telemetry/faults chain) or annotate the "
                            "call line '# taint: gated' with the "
                            "dominating guard"
                        )
                        chain = _chain_hint(graph, root, qname)
                        if chain:
                            hint += "; " + chain
                        report.add(
                            "overhead-not-free",
                            Severity.ERROR,
                            _location(graph, qname, site.lineno),
                            f"'{root_name}' can reach "
                            f"{owner}.{tnode.name} with telemetry and "
                            "fault injection off — the measurement "
                            "path is not overhead-free",
                            hint,
                        )
                        continue
                    if target not in parent:
                        parent[target] = qname
                        queue.append(target)


_RESULT_OWNER_RE = re.compile(r"(Stats|Result|Record)$")
_RESULT_LABELS = frozenset(
    {"stats", "result", "results", "record", "extras"}
)


def _check_determinism(
    report: CheckReport,
    graph: CallGraph,
    engine: TaintEngine,
    roots: List[str],
) -> None:
    summaries = engine.summaries()
    for root in roots:
        summary = summaries.get(root)
        if summary is None:
            continue
        root_name = root.split(".", 1)[-1]
        seen: Set[Tuple[str, str]] = set()

        def flag(tok: str, what: str) -> None:
            kind = tok.split(":", 1)[1].rstrip("!")
            if (kind, what) in seen:
                return
            seen.add((kind, what))
            origin = engine.origin_of(root, tok)
            if origin is not None:
                location = f"{origin[0]}:{origin[1]}"
                holder = _function_at(graph, origin[0], origin[1])
            else:
                fn = graph.functions.get(root)
                location = f"{fn.path}:{fn.lineno}" if fn else ""
                holder = None
            hint = (
                "seed it from the spec RNG, or mark the assignment "
                f"'# taint: sanitize({kind})' if the value is "
                "diagnostic-only"
            )
            if holder is not None and holder != root:
                chain = _chain_hint(graph, root, holder)
                if chain:
                    hint += "; " + chain
            report.add(
                "det-taint",
                Severity.WARNING,
                location,
                f"'{root_name}' {what} influenced by src:{kind} — "
                "byte-identical reruns are not guaranteed",
                hint,
            )

        for tok in sorted(summary.ret):
            if tok.startswith("src:"):
                flag(tok, "returns a value")
        for (owner, attr), toks in sorted(summary.writes.items()):
            if not (
                _RESULT_OWNER_RE.search(owner)
                or owner.lower() in _RESULT_LABELS
            ):
                continue
            for tok in sorted(toks):
                if tok.startswith("src:"):
                    flag(tok, f"writes '{owner}.{attr}'")


# -- entry points -------------------------------------------------------------

def lint_graph(graph: CallGraph) -> CheckReport:
    """Run the cache/overhead/determinism provers over a built graph."""
    report = CheckReport()
    specs = find_spec_classes(graph)
    sinks = find_cache_sinks(graph)
    roots = _entry_points(graph)
    if not sinks and not roots:
        return report
    annotations = TaintAnnotations.collect(graph)
    scope = set(
        graph.reachable(roots + [s.qname for s in sinks])
    )
    engine = TaintEngine(graph, annotations, only=scope)
    if specs and sinks:
        _check_cache_keys(report, graph, engine, specs, sinks)
    if roots:
        _check_overhead(report, graph, engine, annotations, roots)
        _check_determinism(report, graph, engine, roots)
    return report


def lint_source(
    text: str, path: str = "<string>",
    graph: Optional[CallGraph] = None,
) -> CheckReport:
    """Lint one module (with an optional pre-built repo-wide graph)."""
    if graph is None:
        from repro.staticcheck.kernellint import RECEIVER_HINTS

        graph = build_call_graph([(path, text)], RECEIVER_HINTS)
        if graph.errors.get(path) is not None:
            return CheckReport()
    return lint_graph(graph)


def lint_paths(paths: Iterable[str]) -> CheckReport:
    """Build one graph over every ``.py`` file and run the provers."""
    from repro.staticcheck.detlint import iter_python_files
    from repro.staticcheck.kernellint import RECEIVER_HINTS

    sources: List[Tuple[str, str]] = []
    for path in iter_python_files(paths):
        with open(path, encoding="utf-8") as fh:
            sources.append((path, fh.read()))
    graph = build_call_graph(sources, RECEIVER_HINTS)
    return lint_graph(graph)
