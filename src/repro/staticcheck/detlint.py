"""AST-based determinism lint for simulator code.

A cycle-accurate simulator must be bit-for-bit reproducible: the parallel
sweep executor promises record-for-record identical output regardless of
worker count, and the content-addressed result store assumes a spec fully
determines its result.  Four code patterns quietly break that promise:

``det-random``
    Module-level :mod:`random` (or ``numpy.random``) calls draw from the
    shared global RNG, whose state depends on import order and on every
    other caller in the process.  Seeded ``random.Random(seed)``
    instances are the sanctioned alternative and are not flagged.
``det-wallclock``
    ``time.time()`` / ``perf_counter()`` / ``datetime.now()`` readings
    differ per host and per run; inside cycle logic they desynchronize
    results.  Host-side profiling is legitimate — mark those lines with
    ``# det: allow(det-wallclock)``.
``det-set-iter``
    Iterating an unordered ``set`` hands arbitration decisions to hash
    order (randomized per process for strings).  Iterate ``sorted(...)``
    or keep an ordered container instead.
``det-float-cycle``
    Accumulating float literals into cycle counters drifts across
    platforms once values leave the exact-integer range; cycle
    arithmetic must stay integral.

Findings can be suppressed per line with a trailing ``# det: allow``
comment, optionally naming the rule: ``# det: allow(det-wallclock)``.
"""

from __future__ import annotations

import ast
import dataclasses
import os
import re
from typing import Dict, Iterable, List, Optional, Sequence

from repro.staticcheck.callgraph import CallGraph, build_call_graph
from repro.staticcheck.diagnostics import CheckReport, Severity

#: random-module functions that use the hidden global RNG.
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gauss",
        "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
        "randbytes", "randint", "random", "randrange", "sample", "seed",
        "shuffle", "triangular", "uniform", "vonmisesvariate",
        "weibullvariate",
    }
)

#: (module, attribute) pairs that read the wall clock.
_WALLCLOCK_FNS = frozenset(
    {
        ("time", "time"), ("time", "time_ns"),
        ("time", "perf_counter"), ("time", "perf_counter_ns"),
        ("time", "monotonic"), ("time", "monotonic_ns"),
        ("time", "process_time"), ("time", "process_time_ns"),
        ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
        ("date", "today"),
    }
)

#: Names whose arithmetic must stay integral.
_CYCLE_NAME_RE = re.compile(r"(?:^|_)(cycle|cycles|tick|ticks|now)(?:_|$)")

_ALLOW_RE = re.compile(r"#\s*det:\s*allow(?:\(([a-z0-9_,\- ]+)\))?")


def _suppressed(line: str, rule: str) -> bool:
    m = _ALLOW_RE.search(line)
    if m is None:
        return False
    named = m.group(1)
    if named is None:
        return True
    return rule in {tok.strip() for tok in named.split(",")}


def _attr_chain(node: ast.AST) -> Optional[str]:
    """Dotted name of an attribute/name chain, or None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        fn = node.func
        return isinstance(fn, ast.Name) and fn.id in ("set", "frozenset")
    return False


def _is_set_annotation(node: Optional[ast.AST]) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Name):
        return node.id in ("set", "frozenset", "Set", "FrozenSet")
    if isinstance(node, ast.Subscript):
        return _is_set_annotation(node.value)
    if isinstance(node, ast.Attribute):
        return node.attr in ("Set", "FrozenSet")
    return False


class _Scope:
    """Tracks which local names are (only ever) bound to sets."""

    def __init__(self) -> None:
        self.set_names: Dict[str, int] = {}       # name -> binding line
        self.nonset_names: set = set()

    def bind(self, name: str, line: int, is_set: bool) -> None:
        if is_set and name not in self.nonset_names:
            self.set_names.setdefault(name, line)
        else:
            self.nonset_names.add(name)
            self.set_names.pop(name, None)

    def is_set(self, name: str) -> bool:
        return name in self.set_names


class _DetLinter(ast.NodeVisitor):
    def __init__(
        self, path: str, lines: Sequence[str], report: CheckReport
    ) -> None:
        self.path = path
        self.lines = lines
        self.report = report
        self.scopes: List[_Scope] = [_Scope()]
        self._stmt_lines: List[int] = []

    def visit(self, node: ast.AST) -> None:
        # Track the first line of the enclosing statement so that a
        # suppression trailing it also covers nodes on continuation
        # lines of a multi-line expression.
        if isinstance(node, ast.stmt):
            self._stmt_lines.append(node.lineno)
            try:
                super().visit(node)
            finally:
                self._stmt_lines.pop()
        else:
            super().visit(node)

    # -- helpers -------------------------------------------------------------
    def _line(self, line_no: int) -> str:
        if 0 < line_no <= len(self.lines):
            return self.lines[line_no - 1]
        return ""

    def _emit(self, rule: str, node: ast.AST, message: str, hint: str) -> None:
        line_no = getattr(node, "lineno", 0)
        if _suppressed(self._line(line_no), rule):
            return
        if self._stmt_lines and _suppressed(
            self._line(self._stmt_lines[-1]), rule
        ):
            return
        self.report.add(
            rule,
            Severity.WARNING,
            f"{self.path}:{line_no}",
            message,
            hint,
        )

    def _name_is_set(self, name: str) -> bool:
        return any(scope.is_set(name) for scope in reversed(self.scopes))

    # -- scope handling ------------------------------------------------------
    def _visit_scoped(self, node: ast.AST) -> None:
        self.scopes.append(_Scope())
        self.generic_visit(node)
        self.scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scoped(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scoped(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._visit_scoped(node)

    # -- det-random ----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        if chain is not None:
            self._check_random(chain, node)
            self._check_wallclock(chain, node)
        self.generic_visit(node)

    def _check_random(self, chain: str, node: ast.Call) -> None:
        parts = chain.split(".")
        if (
            len(parts) == 2
            and parts[0] == "random"
            and parts[1] in _GLOBAL_RANDOM_FNS
        ):
            self._emit(
                "det-random",
                node,
                f"call to global-RNG function {chain}()",
                "use a seeded random.Random(seed) instance",
            )
        elif (
            len(parts) >= 3
            and parts[0] in ("np", "numpy")
            and parts[1] == "random"
        ):
            self._emit(
                "det-random",
                node,
                f"call to numpy global-RNG function {chain}()",
                "use numpy.random.Generator seeded per run",
            )

    def _check_wallclock(self, chain: str, node: ast.Call) -> None:
        parts = chain.split(".")
        if len(parts) >= 2 and (parts[-2], parts[-1]) in _WALLCLOCK_FNS:
            self._emit(
                "det-wallclock",
                node,
                f"wall-clock read {chain}() in simulator code",
                "derive timing from the cycle counter; host-side "
                "profiling may be annotated with '# det: allow'",
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            flagged = sorted(
                a.name for a in node.names if a.name in _GLOBAL_RANDOM_FNS
            )
            if flagged:
                self._emit(
                    "det-random",
                    node,
                    "imports global-RNG function(s) "
                    f"{', '.join(flagged)} from random",
                    "use a seeded random.Random(seed) instance",
                )
        if node.module in ("time", "datetime"):
            flagged = sorted(
                a.name
                for a in node.names
                if (node.module, a.name) in _WALLCLOCK_FNS
                or (a.name, a.name) in _WALLCLOCK_FNS
            )
            if flagged:
                self._emit(
                    "det-wallclock",
                    node,
                    f"imports wall-clock primitive(s) {', '.join(flagged)} "
                    f"from {node.module}",
                    "derive timing from the cycle counter",
                )
        self.generic_visit(node)

    # -- det-set-iter ----------------------------------------------------------
    def _check_iter(self, iter_node: ast.AST) -> None:
        flagged = _is_set_expr(iter_node) or (
            isinstance(iter_node, ast.Name)
            and self._name_is_set(iter_node.id)
        )
        if flagged:
            self._emit(
                "det-set-iter",
                iter_node,
                "iteration over an unordered set",
                "wrap in sorted(...) or keep an ordered container",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension_generators(self, generators) -> None:
        for gen in generators:
            self._check_iter(gen.iter)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    # -- name binding for set inference --------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        is_set = _is_set_expr(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.scopes[-1].bind(target.id, node.lineno, is_set)
        self._check_float_assign(node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            is_set = _is_set_annotation(node.annotation) or (
                node.value is not None and _is_set_expr(node.value)
            )
            self.scopes[-1].bind(node.target.id, node.lineno, is_set)
        self.generic_visit(node)

    # -- det-float-cycle -------------------------------------------------------
    @staticmethod
    def _target_name(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return None

    @staticmethod
    def _has_float_literal(node: ast.AST) -> bool:
        return any(
            isinstance(sub, ast.Constant) and isinstance(sub.value, float)
            for sub in ast.walk(node)
        )

    def _flag_float_cycle(self, node: ast.AST, name: str) -> None:
        self._emit(
            "det-float-cycle",
            node,
            f"float literal folded into cycle counter {name!r}",
            "keep cycle arithmetic integral (use // or int rates)",
        )

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        name = self._target_name(node.target)
        if (
            name is not None
            and _CYCLE_NAME_RE.search(name)
            and self._has_float_literal(node.value)
        ):
            self._flag_float_cycle(node, name)
        self.generic_visit(node)

    def _check_float_assign(self, node: ast.Assign) -> None:
        if not isinstance(node.value, ast.BinOp):
            return
        if not self._has_float_literal(node.value):
            return
        for target in node.targets:
            name = self._target_name(target)
            if name is not None and _CYCLE_NAME_RE.search(name):
                self._flag_float_cycle(node, name)


#: Rules whose hints gain a caller chain when a call graph is supplied.
_CHAIN_RULES = frozenset({"det-random", "det-wallclock"})

#: Bound on how far up the caller chain the hint walks.
_CHAIN_DEPTH = 6


def _caller_chain(graph: CallGraph, path: str, lineno: int) -> List[str]:
    """Caller chain ending at the function enclosing ``path:lineno``.

    Walks upward from the offending function, at each step taking the
    lexicographically-smallest unvisited caller so the chain is
    deterministic, bounded at :data:`_CHAIN_DEPTH` hops.
    """
    fn = graph.function_at(path, lineno)
    if fn is None:
        return []
    chain = [fn.qname]
    seen = {fn.qname}
    while len(chain) <= _CHAIN_DEPTH:
        callers = sorted(
            caller
            for caller, _site in graph.callers_of(chain[0])
            if caller not in seen
        )
        if not callers:
            break
        chain.insert(0, callers[0])
        seen.add(callers[0])
    return chain


def _augment_chain_hints(
    report: CheckReport, graph: CallGraph, path: str
) -> None:
    """Append ``reached via a -> b`` call chains to nondeterminism hints.

    A ``random.random()`` two helpers below a sweep entry point is easy
    to dismiss as "not my code path"; the chain shows exactly how the
    simulator reaches it.  Hints are excluded from baseline
    fingerprints, so this never churns accepted baselines.
    """
    for i, diag in enumerate(report.diagnostics):
        if diag.rule not in _CHAIN_RULES:
            continue
        try:
            lineno = int(diag.location.rsplit(":", 1)[1])
        except (IndexError, ValueError):
            continue
        chain = _caller_chain(graph, path, lineno)
        if len(chain) < 2:
            continue
        note = "reached via " + " -> ".join(chain)
        hint = f"{diag.hint} ({note})" if diag.hint else note
        report.diagnostics[i] = dataclasses.replace(diag, hint=hint)


def lint_source(
    text: str, path: str = "<string>", graph: Optional[CallGraph] = None
) -> CheckReport:
    """Lint one module's source text; returns its findings.

    When a :class:`CallGraph` covering ``path`` is supplied, det-random
    and det-wallclock hints are augmented with the caller chain that
    reaches the offending function.
    """
    report = CheckReport()
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError as exc:
        report.add(
            "det-random",
            Severity.ERROR,
            f"{path}:{exc.lineno or 0}",
            f"cannot parse module: {exc.msg}",
            "fix the syntax error first",
        )
        return report
    _DetLinter(path, text.splitlines(), report).visit(tree)
    if graph is not None and report.diagnostics:
        _augment_chain_hints(report, graph, path)
    return report


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if d != "__pycache__"
                )
                out.extend(
                    os.path.join(root, f)
                    for f in sorted(files)
                    if f.endswith(".py")
                )
        elif path.endswith(".py"):
            out.append(path)
    return sorted(out)


def lint_paths(paths: Iterable[str]) -> CheckReport:
    """Lint every ``.py`` file under the given files/directories."""
    sources = []
    for path in iter_python_files(paths):
        with open(path, encoding="utf-8") as fh:
            sources.append((path, fh.read()))
    graph = build_call_graph(sources)
    report = CheckReport()
    for path, text in sources:
        report.extend(lint_source(text, path, graph=graph))
    return report
