"""The paper's contribution: Accelerated Reply Injection (ARI).

ARI removes the GPGPU reply-injection bottleneck from both sides:

* **supply** (Sec. 4.1) — wide MC→NI datapath and a split NI injection
  queue structure with one narrow link per router-injection VC
  (:class:`repro.noc.ni.SplitNI`);
* **consumption** (Sec. 4.2) — crossbar speedup for the injection port of
  MC-routers, sized by Eqs. (1)/(2) (:mod:`repro.core.speedup`);
* **prioritization** (Sec. 5) — multi-level priority that drains injected
  packets out of the hot region around MCs.

:mod:`repro.core.schemes` packages these knobs into the named schemes the
paper evaluates (XY-Baseline, XY-ARI, Ada-Baseline, Ada-MultiPort, Ada-ARI,
and the Fig. 10 ablations).
"""

from repro.core.ari import ARIConfig
from repro.core.schemes import SCHEMES, Scheme, scheme, scheme_names
from repro.core.speedup import (
    choose_speedup,
    estimate_ideal_injection_rate,
    required_speedup,
    speedup_upper_bound,
)

__all__ = [
    "ARIConfig",
    "Scheme",
    "SCHEMES",
    "scheme",
    "scheme_names",
    "required_speedup",
    "speedup_upper_bound",
    "choose_speedup",
    "estimate_ideal_injection_rate",
]
