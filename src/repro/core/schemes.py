"""Named evaluation schemes (Sec. 6.2 and Fig. 10).

Each :class:`Scheme` fully determines both networks' configuration for a
full-system run:

==============  ========  ==========================================
name            routing   injection path at MC nodes (reply network)
==============  ========  ==========================================
xy-baseline     XY        enhanced NI (wide W links), speedup 1
xy-ari          XY        full ARI
ada-baseline    adaptive  enhanced NI, speedup 1
ada-multiport   adaptive  MultiPort router [Bakhoda MICRO'10]
ada-ari         adaptive  full ARI
acc-supply      adaptive  split NI only (Fig. 10 ablation)
acc-consume     adaptive  speedup only (Fig. 10 ablation)
acc-both        adaptive  split NI + speedup, no priority (Fig. 10)
==============  ========  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.core.ari import ARIConfig
from repro.noc.ni import NIKind


@dataclass(frozen=True)
class Scheme:
    name: str
    routing: str = "xy"                       # applies to both networks
    ari: ARIConfig = field(default_factory=ARIConfig.off)
    num_injection_ports: int = 1              # >1 = MultiPort router
    # Link width multipliers vs. the base 128-bit links (Fig. 4 sweeps).
    request_width_mult: int = 1
    reply_width_mult: int = 1
    # Reply-side fabric: "mesh" (default) or "da2mesh" (Fig. 16 overlay).
    reply_overlay: str = "mesh"
    # Apply the ARI injection structure to the *request* network's CC nodes
    # too (an ablation; the paper argues the bottleneck is reply-side only).
    accelerate_request: bool = False
    # Force a specific NI kind (used for the GPGPU-Sim narrow-link default
    # that the paper's *enhanced* baseline fixes, Sec. 4.1 / Fig. 7a).
    force_ni_kind: Optional[NIKind] = None

    @property
    def ni_kind(self) -> NIKind:
        if self.force_ni_kind is not None:
            return self.force_ni_kind
        if self.num_injection_ports > 1:
            return NIKind.MULTIPORT
        return self.ari.ni_kind

    def with_priority_levels(self, levels: int) -> "Scheme":
        return replace(self, ari=replace(self.ari, priority_levels=levels))

    def with_speedup(self, speedup: int) -> "Scheme":
        return replace(self, ari=replace(self.ari, injection_speedup=speedup))

    def with_split_queues(self, count: int) -> "Scheme":
        return replace(self, ari=replace(self.ari, num_split_queues=count))

    def with_starvation_threshold(self, threshold: int) -> "Scheme":
        return replace(
            self, ari=replace(self.ari, starvation_threshold=threshold)
        )


SCHEMES: Dict[str, Scheme] = {
    s.name: s
    for s in [
        Scheme("xy-baseline", routing="xy", ari=ARIConfig.off()),
        Scheme("xy-ari", routing="xy", ari=ARIConfig.full()),
        Scheme("ada-baseline", routing="adaptive", ari=ARIConfig.off()),
        Scheme(
            "ada-multiport",
            routing="adaptive",
            ari=ARIConfig.off(),
            num_injection_ports=2,
        ),
        Scheme("ada-ari", routing="adaptive", ari=ARIConfig.full()),
        # Fig. 10 ablations (all adaptive, as in the paper).
        Scheme("acc-supply", routing="adaptive", ari=ARIConfig.supply_only()),
        Scheme("acc-consume", routing="adaptive", ari=ARIConfig.consume_only()),
        Scheme("acc-both", routing="adaptive", ari=ARIConfig.both_no_priority()),
        # Fig. 4 link-width sweeps on the XY baseline.
        Scheme("xy-baseline-256req", routing="xy", request_width_mult=2),
        Scheme("xy-baseline-256rep", routing="xy", reply_width_mult=2),
        # Ablation: ARI applied to BOTH networks' injectors.  The request
        # network's injected packets are mostly single-flit reads, so the
        # supply/consumption acceleration has almost nothing to accelerate.
        Scheme(
            "ada-ari-both",
            routing="adaptive",
            ari=ARIConfig.full(),
            accelerate_request=True,
        ),
        # GPGPU-Sim's unmodified default: narrow MC->NI link.  The paper's
        # evaluation replaces this with the enhanced baseline "to avoid
        # giving unfair advantage" to ARI (Sec. 4.1).
        Scheme(
            "xy-naive-baseline",
            routing="xy",
            force_ni_kind=NIKind.BASELINE_NARROW,
        ),
        # Fig. 16: DA2mesh reply overlay, with and without ARI on top.
        Scheme("da2mesh", routing="xy", reply_overlay="da2mesh"),
        Scheme(
            "da2mesh-ari",
            routing="xy",
            ari=ARIConfig.full(),
            reply_overlay="da2mesh",
        ),
    ]
}


def scheme(name: str) -> Scheme:
    try:
        return SCHEMES[name]
    except KeyError:
        raise KeyError(
            f"unknown scheme {name!r}; available: {sorted(SCHEMES)}"
        ) from None


def scheme_names() -> List[str]:
    return sorted(SCHEMES)
