"""ARIConfig — the knobs of Accelerated Reply Injection.

This is the paper's contribution expressed as configuration: which NI
microarchitecture feeds the reply injection points (supply, Sec. 4.1), how
many crossbar switch ports the MC-router injection port gets (consumption,
Sec. 4.2), and how the injected packets are prioritized in the network
(Sec. 5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.noc.ni import NIKind


@dataclass(frozen=True)
class ARIConfig:
    """ARI feature selection.

    The full ARI of the paper is ``ARIConfig(supply=True, consume=True,
    priority_levels=2)``; the Fig. 10 ablations toggle the pieces.
    """

    supply: bool = True            # split NI queues + wide links
    consume: bool = True           # injection-port crossbar speedup
    priority_levels: int = 2       # 1 = no prioritization; paper uses 2
    num_split_queues: int = 4      # one per injection VC by default
    injection_speedup: int = 4     # Sec. 4.2 main-evaluation value
    starvation_threshold: int = 1000

    def __post_init__(self) -> None:
        if self.priority_levels < 1:
            raise ValueError("priority_levels must be >= 1")
        if self.num_split_queues < 1:
            raise ValueError("num_split_queues must be >= 1")
        if self.injection_speedup < 1:
            raise ValueError("injection_speedup must be >= 1")

    @property
    def ni_kind(self) -> NIKind:
        return NIKind.SPLIT if self.supply else NIKind.ENHANCED

    @property
    def effective_speedup(self) -> int:
        return self.injection_speedup if self.consume else 1

    @property
    def priority_enabled(self) -> bool:
        return self.priority_levels > 1

    @staticmethod
    def full(priority_levels: int = 2, injection_speedup: int = 4) -> "ARIConfig":
        return ARIConfig(
            supply=True,
            consume=True,
            priority_levels=priority_levels,
            injection_speedup=injection_speedup,
        )

    @staticmethod
    def off() -> "ARIConfig":
        return ARIConfig(supply=False, consume=False, priority_levels=1)

    @staticmethod
    def supply_only() -> "ARIConfig":
        return ARIConfig(supply=True, consume=False, priority_levels=1)

    @staticmethod
    def consume_only() -> "ARIConfig":
        return ARIConfig(supply=False, consume=True, priority_levels=1)

    @staticmethod
    def both_no_priority() -> "ARIConfig":
        return ARIConfig(supply=True, consume=True, priority_levels=1)
