"""Sizing the injection-port crossbar speedup — Eqs. (1) and (2).

Equation (1): to consume what the (accelerated) supply side delivers, the
speedup must cover the ideal packet injection rate times the average packet
length in flits::

    S >= InjRate_pkt * N_flits_per_pkt                       (1)

where the ideal injection rate is what an MC would achieve if the reply
network had unlimited bandwidth (measured with
:class:`repro.noc.network.PerfectNetwork`).

Equation (2): there is no point exceeding the number of non-local output
ports (at most ``N_out`` flits can leave the router per cycle) or the
number of injection VCs (at most ``N_VC`` injected flits can be ready)::

    S <= min(N_out, N_VC)                                    (2)

``choose_speedup`` applies the paper's guideline: the minimal integer
satisfying (1), clamped to the bound of (2).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence

from repro.noc.flit import PacketType, packet_size_for
from repro.noc.network import NetworkConfig, PerfectNetwork


def required_speedup(inj_rate_pkt: float, mean_flits_per_pkt: float) -> int:
    """Minimal integer S satisfying Eq. (1)."""
    if inj_rate_pkt < 0 or mean_flits_per_pkt <= 0:
        raise ValueError("rates must be non-negative / positive")
    return max(1, math.ceil(inj_rate_pkt * mean_flits_per_pkt))


def speedup_upper_bound(num_nonlocal_outputs: int, num_vcs: int) -> int:
    """The Eq. (2) bound."""
    if num_nonlocal_outputs < 1 or num_vcs < 1:
        raise ValueError("port counts must be >= 1")
    return min(num_nonlocal_outputs, num_vcs)


def choose_speedup(
    inj_rate_pkt: float,
    mean_flits_per_pkt: float,
    num_nonlocal_outputs: int = 4,
    num_vcs: int = 4,
) -> int:
    """Paper guideline: S_min from (1) if it satisfies (2), else the (2) bound."""
    s_min = required_speedup(inj_rate_pkt, mean_flits_per_pkt)
    bound = speedup_upper_bound(num_nonlocal_outputs, num_vcs)
    return min(s_min, bound)


def mean_flits_per_packet(
    type_mix: Dict[PacketType, float],
    line_bytes: int = 128,
    flit_bytes: int = 16,
) -> float:
    """Average reply-packet size given a packet-count mix (Eq. 1's N̄)."""
    total = sum(type_mix.values())
    if total <= 0:
        raise ValueError("empty packet mix")
    acc = 0.0
    for ptype, weight in type_mix.items():
        acc += weight * packet_size_for(ptype, line_bytes, flit_bytes)
    return acc / total


def estimate_ideal_injection_rate(
    config: NetworkConfig,
    offer_schedule,
    cycles: int,
    mc_nodes: Sequence[int],
) -> Dict[int, float]:
    """Measure per-MC ideal packet injection rates on a perfect network.

    ``offer_schedule(network, cycle)`` is called every cycle and should
    offer that cycle's reply packets (it sees an always-accepting network,
    so the measured rate is the raw supply rate of the MCs).
    """
    net = PerfectNetwork(config)
    for cycle in range(cycles):
        offer_schedule(net, cycle)
        net.step()
    return {mc: net.injection_rate(mc) for mc in mc_nodes}


def peak_injection_rate(
    per_interval_packets: Iterable[int],
    interval: int = 100,
    percentile: float = 0.95,
) -> float:
    """The 95th-percentile per-100-cycle packet injection rate (Sec. 4.2).

    The paper observes that a speedup of 4 covers 95% of the peak rates
    computed over 100-cycle intervals under perfect consumption.
    """
    counts = sorted(per_interval_packets)
    if not counts:
        return 0.0
    if not (0.0 < percentile <= 1.0):
        raise ValueError("percentile in (0, 1]")
    idx = min(len(counts) - 1, max(0, math.ceil(percentile * len(counts)) - 1))
    return counts[idx] / interval
