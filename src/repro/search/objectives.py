"""Objectives — what a search maximizes, as first-class values.

Every objective maps one *candidate* (a RunSpec produced by the search
space) to the list of simulation specs needed to judge it
(:meth:`Objective.specs_for`) and reduces those specs' results to one
scalar score (:meth:`Objective.score`).  Scores are always
**higher-is-better** internally — minimization objectives negate — so
the optimizer, strategies, trajectory and reports never branch on
direction.

Three families, all parseable from the ``--objective`` CLI string:

``[max:|min:]METRIC``
    Single metric of the plain run (``ipc``, ``min:reply_latency``...).
    Metrics resolve against :class:`~repro.gpu.system.SimulationResult`
    fields first, then its ``extras`` dict.

``weighted:M=W[,M=W...]``
    Signed weighted sum, e.g. ``weighted:ipc=1,reply_latency=-0.01``
    (negative weights penalize).

``resilience[:[min:]METRIC][@K[,K...]]``
    Scores the candidate under seeded fault campaigns: one extra run per
    dead-link count ``K`` (same links die for every candidate), metric
    averaged over the faulted runs.  Default
    ``resilience:delivered_fraction@1,2`` — "best config under k dead
    links" as an optimization target.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

from repro.experiments.runner import RunSpec


class ObjectiveError(ValueError):
    """Malformed ``--objective`` text or a metric a result doesn't carry."""


def metric_value(result, metric: str) -> float:
    """Resolve a metric name against a result's fields, then extras."""
    if hasattr(result, metric):
        return float(getattr(result, metric))
    extras = getattr(result, "extras", None) or {}
    if metric in extras:
        return float(extras[metric])
    raise ObjectiveError(
        f"result carries no metric {metric!r} "
        "(not a SimulationResult field and not in extras)"
    )


class Objective:
    """Base contract: candidate spec -> evaluation specs -> scalar score."""

    #: Canonical text form; part of the search fingerprint, so a resumed
    #: ledger can refuse a run whose objective changed.
    name = "?"

    def specs_for(self, spec: RunSpec) -> List[RunSpec]:
        """The simulation specs needed to judge one candidate."""
        return [spec]

    def score(self, results: Sequence) -> float:
        """Reduce the candidate's results (same order) to one scalar.

        Higher is always better; minimization objectives negate here.
        """
        raise NotImplementedError

    def metrics(self, results: Sequence) -> Dict[str, float]:
        """Raw metric values recorded on the trial (for reports/ledger)."""
        return {}


@dataclass(frozen=True)
class MetricObjective(Objective):
    """Maximize (or minimize) one metric of the plain run."""

    metric: str = "ipc"
    maximize: bool = True

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"{'max' if self.maximize else 'min'}:{self.metric}"

    def score(self, results: Sequence) -> float:
        value = metric_value(results[0], self.metric)
        return value if self.maximize else -value

    def metrics(self, results: Sequence) -> Dict[str, float]:
        return {self.metric: metric_value(results[0], self.metric)}


@dataclass(frozen=True)
class WeightedObjective(Objective):
    """Signed weighted sum of several metrics of the plain run."""

    terms: Tuple[Tuple[str, float], ...] = (("ipc", 1.0),)

    @property
    def name(self) -> str:  # type: ignore[override]
        body = ",".join(f"{m}={w:g}" for m, w in self.terms)
        return f"weighted:{body}"

    def score(self, results: Sequence) -> float:
        return sum(
            weight * metric_value(results[0], metric)
            for metric, weight in self.terms
        )

    def metrics(self, results: Sequence) -> Dict[str, float]:
        return {
            metric: metric_value(results[0], metric)
            for metric, _ in self.terms
        }


@dataclass(frozen=True)
class ResilienceObjective(Objective):
    """Score a candidate under seeded link-fault campaigns.

    One evaluation spec per dead-link count; every candidate loses the
    *same* links (the fault seed is fixed), so scores are comparable.
    The metric is averaged over the faulted runs.
    """

    metric: str = "delivered_fraction"
    maximize: bool = True
    dead_links: Tuple[int, ...] = (1, 2)
    fault_seed: int = 7
    detour: bool = True

    def __post_init__(self) -> None:
        if not self.dead_links or any(k < 1 for k in self.dead_links):
            raise ObjectiveError(
                "resilience objective needs dead-link counts >= 1, "
                f"got {self.dead_links!r}"
            )

    @property
    def name(self) -> str:  # type: ignore[override]
        prefix = "" if self.maximize else "min:"
        ks = ",".join(str(k) for k in self.dead_links)
        return f"resilience:{prefix}{self.metric}@{ks}"

    def specs_for(self, spec: RunSpec) -> List[RunSpec]:
        from repro.faults import FaultPlan

        specs = []
        for k in self.dead_links:
            plan = FaultPlan.random_links(
                k, spec.mesh, spec.mesh, seed=self.fault_seed
            )
            specs.append(
                replace(
                    spec, faults=plan.format(), fault_detour=self.detour
                )
            )
        return specs

    def score(self, results: Sequence) -> float:
        values = [metric_value(r, self.metric) for r in results]
        mean = sum(values) / len(values)
        return mean if self.maximize else -mean

    def metrics(self, results: Sequence) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for k, result in zip(self.dead_links, results):
            out[f"{self.metric}@{k}"] = metric_value(result, self.metric)
        return out


# -- parsing -----------------------------------------------------------------

#: Shown in CLI help and docs.
OBJECTIVE_EXAMPLES = (
    "ipc", "max:ipc", "min:reply_latency",
    "weighted:ipc=1,reply_latency=-0.01",
    "resilience:delivered_fraction@1,2", "resilience:min:reply_latency@2",
)


def _parse_direction(text: str) -> Tuple[str, bool]:
    """Strip an optional ``max:``/``min:`` prefix -> (rest, maximize)."""
    if text.startswith("max:"):
        return text[len("max:"):], True
    if text.startswith("min:"):
        return text[len("min:"):], False
    return text, True


def parse_objective(text: str) -> Objective:
    """Parse an ``--objective`` string into an :class:`Objective`."""
    text = text.strip()
    if not text:
        raise ObjectiveError("empty objective")

    if text.startswith("weighted:"):
        body = text[len("weighted:"):]
        terms: List[Tuple[str, float]] = []
        for item in body.split(","):
            metric, sep, weight = item.partition("=")
            metric = metric.strip()
            if not sep or not metric:
                raise ObjectiveError(
                    f"bad weighted term {item!r}; expected metric=weight"
                )
            try:
                terms.append((metric, float(weight)))
            except ValueError:
                raise ObjectiveError(
                    f"bad weight {weight!r} in term {item!r}"
                )
        if not terms:
            raise ObjectiveError(f"no terms in {text!r}")
        return WeightedObjective(terms=tuple(terms))

    if text == "resilience" or text.startswith("resilience:"):
        body = text[len("resilience"):].lstrip(":")
        body, _, ks = body.partition("@")
        if ks:
            try:
                dead = tuple(int(k) for k in ks.split(",") if k)
            except ValueError:
                raise ObjectiveError(
                    f"bad dead-link counts {ks!r} in {text!r}"
                )
        else:
            dead = (1, 2)
        metric, maximize = _parse_direction(body) if body else (
            "delivered_fraction", True
        )
        return ResilienceObjective(
            metric=metric or "delivered_fraction",
            maximize=maximize,
            dead_links=dead,
        )

    metric, maximize = _parse_direction(text)
    if not metric:
        raise ObjectiveError(f"no metric named in {text!r}")
    return MetricObjective(metric=metric, maximize=maximize)
