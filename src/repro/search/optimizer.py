"""The search loop: propose, prune, evaluate, score, remember.

:class:`Optimizer` drives a seeded :class:`~repro.search.strategy.
Strategy` over a :class:`~repro.search.space.SearchSpace` against an
:class:`~repro.search.objectives.Objective`:

1. **Propose** one point at a time (``strategy.ask(1)``) until a batch of
   evaluable candidates is assembled or the budget is filled.
2. **Prune** each candidate through the static checker
   (:func:`repro.staticcheck.validate_spec`) *before* any simulation:
   a config that violates the paper's own feasibility rules (Eq. 2
   speedup bound, split-queue/VC mismatch, ...) becomes a ``pruned``
   trial that costs zero budget.
3. **Evaluate** the surviving batch through one
   :class:`~repro.experiments.executor.SweepExecutor` — results come
   back in input order, cache hits are free, parallel equals serial.
4. **Score** in proposal order, extend the best-so-far trajectory, feed
   outcomes back to the strategy, and append every trial to the JSONL
   :class:`TrialLedger`.

Determinism contract: the full trial sequence (points, statuses, scores,
trajectory) is a pure function of ``(space, objective, strategy, seed,
batch, budget)``.  Worker count never changes it, and a persisted ledger
replays byte-identically under ``--resume``: the strategy re-proposes,
each proposal is matched against the recorded trial, and recorded
outcomes are reused without touching the simulator.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.executor import SweepExecutor
from repro.experiments.runner import RunSpec
from repro.experiments.store import ResultStore
from repro.search.objectives import Objective
from repro.search.space import Point, SearchSpace
from repro.search.strategy import make_strategy
from repro.telemetry.profiler import HostProfiler
from repro.telemetry.render import series_sparkline

#: Ledger schema version; bumped on incompatible trial-line changes.
LEDGER_VERSION = 1


class SearchError(RuntimeError):
    """Ledger/config mismatch or an unusable search setup."""


@dataclass
class Trial:
    """One candidate's full provenance, as written to the ledger."""

    index: int
    point: Point
    status: str  # "ok" | "pruned"
    score: Optional[float] = None
    metrics: Dict[str, float] = field(default_factory=dict)
    spec_keys: List[str] = field(default_factory=list)
    cache_hits: int = 0
    pruned_rules: List[str] = field(default_factory=list)
    replayed: bool = False

    def to_dict(self) -> Dict[str, object]:
        out = dataclasses.asdict(self)
        out["kind"] = "trial"
        del out["replayed"]  # a ledger line is never "replayed"
        return out

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "Trial":
        return Trial(
            index=int(data["index"]),
            point=dict(data["point"]),
            status=str(data["status"]),
            score=data.get("score"),
            metrics=dict(data.get("metrics") or {}),
            spec_keys=list(data.get("spec_keys") or []),
            cache_hits=int(data.get("cache_hits") or 0),
            pruned_rules=list(data.get("pruned_rules") or []),
        )


@dataclass(frozen=True)
class SearchConfig:
    """Everything that determines a search's trial sequence (plus limits).

    The :meth:`fingerprint` covers only the sequence-determining fields —
    space, objective, strategy, seed, batch — so a resumed run may raise
    the budget or change worker count/patience and still replay the
    recorded prefix exactly.
    """

    space: SearchSpace
    objective: Objective
    strategy: str = "random"
    seed: int = 0
    budget: int = 32
    batch: int = 8
    patience: Optional[int] = None
    workers: Optional[int] = None
    use_cache: bool = True
    strict: bool = False

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise SearchError("budget must be >= 1")
        if self.batch < 1:
            raise SearchError("batch must be >= 1")
        if self.patience is not None and self.patience < 1:
            raise SearchError("patience must be >= 1 (or None)")

    def fingerprint(self) -> str:
        import hashlib

        blob = json.dumps(
            {
                "space": self.space.to_dict(),
                "objective": self.objective.name,
                "strategy": self.strategy,
                "seed": self.seed,
                "batch": self.batch,
            },
            sort_keys=True,
        )
        return hashlib.sha1(blob.encode()).hexdigest()[:20]

    def summary(self) -> Dict[str, object]:
        return {
            "space": self.space.to_dict(),
            "objective": self.objective.name,
            "strategy": self.strategy,
            "seed": self.seed,
            "budget": self.budget,
            "batch": self.batch,
            "patience": self.patience,
            "fingerprint": self.fingerprint(),
        }


class TrialLedger:
    """Append-only JSONL trial log: one header line, one line per trial.

    The header pins the config fingerprint; :meth:`load` refuses a
    ledger whose fingerprint disagrees with the resuming config, so a
    search can never silently continue against a different space,
    objective, strategy, seed or batch size.
    """

    def __init__(self, path: str):
        self.path = path

    def write_header(self, config: SearchConfig) -> None:
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        header = {
            "kind": "header",
            "version": LEDGER_VERSION,
            "fingerprint": config.fingerprint(),
            "config": config.summary(),
        }
        with open(self.path, "w") as fh:
            fh.write(json.dumps(header, sort_keys=True) + "\n")

    def append(self, trial: Trial) -> None:
        with open(self.path, "a") as fh:
            fh.write(json.dumps(trial.to_dict(), sort_keys=True) + "\n")

    def load(self, config: Optional[SearchConfig] = None) -> List[Trial]:
        """Recorded trials, index order; verifies the header fingerprint."""
        trials: List[Trial] = []
        with open(self.path) as fh:
            lines = [ln for ln in fh.read().splitlines() if ln.strip()]
        if not lines:
            raise SearchError(f"empty ledger {self.path!r}")
        header = json.loads(lines[0])
        if header.get("kind") != "header":
            raise SearchError(
                f"{self.path!r} does not start with a ledger header"
            )
        if header.get("version") != LEDGER_VERSION:
            raise SearchError(
                f"ledger {self.path!r} has version "
                f"{header.get('version')!r}, expected {LEDGER_VERSION}"
            )
        if config is not None:
            want = config.fingerprint()
            got = header.get("fingerprint")
            if got != want:
                raise SearchError(
                    f"ledger {self.path!r} was written by a different "
                    f"search (fingerprint {got} != {want}); space, "
                    "objective, strategy, seed and batch must match to "
                    "resume"
                )
        for line in lines[1:]:
            data = json.loads(line)
            if data.get("kind") == "trial":
                trials.append(Trial.from_dict(data))
        trials.sort(key=lambda t: t.index)
        return trials


@dataclass
class SearchReport:
    """Everything one :meth:`Optimizer.run` produced."""

    config: Dict[str, object]
    trials: List[Trial]
    trajectory: List[Tuple[int, float]]  # (trial index, best score so far)
    best_index: Optional[int] = None
    best_point: Optional[Point] = None
    best_score: Optional[float] = None
    best_metrics: Dict[str, float] = field(default_factory=dict)
    baseline_score: Optional[float] = None
    baseline_metrics: Dict[str, float] = field(default_factory=dict)
    evaluated: int = 0
    pruned: int = 0
    replayed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    executed: int = 0
    stop_reason: str = "budget"
    wall_s: float = 0.0

    def improved_on_baseline(self) -> Optional[bool]:
        """Did the best candidate beat the base spec?  None when unknown."""
        if self.best_score is None or self.baseline_score is None:
            return None
        return self.best_score > self.baseline_score

    def to_dict(self) -> Dict[str, object]:
        return {
            "config": self.config,
            "trials": [t.to_dict() for t in self.trials],
            "trajectory": [list(p) for p in self.trajectory],
            "best_index": self.best_index,
            "best_point": self.best_point,
            "best_score": self.best_score,
            "best_metrics": self.best_metrics,
            "baseline_score": self.baseline_score,
            "baseline_metrics": self.baseline_metrics,
            "evaluated": self.evaluated,
            "pruned": self.pruned,
            "replayed": self.replayed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "executed": self.executed,
            "stop_reason": self.stop_reason,
            "wall_s": self.wall_s,
            "improved_on_baseline": self.improved_on_baseline(),
        }

    def render(self, width: int = 40) -> str:
        """Human-readable summary with a best-so-far sparkline."""
        cfg = self.config
        lines = [
            f"search  : {cfg.get('strategy')} over "
            f"{cfg.get('objective')} (seed {cfg.get('seed')})",
            f"trials  : {self.evaluated} evaluated, {self.pruned} pruned "
            f"(free), {self.replayed} replayed, stop: {self.stop_reason}",
            f"cache   : {self.cache_hits} hit(s), {self.cache_misses} "
            f"miss(es), {self.executed} simulated",
        ]
        if self.trajectory:
            curve = series_sparkline(
                [score for _, score in self.trajectory], width
            )
            lines.append(f"best    : {curve}  {self.best_score:.6g}")
        if self.best_point is not None:
            knobs = ", ".join(
                f"{k}={v}" for k, v in sorted(self.best_point.items())
            )
            lines.append(f"config  : {knobs}")
        if self.baseline_score is not None:
            verdict = {True: "beats", False: "does not beat", None: "?"}[
                self.improved_on_baseline()
            ]
            lines.append(
                f"baseline: {self.baseline_score:.6g} — best {verdict} "
                "the base spec"
            )
        return "\n".join(lines)


#: ``on_trial(trial, best_score)`` — called once per completed trial.
TrialFn = Callable[[Trial, Optional[float]], None]


class Optimizer:
    """Budgeted search over a space, one strategy, one objective."""

    def __init__(
        self,
        config: SearchConfig,
        *,
        ledger: Optional[TrialLedger] = None,
        resume: bool = False,
        store: Optional[ResultStore] = None,
        on_trial: Optional[TrialFn] = None,
    ):
        self.config = config
        self.ledger = ledger
        self.store = store
        self.on_trial = on_trial
        self._replay: List[Trial] = []
        if resume:
            if ledger is None:
                raise SearchError("resume needs a ledger path")
            if not os.path.exists(ledger.path):
                raise SearchError(
                    f"cannot resume: no ledger at {ledger.path!r}"
                )
            self._replay = ledger.load(config)

    # -- pruning -------------------------------------------------------------
    def _prune_rules(self, specs: Sequence[RunSpec]) -> List[str]:
        """Static-check a candidate's specs; rule ids when it must die."""
        import warnings

        from repro.staticcheck import StaticCheckError, StaticCheckWarning
        from repro.staticcheck.runner import validate_spec

        mode = "strict" if self.config.strict else "warn"
        rules: List[str] = []
        with warnings.catch_warnings():
            # Candidate specs are probes, not user input: a warning-level
            # finding on one of 64 candidates is noise, not advice.
            warnings.simplefilter("ignore", StaticCheckWarning)
            for spec in specs:
                try:
                    validate_spec(spec, mode=mode)
                except StaticCheckError as exc:
                    for diag in exc.diagnostics:
                        if diag.rule not in rules:
                            rules.append(diag.rule)
        return sorted(rules)

    # -- evaluation ----------------------------------------------------------
    def _evaluate(
        self, trials: List[Trial], report: SearchReport
    ) -> None:
        """Simulate a batch of ok-trials and score them in proposal order."""
        objective = self.config.objective
        space = self.config.space
        specs: List[RunSpec] = []
        slices: List[Tuple[Trial, int, int]] = []
        for trial in trials:
            trial_specs = objective.specs_for(space.spec_for(trial.point))
            trial.spec_keys = [s.key() for s in trial_specs]
            slices.append((trial, len(specs), len(specs) + len(trial_specs)))
            specs.extend(trial_specs)
        if not specs:
            return

        sources: Dict[str, str] = {}

        def progress(done, total, spec, source):
            if source != "retry":
                sources[spec.key()] = source

        executor = SweepExecutor(
            workers=self.config.workers,
            store=self.store,
            use_cache=self.config.use_cache,
            progress=progress,
            check_invariants=False,
        )
        results = executor.run_many(specs)
        report.cache_hits += executor.report.cache_hits
        report.cache_misses += executor.report.cache_misses
        report.executed += executor.report.executed

        for trial, lo, hi in slices:
            trial.score = objective.score(results[lo:hi])
            trial.metrics = objective.metrics(results[lo:hi])
            trial.cache_hits = sum(
                1 for key in trial.spec_keys if sources.get(key) == "cache"
            )

    def _evaluate_baseline(self, report: SearchReport) -> None:
        """Score the base spec itself (unbudgeted reference point)."""
        objective = self.config.objective
        base = self.config.space.base
        specs = objective.specs_for(base)
        if self._prune_rules(specs):
            return  # an infeasible base spec simply has no baseline score
        executor = SweepExecutor(
            workers=self.config.workers,
            store=self.store,
            use_cache=self.config.use_cache,
            check_invariants=False,
        )
        results = executor.run_many(specs)
        report.cache_hits += executor.report.cache_hits
        report.cache_misses += executor.report.cache_misses
        report.executed += executor.report.executed
        report.baseline_score = objective.score(results)
        report.baseline_metrics = objective.metrics(results)

    # -- the loop ------------------------------------------------------------
    def run(self, *, baseline: bool = True) -> SearchReport:
        """Execute the search; returns the full :class:`SearchReport`."""
        config = self.config
        strategy = make_strategy(
            config.strategy, config.space, seed=config.seed
        )
        report = SearchReport(config=config.summary(), trials=[], trajectory=[])
        profiler = HostProfiler()
        if self.ledger is not None and not self._replay:
            self.ledger.write_header(config)

        replay_queue = list(self._replay)
        evaluated = 0
        index = 0
        since_improved = 0
        stop_reason = "budget"

        with profiler.phase("search"):
            if baseline:
                self._evaluate_baseline(report)
            while evaluated < config.budget:
                # -- propose one round -------------------------------------
                round_trials: List[Trial] = []
                pending: List[Trial] = []
                want = min(config.batch, config.budget - evaluated)
                exhausted = False
                while len(pending) < want:
                    points = strategy.ask(1)
                    if not points:
                        exhausted = True
                        break
                    point = points[0]
                    if replay_queue:
                        recorded = replay_queue.pop(0)
                        if config.space.point_key(
                            recorded.point
                        ) != config.space.point_key(point):
                            raise SearchError(
                                f"resume replay diverged at trial {index}: "
                                f"ledger has {recorded.point!r}, strategy "
                                f"proposed {point!r} — was the ledger "
                                "written with a different budget/batch "
                                "split?"
                            )
                        trial = dataclasses.replace(
                            recorded, index=index, replayed=True
                        )
                        report.replayed += 1
                    else:
                        trial = Trial(index=index, point=point, status="ok")
                        rules = self._prune_rules(
                            config.objective.specs_for(
                                config.space.spec_for(point)
                            )
                        )
                        if rules:
                            trial.status = "pruned"
                            trial.pruned_rules = rules
                    index += 1
                    round_trials.append(trial)
                    if trial.status == "ok":
                        pending.append(trial)
                        evaluated += 1

                # -- evaluate the fresh survivors --------------------------
                fresh = [t for t in pending if not t.replayed]
                self._evaluate(fresh, report)

                # -- record, score the trajectory, feed the strategy -------
                for trial in round_trials:
                    report.trials.append(trial)
                    if trial.status == "pruned":
                        report.pruned += 1
                    else:
                        score = trial.score
                        if score is not None and (
                            report.best_score is None
                            or score > report.best_score
                        ):
                            report.best_score = score
                            report.best_index = trial.index
                            report.best_point = dict(trial.point)
                            report.best_metrics = dict(trial.metrics)
                            since_improved = 0
                        else:
                            since_improved += 1
                        if report.best_score is not None:
                            report.trajectory.append(
                                (trial.index, report.best_score)
                            )
                    if self.ledger is not None and not trial.replayed:
                        self.ledger.append(trial)
                    if self.on_trial is not None:
                        self.on_trial(trial, report.best_score)
                strategy.tell(round_trials)

                if exhausted and len(pending) < want:
                    stop_reason = "exhausted"
                    break
                if (
                    config.patience is not None
                    and since_improved >= config.patience
                ):
                    stop_reason = "patience"
                    break

        report.evaluated = evaluated
        report.stop_reason = stop_reason
        report.wall_s = profiler.phase_seconds("search")
        return report
