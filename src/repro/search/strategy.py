"""Seeded search strategies: how the next candidate batch is proposed.

Every strategy implements the same two-call protocol the optimizer
drives::

    points = strategy.ask(n)   # up to n *fresh* points (never a repeat)
    ...evaluate...
    strategy.tell(trials)      # outcomes, in proposal order

The determinism contract is strict: a strategy's proposal stream is a
pure function of ``(space, seed, the sequence of told trials)``.  All
randomness flows through one ``random.Random(seed)``; nothing reads
wall clocks, global RNGs, or hash-order of strings.  The optimizer
calls ``tell`` at deterministic batch boundaries and feeds results in
proposal order, so the stream is identical serial or parallel — and
identical again when a persisted ledger is replayed on ``--resume``.

``ask`` returning fewer points than requested (or none) means the
strategy has exhausted the finite space; the optimizer stops cleanly.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.search.space import Point, SearchSpace


class StrategyError(ValueError):
    """Unknown strategy name or bad strategy option."""


class Strategy:
    """Base: fresh-point bookkeeping plus the ask/tell protocol."""

    name = "?"

    def __init__(self, space: SearchSpace, seed: int = 0):
        self.space = space
        self.seed = seed
        self.rng = random.Random(seed)
        self._proposed: set = set()  # point keys already handed out

    # -- protocol ------------------------------------------------------------
    def ask(self, n: int) -> List[Point]:
        """Up to ``n`` fresh points; fewer/empty when space is exhausted."""
        raise NotImplementedError

    def tell(self, trials: Sequence) -> None:
        """Outcomes of previously asked points, in proposal order.

        ``trials`` carry ``.point`` and ``.score`` (``None`` for pruned
        candidates that never simulated).  The base class ignores them.
        """

    # -- helpers for subclasses ----------------------------------------------
    def _is_fresh(self, point: Point) -> bool:
        return self.space.point_key(point) not in self._proposed

    def _claim(self, point: Point) -> Point:
        self._proposed.add(self.space.point_key(point))
        return point

    def _sample_fresh(self, tries: int = 64) -> Optional[Point]:
        """One fresh uniform sample, draining the grid when sampling stalls.

        After ``tries`` consecutive duplicate draws the remaining fresh
        points are scanned in deterministic grid order — so a strategy
        never gives up while the finite space still has unvisited
        points, and the fallback is reproducible.
        """
        for _ in range(tries):
            point = self.space.sample(self.rng)
            if self._is_fresh(point):
                return self._claim(point)
        for point in self.space.grid_points():
            if self._is_fresh(point):
                return self._claim(point)
        return None


class RandomStrategy(Strategy):
    """Uniform random search — the honest baseline, surprisingly strong."""

    name = "random"

    def ask(self, n: int) -> List[Point]:
        out: List[Point] = []
        for _ in range(n):
            point = self._sample_fresh()
            if point is None:
                break
            out.append(point)
        return out


class GridStrategy(Strategy):
    """Exhaustive cartesian scan in axis declaration order."""

    name = "grid"

    def __init__(self, space: SearchSpace, seed: int = 0):
        super().__init__(space, seed)
        self._iter = space.grid_points()

    def ask(self, n: int) -> List[Point]:
        out: List[Point] = []
        for point in self._iter:
            if not self._is_fresh(point):
                continue
            out.append(self._claim(point))
            if len(out) >= n:
                break
        return out


class HillclimbStrategy(Strategy):
    """(mu + lambda) evolutionary hill-climb over the knob space.

    Keeps the ``population`` best told trials as elites; each proposal
    mutates a uniformly chosen elite by one axis step
    (:meth:`SearchSpace.mutate`), with probability ``restart`` replaced
    by a fresh uniform sample so the climb cannot wedge in a local
    optimum.  Until the first scores arrive it behaves like random
    search.
    """

    name = "hillclimb"

    def __init__(
        self,
        space: SearchSpace,
        seed: int = 0,
        *,
        population: int = 4,
        restart: float = 0.15,
    ):
        super().__init__(space, seed)
        if population < 1:
            raise StrategyError("population must be >= 1")
        self.population = population
        self.restart = restart
        # (score, told-order) -> point; kept sorted best-first.  The
        # told-order tiebreak keeps elite order deterministic when two
        # trials score identically.
        self._elites: List[Tuple[float, int, Point]] = []
        self._told = 0

    def tell(self, trials: Sequence) -> None:
        for trial in trials:
            self._told += 1
            score = getattr(trial, "score", None)
            if score is None:
                continue  # pruned candidates carry no signal
            self._elites.append((score, -self._told, dict(trial.point)))
        self._elites.sort(key=lambda e: (-e[0], -e[1]))
        del self._elites[self.population:]

    def ask(self, n: int) -> List[Point]:
        out: List[Point] = []
        for _ in range(n):
            point: Optional[Point] = None
            if self._elites and self.rng.random() >= self.restart:
                parent = self._elites[
                    self.rng.randrange(len(self._elites))
                ][2]
                for _attempt in range(32):
                    child = self.space.mutate(parent, self.rng)
                    if self._is_fresh(child):
                        point = self._claim(child)
                        break
                    # drift: keep walking from the stale child so the
                    # neighborhood widens instead of re-rolling in place
                    parent = child
            if point is None:
                point = self._sample_fresh()
            if point is None:
                break
            out.append(point)
        return out


class SurrogateStrategy(Strategy):
    """Lightweight surrogate-guided (Bayesian-style) search, no deps.

    Fits an additive per-axis-value model over told scores — predicted
    score of a point is the global mean plus each axis value's observed
    deviation — and ranks a pool of fresh uniform candidates by
    predicted score plus an exploration bonus that decays with how
    often each axis value has been tried (UCB-flavored).  Cheap, pure
    Python, and deterministic; with no data yet it degenerates to
    random search.
    """

    name = "surrogate"

    def __init__(
        self,
        space: SearchSpace,
        seed: int = 0,
        *,
        pool: int = 24,
        explore: float = 0.6,
    ):
        super().__init__(space, seed)
        if pool < 1:
            raise StrategyError("pool must be >= 1")
        self.pool = pool
        self.explore = explore
        # (axis, value-key) -> [count, sum of scores]
        self._stats: Dict[Tuple[str, str], List[float]] = {}
        self._scores: List[float] = []

    def tell(self, trials: Sequence) -> None:
        for trial in trials:
            score = getattr(trial, "score", None)
            if score is None:
                continue
            self._scores.append(score)
            for axis, value in trial.point.items():
                cell = self._stats.setdefault((axis, repr(value)), [0, 0.0])
                cell[0] += 1
                cell[1] += score

    def _predict(self, point: Point) -> Tuple[float, float]:
        """(predicted score, exploration bonus) for one candidate."""
        mean = sum(self._scores) / len(self._scores)
        spread = _std(self._scores) or 1.0
        predicted = mean
        novelty = 0.0
        for axis, value in point.items():
            cell = self._stats.get((axis, repr(value)))
            count = cell[0] if cell else 0
            if count:
                predicted += cell[1] / count - mean
            novelty += 1.0 / math.sqrt(1.0 + count)
        bonus = self.explore * spread * novelty / max(1, len(point))
        return predicted, bonus

    def ask(self, n: int) -> List[Point]:
        if not self._scores:
            out: List[Point] = []
            for _ in range(n):
                point = self._sample_fresh()
                if point is None:
                    break
                out.append(point)
            return out
        # Draw a candidate pool *without* claiming, rank, claim winners.
        pool: List[Point] = []
        seen_pool: set = set()
        misses = 0
        while len(pool) < max(self.pool, n) and misses < 200:
            cand = self.space.sample(self.rng)
            key = self.space.point_key(cand)
            if key in self._proposed or key in seen_pool:
                misses += 1
                continue
            seen_pool.add(key)
            pool.append(cand)
        if len(pool) < n:
            for cand in self.space.grid_points():
                key = self.space.point_key(cand)
                if key in self._proposed or key in seen_pool:
                    continue
                seen_pool.add(key)
                pool.append(cand)
                if len(pool) >= max(self.pool, n):
                    break
        ranked = sorted(
            pool,
            key=lambda p: (
                -(self._predict(p)[0] + self._predict(p)[1]),
                self.space.point_key(p),
            ),
        )
        return [self._claim(p) for p in ranked[:n]]


def _std(values: Sequence[float]) -> float:
    if len(values) < 2:
        return 0.0
    mean = sum(values) / len(values)
    return math.sqrt(sum((v - mean) ** 2 for v in values) / len(values))


#: Public registry; ``evolutionary`` is an alias clients may prefer.
STRATEGIES: Dict[str, type] = {
    "random": RandomStrategy,
    "grid": GridStrategy,
    "hillclimb": HillclimbStrategy,
    "evolutionary": HillclimbStrategy,
    "surrogate": SurrogateStrategy,
}


def make_strategy(
    name: str, space: SearchSpace, seed: int = 0, **options
) -> Strategy:
    """Instantiate a registered strategy by name."""
    cls = STRATEGIES.get(name)
    if cls is None:
        raise StrategyError(
            f"unknown strategy {name!r}; "
            f"available: {', '.join(sorted(STRATEGIES))}"
        )
    return cls(space, seed, **options)
