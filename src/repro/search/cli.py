"""The ``repro search`` subcommand: design-space exploration.

Wired into :mod:`repro.cli` as one subparser::

    repro search bfs ada-ari --budget 32 --strategy hillclimb
    repro search bfs ada-ari --space injection_speedup=1..6 \\
        --space starvation_threshold=16,64,250,1000 \\
        --objective min:reply_latency --workers 4
    repro search bfs ada-ari --resume --budget 64   # extend a prior run

Every run persists a JSONL trial ledger (header + one line per trial)
under ``results/search/`` keyed by the search fingerprint; ``--resume``
replays it trial-for-trial before spending fresh budget.
"""

from __future__ import annotations

import json
import sys

from repro.experiments.runner import RunSpec
from repro.search.objectives import (
    OBJECTIVE_EXAMPLES,
    ObjectiveError,
    parse_objective,
)
from repro.search.optimizer import (
    Optimizer,
    SearchConfig,
    SearchError,
    TrialLedger,
)
from repro.search.space import SearchSpace, SearchSpaceError
from repro.search.strategy import STRATEGIES

#: Where trial ledgers live unless ``--ledger`` overrides.
DEFAULT_LEDGER_DIR = "results/search"


def add_search_parser(sub) -> None:
    """Register the ``search`` subparser on the main CLI."""
    from repro.core.schemes import scheme_names
    from repro.workloads.suite import benchmark_names

    se = sub.add_parser(
        "search",
        help="design-space exploration over the ARI knob space: seeded "
             "strategies (random/grid/hillclimb/surrogate), first-class "
             "objectives, static-check pruning, resumable trial ledger",
    )
    se.add_argument(
        "benchmark", choices=benchmark_names(), metavar="benchmark"
    )
    se.add_argument("scheme", choices=scheme_names(), metavar="scheme")
    se.add_argument(
        "--space", action="append", default=[], metavar="name=v1,v2",
        help="search axis (same grammar as sweep --axis, plus "
             "lo..hi[:step] ranges); repeatable; default: the ARI "
             "tuning triple (injection_speedup, num_split_queues, "
             "starvation_threshold)",
    )
    se.add_argument(
        "--strategy", default="random", choices=sorted(STRATEGIES),
        help="proposal strategy (default: random)",
    )
    se.add_argument(
        "--budget", type=int, default=32, metavar="N",
        help="evaluated-trial budget; pruned candidates are free "
             "(default: 32)",
    )
    se.add_argument(
        "--batch", type=int, default=8, metavar="N",
        help="candidates evaluated per round (default: 8)",
    )
    se.add_argument(
        "--objective", default="max:ipc", metavar="SPEC",
        help="what to optimize (default: max:ipc); e.g. "
             + ", ".join(repr(e) for e in OBJECTIVE_EXAMPLES[1:4]),
    )
    se.add_argument(
        "--patience", type=int, default=None, metavar="N",
        help="stop after N evaluated trials without improvement",
    )
    se.add_argument(
        "--search-seed", type=int, default=0, metavar="N",
        help="strategy RNG seed (default: 0); the full trial sequence "
             "is a pure function of space+objective+strategy+seed+batch",
    )
    se.add_argument("--workers", type=int, default=None,
                    help="parallel simulation workers (0 = all cores)")
    se.add_argument(
        "--ledger", default=None, metavar="FILE",
        help="trial-ledger path (default: "
             f"{DEFAULT_LEDGER_DIR}/search-<fingerprint>.jsonl)",
    )
    se.add_argument(
        "--resume", action="store_true",
        help="replay the ledger's recorded trials, then continue "
             "spending any remaining budget",
    )
    se.add_argument(
        "--no-baseline", action="store_true",
        help="skip the unbudgeted base-spec reference evaluation",
    )
    se.add_argument("--json", default=None, metavar="FILE",
                    help="write the full report as JSON ('-' for stdout)")
    se.add_argument("--quiet", action="store_true",
                    help="suppress per-trial progress lines")
    se.add_argument("--cycles", type=int, default=1500)
    se.add_argument("--mesh", type=int, default=6, choices=(4, 6, 8))
    se.add_argument("--seed", type=int, default=3,
                    help="simulation seed baked into every spec")
    se.add_argument("--no-cache", action="store_true")
    se.add_argument(
        "--kernel", default=None, choices=("reference", "activity"),
        help="simulation kernel backend (default: REPRO_KERNEL env var, "
             "then 'reference'); results are byte-identical",
    )


def cmd_search(args) -> int:
    from repro.experiments.specgrid import SpecGridError

    base = RunSpec(
        benchmark=args.benchmark,
        scheme=args.scheme,
        cycles=args.cycles,
        warmup=args.cycles // 4,
        seed=args.seed,
        mesh=args.mesh,
        kernel=args.kernel,
    )
    try:
        space = (
            SearchSpace.parse(base, args.space)
            if args.space
            else SearchSpace.default(base)
        )
        objective = parse_objective(args.objective)
        config = SearchConfig(
            space=space,
            objective=objective,
            strategy=args.strategy,
            seed=args.search_seed,
            budget=args.budget,
            batch=args.batch,
            patience=args.patience,
            workers=args.workers,
            use_cache=not args.no_cache,
        )
    except (SpecGridError, SearchSpaceError, ObjectiveError, SearchError) as exc:
        raise SystemExit(str(exc))

    ledger_path = args.ledger or (
        f"{DEFAULT_LEDGER_DIR}/search-{config.fingerprint()[:12]}.jsonl"
    )
    print(
        f"searching {args.benchmark}/{args.scheme} with "
        f"{args.strategy}, objective {objective.name}, "
        f"budget {args.budget} over {space.size} points:"
    )
    for line in space.describe():
        print(f"  {line}")
    print(f"ledger  : {ledger_path}")

    def on_trial(trial, best_score):
        if args.quiet:
            return
        knobs = " ".join(f"{k}={v}" for k, v in sorted(trial.point.items()))
        if trial.status == "pruned":
            print(
                f"  [{trial.index:3d}] pruned ({', '.join(trial.pruned_rules)}): "
                f"{knobs}",
                flush=True,
            )
        else:
            tag = " (replayed)" if trial.replayed else ""
            print(
                f"  [{trial.index:3d}] score {trial.score:.6g} "
                f"(best {best_score:.6g}){tag}: {knobs}",
                flush=True,
            )

    try:
        optimizer = Optimizer(
            config,
            ledger=TrialLedger(ledger_path),
            resume=args.resume,
            on_trial=on_trial,
        )
        report = optimizer.run(baseline=not args.no_baseline)
    except SearchError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    print()
    print(report.render())
    if args.json is not None:
        text = json.dumps(report.to_dict(), indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w") as fh:
                fh.write(text + "\n")
            print(f"wrote {args.json}")
    return 0
