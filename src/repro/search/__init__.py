"""Design-space exploration over the ARI knob space.

The search service turns the repo's experiment stack — content-addressed
:class:`~repro.experiments.store.ResultStore`, process-pool
:class:`~repro.experiments.executor.SweepExecutor`, and the
:mod:`repro.staticcheck` feasibility gate — into an optimizer: describe
*what may vary* (:class:`SearchSpace`), *what better means*
(:class:`~repro.search.objectives.Objective`), pick a seeded
:class:`~repro.search.strategy.Strategy`, and the
:class:`~repro.search.optimizer.Optimizer` spends a trial budget finding
the best configuration — pruning statically-infeasible candidates for
free and replaying byte-identically from its JSONL trial ledger.

    from repro.search import (
        Optimizer, SearchConfig, SearchSpace, parse_objective,
    )

    space = SearchSpace.default(RunSpec("bfs", "ada-ari", cycles=600))
    config = SearchConfig(space, parse_objective("max:ipc"),
                          strategy="hillclimb", budget=32)
    report = Optimizer(config).run()
    print(report.render())

CLI: ``repro search`` (see :mod:`repro.search.cli`); docs:
``docs/search.md``.
"""

from repro.search.objectives import (
    MetricObjective,
    Objective,
    ObjectiveError,
    ResilienceObjective,
    WeightedObjective,
    metric_value,
    parse_objective,
)
from repro.search.optimizer import (
    Optimizer,
    SearchConfig,
    SearchError,
    SearchReport,
    Trial,
    TrialLedger,
)
from repro.search.space import (
    DEFAULT_AXES,
    EXCLUDED_FIELDS,
    SearchSpace,
    SearchSpaceError,
)
from repro.search.strategy import (
    STRATEGIES,
    GridStrategy,
    HillclimbStrategy,
    RandomStrategy,
    Strategy,
    StrategyError,
    SurrogateStrategy,
    make_strategy,
)

__all__ = [
    "DEFAULT_AXES",
    "EXCLUDED_FIELDS",
    "GridStrategy",
    "HillclimbStrategy",
    "MetricObjective",
    "Objective",
    "ObjectiveError",
    "Optimizer",
    "RandomStrategy",
    "ResilienceObjective",
    "STRATEGIES",
    "SearchConfig",
    "SearchError",
    "SearchReport",
    "SearchSpace",
    "SearchSpaceError",
    "Strategy",
    "StrategyError",
    "SurrogateStrategy",
    "Trial",
    "TrialLedger",
    "WeightedObjective",
    "make_strategy",
    "metric_value",
    "parse_objective",
]
