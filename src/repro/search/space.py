"""SearchSpace — the design-space DSL over the ARI knob axes.

A :class:`SearchSpace` is a frozen base :class:`~repro.experiments.
runner.RunSpec` (benchmark, scheme, cycles, mesh, seed, ... — everything
the search does *not* vary) plus an ordered set of discrete axes over
RunSpec fields (everything it does).  The axes use the same grammar as
``repro sweep --axis`` (:mod:`repro.experiments.specgrid`), including the
``lo..hi[:step]`` range shorthand::

    space = SearchSpace.parse(
        RunSpec("bfs", "ada-ari", cycles=600, mesh=4),
        ["injection_speedup=1..6", "num_split_queues=1,2,4",
         "starvation_threshold=16,64,250,1000"],
    )

A *point* is a plain dict mapping axis names to values; ``spec_for``
turns a point into the RunSpec it denotes.  Points are canonically keyed
by :meth:`point_key` (sorted-key JSON), which is what strategies and the
trial ledger use for dedup and replay matching.

Everything here is deterministic: sampling and mutation take the
caller's ``random.Random``, grid order is the axis declaration order,
and :meth:`fingerprint` hashes the full space (base spec + axes) so a
persisted search ledger can refuse to resume against a different space.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import asdict, dataclass, replace
from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

from repro.experiments.runner import RunSpec
from repro.experiments.specgrid import SPEC_FIELDS, parse_axes

Point = Dict[str, object]

#: RunSpec fields a search may not vary: fault plans belong to the
#: objective (resilience objectives install their own), telemetry makes
#: runs live/uncacheable, and kernels are byte-identical by contract so
#: a kernel axis would only buy duplicate results.
EXCLUDED_FIELDS = ("faults", "fault_detour", "telemetry", "kernel")

#: The default ARI knob space (`repro search` with no ``--space``): the
#: paper's central tuning triple.  Speedups above the Eq. 2 bound and
#: split-queue counts above the VC count are deliberately included —
#: they are exactly what the validate_spec pruning gate removes for
#: free, before any simulation budget is spent.
DEFAULT_AXES: Tuple[Tuple[str, Tuple[object, ...]], ...] = (
    ("injection_speedup", (1, 2, 3, 4, 6)),
    ("num_split_queues", (1, 2, 4, 6)),
    ("starvation_threshold", (16, 64, 250, 1000)),
)


class SearchSpaceError(ValueError):
    """Malformed axis set: unknown/excluded field, empty values."""


@dataclass(frozen=True)
class SearchSpace:
    """A frozen base spec plus ordered discrete axes over RunSpec fields."""

    base: RunSpec
    axes: Tuple[Tuple[str, Tuple[object, ...]], ...]

    # -- construction --------------------------------------------------------
    @staticmethod
    def from_axes(
        base: RunSpec, axes: Mapping[str, Sequence[object]]
    ) -> "SearchSpace":
        """Validate and freeze an axes mapping (declaration order kept)."""
        frozen: List[Tuple[str, Tuple[object, ...]]] = []
        for name, values in axes.items():
            if name not in SPEC_FIELDS:
                raise SearchSpaceError(
                    f"unknown RunSpec field {name!r}; "
                    f"valid: {', '.join(SPEC_FIELDS)}"
                )
            if name in EXCLUDED_FIELDS:
                raise SearchSpaceError(
                    f"field {name!r} cannot be a search axis "
                    f"(excluded: {', '.join(EXCLUDED_FIELDS)})"
                )
            unique: List[object] = []
            for v in values:
                if v not in unique:
                    unique.append(v)
            if not unique:
                raise SearchSpaceError(f"axis {name!r} has no values")
            frozen.append((name, tuple(unique)))
        if not frozen:
            raise SearchSpaceError("a search space needs at least one axis")
        return SearchSpace(base=base, axes=tuple(frozen))

    @staticmethod
    def parse(base: RunSpec, texts: Sequence[str]) -> "SearchSpace":
        """Build a space from ``--space name=v1,v2|lo..hi[:step]`` options."""
        return SearchSpace.from_axes(base, parse_axes(texts))

    @staticmethod
    def default(base: RunSpec) -> "SearchSpace":
        """The default ARI knob space over ``base``."""
        return SearchSpace(base=base, axes=DEFAULT_AXES)

    # -- geometry ------------------------------------------------------------
    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.axes)

    def values(self, name: str) -> Tuple[object, ...]:
        for axis, vals in self.axes:
            if axis == name:
                return vals
        raise SearchSpaceError(f"no axis named {name!r}")

    @property
    def size(self) -> int:
        """Number of distinct points (product of axis cardinalities)."""
        n = 1
        for _, vals in self.axes:
            n *= len(vals)
        return n

    # -- points --------------------------------------------------------------
    def spec_for(self, point: Point) -> RunSpec:
        """The RunSpec a point denotes (axis values over the base spec)."""
        return replace(self.base, **point)

    def point_key(self, point: Point) -> str:
        """Canonical string identity of a point (sorted-key JSON)."""
        return json.dumps(point, sort_keys=True)

    def contains(self, point: Point) -> bool:
        """True when every axis is present with an in-range value."""
        if set(point) != set(self.names):
            return False
        return all(point[name] in vals for name, vals in self.axes)

    def sample(self, rng) -> Point:
        """One uniform point, drawn from the caller's seeded RNG."""
        return {name: rng.choice(vals) for name, vals in self.axes}

    def mutate(self, point: Point, rng) -> Point:
        """A neighbor of ``point``: one randomly chosen axis moves.

        Numeric axes step to an adjacent value in their declared order
        (a local move, what hill-climbing wants); non-numeric axes jump
        to a uniformly chosen different value.  Axes with a single value
        cannot move and are never chosen; a fully rigid space returns
        the point unchanged.
        """
        movable = [
            (name, vals) for name, vals in self.axes if len(vals) > 1
        ]
        if not movable:
            return dict(point)
        name, vals = movable[rng.randrange(len(movable))]
        out = dict(point)
        idx = vals.index(out[name])
        numeric = all(isinstance(v, (int, float)) for v in vals)
        if numeric:
            if idx == 0:
                idx = 1
            elif idx == len(vals) - 1:
                idx -= 1
            else:
                idx += rng.choice((-1, 1))
        else:
            others = [i for i in range(len(vals)) if i != idx]
            idx = others[rng.randrange(len(others))]
        out[name] = vals[idx]
        return out

    def grid_points(self) -> Iterator[Point]:
        """Every point, cartesian order over axis declaration order."""
        names = self.names
        for combo in itertools.product(*(vals for _, vals in self.axes)):
            yield dict(zip(names, combo))

    # -- identity ------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "base": asdict(self.base),
            "axes": [[name, list(vals)] for name, vals in self.axes],
        }

    def fingerprint(self) -> str:
        """Content hash of the full space (base spec + axes)."""
        blob = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha1(blob.encode()).hexdigest()[:20]

    def describe(self) -> List[str]:
        """Human-readable axis lines for reports and CLI output."""
        return [
            f"{name} = {', '.join(str(v) for v in vals)}"
            for name, vals in self.axes
        ]
